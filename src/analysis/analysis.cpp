#include "analysis/analysis.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "replay/replay.hpp"
#include "support/logging.hpp"
#include "analysis/forkaudit.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "vm/bytecode.hpp"

namespace dionea::analysis {

const char* finding_kind_name(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kLockOrderCycle: return "lock-order-cycle";
    case FindingKind::kLockLeak: return "lock-leak";
    case FindingKind::kDoubleAcquire: return "double-acquire";
    case FindingKind::kClosedQueue: return "closed-queue";
    case FindingKind::kDataRace: return "data-race";
    case FindingKind::kForkUnderLock: return "fork-under-lock";
    case FindingKind::kForkInTraceHook: return "fork-in-trace-hook";
    case FindingKind::kForkChildResource: return "fork-child-resource";
    case FindingKind::kAtforkUncovered: return "atfork-uncovered";
    case FindingKind::kAtforkOrderInversion: return "atfork-order-inversion";
    case FindingKind::kSignalUnsafeCall: return "signal-unsafe-call";
  }
  return "?";
}

std::string Finding::to_string() const {
  std::string out = strings::format(
      "[%s] %s: %s", finding_kind_name(kind),
      strings::source_location(file, line).c_str(), message.c_str());
  if (!file2.empty()) {
    out += strings::format(" (see %s)",
                           strings::source_location(file2, line2).c_str());
  }
  if (step != 0) {
    out += strings::format(" [step %llu]",
                           static_cast<unsigned long long>(step));
  }
  return out;
}

std::string Report::to_string() const {
  std::string out;
  for (const Finding& finding : findings) {
    out += finding.to_string();
    out += '\n';
  }
  return out;
}

void Report::dedupe() {
  std::set<std::string> seen;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& finding : findings) {
    std::string key = strings::format(
        "%d|%s|%d|%s", static_cast<int>(finding.kind), finding.file.c_str(),
        finding.line,
        finding.object.empty() ? finding.message.c_str()
                               : finding.object.c_str());
    if (seen.insert(std::move(key)).second) kept.push_back(std::move(finding));
  }
  findings = std::move(kept);
}

// =================================================================
// Static pass: abstract interpretation over bytecode.
// =================================================================

namespace {

using vm::Chunk;
using vm::FunctionProto;
using vm::Op;

struct Site {
  std::string file;
  int line = 0;
};

// Abstract value on the simulated operand stack / in a local slot.
struct Sym {
  enum Kind : std::uint8_t {
    kTop,      // anything
    kBuiltin,  // a sync-relevant builtin looked up by name
    kSync,     // a sync object; name is its identity ("" until bound)
    kFunc,     // a MiniLang function with a known prototype
  };
  Kind kind = kTop;
  std::string name;    // builtin name or sync identity
  int sync_kind = 0;   // 1 = mutex, 2 = queue, 3 = cond
  const FunctionProto* proto = nullptr;

  bool operator==(const Sym& other) const {
    return kind == other.kind && name == other.name &&
           sync_kind == other.sync_kind && proto == other.proto;
  }
};

Sym top_sym() { return Sym{}; }

int ctor_sync_kind(const std::string& name) {
  if (name == "mutex") return 1;
  if (name == "queue") return 2;
  if (name == "cond") return 3;
  return 0;
}

bool is_relevant_builtin(const std::string& name) {
  static const std::set<std::string> kNames = {
      "mutex", "queue", "cond",  "lock",   "unlock", "try_lock", "close",
      "push",  "pop",   "wait",  "signal", "broadcast", "spawn", "join",
      "fork"};
  return kNames.count(name) != 0;
}

// Per-offset dataflow state. `held` and `closed` are may-sets: a lock
// held on *some* path into the offset counts (that is what makes the
// leak check "on some path").
struct AbsState {
  std::vector<Sym> stack;
  std::vector<Sym> locals;
  std::map<std::string, Site> held;
  std::map<std::string, Site> closed;
};

bool merge_sym(Sym* dst, const Sym& src) {
  if (*dst == src) return false;
  if (dst->kind == Sym::kTop) return false;
  *dst = top_sym();
  return true;
}

bool merge_into(AbsState* dst, const AbsState& src) {
  bool changed = false;
  if (dst->stack.size() != src.stack.size()) {
    // Join points the compiler emits are stack-balanced; a mismatch
    // means control merges from contexts we model differently (e.g.
    // an iterator exit). Meet defensively to the common prefix.
    size_t keep = std::min(dst->stack.size(), src.stack.size());
    if (dst->stack.size() != keep) {
      dst->stack.resize(keep);
      changed = true;
    }
    for (size_t i = 0; i < keep; ++i) changed |= merge_sym(&dst->stack[i], src.stack[i]);
  } else {
    for (size_t i = 0; i < dst->stack.size(); ++i) {
      changed |= merge_sym(&dst->stack[i], src.stack[i]);
    }
  }
  for (size_t i = 0; i < dst->locals.size() && i < src.locals.size(); ++i) {
    changed |= merge_sym(&dst->locals[i], src.locals[i]);
  }
  for (const auto& [id, site] : src.held) {
    if (dst->held.emplace(id, site).second) changed = true;
  }
  for (const auto& [id, site] : src.closed) {
    if (dst->closed.emplace(id, site).second) changed = true;
  }
  return changed;
}

struct Edge {
  Site site;        // where the second lock was acquired
  std::string held_id;
  Site held_site;   // where the already-held lock was acquired
};

// Whole-program lint context.
struct LintCtx {
  // Identity registries discovered by the binding pre-pass.
  std::map<std::string, int> global_syncs;                 // name -> sync kind
  std::map<std::string, const FunctionProto*> global_funcs;
  // Transitive acquire summaries, grown to fixpoint.
  std::map<const FunctionProto*, std::map<std::string, Site>> acquires;
  // Lock-order graph: edges[a][b] = first site where b was acquired
  // while a was held.
  std::map<std::string, std::map<std::string, Edge>> edges;
  std::vector<Finding> findings;
  std::set<std::string> reported;  // dedupe key
  bool report = false;

  void add_finding(FindingKind kind, const std::string& dedupe_key,
                   std::string message, Site site, Site other = {}) {
    if (!report) return;
    if (!reported.insert(dedupe_key).second) return;
    Finding finding;
    finding.kind = kind;
    finding.message = std::move(message);
    finding.file = site.file;
    finding.line = site.line;
    finding.file2 = other.file;
    finding.line2 = other.line;
    findings.push_back(std::move(finding));
  }
};

// Linear scan for top-level binding patterns, so identities are known
// before the dataflow pass (which may see a use before the definition
// when functions are linted in collection order):
//   kGetGlobal <ctor>; kCall 0; kSetGlobal <name>   ->  sync identity
//   kClosure <proto>; kSetGlobal <name>             ->  function binding
void scan_bindings(const FunctionProto& proto, LintCtx* ctx) {
  const Chunk& chunk = proto.chunk;
  size_t offset = 0;
  while (offset < chunk.size()) {
    Op op = static_cast<Op>(chunk.read_u8(offset));
    size_t next = offset + 1 + static_cast<size_t>(vm::op_operand_bytes(op));
    if (op == Op::kGetGlobal && next + 2 + 2 < chunk.size()) {
      const vm::Value& name = chunk.constants()[chunk.read_u16(offset + 1)];
      int sync_kind = name.is_str() ? ctor_sync_kind(name.as_str()) : 0;
      if (sync_kind != 0 && static_cast<Op>(chunk.read_u8(next)) == Op::kCall &&
          chunk.read_u8(next + 1) == 0 &&
          static_cast<Op>(chunk.read_u8(next + 2)) == Op::kSetGlobal) {
        const vm::Value& target = chunk.constants()[chunk.read_u16(next + 3)];
        if (target.is_str()) ctx->global_syncs[target.as_str()] = sync_kind;
      }
    }
    if (op == Op::kClosure && next + 2 < chunk.size() &&
        static_cast<Op>(chunk.read_u8(next)) == Op::kSetGlobal) {
      const vm::Value& fn = chunk.constants()[chunk.read_u16(offset + 1)];
      const vm::Value& target = chunk.constants()[chunk.read_u16(next + 1)];
      if (fn.is_closure() && fn.as_closure()->proto && target.is_str()) {
        ctx->global_funcs[target.as_str()] = fn.as_closure()->proto.get();
      }
    }
    offset = next;
  }
}

// Record "b acquired while a held". Returns true if the summary of
// `proto` grew (drives the fixpoint).
bool note_acquire(LintCtx* ctx, const FunctionProto* proto, AbsState* state,
                  const std::string& id, Site site) {
  for (const auto& [held_id, held_site] : state->held) {
    if (held_id == id) continue;
    Edge edge{site, held_id, held_site};
    ctx->edges[held_id].emplace(id, edge);
  }
  state->held.emplace(id, site);
  return ctx->acquires[proto].emplace(id, site).second;
}

// Simulate a call instruction. Returns true if the caller's summary grew.
bool apply_call(LintCtx* ctx, const FunctionProto& proto, AbsState* state,
                int argc, Site site) {
  bool summary_grew = false;
  size_t callee_index = state->stack.size() - static_cast<size_t>(argc) - 1;
  Sym callee = state->stack[callee_index];
  std::vector<Sym> args(state->stack.begin() + static_cast<long>(callee_index) + 1,
                        state->stack.end());
  state->stack.resize(callee_index);

  Sym result = top_sym();
  if (callee.kind == Sym::kBuiltin) {
    const std::string& name = callee.name;
    int ctor = ctor_sync_kind(name);
    if (ctor != 0 && argc == 0) {
      result = Sym{Sym::kSync, "", ctor, nullptr};
    } else if (name == "lock" && argc == 1 && args[0].kind == Sym::kSync &&
               !args[0].name.empty()) {
      const std::string& id = args[0].name;
      auto held_it = state->held.find(id);
      if (held_it != state->held.end()) {
        ctx->add_finding(
            FindingKind::kDoubleAcquire,
            strings::format("double:%s:%s:%d", id.c_str(), site.file.c_str(),
                            site.line),
            strings::format("mutex '%s' acquired while already held; "
                            "VM mutexes are not reentrant",
                            id.c_str()),
            site, held_it->second);
      } else {
        summary_grew |= note_acquire(ctx, &proto, state, id, site);
      }
    } else if (name == "unlock" && argc == 1 && args[0].kind == Sym::kSync) {
      state->held.erase(args[0].name);
    } else if (name == "close" && argc == 1 && args[0].kind == Sym::kSync &&
               !args[0].name.empty()) {
      state->closed.emplace(args[0].name, site);
    } else if (name == "push" && argc >= 1 && !args.empty() &&
               args[0].kind == Sym::kSync && args[0].sync_kind == 2) {
      // pop after close is the documented drain idiom (returns the
      // backlog, then nil); only push is a runtime error.
      auto closed_it = state->closed.find(args[0].name);
      if (closed_it != state->closed.end()) {
        ctx->add_finding(
            FindingKind::kClosedQueue,
            strings::format("closed:%s:%s:%d", args[0].name.c_str(),
                            site.file.c_str(), site.line),
            strings::format("push on queue '%s' after close()",
                            args[0].name.c_str()),
            site, closed_it->second);
      }
    }
    // try_lock is intentionally not an acquire; spawn starts a
    // concurrent thread, so the spawned function's locks do not nest
    // under the caller's held set.
  } else if (callee.kind == Sym::kFunc && callee.proto != nullptr &&
             callee.proto != &proto) {
    // Nested acquire through a call: everything the callee may lock
    // is ordered after everything currently held.
    for (const auto& [id, acq_site] : ctx->acquires[callee.proto]) {
      if (state->held.count(id)) continue;  // re-entry via call: skip (FP risk)
      for (const auto& [held_id, held_site] : state->held) {
        if (held_id == id) continue;
        Edge edge{acq_site, held_id, held_site};
        ctx->edges[held_id].emplace(id, edge);
      }
      summary_grew |= ctx->acquires[&proto].emplace(id, acq_site).second;
    }
  }
  state->stack.push_back(result);
  return summary_grew;
}

// One abstract-interpretation pass over a single function. Returns
// true if this function's acquire summary grew.
bool simulate(LintCtx* ctx, const FunctionProto& proto) {
  const Chunk& chunk = proto.chunk;
  if (chunk.size() == 0) return false;
  bool summary_grew = false;

  AbsState entry;
  entry.locals.assign(proto.local_names.size(), top_sym());
  std::map<size_t, AbsState> states;
  states.emplace(0, std::move(entry));
  std::deque<size_t> worklist{0};
  std::set<size_t> queued{0};

  auto push_succ = [&](size_t offset, const AbsState& state) {
    auto [it, inserted] = states.emplace(offset, state);
    bool changed = inserted;
    if (!inserted) changed = merge_into(&it->second, state);
    if (changed && queued.insert(offset).second) worklist.push_back(offset);
  };

  auto leak_check = [&](const AbsState& state, size_t offset) {
    for (const auto& [id, site] : state.held) {
      ctx->add_finding(
          FindingKind::kLockLeak,
          strings::format("leak:%s:%s:%d", id.c_str(), site.file.c_str(),
                          site.line),
          strings::format("lock '%s' is not released on some path through "
                          "'%s'",
                          id.c_str(),
                          proto.name.empty() ? "<lambda>" : proto.name.c_str()),
          Site{proto.file, chunk.line_at(offset)}, site);
    }
  };

  int guard = 0;
  while (!worklist.empty() && ++guard < 200000) {
    size_t offset = worklist.front();
    worklist.pop_front();
    queued.erase(offset);
    AbsState state = states.at(offset);

    Op op = static_cast<Op>(chunk.read_u8(offset));
    size_t operand = offset + 1;
    size_t next = operand + static_cast<size_t>(vm::op_operand_bytes(op));
    Site site{proto.file, chunk.line_at(offset)};

    auto pop_n = [&](size_t n) {
      state.stack.resize(state.stack.size() >= n ? state.stack.size() - n : 0);
    };

    switch (op) {
      case Op::kConst:
      case Op::kNil:
      case Op::kTrue:
      case Op::kFalse:
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      case Op::kPop:
        pop_n(1);
        push_succ(next, state);
        break;
      case Op::kDup:
        state.stack.push_back(state.stack.empty() ? top_sym()
                                                  : state.stack.back());
        push_succ(next, state);
        break;
      case Op::kGetLocal: {
        std::uint16_t slot = chunk.read_u16(operand);
        state.stack.push_back(slot < state.locals.size() ? state.locals[slot]
                                                         : top_sym());
        push_succ(next, state);
        break;
      }
      case Op::kSetLocal: {
        std::uint16_t slot = chunk.read_u16(operand);
        if (!state.stack.empty() && slot < state.locals.size()) {
          Sym value = state.stack.back();
          if (value.kind == Sym::kSync && value.name.empty()) {
            // Bind a freshly constructed sync object to a local-scoped
            // identity ("<func>.<local>").
            value.name = strings::format(
                "%s.%s", proto.name.empty() ? "<main>" : proto.name.c_str(),
                proto.local_names[slot].c_str());
            state.stack.back() = value;
          }
          state.locals[slot] = value;
        }
        push_succ(next, state);
        break;
      }
      case Op::kGetGlobal: {
        const vm::Value& name = chunk.constants()[chunk.read_u16(operand)];
        Sym sym = top_sym();
        if (name.is_str()) {
          const std::string& text = name.as_str();
          auto sync_it = ctx->global_syncs.find(text);
          auto func_it = ctx->global_funcs.find(text);
          if (sync_it != ctx->global_syncs.end()) {
            sym = Sym{Sym::kSync, text, sync_it->second, nullptr};
          } else if (func_it != ctx->global_funcs.end()) {
            sym = Sym{Sym::kFunc, text, 0, func_it->second};
          } else if (is_relevant_builtin(text)) {
            sym = Sym{Sym::kBuiltin, text, 0, nullptr};
          }
        }
        state.stack.push_back(sym);
        push_succ(next, state);
        break;
      }
      case Op::kSetGlobal: {
        const vm::Value& name = chunk.constants()[chunk.read_u16(operand)];
        if (name.is_str() && !state.stack.empty()) {
          Sym& value = state.stack.back();
          if (value.kind == Sym::kSync && value.name.empty()) {
            value.name = name.as_str();
            ctx->global_syncs.emplace(name.as_str(), value.sync_kind);
          }
        }
        push_succ(next, state);
        break;
      }
      case Op::kGetCapture:
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      case Op::kSetCapture:
        push_succ(next, state);
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe:
        pop_n(2);
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      case Op::kNeg:
      case Op::kNot:
        pop_n(1);
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      case Op::kJump:
        push_succ(next + chunk.read_u16(operand), state);
        break;
      case Op::kJumpIfFalse: {
        std::uint16_t jump = chunk.read_u16(operand);
        pop_n(1);
        push_succ(next, state);
        push_succ(next + jump, state);
        break;
      }
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek: {
        std::uint16_t jump = chunk.read_u16(operand);
        push_succ(next, state);
        push_succ(next + jump, state);
        break;
      }
      case Op::kLoop:
        push_succ(next - chunk.read_u16(operand), state);
        break;
      case Op::kCall: {
        int argc = chunk.read_u8(operand);
        if (state.stack.size() >= static_cast<size_t>(argc) + 1) {
          summary_grew |= apply_call(ctx, proto, &state, argc, site);
        } else {
          state.stack.clear();
          state.stack.push_back(top_sym());
        }
        push_succ(next, state);
        break;
      }
      case Op::kReturn:
        leak_check(state, offset);
        break;
      case Op::kBuildList: {
        pop_n(chunk.read_u16(operand));
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      }
      case Op::kBuildMap: {
        pop_n(static_cast<size_t>(chunk.read_u16(operand)) * 2);
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      }
      case Op::kIndexGet:
        pop_n(2);
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      case Op::kIndexSet:
        pop_n(3);
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      case Op::kClosure: {
        const vm::Value& fn = chunk.constants()[chunk.read_u16(operand)];
        Sym sym = top_sym();
        if (fn.is_closure() && fn.as_closure()->proto) {
          sym = Sym{Sym::kFunc, "", 0, fn.as_closure()->proto.get()};
        }
        state.stack.push_back(sym);
        push_succ(next, state);
        break;
      }
      case Op::kIterNew:
        pop_n(1);
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      case Op::kIterNext: {
        std::uint16_t exit_offset = chunk.read_u16(operand + 2);
        push_succ(next + exit_offset, state);  // exhausted: nothing pushed
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      }
      case Op::kTraceLine:
        push_succ(next, state);
        break;
      // Fused superinstructions: the lint only tracks sync objects and
      // function values, which the fused forms (locals and scalar
      // literals combined by a binary op) can never produce — so the
      // abstract effect is just the sequence's net stack effect.
      case Op::kLocLocBin:
      case Op::kLocConstBin:
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      case Op::kConstSetLocal: {
        std::uint16_t slot = chunk.read_u16(operand + 2);
        if (slot < state.locals.size()) state.locals[slot] = top_sym();
        push_succ(next, state);
        break;
      }
      // Quickened ops never appear in compiled chunks (the lint runs
      // on the compiler's output; quickening happens in per-Vm code
      // caches). Handled defensively as their unquickened stack
      // effects.
      case Op::kGetGlobalIC:
        state.stack.push_back(top_sym());
        push_succ(next, state);
        break;
      case Op::kSetGlobalIC:
      case Op::kTraceLineQ:
        push_succ(next, state);
        break;
      case Op::kHalt:
        leak_check(state, offset);
        break;
    }
  }
  return summary_grew;
}

// Rotate a cycle so it starts at its lexicographically smallest node
// (canonical form for dedup).
std::vector<std::string> normalize_cycle(std::vector<std::string> cycle) {
  size_t best = 0;
  for (size_t i = 1; i < cycle.size(); ++i) {
    if (cycle[i] < cycle[best]) best = i;
  }
  std::rotate(cycle.begin(), cycle.begin() + static_cast<long>(best),
              cycle.end());
  return cycle;
}

void find_cycles(LintCtx* ctx) {
  std::set<std::vector<std::string>> seen;
  std::vector<std::string> path;
  std::set<std::string> on_path;
  std::set<std::string> done;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    path.push_back(node);
    on_path.insert(node);
    auto it = ctx->edges.find(node);
    if (it != ctx->edges.end()) {
      for (const auto& [succ, edge] : it->second) {
        if (on_path.count(succ)) {
          // Extract the cycle succ ... node.
          auto start = std::find(path.begin(), path.end(), succ);
          std::vector<std::string> cycle(start, path.end());
          if (!seen.insert(normalize_cycle(cycle)).second) continue;
          // Describe the chain with each step's acquisition site.
          std::string chain;
          Site first_site;
          Site second_site;
          for (size_t i = 0; i < cycle.size(); ++i) {
            const std::string& a = cycle[i];
            const std::string& b = cycle[(i + 1) % cycle.size()];
            const Edge& step = ctx->edges.at(a).at(b);
            if (i == 0) first_site = step.site;
            if (i == 1 || cycle.size() == 1) second_site = step.site;
            chain += strings::format(
                "'%s' -> '%s' at %s%s", a.c_str(), b.c_str(),
                strings::source_location(step.site.file, step.site.line)
                    .c_str(),
                i + 1 < cycle.size() ? ", " : "");
          }
          ctx->add_finding(
              FindingKind::kLockOrderCycle,
              "cycle:" + strings::join(normalize_cycle(cycle), "|"),
              "potential deadlock: lock-order cycle " + chain, first_site,
              second_site);
        } else if (!done.count(succ)) {
          dfs(succ);
        }
      }
    }
    on_path.erase(node);
    path.pop_back();
    done.insert(node);
  };

  for (const auto& [node, _] : ctx->edges) {
    if (!done.count(node)) dfs(node);
  }
}

}  // namespace

Report lint_program(const FunctionProto& main) {
  LintCtx ctx;
  std::vector<const FunctionProto*> protos = vm::collect_protos(main);
  for (const FunctionProto* proto : protos) scan_bindings(*proto, &ctx);

  // Grow acquire summaries to a fixpoint (monotone, so the round count
  // is bounded by the call-graph depth; the guard is belt-and-braces).
  bool grew = true;
  for (int round = 0; grew && round < 32; ++round) {
    grew = false;
    for (const FunctionProto* proto : protos) grew |= simulate(&ctx, *proto);
  }
  // Final pass with reporting on: summaries are complete, so every
  // cross-function edge and path-sensitive finding is visible.
  ctx.report = true;
  for (const FunctionProto* proto : protos) simulate(&ctx, *proto);
  find_cycles(&ctx);

  Report report;
  report.findings = std::move(ctx.findings);
  return report;
}

// =================================================================
// Dynamic pass: vector clocks + locksets.
// =================================================================

std::atomic<bool> g_engine_enabled{false};

bool engine_enabled_slow() noexcept { return engine_enabled(); }

namespace {

struct VectorClock {
  std::map<std::int64_t, std::uint64_t> c;

  std::uint64_t of(std::int64_t tid) const {
    auto it = c.find(tid);
    return it == c.end() ? 0 : it->second;
  }
  void join(const VectorClock& other) {
    for (const auto& [tid, clock] : other.c) {
      std::uint64_t& mine = c[tid];
      if (clock > mine) mine = clock;
    }
  }
};

struct ThreadDyn {
  VectorClock vc;
  std::set<std::uint64_t> locks;
};

struct AccessRec {
  bool valid = false;
  std::int64_t tid = 0;
  std::uint64_t epoch = 0;
  std::set<std::uint64_t> locks;
  std::string file;
  int line = 0;
  AccessKind kind = AccessKind::kRead;
};

struct VarDyn {
  AccessRec write;
  std::map<std::int64_t, AccessRec> reads;
};

bool locks_disjoint(const std::set<std::uint64_t>& a,
                    const std::set<std::uint64_t>& b) {
  for (std::uint64_t lock : a) {
    if (b.count(lock)) return false;
  }
  return true;
}

}  // namespace

struct Engine::State {
  mutable std::mutex mutex;
  std::unique_lock<std::mutex> fork_lock;

  std::map<std::int64_t, ThreadDyn> threads;
  // Per-sync-object "last release" clocks: mutex unlock, queue push,
  // cond signal/broadcast all publish here; the matching acquire joins.
  std::map<std::uint64_t, VectorClock> sync_clocks;
  std::map<std::string, VarDyn> vars;
  // Container identity -> the global name it was last loaded under
  // (labels index-access diagnostics).
  std::map<const void*, std::string> container_names;

  std::vector<Finding> findings;
  std::set<std::string> raced_vars;
  Report lint;
  Report forklint;
  std::uint64_t accesses = 0;
  std::uint64_t sync_events = 0;

  ThreadDyn& thread(std::int64_t tid) {
    auto [it, inserted] = threads.try_emplace(tid);
    if (inserted) it->second.vc.c[tid] = 1;
    return it->second;
  }

  // a release: publish the thread's history on the object, then step
  // the thread's own clock so later events are not confused with it.
  void release(std::int64_t tid, std::uint64_t obj) {
    ThreadDyn& t = thread(tid);
    sync_clocks[obj].join(t.vc);
    ++t.vc.c[tid];
    ++sync_events;
  }
  // an acquire: inherit everything published on the object.
  void acquire(std::int64_t tid, std::uint64_t obj) {
    ThreadDyn& t = thread(tid);
    auto it = sync_clocks.find(obj);
    if (it != sync_clocks.end()) t.vc.join(it->second);
    ++sync_events;
  }

  // The lockset/vector-clock check proper (caller holds `mutex`).
  void record_access(std::int64_t tid, const std::string& name,
                     AccessKind kind, const std::string& file, int line) {
    ++accesses;
    ThreadDyn& t = thread(tid);
    VarDyn& var = vars[name];

    auto races_with = [&](const AccessRec& prev) {
      if (!prev.valid || prev.tid == tid) return false;
      // Happens-before: the previous access is ordered before this one
      // iff this thread has seen the accessor's clock at access time.
      if (prev.epoch <= t.vc.of(prev.tid)) return false;
      return locks_disjoint(prev.locks, t.locks);
    };
    auto report_race = [&](const AccessRec& prev, AccessKind cur_kind) {
      if (!raced_vars.insert(name).second) return;
      metrics::add(metrics::Counter::kAnalysisRaces);
      Finding finding;
      finding.kind = FindingKind::kDataRace;
      finding.message = strings::format(
          "possible data race on '%s': %s in thread %lld and %s in "
          "thread %lld are unordered and share no lock",
          name.c_str(), cur_kind == AccessKind::kWrite ? "write" : "read",
          static_cast<long long>(tid),
          prev.kind == AccessKind::kWrite ? "write" : "read",
          static_cast<long long>(prev.tid));
      finding.file = file;
      finding.line = line;
      finding.file2 = prev.file;
      finding.line2 = prev.line;
      finding.object = name;
      finding.step = replay::Engine::instance().replay_step();
      findings.push_back(std::move(finding));
    };

    // Every access races against an unordered write; a write also
    // races against unordered reads.
    if (races_with(var.write)) report_race(var.write, kind);
    if (kind == AccessKind::kWrite) {
      for (const auto& [reader, rec] : var.reads) {
        (void)reader;
        if (races_with(rec)) {
          report_race(rec, kind);
          break;
        }
      }
      var.write = AccessRec{true,         tid,  t.vc.of(tid), t.locks,
                            file,         line, AccessKind::kWrite};
      var.reads.clear();
    } else {
      var.reads[tid] = AccessRec{true,         tid,  t.vc.of(tid), t.locks,
                                 file,         line, AccessKind::kRead};
    }
  }
};

Engine::Engine() : state_(std::make_unique<State>()) {
  // ForkLint audit contract: the engine's leaf mutex is pinned by
  // Vm::internal_fork_prepare between the GIL and the replay engine.
  forkaudit::Registry::instance().track(
      forkaudit::Spec{.name = "analysis.engine",
                      .subsystem = "analysis",
                      .has_prepare = true,
                      .has_parent = true,
                      .has_child = true,
                      .pinned_before = {"replay.engine"}});
}

Engine& Engine::instance() {
  static Engine* engine = new Engine();
  return *engine;
}

void Engine::init_from_env() {
  static bool done = false;
  if (done) return;
  done = true;
  const char* env = std::getenv("DIONEA_ANALYZE");
  if (env != nullptr && env[0] != '\0' && std::string(env) != "0") {
    instance().enable();
    DLOG_INFO("analysis") << "dynamic race detection enabled (DIONEA_ANALYZE)";
  }
}

void Engine::enable() {
  enabled_.store(true, std::memory_order_relaxed);
  g_engine_enabled.store(true, std::memory_order_relaxed);
}

void Engine::disable() {
  enabled_.store(false, std::memory_order_relaxed);
  g_engine_enabled.store(false, std::memory_order_relaxed);
}

void Engine::on_access(std::int64_t tid, const std::string& name,
                       AccessKind kind, const vm::Value& value,
                       const std::string& file, int line) {
  if (!engine_enabled()) return;
  // Bindings that hold functions or sync objects are program
  // structure (looked up on every call), not shared data.
  switch (value.kind()) {
    case vm::ValueKind::kNative:
    case vm::ValueKind::kClosure:
    case vm::ValueKind::kMutex:
    case vm::ValueKind::kQueue:
    case vm::ValueKind::kCond:
    case vm::ValueKind::kThread:
      return;
    default:
      break;
  }
  metrics::add(metrics::Counter::kAnalysisAccesses);
  std::scoped_lock lock(state_->mutex);
  // Learn the name a container travels under, for on_index_access.
  if (value.is_list()) {
    state_->container_names[value.as_list().get()] = name;
  } else if (value.is_map()) {
    state_->container_names[value.as_map().get()] = name;
  }
  state_->record_access(tid, name, kind, file, line);
}

void Engine::on_index_access(std::int64_t tid, const vm::Value& container,
                             AccessKind kind, const std::string& file,
                             int line) {
  if (!engine_enabled()) return;
  const void* key = nullptr;
  if (container.is_list()) {
    key = container.as_list().get();
  } else if (container.is_map()) {
    key = container.as_map().get();
  } else {
    return;  // strings are immutable values; nothing shared to race on
  }
  metrics::add(metrics::Counter::kAnalysisAccesses);
  std::scoped_lock lock(state_->mutex);
  auto it = state_->container_names.find(key);
  std::string name =
      it != state_->container_names.end()
          ? it->second
          : strings::format("<%s@%p>", container.is_list() ? "list" : "map",
                            key);
  state_->record_access(tid, name, kind, file, line);
}

void Engine::on_mutex_lock(std::int64_t tid, std::uint64_t obj) {
  if (!engine_enabled()) return;
  metrics::add(metrics::Counter::kAnalysisSyncEvents);
  std::scoped_lock lock(state_->mutex);
  state_->acquire(tid, obj);
  state_->thread(tid).locks.insert(obj);
}

void Engine::on_mutex_unlock(std::int64_t tid, std::uint64_t obj) {
  if (!engine_enabled()) return;
  metrics::add(metrics::Counter::kAnalysisSyncEvents);
  std::scoped_lock lock(state_->mutex);
  state_->release(tid, obj);
  state_->thread(tid).locks.erase(obj);
}

void Engine::on_queue_push(std::int64_t tid, std::uint64_t obj) {
  if (!engine_enabled()) return;
  metrics::add(metrics::Counter::kAnalysisSyncEvents);
  std::scoped_lock lock(state_->mutex);
  state_->release(tid, obj);
}

void Engine::on_queue_pop(std::int64_t tid, std::uint64_t obj) {
  if (!engine_enabled()) return;
  metrics::add(metrics::Counter::kAnalysisSyncEvents);
  std::scoped_lock lock(state_->mutex);
  state_->acquire(tid, obj);
}

void Engine::on_cond_signal(std::int64_t tid, std::uint64_t obj) {
  if (!engine_enabled()) return;
  metrics::add(metrics::Counter::kAnalysisSyncEvents);
  std::scoped_lock lock(state_->mutex);
  state_->release(tid, obj);
}

void Engine::on_cond_wake(std::int64_t tid, std::uint64_t obj) {
  if (!engine_enabled()) return;
  metrics::add(metrics::Counter::kAnalysisSyncEvents);
  std::scoped_lock lock(state_->mutex);
  state_->acquire(tid, obj);
}

void Engine::on_thread_start(std::int64_t parent_tid, std::int64_t child_tid) {
  if (!engine_enabled()) return;
  metrics::add(metrics::Counter::kAnalysisSyncEvents);
  std::scoped_lock lock(state_->mutex);
  ThreadDyn& parent = state_->thread(parent_tid);
  ThreadDyn& child = state_->thread(child_tid);
  // start edge: the child begins with everything the parent did so far.
  child.vc.join(parent.vc);
  child.vc.c[child_tid] = 1;
  ++parent.vc.c[parent_tid];
  ++state_->sync_events;
}

void Engine::on_thread_join(std::int64_t joiner_tid, std::int64_t target_tid) {
  if (!engine_enabled()) return;
  metrics::add(metrics::Counter::kAnalysisSyncEvents);
  std::scoped_lock lock(state_->mutex);
  // join edge: everything the target did is ordered before the joiner's
  // continuation.
  ThreadDyn& target = state_->thread(target_tid);
  state_->thread(joiner_tid).vc.join(target.vc);
  ++state_->sync_events;
}

void Engine::add_finding(Finding finding) {
  if (!engine_enabled()) return;
  std::scoped_lock lock(state_->mutex);
  state_->findings.push_back(std::move(finding));
}

Report Engine::report() const {
  std::scoped_lock lock(state_->mutex);
  Report report;
  report.findings = state_->findings;
  // N racing threads hitting the same hazard (e.g. all pushing the
  // same closed queue) each record a finding; collapse them here so
  // analysis-report and the console see one diagnostic per hazard.
  report.dedupe();
  return report;
}

void Engine::set_lint_report(Report report) {
  for (size_t i = 0; i < report.findings.size(); ++i) {
    metrics::add(metrics::Counter::kAnalysisLintFindings);
  }
  std::scoped_lock lock(state_->mutex);
  state_->lint = std::move(report);
}

Report Engine::lint_report() const {
  std::scoped_lock lock(state_->mutex);
  return state_->lint;
}

void Engine::set_forklint_report(Report report) {
  report.dedupe();
  for (size_t i = 0; i < report.findings.size(); ++i) {
    metrics::add(metrics::Counter::kForklintFindings);
  }
  std::scoped_lock lock(state_->mutex);
  state_->forklint = std::move(report);
}

void Engine::add_forklint_finding(Finding finding) {
  metrics::add(metrics::Counter::kForklintFindings);
  std::scoped_lock lock(state_->mutex);
  state_->forklint.findings.push_back(std::move(finding));
  state_->forklint.dedupe();
}

Report Engine::forklint_report() const {
  std::scoped_lock lock(state_->mutex);
  return state_->forklint;
}

std::uint64_t Engine::accesses() const {
  std::scoped_lock lock(state_->mutex);
  return state_->accesses;
}

std::uint64_t Engine::sync_events() const {
  std::scoped_lock lock(state_->mutex);
  return state_->sync_events;
}

void Engine::reset() {
  std::scoped_lock lock(state_->mutex);
  state_->threads.clear();
  state_->sync_clocks.clear();
  state_->vars.clear();
  state_->container_names.clear();
  state_->findings.clear();
  state_->raced_vars.clear();
  state_->lint = Report{};
  state_->forklint = Report{};
  state_->accesses = 0;
  state_->sync_events = 0;
}

void Engine::prepare_fork() {
  state_->fork_lock = std::unique_lock(state_->mutex);
  forkaudit::Registry::instance().note_prepare("analysis.engine");
}

void Engine::parent_atfork() {
  if (state_->fork_lock.owns_lock()) state_->fork_lock.unlock();
  state_->fork_lock = {};
  forkaudit::Registry::instance().note_parent("analysis.engine");
}

void Engine::child_atfork() {
  // Fork handler C: the parent's per-thread clocks, locksets and
  // variable history describe threads that no longer exist in this
  // process; abandon them wholesale (the mutex may be pinned by the
  // prepare handler, so the old State block leaks — bounded, one per
  // fork). A fresh State *is* the fork happens-before edge: in the
  // child every pre-fork access is ordered before every post-fork one,
  // because only the forking thread survived.
  state_->fork_lock.release();
  (void)state_.release();  // intentional leak, see replay::Engine
  state_ = std::make_unique<State>();
  forkaudit::Registry::instance().note_child("analysis.engine");
}

}  // namespace dionea::analysis
