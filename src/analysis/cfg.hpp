// ForkLint pillar 0: control-flow graphs and a whole-program call
// graph over compiled MiniLang bytecode.
//
// The builder is deliberately paranoid: it is fuzzed over the
// verifier's mutation sweep, so it must accept arbitrary byte soup
// without crashing. Every read is bounds-checked, an invalid opcode or
// truncated operand simply terminates the current block, and jump
// targets outside the chunk are dropped instead of followed. The
// result is deterministic — building the same chunk twice yields the
// same block structure — which is what the fuzz test's
// verdict-stability assertion checks.
//
// The call graph is a *reference* graph: proto A has an edge to proto
// B when A mentions B — it loads a global bound to B (the binding
// pattern `kClosure B; kSetGlobal name` scanned up front), or carries
// B as a closure constant. That over-approximates "may call", which
// is the right direction for reachability queries ("can `fork` run
// from this eval'd expression?"); the precise per-call-site resolution
// (held-lock sets at a kCall) lives in forklint.cpp's dataflow.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "vm/bytecode.hpp"

namespace dionea::analysis::cfg {

// Decoded view of one instruction. `ok == false` means the bytes at
// `offset` are not a complete, valid instruction (bad opcode byte or
// operand bytes running past the end of the chunk). Shared by the
// block builder and forklint's dataflow so hostile bytecode is
// rejected identically everywhere.
struct Insn {
  bool ok = false;
  vm::Op op = vm::Op::kHalt;
  std::size_t offset = 0;
  std::size_t next = 0;      // offset just past this instruction
  bool has_target = false;
  std::size_t target = 0;    // jump/loop/iter-exit destination
  bool falls_through = true; // kJump/kReturn/kHalt do not
};

Insn decode(const vm::Chunk& chunk, std::size_t offset);

// One basic block: the half-open byte range [begin, end) in the chunk.
struct Block {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::vector<std::size_t> succs;  // indices into Cfg::blocks
  // Ends in kReturn/kHalt, or in malformed bytecode (invalid opcode,
  // truncated operand, out-of-range target) the walker refuses to
  // cross.
  bool terminates = false;
};

struct Cfg {
  const vm::FunctionProto* proto = nullptr;
  std::vector<Block> blocks;  // blocks[0], when present, starts at offset 0
  // Leader offset -> index in `blocks` (sorted by offset).
  std::map<std::size_t, std::size_t> block_at;

  bool empty() const noexcept { return blocks.empty(); }
};

// Build the CFG for one proto. Total, never throws, never crashes on
// hostile bytecode.
Cfg build(const vm::FunctionProto& proto);

// Whole-program view: every proto reachable from <main>, each proto's
// CFG, the global function bindings, and the reference graph.
struct Program {
  std::vector<const vm::FunctionProto*> protos;  // pre-order, main first
  std::map<const vm::FunctionProto*, Cfg> cfgs;
  // Global name -> bound proto (pattern `kClosure p; kSetGlobal name`;
  // last binding wins, matching runtime rebinding).
  std::map<std::string, const vm::FunctionProto*> global_funcs;
  // Reference edges: proto -> protos it mentions (global loads of
  // function bindings + closure constants).
  std::map<const vm::FunctionProto*, std::set<const vm::FunctionProto*>> refs;
  // Builtin names each proto mentions via kGetGlobal ("fork", "join",
  // "lock", ...) — i.e. names with no global function binding.
  std::map<const vm::FunctionProto*, std::set<std::string>> named_refs;
};

Program build_program(const vm::FunctionProto& main);

// Protos reachable from `root` over reference edges (root included).
std::set<const vm::FunctionProto*> reachable(const Program& program,
                                             const vm::FunctionProto* root);

// True when some proto reachable from `root` mentions global `name`
// (builtin or not). The kForkInTraceHook query: can a debugger-eval'd
// expression reach `fork`?
bool references_name(const Program& program, const vm::FunctionProto* root,
                     const std::string& name);

}  // namespace dionea::analysis::cfg
