#include "analysis/forkaudit.hpp"

#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <set>

#include "support/strings.hpp"

namespace dionea::analysis::forkaudit {

namespace {
constexpr std::size_t kMaxEntries = 64;
}

struct Registry::Impl {
  // Append-only slab: entries are added under `mutex` but never moved
  // or removed (untrack marks them dead), so note_* can scan the slab
  // with nothing but atomics.
  struct Entry {
    // Fixed-size name so a half-written entry can never tear: `live`
    // is released only after the name bytes are in place.
    char name[64] = {};
    std::atomic<bool> live{false};
    std::atomic<std::uint64_t> prepare{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::uint64_t> child{0};
    Spec spec;  // guarded by Registry mutex (audit/track/snapshot only)
  };

  std::mutex mutex;
  Entry entries[kMaxEntries];
  std::atomic<std::size_t> count{0};

  Entry* find_locked(const std::string& name) {
    std::size_t n = count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (entries[i].live.load(std::memory_order_acquire) &&
          name == entries[i].name) {
        return &entries[i];
      }
    }
    return nullptr;
  }

  // Lock-free lookup for note_*.
  Entry* find_atomic(const char* name) noexcept {
    std::size_t n = count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (entries[i].live.load(std::memory_order_acquire) &&
          std::strcmp(entries[i].name, name) == 0) {
        return &entries[i];
      }
    }
    return nullptr;
  }
};

Registry::Registry() : impl_(new Impl) {
  // The registry obeys the contract it audits: pin its own mutex
  // across fork so a child forked mid-track() does not inherit a
  // locked registry. (pthread_atfork prepare handlers run inside
  // fork() itself, after the VM's manual prepare chain.)
  static Impl* atfork_impl = impl_;
  pthread_atfork([] { atfork_impl->mutex.lock(); },
                 [] { atfork_impl->mutex.unlock(); },
                 [] { atfork_impl->mutex.unlock(); });
}

Registry& Registry::instance() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

void Registry::track(Spec spec) {
  std::scoped_lock lock(impl_->mutex);
  if (Impl::Entry* entry = impl_->find_locked(spec.name)) {
    entry->spec = std::move(spec);
    return;
  }
  std::size_t n = impl_->count.load(std::memory_order_relaxed);
  if (n >= kMaxEntries ||
      spec.name.size() + 1 > sizeof(impl_->entries[0].name)) {
    return;  // slab full / name too long: drop (audit-only bookkeeping)
  }
  Impl::Entry& entry = impl_->entries[n];
  std::strncpy(entry.name, spec.name.c_str(), sizeof(entry.name) - 1);
  entry.spec = std::move(spec);
  entry.live.store(true, std::memory_order_release);
  impl_->count.store(n + 1, std::memory_order_release);
}

void Registry::untrack(const std::string& name) {
  std::scoped_lock lock(impl_->mutex);
  if (Impl::Entry* entry = impl_->find_locked(name)) {
    entry->live.store(false, std::memory_order_release);
  }
}

void Registry::note_prepare(const char* name) noexcept {
  if (Impl::Entry* entry = impl_->find_atomic(name)) {
    entry->prepare.fetch_add(1, std::memory_order_relaxed);
  }
}

void Registry::note_parent(const char* name) noexcept {
  if (Impl::Entry* entry = impl_->find_atomic(name)) {
    entry->parent.fetch_add(1, std::memory_order_relaxed);
  }
}

void Registry::note_child(const char* name) noexcept {
  if (Impl::Entry* entry = impl_->find_atomic(name)) {
    entry->child.fetch_add(1, std::memory_order_relaxed);
  }
}

Report Registry::audit(bool strict) const {
  std::scoped_lock lock(impl_->mutex);
  Report report;

  std::map<std::string, std::vector<std::string>> order;
  std::size_t n = impl_->count.load(std::memory_order_acquire);
  std::set<std::string> known;
  for (std::size_t i = 0; i < n; ++i) {
    const Impl::Entry& entry = impl_->entries[i];
    if (!entry.live.load(std::memory_order_acquire)) continue;
    known.insert(entry.spec.name);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Impl::Entry& entry = impl_->entries[i];
    if (!entry.live.load(std::memory_order_acquire)) continue;
    const Spec& spec = entry.spec;

    // Coverage: every handler the primitive needs must be wired up.
    std::string missing;
    auto need = [&](bool needs, bool has, const char* which) {
      if (needs && !has) {
        if (!missing.empty()) missing += ", ";
        missing += which;
      }
    };
    need(spec.needs_prepare, spec.has_prepare, "prepare (A)");
    need(spec.needs_parent, spec.has_parent, "parent (B)");
    need(spec.needs_child, spec.has_child, "child (C)");
    if (!missing.empty()) {
      Finding finding;
      finding.kind = FindingKind::kAtforkUncovered;
      finding.object = spec.name;
      finding.file = spec.subsystem;
      finding.message = strings::format(
          "fork-pinned primitive '%s' (%s) has no %s handler; a fork "
          "while it is in use leaves the child with an unrepaired "
          "primitive (box64 case-004 shape)",
          spec.name.c_str(), spec.subsystem.c_str(), missing.c_str());
      report.findings.push_back(std::move(finding));
    }

    // Strict: counters must balance (the handlers actually fired).
    if (strict && spec.has_prepare && spec.has_parent && spec.has_child) {
      std::uint64_t prepare = entry.prepare.load(std::memory_order_relaxed);
      std::uint64_t parent = entry.parent.load(std::memory_order_relaxed);
      std::uint64_t child = entry.child.load(std::memory_order_relaxed);
      if (prepare != parent + child) {
        Finding finding;
        finding.kind = FindingKind::kAtforkUncovered;
        finding.object = spec.name;
        finding.file = spec.subsystem;
        finding.message = strings::format(
            "fork handlers for '%s' ran asymmetrically: %llu prepare vs "
            "%llu parent + %llu child — a registered handler silently "
            "stopped firing",
            spec.name.c_str(), static_cast<unsigned long long>(prepare),
            static_cast<unsigned long long>(parent),
            static_cast<unsigned long long>(child));
        report.findings.push_back(std::move(finding));
      }
    }

    // Order edges (dangling names ignored — the target may belong to
    // a subsystem not linked into this binary).
    for (const std::string& after : spec.pinned_before) {
      if (known.count(after)) order[spec.name].push_back(after);
    }
  }

  // Cycle detection over the declared prepare order — the same shape
  // as MiniSan's lock-order graph, applied to the handler chain.
  std::set<std::string> done;
  std::set<std::string> on_path;
  std::vector<std::string> path;
  std::set<std::vector<std::string>> seen_cycles;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    path.push_back(node);
    on_path.insert(node);
    auto it = order.find(node);
    if (it != order.end()) {
      for (const std::string& succ : it->second) {
        if (on_path.count(succ)) {
          auto start = std::find(path.begin(), path.end(), succ);
          std::vector<std::string> cycle(start, path.end());
          // Canonical rotation for dedup.
          std::size_t best = 0;
          for (std::size_t i = 1; i < cycle.size(); ++i) {
            if (cycle[i] < cycle[best]) best = i;
          }
          std::rotate(cycle.begin(), cycle.begin() + static_cast<long>(best),
                      cycle.end());
          if (!seen_cycles.insert(cycle).second) continue;
          std::string chain;
          for (const std::string& name : cycle) {
            chain += "'" + name + "' -> ";
          }
          chain += "'" + cycle.front() + "'";
          Finding finding;
          finding.kind = FindingKind::kAtforkOrderInversion;
          finding.object = cycle.front();
          finding.message = strings::format(
              "prepare-handler acquisition order has a cycle: %s; two "
              "concurrent forks (or a fork racing subsystem init) can "
              "deadlock in the prepare chain",
              chain.c_str());
          report.findings.push_back(std::move(finding));
          continue;
        }
        if (!done.count(succ)) dfs(succ);
      }
    }
    on_path.erase(node);
    path.pop_back();
    done.insert(node);
  };
  for (const auto& [node, edges] : order) {
    (void)edges;
    if (!done.count(node)) dfs(node);
  }

  report.dedupe();
  return report;
}

std::vector<Spec> Registry::snapshot() const {
  std::scoped_lock lock(impl_->mutex);
  std::vector<Spec> out;
  std::size_t n = impl_->count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    if (impl_->entries[i].live.load(std::memory_order_acquire)) {
      out.push_back(impl_->entries[i].spec);
    }
  }
  return out;
}

Counts Registry::counts(const std::string& name) const {
  std::scoped_lock lock(impl_->mutex);
  Counts counts;
  if (Impl::Entry* entry = impl_->find_locked(name)) {
    counts.prepare = entry->prepare.load(std::memory_order_relaxed);
    counts.parent = entry->parent.load(std::memory_order_relaxed);
    counts.child = entry->child.load(std::memory_order_relaxed);
  }
  return counts;
}

Report audit(bool strict) { return Registry::instance().audit(strict); }

}  // namespace dionea::analysis::forkaudit
