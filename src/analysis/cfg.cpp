#include "analysis/cfg.hpp"

#include <algorithm>

#include "vm/value.hpp"

namespace dionea::analysis::cfg {

using vm::Chunk;
using vm::FunctionProto;
using vm::Op;

Insn decode(const Chunk& chunk, std::size_t offset) {
  Insn insn;
  insn.offset = offset;
  if (offset >= chunk.size()) return insn;
  std::uint8_t byte = chunk.read_u8(offset);
  if (!vm::op_is_valid(byte)) return insn;
  Op op = static_cast<Op>(byte);
  std::size_t operand_bytes =
      static_cast<std::size_t>(vm::op_operand_bytes(op));
  if (offset + 1 + operand_bytes > chunk.size()) return insn;
  insn.ok = true;
  insn.op = op;
  insn.next = offset + 1 + operand_bytes;
  switch (op) {
    case Op::kJump: {
      std::size_t operand = chunk.read_u16(offset + 1);
      insn.has_target = true;
      insn.target = insn.next + operand;
      insn.falls_through = false;
      break;
    }
    case Op::kJumpIfFalse:
    case Op::kJumpIfFalsePeek:
    case Op::kJumpIfTruePeek: {
      std::size_t operand = chunk.read_u16(offset + 1);
      insn.has_target = true;
      insn.target = insn.next + operand;
      break;
    }
    case Op::kLoop: {
      std::size_t operand = chunk.read_u16(offset + 1);
      insn.has_target = true;
      // Backward: refuse to wrap below 0 on hostile operands.
      insn.target = operand <= insn.next ? insn.next - operand : chunk.size();
      insn.falls_through = false;
      break;
    }
    case Op::kIterNext: {
      std::size_t exit = chunk.read_u16(offset + 3);
      insn.has_target = true;
      insn.target = insn.next + exit;
      break;
    }
    case Op::kReturn:
    case Op::kHalt:
      insn.falls_through = false;
      break;
    default:
      break;
  }
  // A target past the end of the chunk is malformed; drop the edge
  // rather than chase it.
  if (insn.has_target && insn.target > chunk.size()) insn.has_target = false;
  return insn;
}

Cfg build(const FunctionProto& proto) {
  Cfg cfg;
  cfg.proto = &proto;
  const Chunk& chunk = proto.chunk;
  if (chunk.size() == 0) return cfg;

  // Pass 1: leaders. Offset 0, every branch target, and every
  // fall-through successor of a control transfer. Hostile bytecode may
  // put a leader mid-instruction relative to another decode path; that
  // is fine — blocks are ranges between leaders on the linear decode
  // from each leader, and decode() re-validates at every step.
  std::set<std::size_t> leaders;
  leaders.insert(0);
  for (std::size_t offset = 0; offset < chunk.size();) {
    Insn insn = decode(chunk, offset);
    if (!insn.ok) break;  // trailing bytes are unreachable garbage
    if (insn.has_target) {
      leaders.insert(insn.target);
      if (insn.next < chunk.size()) leaders.insert(insn.next);
    } else if (!insn.falls_through && insn.next < chunk.size()) {
      leaders.insert(insn.next);
    }
    offset = insn.next;
  }
  // Targets exactly at chunk.size() act as "end" — not a real block.
  leaders.erase(chunk.size());

  // Pass 2: materialize blocks in offset order.
  std::vector<std::size_t> ordered(leaders.begin(), leaders.end());
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    Block block;
    block.begin = ordered[i];
    block.end = i + 1 < ordered.size() ? ordered[i + 1] : chunk.size();
    cfg.block_at[block.begin] = cfg.blocks.size();
    cfg.blocks.push_back(block);
  }

  // Pass 3: walk each block to its last instruction and wire succs.
  auto block_index_at = [&](std::size_t offset) -> std::size_t {
    // The block whose range contains `offset`; hostile targets can
    // land mid-block, in which case we conservatively edge to the
    // containing block.
    auto it = cfg.block_at.upper_bound(offset);
    if (it == cfg.block_at.begin()) return cfg.blocks.size();
    return std::prev(it)->second;
  };
  for (Block& block : cfg.blocks) {
    std::size_t offset = block.begin;
    Insn last;
    bool malformed = false;
    while (offset < block.end) {
      last = decode(chunk, offset);
      if (!last.ok) {
        malformed = true;
        break;
      }
      offset = last.next;
      if (!last.falls_through || last.has_target) break;
    }
    if (malformed || !last.ok) {
      block.terminates = true;
      continue;
    }
    auto add_succ = [&](std::size_t target_offset) {
      std::size_t idx = block_index_at(target_offset);
      if (idx >= cfg.blocks.size()) return;
      if (std::find(block.succs.begin(), block.succs.end(), idx) ==
          block.succs.end()) {
        block.succs.push_back(idx);
      }
    };
    if (last.has_target && last.target < chunk.size()) add_succ(last.target);
    if (last.falls_through && last.next < chunk.size()) add_succ(last.next);
    if (block.succs.empty()) block.terminates = true;
  }
  return cfg;
}

Program build_program(const FunctionProto& main) {
  Program program;
  program.protos = vm::collect_protos(main);
  for (const FunctionProto* proto : program.protos) {
    program.cfgs.emplace(proto, build(*proto));
  }

  // Binding pre-pass: `kClosure p; kSetGlobal name` binds name -> p.
  // Done before edges so a use can precede its definition in proto
  // collection order.
  for (const FunctionProto* proto : program.protos) {
    const Chunk& chunk = proto->chunk;
    for (std::size_t offset = 0; offset < chunk.size();) {
      Insn insn = decode(chunk, offset);
      if (!insn.ok) break;
      if (insn.op == Op::kClosure && insn.next + 2 < chunk.size() &&
          chunk.read_u8(insn.next) == static_cast<std::uint8_t>(Op::kSetGlobal)) {
        std::uint16_t closure_idx = chunk.read_u16(offset + 1);
        std::uint16_t name_idx = chunk.read_u16(insn.next + 1);
        if (closure_idx < chunk.constants().size() &&
            name_idx < chunk.constants().size()) {
          const vm::Value& closure = chunk.constants()[closure_idx];
          const vm::Value& name = chunk.constants()[name_idx];
          if (closure.is_closure() && closure.as_closure()->proto &&
              name.is_str()) {
            program.global_funcs[name.as_str()] =
                closure.as_closure()->proto.get();
          }
        }
      }
      offset = insn.next;
    }
  }

  // Reference edges.
  for (const FunctionProto* proto : program.protos) {
    const Chunk& chunk = proto->chunk;
    auto& refs = program.refs[proto];
    auto& named = program.named_refs[proto];
    for (const vm::Value& constant : chunk.constants()) {
      if (constant.is_closure() && constant.as_closure()->proto) {
        refs.insert(constant.as_closure()->proto.get());
      }
    }
    for (std::size_t offset = 0; offset < chunk.size();) {
      Insn insn = decode(chunk, offset);
      if (!insn.ok) break;
      if (insn.op == Op::kGetGlobal) {
        std::uint16_t name_idx = chunk.read_u16(offset + 1);
        if (name_idx < chunk.constants().size()) {
          const vm::Value& name = chunk.constants()[name_idx];
          if (name.is_str()) {
            auto it = program.global_funcs.find(name.as_str());
            if (it != program.global_funcs.end()) {
              refs.insert(it->second);
            } else {
              named.insert(name.as_str());
            }
          }
        }
      }
      offset = insn.next;
    }
  }
  return program;
}

std::set<const FunctionProto*> reachable(const Program& program,
                                         const FunctionProto* root) {
  std::set<const FunctionProto*> seen;
  std::vector<const FunctionProto*> stack{root};
  while (!stack.empty()) {
    const FunctionProto* proto = stack.back();
    stack.pop_back();
    if (!seen.insert(proto).second) continue;
    auto it = program.refs.find(proto);
    if (it == program.refs.end()) continue;
    for (const FunctionProto* callee : it->second) stack.push_back(callee);
  }
  return seen;
}

bool references_name(const Program& program, const FunctionProto* root,
                     const std::string& name) {
  for (const FunctionProto* proto : reachable(program, root)) {
    auto it = program.named_refs.find(proto);
    if (it != program.named_refs.end() && it->second.count(name)) return true;
    auto fit = program.global_funcs.find(name);
    if (fit != program.global_funcs.end()) {
      auto rit = program.refs.find(proto);
      if (rit != program.refs.end() && rit->second.count(fit->second)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace dionea::analysis::cfg
