// MiniSan: two-mode concurrency analyzer for MiniLang programs.
//
// Static pass (lint_program): a dataflow lint over compiled bytecode,
// run post-compile and pre-exec (DIONEA_LINT=1 or the console `lint`
// verb). It abstractly interprets every FunctionProto reachable from
// <main>, tracking which sync objects each path holds, and builds a
// lock-order graph across functions. It flags
//   - potential deadlock cycles (lock-order inversions),
//   - lock leaks (an acquire without a release on some path),
//   - double-acquire of the non-reentrant VmMutex,
//   - queue misuse (push/pop on a queue already close()d).
// Diagnostics carry file:line from the chunk's line table. try_lock is
// deliberately NOT treated as an acquire: its failure path is how
// programs legitimately avoid a lock-order inversion, and counting it
// would flood the report with false positives.
//
// Dynamic pass (Engine): an Eraser/FastTrack-style vector-clock +
// lockset detector, simplified for GIL semantics. The GIL serializes
// bytecode, so two accesses never overlap *physically* — but the GIL
// hand-off order is scheduler luck, so MiniSan deliberately draws NO
// happens-before edge from a GIL hand-off. Only real synchronization
// creates edges: thread start/join, mutex unlock->lock, queue
// push->pop, condvar signal/broadcast->wake, and fork (the child
// starts with exactly the parent's history). Two accesses to the same
// global from different threads that are unordered by those edges and
// share no lock are a race under *some* legal schedule, even if this
// run happened to get lucky — which is exactly what the detector
// reports. Run it live (DIONEA_ANALYZE=1) or offline by replaying a
// DRLG log (DIONEA_REPLAY=<dir> DIONEA_ANALYZE=1): production records
// un-instrumented, analysis replays the same schedule with the
// detector on (Ronsse-style out-of-place analysis).
//
// Lock ordering: the engine's internal mutex is a leaf, like the
// replay engine's — it is taken under the GIL, under sync-object
// mutexes and under sched_mutex_, and takes nothing itself. Fork
// handler C's analog is child_atfork: the child abandons the parent's
// per-thread state wholesale (one bounded leak per fork).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/value.hpp"

namespace dionea::vm {
struct FunctionProto;
}

namespace dionea::analysis {

enum class FindingKind : int {
  kLockOrderCycle,  // static: m1 -> m2 on one path, m2 -> m1 on another
  kLockLeak,        // static: acquired but not released on some path
  kDoubleAcquire,   // static: non-reentrant mutex acquired while held
  kClosedQueue,     // static or dynamic: push/pop on a closed queue
  kDataRace,        // dynamic: unordered unprotected accesses
  // ---- ForkLint (fork-safety) kinds ----
  kForkUnderLock,        // forklint: fork reachable while a lock is held
  kForkInTraceHook,      // forklint: fork reachable from debugger-eval code
  kForkChildResource,    // forklint: child uses a parent-only resource
  kAtforkUncovered,      // forkaudit: primitive missing A/B/C coverage
  kAtforkOrderInversion, // forkaudit: prepare acquisition order cycle
  kSignalUnsafeCall,     // sigsafe gate: handler reaches non-safe libc call
};

const char* finding_kind_name(FindingKind kind) noexcept;

// One diagnostic. `file:line` is the primary site; file2/line2 name
// the other half of a pair (the earlier acquire, the conflicting
// access) when there is one.
struct Finding {
  FindingKind kind = FindingKind::kDataRace;
  std::string message;
  std::string file;
  int line = 0;
  std::string file2;
  int line2 = 0;
  // The program object the finding is about (variable, mutex, queue,
  // subsystem name). Used as the dedupe key component so N racing
  // threads reporting the same hazard collapse to one finding; empty
  // means "fall back to the message text".
  std::string object;
  // DRLG step at detection time (0 when no record/replay is active).
  // Under replay this is the time-travel anchor: `rbreak <step>` +
  // rcontinue resumes the schedule just before the divergent access.
  std::uint64_t step = 0;

  std::string to_string() const;
};

struct Report {
  std::vector<Finding> findings;

  bool empty() const noexcept { return findings.empty(); }
  std::string to_string() const;
  // Collapse duplicates by (kind, file, line, object-or-message),
  // keeping first occurrence order. N threads tripping the same
  // hazard yield one diagnostic.
  void dedupe();
};

// ---- static pass ----

// Lint a compiled program: <main> plus every FunctionProto reachable
// through its constant tables. Pure function of the bytecode; never
// executes anything.
Report lint_program(const vm::FunctionProto& main);

// ---- dynamic pass ----

enum class AccessKind : int { kRead, kWrite };

class Engine {
 public:
  // Process-wide instance (never destroyed, like replay::Engine).
  static Engine& instance();

  // Reads DIONEA_ANALYZE once per process; idempotent.
  static void init_from_env();

  void enable();
  void disable();

  // ---- interpreter hooks (no-ops unless enabled) ----
  // Global load/store from the interpreter loop. `value` is only used
  // to filter noise: bindings that hold functions or sync objects are
  // program structure, not shared data, and are skipped.
  void on_access(std::int64_t tid, const std::string& name, AccessKind kind,
                 const vm::Value& value, const std::string& file, int line);

  // Element load/store (kIndexGet/kIndexSet) on a list or map. In
  // MiniLang an assignment inside a function creates a *local*, so the
  // only way a spawned thread mutates shared state is through a
  // container — this hook is where most real races surface. Keyed by
  // container identity; the name under which the container was last
  // loaded from a global (seen by on_access) labels the diagnostic.
  void on_index_access(std::int64_t tid, const vm::Value& container,
                       AccessKind kind, const std::string& file, int line);

  // Sync-object hooks (obj = SyncObject::replay_id()).
  void on_mutex_lock(std::int64_t tid, std::uint64_t obj);
  void on_mutex_unlock(std::int64_t tid, std::uint64_t obj);
  void on_queue_push(std::int64_t tid, std::uint64_t obj);
  void on_queue_pop(std::int64_t tid, std::uint64_t obj);
  void on_cond_signal(std::int64_t tid, std::uint64_t obj);
  void on_cond_wake(std::int64_t tid, std::uint64_t obj);
  void on_thread_start(std::int64_t parent_tid, std::int64_t child_tid);
  void on_thread_join(std::int64_t joiner_tid, std::int64_t target_tid);

  // Dynamic findings recorded outside the detector proper (e.g. the
  // push builtin observing a closed queue).
  void add_finding(Finding finding);

  // ---- results ----
  // Dynamic findings so far (copy; safe from any thread).
  Report report() const;
  // Stash/read the most recent static lint report so `analysis-report`
  // can return both halves.
  void set_lint_report(Report report);
  Report lint_report() const;
  // Stash/read the most recent ForkLint report (bytecode fork-safety
  // pass + native atfork audit), the third half of analysis-report.
  // Unlike add_finding these work regardless of the enabled flag:
  // ForkLint is a static/structural pass, not a runtime detector.
  void set_forklint_report(Report report);
  void add_forklint_finding(Finding finding);
  Report forklint_report() const;

  // Total accesses / sync events observed (for analysis-report).
  std::uint64_t accesses() const;
  std::uint64_t sync_events() const;

  // Drop all dynamic state (per-thread clocks, locksets, variable
  // history, findings). The enabled flag is preserved.
  void reset();

  // ---- fork pinning (driven by Vm::internal_fork_*) ----
  void prepare_fork();
  void parent_atfork();
  // Fork handler C: the child keeps only its own history — per-thread
  // state of vanished parent threads is abandoned (bounded leak, same
  // rationale as Gil/replay::Engine). Safe to call more than once.
  void child_atfork();

 private:
  Engine();

  struct State;

  std::atomic<bool> enabled_{false};
  std::unique_ptr<State> state_;
};

// Cheap probe for the interpreter hot path: one relaxed load.
bool engine_enabled_slow() noexcept;

extern std::atomic<bool> g_engine_enabled;

inline bool engine_enabled() noexcept {
  return g_engine_enabled.load(std::memory_order_relaxed);
}

}  // namespace dionea::analysis
