#include "client/multi_client.hpp"

#include <algorithm>

#include "debugger/protocol.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

namespace dionea::client {

namespace proto = dbg::proto;

namespace {
DebugEvent make_gone_event(int pid, bool clean_exit, int exit_code,
                           int term_signal) {
  DebugEvent event;
  event.kind = clean_exit ? proto::Event::kProcessExited
                          : proto::Event::kProcessCrashed;
  event.name = proto::event_name(event.kind);
  event.payload = proto::make_event(event.kind);
  event.payload.set("pid", pid);
  if (exit_code >= 0) event.payload.set("exit_code", exit_code);
  if (term_signal != 0) event.payload.set("signal", term_signal);
  return event;
}
}  // namespace

Result<int> MultiClient::refresh(int timeout_millis) {
  DIONEA_ASSIGN_OR_RETURN(std::vector<ipc::PortRecord> records,
                          port_file_.read_new(records_seen_));
  int attached = 0;
  for (const ipc::PortRecord& record : records) {
    ++records_seen_;
    if (sessions_.count(record.pid) > 0) {
      // Re-published port (double fork re-binds): replace the session.
      sessions_.erase(record.pid);
    }
    auto session = Session::attach(record.port, timeout_millis);
    if (!session.is_ok()) {
      // The process may have exited before we attached; skip it.
      DLOG_DEBUG("client") << "could not attach pid " << record.pid << ": "
                           << session.error().to_string();
      continue;
    }
    sessions_[record.pid] = std::move(session).value();
    unclaimed_.push_back(record.pid);
    ++attached;
  }
  return attached;
}

void MultiClient::claim(int pid) {
  for (auto it = unclaimed_.begin(); it != unclaimed_.end(); ++it) {
    if (*it == pid) {
      unclaimed_.erase(it);
      return;
    }
  }
}

Result<Session*> MultiClient::await_process(int pid, int timeout_millis) {
  Stopwatch watch;
  while (true) {
    DIONEA_RETURN_IF_ERROR(refresh(timeout_millis).status());
    auto it = sessions_.find(pid);
    if (it != sessions_.end()) {
      claim(pid);
      return it->second.get();
    }
    if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
      return Error(ErrorCode::kTimeout,
                   "no session for pid " + std::to_string(pid));
    }
    sleep_for_millis(10);
  }
}

Result<Session*> MultiClient::await_new_process(int timeout_millis) {
  Stopwatch watch;
  while (true) {
    // Hand out processes adopted by earlier refreshes first: one
    // refresh may attach several children at once.
    while (!unclaimed_.empty()) {
      int pid = unclaimed_.front();
      unclaimed_.pop_front();
      auto it = sessions_.find(pid);
      if (it != sessions_.end()) return it->second.get();
    }
    DIONEA_RETURN_IF_ERROR(refresh(timeout_millis).status());
    if (unclaimed_.empty()) {
      if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
        return Error(ErrorCode::kTimeout, "no new process appeared");
      }
      sleep_for_millis(10);
    }
  }
}

Session* MultiClient::session(int pid) {
  auto it = sessions_.find(pid);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<int> MultiClient::pids() const {
  std::vector<int> out;
  out.reserve(sessions_.size());
  for (const auto& [pid, unused] : sessions_) out.push_back(pid);
  return out;
}

Status MultiClient::activate(int pid, std::int64_t tid) {
  Session* target = session(pid);
  if (target == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "no session for pid " + std::to_string(pid));
  }
  // Validate the thread exists in that process (the §4.2 sequence:
  // clicking thread 2 of process B triggers a call into the server).
  DIONEA_ASSIGN_OR_RETURN(std::vector<RemoteThread> threads,
                          target->threads());
  for (const RemoteThread& t : threads) {
    if (t.tid == tid) {
      active_ = View{pid, tid};
      return Status::ok();
    }
  }
  return Status(ErrorCode::kNotFound,
                "pid " + std::to_string(pid) + " has no thread " +
                    std::to_string(tid));
}

Result<std::string> MultiClient::active_source() {
  if (!active_.valid()) {
    return Error(ErrorCode::kInvalidArgument, "no active view");
  }
  Session* target = session(active_.pid);
  if (target == nullptr) {
    return Error(ErrorCode::kNotFound, "active session is gone");
  }
  DIONEA_ASSIGN_OR_RETURN(std::vector<RemoteFrame> frames,
                          target->frames(active_.tid));
  if (frames.empty()) {
    return Error(ErrorCode::kNotFound, "active thread has no frames");
  }
  return target->source(frames.front().file);
}

Result<std::vector<RemoteFrame>> MultiClient::active_frames() {
  if (!active_.valid()) {
    return Error(ErrorCode::kInvalidArgument, "no active view");
  }
  Session* target = session(active_.pid);
  if (target == nullptr) {
    return Error(ErrorCode::kNotFound, "active session is gone");
  }
  return target->frames(active_.tid);
}

Result<std::vector<std::pair<int, DebugEvent>>> MultiClient::poll_all_events(
    int timeout_millis_per_session) {
  std::vector<std::pair<int, DebugEvent>> out;
  // Out-of-band observations (note_child_exit) go first: they arrived
  // earlier than anything still sitting in a socket buffer.
  while (!pending_events_.empty()) {
    out.push_back(std::move(pending_events_.front()));
    pending_events_.pop_front();
  }
  for (auto& [pid, session] : sessions_) {
    if (reported_dead_.count(pid) > 0) continue;  // already announced
    if (!session->connected()) {
      reported_dead_.insert(pid);
      out.emplace_back(pid, make_gone_event(pid, session->terminated_seen(),
                                            /*exit_code=*/-1,
                                            /*term_signal=*/0));
      continue;
    }
    auto event = session->poll_event(timeout_millis_per_session);
    if (!event.is_ok()) {
      if (event.error().code() == ErrorCode::kClosed) {
        // The transport died under us: surface the loss as a
        // first-class event instead of silently skipping the pid.
        reported_dead_.insert(pid);
        out.emplace_back(pid, make_gone_event(pid, session->terminated_seen(),
                                              /*exit_code=*/-1,
                                              /*term_signal=*/0));
        continue;
      }
      return event.error();
    }
    if (event.value().has_value()) {
      DebugEvent& ev = *event.value();
      if (ev.kind == proto::Event::kProcessCrashed) {
        // The server's last gasp: remember where the corpse is and
        // mark the pid announced, so the transport collapse that
        // follows a crash is not reported a second time.
        std::string path = ev.payload.get_string("report_path");
        if (!path.empty()) crash_reports_[pid] = path;
        reported_dead_.insert(pid);
      }
      out.emplace_back(pid, std::move(ev));
    }
  }
  return out;
}

void MultiClient::note_child_exit(int pid, int exit_code, int term_signal) {
  if (reported_dead_.count(pid) > 0) return;
  reported_dead_.insert(pid);
  pending_events_.emplace_back(
      pid, make_gone_event(pid, /*clean_exit=*/term_signal == 0, exit_code,
                           term_signal));
}

Result<Session*> MultiClient::reconnect(int pid,
                                        const ReconnectPolicy& policy) {
  // Breakpoints belong to the user, not the connection: carry them
  // over from the dead session (if any survives to consult).
  std::vector<BreakpointSpec> carry;
  if (auto it = sessions_.find(pid); it != sessions_.end()) {
    carry = it->second->breakpoints_set();
  }

  Rng rng(policy.seed ^ static_cast<std::uint64_t>(pid));
  double delay = static_cast<double>(policy.initial_delay_millis);
  Error last(ErrorCode::kUnavailable, "no reconnect attempt made");
  for (int attempt = 0; attempt < std::max(1, policy.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      double factor = 1.0 - policy.jitter + 2.0 * policy.jitter *
                                                rng.next_double();
      sleep_for_millis(static_cast<int>(delay * factor));
      delay = std::min(delay * policy.multiplier,
                       static_cast<double>(policy.max_delay_millis));
    }
    // Re-tail the whole port file: the restarted server re-published,
    // and its newest record for this pid is the live one.
    auto records = port_file_.read_all();
    if (!records.is_ok()) {
      last = records.error();
      continue;
    }
    const ipc::PortRecord* newest = nullptr;
    for (const ipc::PortRecord& record : records.value()) {
      if (record.pid == pid) newest = &record;
    }
    if (newest == nullptr) {
      last = Error(ErrorCode::kNotFound,
                   "no port record for pid " + std::to_string(pid));
      continue;
    }
    auto attached = Session::attach(newest->port, /*timeout_millis=*/500);
    if (!attached.is_ok()) {
      last = attached.error();
      continue;
    }
    std::unique_ptr<Session> session = std::move(attached).value();
    for (const BreakpointSpec& bp : carry) {
      // Best effort — the restarted debuggee may not know the file
      // (yet); a failed re-apply must not fail the reconnect.
      auto re_set = session->set_breakpoint(bp.file, bp.line, bp.tid,
                                            bp.ignore);
      if (!re_set.is_ok()) {
        DLOG_DEBUG("client") << "reconnect pid " << pid
                             << ": breakpoint " << bp.file << ":" << bp.line
                             << " not re-applied: "
                             << re_set.error().to_string();
      }
    }
    Session* raw = session.get();
    sessions_[pid] = std::move(session);
    // The re-published record is now adopted; don't let the next
    // refresh() re-attach it and clobber this session.
    records_seen_ = records.value().size();
    reported_dead_.erase(pid);
    crash_reports_.erase(pid);  // the corpse belonged to the predecessor
    return raw;
  }
  return Error(last.code(), "reconnect to pid " + std::to_string(pid) +
                                " failed after " +
                                std::to_string(policy.max_attempts) +
                                " attempts: " + last.message());
}

}  // namespace dionea::client
