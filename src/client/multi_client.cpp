#include "client/multi_client.hpp"

#include "support/logging.hpp"
#include "support/timing.hpp"

namespace dionea::client {

Result<int> MultiClient::refresh(int timeout_millis) {
  DIONEA_ASSIGN_OR_RETURN(std::vector<ipc::PortRecord> records,
                          port_file_.read_new(records_seen_));
  int attached = 0;
  for (const ipc::PortRecord& record : records) {
    ++records_seen_;
    if (sessions_.count(record.pid) > 0) {
      // Re-published port (double fork re-binds): replace the session.
      sessions_.erase(record.pid);
    }
    auto session = Session::attach(record.port, timeout_millis);
    if (!session.is_ok()) {
      // The process may have exited before we attached; skip it.
      DLOG_DEBUG("client") << "could not attach pid " << record.pid << ": "
                           << session.error().to_string();
      continue;
    }
    sessions_[record.pid] = std::move(session).value();
    unclaimed_.push_back(record.pid);
    ++attached;
  }
  return attached;
}

void MultiClient::claim(int pid) {
  for (auto it = unclaimed_.begin(); it != unclaimed_.end(); ++it) {
    if (*it == pid) {
      unclaimed_.erase(it);
      return;
    }
  }
}

Result<Session*> MultiClient::await_process(int pid, int timeout_millis) {
  Stopwatch watch;
  while (true) {
    DIONEA_RETURN_IF_ERROR(refresh(timeout_millis).status());
    auto it = sessions_.find(pid);
    if (it != sessions_.end()) {
      claim(pid);
      return it->second.get();
    }
    if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
      return Error(ErrorCode::kTimeout,
                   "no session for pid " + std::to_string(pid));
    }
    sleep_for_millis(10);
  }
}

Result<Session*> MultiClient::await_new_process(int timeout_millis) {
  Stopwatch watch;
  while (true) {
    // Hand out processes adopted by earlier refreshes first: one
    // refresh may attach several children at once.
    while (!unclaimed_.empty()) {
      int pid = unclaimed_.front();
      unclaimed_.pop_front();
      auto it = sessions_.find(pid);
      if (it != sessions_.end()) return it->second.get();
    }
    DIONEA_RETURN_IF_ERROR(refresh(timeout_millis).status());
    if (unclaimed_.empty()) {
      if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
        return Error(ErrorCode::kTimeout, "no new process appeared");
      }
      sleep_for_millis(10);
    }
  }
}

Session* MultiClient::session(int pid) {
  auto it = sessions_.find(pid);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<int> MultiClient::pids() const {
  std::vector<int> out;
  out.reserve(sessions_.size());
  for (const auto& [pid, unused] : sessions_) out.push_back(pid);
  return out;
}

Status MultiClient::activate(int pid, std::int64_t tid) {
  Session* target = session(pid);
  if (target == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "no session for pid " + std::to_string(pid));
  }
  // Validate the thread exists in that process (the §4.2 sequence:
  // clicking thread 2 of process B triggers a call into the server).
  DIONEA_ASSIGN_OR_RETURN(std::vector<RemoteThread> threads,
                          target->threads());
  for (const RemoteThread& t : threads) {
    if (t.tid == tid) {
      active_ = View{pid, tid};
      return Status::ok();
    }
  }
  return Status(ErrorCode::kNotFound,
                "pid " + std::to_string(pid) + " has no thread " +
                    std::to_string(tid));
}

Result<std::string> MultiClient::active_source() {
  if (!active_.valid()) {
    return Error(ErrorCode::kInvalidArgument, "no active view");
  }
  Session* target = session(active_.pid);
  if (target == nullptr) {
    return Error(ErrorCode::kNotFound, "active session is gone");
  }
  DIONEA_ASSIGN_OR_RETURN(std::vector<RemoteFrame> frames,
                          target->frames(active_.tid));
  if (frames.empty()) {
    return Error(ErrorCode::kNotFound, "active thread has no frames");
  }
  return target->source(frames.front().file);
}

Result<std::vector<RemoteFrame>> MultiClient::active_frames() {
  if (!active_.valid()) {
    return Error(ErrorCode::kInvalidArgument, "no active view");
  }
  Session* target = session(active_.pid);
  if (target == nullptr) {
    return Error(ErrorCode::kNotFound, "active session is gone");
  }
  return target->frames(active_.tid);
}

Result<std::vector<std::pair<int, DebugEvent>>> MultiClient::poll_all_events(
    int timeout_millis_per_session) {
  std::vector<std::pair<int, DebugEvent>> out;
  for (auto& [pid, session] : sessions_) {
    auto event = session->poll_event(timeout_millis_per_session);
    if (!event.is_ok()) {
      if (event.error().code() == ErrorCode::kClosed) continue;  // pid died
      return event.error();
    }
    if (event.value().has_value()) {
      out.emplace_back(pid, std::move(*event.value()));
    }
  }
  return out;
}

}  // namespace dionea::client
