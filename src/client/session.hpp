// One debug session: client side of the control + events channels to
// a single debuggee process (§4.1: "a debug session is a sequence of
// interactions between debugger and debuggee"; 1 server : 1 client).
//
// The session is poll-driven: events are read from the events channel
// when the caller asks (poll_event / wait_event*), never by a hidden
// background thread — embedders (tests, the console, the GUI-less
// examples) stay in control of interleaving.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "debugger/protocol.hpp"
#include "ipc/frame.hpp"
#include "ipc/socket.hpp"
#include "support/result.hpp"

namespace dionea::client {

struct DebugEvent {
  // The enum is authoritative (kUnknown for names from a newer peer);
  // `name` keeps the wire spelling for display/logging.
  dbg::proto::Event kind = dbg::proto::Event::kUnknown;
  std::string name;
  ipc::wire::Value payload;
};

// The wire structs double as the client-facing types.
using RemoteThread = dbg::proto::ThreadEntry;
using RemoteFrame = dbg::proto::FrameEntry;

struct StopInfo {
  std::int64_t tid = 0;
  std::string file;
  int line = 0;
  std::string function;
  std::string reason;
  int breakpoint_id = 0;
};

// A breakpoint as the user asked for it. Sessions record every
// breakpoint they set so a reconnect (after the debuggee restarted or
// the transport died) can re-apply them — breakpoints are the user's,
// not the connection's.
struct BreakpointSpec {
  std::string file;
  int line = 0;
  std::int64_t tid = 0;
  std::int64_t ignore = 0;
  int id = 0;  // server-assigned; changes across reconnect
};

class Session {
 public:
  // Connect both channels to a server's listener port. Retries until
  // `timeout_millis` (the server may still be starting). The first
  // ping doubles as the handshake; the server advertises its heartbeat
  // interval there and the session derives its dead-peer timeout
  // (5 × interval) from it.
  // `client_token` (1.5) is sent in both hellos so a hub can pair the
  // control connection with its events sibling; "" (the default, and
  // what pre-1.5 callers pass implicitly) makes a hub fall back to
  // default-session binding. Direct servers ignore it.
  static Result<std::unique_ptr<Session>> attach(
      std::uint16_t port, int timeout_millis,
      const std::string& client_token = "");

  int pid() const noexcept { return pid_; }
  std::uint16_t port() const noexcept { return port_; }
  const std::string& client_token() const noexcept { return client_token_; }

  // ---- session routing (1.5, hub) ----
  // When nonzero, every request is stamped with the session_id
  // envelope field so a hub routes it to that session. Requests whose
  // args already carry session_id (the hub-* commands) are left alone.
  // No effect against a direct server — it ignores the field.
  void set_route(std::int64_t session_id) noexcept {
    route_session_id_ = session_id;
  }
  std::int64_t route() const noexcept { return route_session_id_; }

  // ---- negotiated protocol surface ----
  // What the server advertised in its ping response. A pre-1.1 server
  // advertises nothing: version reads 1.0, capability checks all fail,
  // and the client degrades instead of erroring (stats() reports
  // kUnavailable, heartbeat silence detection stays off).
  int server_proto_major() const noexcept { return server_proto_major_; }
  int server_proto_minor() const noexcept { return server_proto_minor_; }
  const std::vector<std::string>& server_capabilities() const noexcept {
    return server_capabilities_;
  }
  bool supports(std::string_view capability) const noexcept;

  // ---- liveness ----
  // False once the transport failed (closed/reset/stalled peer or
  // heartbeat silence). A disconnected session fails every request
  // with kClosed immediately instead of blocking.
  bool connected() const noexcept { return connected_; }
  // Did the debuggee announce a clean exit (`terminated` event) before
  // the transport went down? Distinguishes process-exited from
  // process-crashed.
  bool terminated_seen() const noexcept { return terminated_seen_; }
  // Drop both channels without the detach handshake — how a crashing
  // client looks to the server. Used by tests and by reconnect.
  void hard_close();

  void set_request_timeout_millis(int millis) noexcept {
    request_timeout_millis_ = millis;
  }
  // 0 disables heartbeat-silence detection (for servers that do not
  // beacon). attach() sets this automatically from the handshake.
  void set_heartbeat_timeout_millis(int millis) noexcept {
    heartbeat_timeout_millis_ = millis;
  }
  int heartbeat_timeout_millis() const noexcept {
    return heartbeat_timeout_millis_;
  }

  // Breakpoints this session has set (for re-apply on reconnect).
  const std::vector<BreakpointSpec>& breakpoints_set() const noexcept {
    return breakpoints_set_;
  }

  // ---- raw request/response ----
  // Escape hatch for commands this build has no struct for (tests
  // probing unknown commands, forward-compat experiments). Everything
  // in-tree goes through the typed methods below.
  Result<ipc::wire::Value> request(const std::string& cmd,
                                   ipc::wire::Value args = {});

  // ---- typed commands ----
  Result<dbg::proto::PingResponse> ping();
  Result<dbg::proto::InfoResponse> info();
  // Requires the kCapStats capability; kUnavailable when the server
  // does not advertise it (graceful downgrade, no wire traffic).
  Result<dbg::proto::StatsResponse> stats();
  // Same contract, gated on kCapReplay.
  Result<dbg::proto::ReplayInfoResponse> replay_info();
  // Same contract, gated on kCapAnalysis. run_lint additionally asks
  // the server to run the static lint pass over the loaded program.
  // run_forklint (1.7) asks for the ForkLint fork-safety pass + the
  // native atfork audit; against a pre-1.7 server the flag is dropped
  // silently and forklint_findings comes back empty (kCapForksafety).
  Result<dbg::proto::AnalysisReportResponse> analysis_report(
      bool run_lint = false, bool run_forklint = false);
  // Same contract, gated on kCapPostmortem (1.4). capture=true asks
  // the server to snapshot the live process as if it had crashed;
  // capture=false fetches whatever report already exists (the corpse
  // of a crashed predecessor).
  Result<dbg::proto::PostmortemResponse> postmortem(bool capture = false);
  // Same contract, gated on kCapTimetravel (1.6): the checkpoint ring
  // and a reverse-execution resume. A 1.5 server never sees these on
  // the wire — the gate downgrades silently to kUnavailable.
  Result<dbg::proto::TimetravelInfoResponse> timetravel_info();
  Result<dbg::proto::TimetravelResumeResponse> timetravel_resume(
      std::int64_t target_step);
  Result<int> set_breakpoint(const std::string& file, int line,
                             std::int64_t tid = 0, std::int64_t ignore = 0);
  Result<std::vector<dbg::proto::BreakpointEntry>> breakpoints();
  Status clear_breakpoint(int id);       // id 0 = clear all
  Status cont(std::int64_t tid);
  Status cont_all();
  Status step(std::int64_t tid);
  Status next(std::int64_t tid);
  Status finish(std::int64_t tid);
  Status pause(std::int64_t tid);
  Status pause_all();
  Status set_disturb(bool on);
  Status detach();
  Result<std::vector<RemoteThread>> threads();
  Result<std::vector<RemoteFrame>> frames(std::int64_t tid);
  Result<std::vector<std::pair<std::string, std::string>>> locals(
      std::int64_t tid, int depth = 0);
  Result<std::vector<std::pair<std::string, std::string>>> globals();
  Result<std::string> source(const std::string& file);
  // Evaluate an expression in frame `depth` of a suspended/blocked
  // thread; returns repr() of the result.
  Result<std::string> eval(std::int64_t tid, const std::string& expression,
                           int depth = 0);

  // ---- events ----
  // Next event within the timeout; nullopt when none arrived.
  Result<std::optional<DebugEvent>> poll_event(int timeout_millis);
  // Block until an event of the given kind arrives; other events are
  // queued for later consumption, not lost.
  Result<DebugEvent> wait_event(dbg::proto::Event kind, int timeout_millis);
  Result<DebugEvent> wait_event(const std::string& name, int timeout_millis);
  // Convenience: wait for "stopped" and decode it.
  Result<StopInfo> wait_stopped(int timeout_millis);
  // Events already received but not yet consumed by wait_event.
  size_t queued_events() const noexcept { return replay_.size(); }

 private:
  Session() = default;

  // Send a typed request; returns the full response envelope for the
  // matching response struct's from_wire.
  template <typename Req>
  Result<ipc::wire::Value> send(const Req& req) {
    return request(Req::kName, req.to_wire());
  }

  // Receive one user-visible event from the events channel. Heartbeat
  // frames are consumed here (they only refresh `last_activity_`);
  // kTimeout from the wire is promoted to kClosed when the peer has
  // been heartbeat-silent longer than `heartbeat_timeout_millis_`.
  Result<std::optional<DebugEvent>> recv_event(int timeout_millis);
  // Mark the transport dead and wrap `err` with session context.
  Error transport_lost(const Error& err);

  ipc::TcpStream control_;
  ipc::TcpStream events_;
  // Events are polled with short timeouts; the reader keeps a frame
  // that spans polls buffered instead of losing stream sync.
  ipc::FrameReader event_reader_;
  std::uint16_t port_ = 0;
  int pid_ = 0;
  std::string client_token_;
  std::int64_t route_session_id_ = 0;
  std::int64_t next_seq_ = 1;
  std::deque<DebugEvent> replay_;  // events skipped by wait_event(name)

  bool connected_ = true;
  bool terminated_seen_ = false;
  int server_proto_major_ = 1;
  int server_proto_minor_ = 0;
  std::vector<std::string> server_capabilities_;
  int request_timeout_millis_ = 10'000;
  int heartbeat_timeout_millis_ = 0;  // 0 = detection off
  double last_activity_ = 0;          // mono_seconds of last events-channel
                                      // traffic (incl. heartbeats)
  std::vector<BreakpointSpec> breakpoints_set_;
};

}  // namespace dionea::client
