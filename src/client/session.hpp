// One debug session: client side of the control + events channels to
// a single debuggee process (§4.1: "a debug session is a sequence of
// interactions between debugger and debuggee"; 1 server : 1 client).
//
// The session is poll-driven: events are read from the events channel
// when the caller asks (poll_event / wait_event*), never by a hidden
// background thread — embedders (tests, the console, the GUI-less
// examples) stay in control of interleaving.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "debugger/protocol.hpp"
#include "ipc/frame.hpp"
#include "ipc/socket.hpp"
#include "support/result.hpp"

namespace dionea::client {

struct DebugEvent {
  std::string name;
  ipc::wire::Value payload;
};

struct RemoteThread {
  std::int64_t tid = 0;
  std::string name;
  std::string state;
  std::string file;
  int line = 0;
  std::string note;
  int depth = 0;
};

struct RemoteFrame {
  std::string function;
  std::string file;
  int line = 0;
};

struct StopInfo {
  std::int64_t tid = 0;
  std::string file;
  int line = 0;
  std::string function;
  std::string reason;
  int breakpoint_id = 0;
};

class Session {
 public:
  // Connect both channels to a server's listener port. Retries until
  // `timeout_millis` (the server may still be starting).
  static Result<std::unique_ptr<Session>> attach(std::uint16_t port,
                                                 int timeout_millis);

  int pid() const noexcept { return pid_; }
  std::uint16_t port() const noexcept { return port_; }

  // ---- raw request/response ----
  Result<ipc::wire::Value> request(const std::string& cmd,
                                   ipc::wire::Value args = {});

  // ---- typed commands ----
  Result<int> set_breakpoint(const std::string& file, int line,
                             std::int64_t tid = 0, std::int64_t ignore = 0);
  Status clear_breakpoint(int id);       // id 0 = clear all
  Status cont(std::int64_t tid);
  Status cont_all();
  Status step(std::int64_t tid);
  Status next(std::int64_t tid);
  Status finish(std::int64_t tid);
  Status pause(std::int64_t tid);
  Status pause_all();
  Status set_disturb(bool on);
  Status detach();
  Result<std::vector<RemoteThread>> threads();
  Result<std::vector<RemoteFrame>> frames(std::int64_t tid);
  Result<std::vector<std::pair<std::string, std::string>>> locals(
      std::int64_t tid, int depth = 0);
  Result<std::vector<std::pair<std::string, std::string>>> globals();
  Result<std::string> source(const std::string& file);
  // Evaluate an expression in frame `depth` of a suspended/blocked
  // thread; returns repr() of the result.
  Result<std::string> eval(std::int64_t tid, const std::string& expression,
                           int depth = 0);

  // ---- events ----
  // Next event within the timeout; nullopt when none arrived.
  Result<std::optional<DebugEvent>> poll_event(int timeout_millis);
  // Block until an event with the given name arrives; other events are
  // queued for later consumption, not lost.
  Result<DebugEvent> wait_event(const std::string& name, int timeout_millis);
  // Convenience: wait for "stopped" and decode it.
  Result<StopInfo> wait_stopped(int timeout_millis);
  // Events already received but not yet consumed by wait_event.
  size_t queued_events() const noexcept { return replay_.size(); }

 private:
  Session() = default;

  ipc::TcpStream control_;
  ipc::TcpStream events_;
  std::uint16_t port_ = 0;
  int pid_ = 0;
  std::int64_t next_seq_ = 1;
  std::deque<DebugEvent> replay_;  // events skipped by wait_event(name)
};

}  // namespace dionea::client
