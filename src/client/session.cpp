#include "client/session.hpp"

#include "support/strings.hpp"
#include "support/timing.hpp"

namespace dionea::client {

namespace proto = dbg::proto;
using ipc::wire::Value;

namespace {

proto::Hello local_hello(const char* channel, const std::string& token) {
  proto::Hello hello;
  hello.channel = channel;
  hello.pid = 0;  // the client's pid is of no interest to the server
  hello.proto_major = proto::kProtoMajor;
  hello.proto_minor = proto::kProtoMinor;
  hello.capabilities = proto::local_capabilities();
  hello.client_token = token;
  return hello;
}

}  // namespace

Result<std::unique_ptr<Session>> Session::attach(
    std::uint16_t port, int timeout_millis, const std::string& client_token) {
  auto session = std::unique_ptr<Session>(new Session());
  session->port_ = port;
  session->client_token_ = client_token;

  DIONEA_ASSIGN_OR_RETURN(session->control_,
                          ipc::TcpStream::connect_retry(port, timeout_millis));
  (void)session->control_.set_nodelay(true);
  DIONEA_RETURN_IF_ERROR(ipc::send_frame(
      session->control_,
      local_hello(proto::kChannelControl, client_token).to_wire()));

  DIONEA_ASSIGN_OR_RETURN(session->events_,
                          ipc::TcpStream::connect_retry(port, timeout_millis));
  (void)session->events_.set_nodelay(true);
  DIONEA_RETURN_IF_ERROR(ipc::send_frame(
      session->events_,
      local_hello(proto::kChannelEvents, client_token).to_wire()));

  // First ping doubles as the session handshake: pid discovery plus
  // the server's protocol version, capability list and beacon period
  // (5 missed beats = dead peer). A version-mismatch refusal surfaces
  // here as a typed error, not a hang.
  DIONEA_ASSIGN_OR_RETURN(proto::PingResponse pong, session->ping());
  session->pid_ = pong.pid;
  session->server_proto_major_ = pong.proto_major;
  session->server_proto_minor_ = pong.proto_minor;
  session->server_capabilities_ = pong.capabilities;
  // Negotiate down: arm silence detection only against a server that
  // says it will beacon. heartbeat_ms > 0 IS that promise — pre-1.1
  // servers beacon without knowing about capability lists, so the
  // kCapHeartbeat string is advisory, never a gate.
  if (pong.heartbeat_ms > 0) {
    session->heartbeat_timeout_millis_ = 5 * pong.heartbeat_ms;
  }
  session->last_activity_ = mono_seconds();
  return session;
}

bool Session::supports(std::string_view capability) const noexcept {
  for (const std::string& cap : server_capabilities_) {
    if (cap == capability) return true;
  }
  return false;
}

void Session::hard_close() {
  control_ = ipc::TcpStream();
  events_ = ipc::TcpStream();
  event_reader_.reset();
  connected_ = false;
}

Error Session::transport_lost(const Error& err) {
  connected_ = false;
  return Error(err.code(),
               strings::format("session to pid %d lost: %s", pid_,
                               err.message().c_str()));
}

Result<Value> Session::request(const std::string& cmd, Value args) {
  if (!connected_) {
    return Error(ErrorCode::kClosed,
                 strings::format("session to pid %d is disconnected", pid_));
  }
  std::int64_t seq = next_seq_++;
  Value frame = std::move(args);
  frame.set("cmd", cmd);
  frame.set("seq", seq);
  // Route by session id (1.5, hub): args that already carry the field
  // (the hub-* commands, where it is a payload) win over the route.
  if (route_session_id_ != 0 && !frame.has(proto::kSessionIdKey)) {
    frame.set(proto::kSessionIdKey, route_session_id_);
  }
  if (Status sent = ipc::send_frame(control_, frame); !sent.is_ok()) {
    return transport_lost(sent.error());
  }
  auto received = ipc::recv_frame_timeout(control_, request_timeout_millis_);
  if (!received.is_ok()) return transport_lost(received.error());
  // A round trip on the control channel is proof of life too — it
  // keeps an interactive client (long gaps between event polls) from
  // mistaking its own inattention for peer silence.
  last_activity_ = mono_seconds();
  Value response = std::move(received).value();
  if (response.get_int("re") != seq) {
    // seq 0 carries connection-level refusals (version mismatch, bad
    // hello, second client): the server rejected the session before it
    // ever saw this request. Surface the typed reason; the channel is
    // dead either way.
    if (response.get_int("re") == 0 && !response.get_bool("ok", true)) {
      connected_ = false;
      std::string kind = response.get_string("error_kind");
      ErrorCode code = kind == proto::kErrVersionMismatch
                           ? ErrorCode::kUnavailable
                           : ErrorCode::kProtocol;
      return Error(code, "server refused session: " +
                             response.get_string("error"));
    }
    // Otherwise the framing itself is out of step; no later exchange
    // on this channel can be trusted.
    connected_ = false;
    return Error(ErrorCode::kProtocol,
                 strings::format("response out of order (want seq %lld)",
                                 static_cast<long long>(seq)));
  }
  if (!response.get_bool("ok")) {
    // Map the typed kind onto an ErrorCode so callers can branch
    // without parsing prose (kNotFound = the server does not know the
    // command at all — how a 1.1 feature probe fails against 1.0).
    std::string kind = response.get_string("error_kind");
    ErrorCode code = ErrorCode::kInvalidArgument;
    if (kind == proto::kErrUnknownCommand) code = ErrorCode::kNotFound;
    if (kind == proto::kErrVersionMismatch) code = ErrorCode::kUnavailable;
    return Error(code, cmd + " failed: " + response.get_string("error"));
  }
  return response;
}

Result<proto::PingResponse> Session::ping() {
  DIONEA_ASSIGN_OR_RETURN(Value response, send(proto::PingRequest{}));
  return proto::PingResponse::from_wire(response);
}

Result<proto::InfoResponse> Session::info() {
  DIONEA_ASSIGN_OR_RETURN(Value response, send(proto::InfoRequest{}));
  return proto::InfoResponse::from_wire(response);
}

Result<proto::StatsResponse> Session::stats() {
  if (!supports(proto::kCapStats)) {
    return Error(ErrorCode::kUnavailable,
                 strings::format(
                     "server (proto %d.%d) does not advertise '%s'",
                     server_proto_major_, server_proto_minor_,
                     proto::kCapStats));
  }
  DIONEA_ASSIGN_OR_RETURN(Value response, send(proto::StatsRequest{}));
  return proto::StatsResponse::from_wire(response);
}

Result<proto::ReplayInfoResponse> Session::replay_info() {
  if (!supports(proto::kCapReplay)) {
    return Error(ErrorCode::kUnavailable,
                 strings::format(
                     "server (proto %d.%d) does not advertise '%s'",
                     server_proto_major_, server_proto_minor_,
                     proto::kCapReplay));
  }
  DIONEA_ASSIGN_OR_RETURN(Value response, send(proto::ReplayInfoRequest{}));
  return proto::ReplayInfoResponse::from_wire(response);
}

Result<proto::AnalysisReportResponse> Session::analysis_report(
    bool run_lint, bool run_forklint) {
  if (!supports(proto::kCapAnalysis)) {
    return Error(ErrorCode::kUnavailable,
                 strings::format(
                     "server (proto %d.%d) does not advertise '%s'",
                     server_proto_major_, server_proto_minor_,
                     proto::kCapAnalysis));
  }
  // 1.6 servers would skip the unknown run_forklint key anyway; not
  // sending it keeps the silent downgrade explicit on our side.
  if (run_forklint && !supports(proto::kCapForksafety)) {
    run_forklint = false;
  }
  proto::AnalysisReportRequest req;
  req.run_lint = run_lint;
  req.run_forklint = run_forklint;
  DIONEA_ASSIGN_OR_RETURN(Value response, send(req));
  return proto::AnalysisReportResponse::from_wire(response);
}

Result<proto::PostmortemResponse> Session::postmortem(bool capture) {
  if (!supports(proto::kCapPostmortem)) {
    return Error(ErrorCode::kUnavailable,
                 strings::format(
                     "server (proto %d.%d) does not advertise '%s'",
                     server_proto_major_, server_proto_minor_,
                     proto::kCapPostmortem));
  }
  proto::PostmortemRequest req;
  req.capture = capture;
  DIONEA_ASSIGN_OR_RETURN(Value response, send(req));
  return proto::PostmortemResponse::from_wire(response);
}

Result<proto::TimetravelInfoResponse> Session::timetravel_info() {
  if (!supports(proto::kCapTimetravel)) {
    return Error(ErrorCode::kUnavailable,
                 strings::format(
                     "server (proto %d.%d) does not advertise '%s'",
                     server_proto_major_, server_proto_minor_,
                     proto::kCapTimetravel));
  }
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          send(proto::TimetravelInfoRequest{}));
  return proto::TimetravelInfoResponse::from_wire(response);
}

Result<proto::TimetravelResumeResponse> Session::timetravel_resume(
    std::int64_t target_step) {
  if (!supports(proto::kCapTimetravel)) {
    return Error(ErrorCode::kUnavailable,
                 strings::format(
                     "server (proto %d.%d) does not advertise '%s'",
                     server_proto_major_, server_proto_minor_,
                     proto::kCapTimetravel));
  }
  proto::TimetravelResumeRequest req;
  req.target_step = target_step;
  DIONEA_ASSIGN_OR_RETURN(Value response, send(req));
  return proto::TimetravelResumeResponse::from_wire(response);
}

Result<int> Session::set_breakpoint(const std::string& file, int line,
                                    std::int64_t tid, std::int64_t ignore) {
  DIONEA_ASSIGN_OR_RETURN(
      Value response, send(proto::BreakSetRequest{file, line, tid, ignore}));
  DIONEA_ASSIGN_OR_RETURN(proto::BreakSetResponse decoded,
                          proto::BreakSetResponse::from_wire(response));
  breakpoints_set_.push_back(
      BreakpointSpec{file, line, tid, ignore, decoded.id});
  return decoded.id;
}

Result<std::vector<proto::BreakpointEntry>> Session::breakpoints() {
  DIONEA_ASSIGN_OR_RETURN(Value response, send(proto::BreakListRequest{}));
  DIONEA_ASSIGN_OR_RETURN(proto::BreakListResponse decoded,
                          proto::BreakListResponse::from_wire(response));
  return std::move(decoded.breakpoints);
}

Status Session::clear_breakpoint(int id) {
  DIONEA_RETURN_IF_ERROR(send(proto::BreakClearRequest{id}).status());
  if (id == 0) {
    breakpoints_set_.clear();
  } else {
    std::erase_if(breakpoints_set_,
                  [id](const BreakpointSpec& bp) { return bp.id == id; });
  }
  return Status::ok();
}

Status Session::cont(std::int64_t tid) {
  return send(proto::ContinueRequest{tid}).status();
}
Status Session::cont_all() {
  return send(proto::ContinueAllRequest{}).status();
}
Status Session::step(std::int64_t tid) {
  return send(proto::StepRequest{tid}).status();
}
Status Session::next(std::int64_t tid) {
  return send(proto::NextRequest{tid}).status();
}
Status Session::finish(std::int64_t tid) {
  return send(proto::FinishRequest{tid}).status();
}
Status Session::pause(std::int64_t tid) {
  return send(proto::PauseRequest{tid}).status();
}
Status Session::pause_all() { return send(proto::PauseAllRequest{}).status(); }

Status Session::set_disturb(bool on) {
  return send(proto::DisturbRequest{on}).status();
}

Status Session::detach() { return send(proto::DetachRequest{}).status(); }

Result<std::vector<RemoteThread>> Session::threads() {
  DIONEA_ASSIGN_OR_RETURN(Value response, send(proto::ThreadsRequest{}));
  DIONEA_ASSIGN_OR_RETURN(proto::ThreadsResponse decoded,
                          proto::ThreadsResponse::from_wire(response));
  return std::move(decoded.threads);
}

Result<std::vector<RemoteFrame>> Session::frames(std::int64_t tid) {
  DIONEA_ASSIGN_OR_RETURN(Value response, send(proto::FramesRequest{tid}));
  DIONEA_ASSIGN_OR_RETURN(proto::FramesResponse decoded,
                          proto::FramesResponse::from_wire(response));
  return std::move(decoded.frames);
}

Result<std::vector<std::pair<std::string, std::string>>> Session::locals(
    std::int64_t tid, int depth) {
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          send(proto::LocalsRequest{tid, depth}));
  DIONEA_ASSIGN_OR_RETURN(proto::LocalsResponse decoded,
                          proto::LocalsResponse::from_wire(response));
  std::vector<std::pair<std::string, std::string>> out;
  for (proto::NamedValue& nv : decoded.locals) {
    out.emplace_back(std::move(nv.name), std::move(nv.value));
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> Session::globals() {
  DIONEA_ASSIGN_OR_RETURN(Value response, send(proto::GlobalsRequest{}));
  DIONEA_ASSIGN_OR_RETURN(proto::GlobalsResponse decoded,
                          proto::GlobalsResponse::from_wire(response));
  std::vector<std::pair<std::string, std::string>> out;
  for (proto::NamedValue& nv : decoded.globals) {
    out.emplace_back(std::move(nv.name), std::move(nv.value));
  }
  return out;
}

Result<std::string> Session::source(const std::string& file) {
  DIONEA_ASSIGN_OR_RETURN(Value response, send(proto::SourceRequest{file}));
  DIONEA_ASSIGN_OR_RETURN(proto::SourceResponse decoded,
                          proto::SourceResponse::from_wire(response));
  return std::move(decoded.text);
}

Result<std::string> Session::eval(std::int64_t tid,
                                  const std::string& expression, int depth) {
  DIONEA_ASSIGN_OR_RETURN(
      Value response, send(proto::EvalRequest{tid, depth, expression}));
  DIONEA_ASSIGN_OR_RETURN(proto::EvalResponse decoded,
                          proto::EvalResponse::from_wire(response));
  return std::move(decoded.value);
}

Result<std::optional<DebugEvent>> Session::recv_event(int timeout_millis) {
  if (!connected_) {
    return Error(ErrorCode::kClosed,
                 strings::format("session to pid %d is disconnected", pid_));
  }
  Stopwatch watch;
  while (true) {
    int remaining =
        timeout_millis - static_cast<int>(watch.elapsed_seconds() * 1000.0);
    if (remaining < 0) remaining = 0;
    // A quiet wire is only "no event yet" while the peer is still
    // beaconing — heartbeat silence past the budget means the peer is
    // gone even though the TCP connection looks healthy (SIGKILL'd
    // process, dead listener thread, pulled cable). Cap each wait at
    // the silence budget so the loss is declared when the budget runs
    // out, not when the caller's (possibly much longer) poll does.
    // An exhausted budget is judged only after a read attempt comes
    // back empty: a client that hasn't polled in a while must first
    // drain the beacons queued in the socket buffer, or it would
    // declare a healthy peer dead out of its own inattention. The
    // grace must be > 0 — a zero deadline times out before it ever
    // looks at the wire — and wide enough to ride out a slow frame.
    constexpr int kDrainGraceMillis = 50;
    int wire_wait = remaining;
    bool silence_exhausted = false;
    if (heartbeat_timeout_millis_ > 0) {
      int silence_left =
          heartbeat_timeout_millis_ -
          static_cast<int>((mono_seconds() - last_activity_) * 1000.0);
      if (silence_left <= 0) {
        silence_exhausted = true;
        wire_wait = kDrainGraceMillis;
      } else if (silence_left < wire_wait) {
        wire_wait = silence_left;
      }
    }
    auto frame = event_reader_.recv_timeout(events_, wire_wait);
    if (!frame.is_ok()) {
      if (frame.error().code() != ErrorCode::kTimeout) {
        return transport_lost(frame.error());
      }
      if (silence_exhausted) {
        return transport_lost(Error(
            ErrorCode::kClosed,
            strings::format("no heartbeat for %d ms",
                            heartbeat_timeout_millis_)));
      }
      if (remaining == 0) return std::optional<DebugEvent>();
      continue;
    }
    last_activity_ = mono_seconds();
    DebugEvent event;
    event.name = frame.value().get_string("event");
    event.kind = proto::event_from_name(event.name);
    // Transport-internal events never surface to users. The enum is
    // the authority for kinds this build knows; the wire's "internal"
    // flag covers internal events newer than this client (they decode
    // as kUnknown but must still be consumed here).
    if (proto::event_internal(event.kind) ||
        frame.value().get_bool("internal")) {
      continue;
    }
    if (event.kind == proto::Event::kTerminated) terminated_seen_ = true;
    event.payload = std::move(frame).value();
    return std::optional<DebugEvent>(std::move(event));
  }
}

Result<std::optional<DebugEvent>> Session::poll_event(int timeout_millis) {
  if (!replay_.empty()) {
    DebugEvent event = std::move(replay_.front());
    replay_.pop_front();
    return std::optional<DebugEvent>(std::move(event));
  }
  return recv_event(timeout_millis);
}

Result<DebugEvent> Session::wait_event(proto::Event kind,
                                       int timeout_millis) {
  return wait_event(proto::event_name(kind), timeout_millis);
}

Result<DebugEvent> Session::wait_event(const std::string& name,
                                       int timeout_millis) {
  // Scan the replay queue first.
  for (auto it = replay_.begin(); it != replay_.end(); ++it) {
    if (it->name == name) {
      DebugEvent event = std::move(*it);
      replay_.erase(it);
      return event;
    }
  }
  Stopwatch watch;
  while (true) {
    int remaining =
        timeout_millis - static_cast<int>(watch.elapsed_seconds() * 1000.0);
    if (remaining <= 0) {
      return Error(ErrorCode::kTimeout, "no '" + name + "' event");
    }
    DIONEA_ASSIGN_OR_RETURN(std::optional<DebugEvent> next,
                            recv_event(remaining));
    if (!next) {
      return Error(ErrorCode::kTimeout, "no '" + name + "' event");
    }
    if (next->name == name) return std::move(*next);
    replay_.push_back(std::move(*next));
  }
}

Result<StopInfo> Session::wait_stopped(int timeout_millis) {
  DIONEA_ASSIGN_OR_RETURN(DebugEvent event,
                          wait_event(proto::Event::kStopped, timeout_millis));
  StopInfo info;
  info.tid = event.payload.get_int("tid");
  info.file = event.payload.get_string("file");
  info.line = static_cast<int>(event.payload.get_int("line"));
  info.function = event.payload.get_string("function");
  info.reason = event.payload.get_string("reason");
  info.breakpoint_id = static_cast<int>(event.payload.get_int("breakpoint"));
  return info;
}

}  // namespace dionea::client
