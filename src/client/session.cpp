#include "client/session.hpp"

#include "support/strings.hpp"
#include "support/timing.hpp"

namespace dionea::client {

namespace proto = dbg::proto;
using ipc::wire::Value;

Result<std::unique_ptr<Session>> Session::attach(std::uint16_t port,
                                                 int timeout_millis) {
  auto session = std::unique_ptr<Session>(new Session());
  session->port_ = port;

  DIONEA_ASSIGN_OR_RETURN(session->control_,
                          ipc::TcpStream::connect_retry(port, timeout_millis));
  (void)session->control_.set_nodelay(true);
  DIONEA_RETURN_IF_ERROR(ipc::send_frame(
      session->control_, proto::make_hello(proto::kChannelControl, 0)));

  DIONEA_ASSIGN_OR_RETURN(session->events_,
                          ipc::TcpStream::connect_retry(port, timeout_millis));
  (void)session->events_.set_nodelay(true);
  DIONEA_RETURN_IF_ERROR(ipc::send_frame(
      session->events_, proto::make_hello(proto::kChannelEvents, 0)));

  // First ping doubles as the session handshake and pid discovery.
  DIONEA_ASSIGN_OR_RETURN(Value pong, session->request(proto::kCmdPing));
  session->pid_ = static_cast<int>(pong.get_int("pid"));
  return session;
}

Result<Value> Session::request(const std::string& cmd, Value args) {
  std::int64_t seq = next_seq_++;
  Value frame = std::move(args);
  frame.set("cmd", cmd);
  frame.set("seq", seq);
  DIONEA_RETURN_IF_ERROR(ipc::send_frame(control_, frame));
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          ipc::recv_frame_timeout(control_, 10'000));
  if (response.get_int("re") != seq) {
    return Error(ErrorCode::kProtocol,
                 strings::format("response out of order (want seq %lld)",
                                 static_cast<long long>(seq)));
  }
  if (!response.get_bool("ok")) {
    return Error(ErrorCode::kInvalidArgument,
                 cmd + " failed: " + response.get_string("error"));
  }
  return response;
}

Result<int> Session::set_breakpoint(const std::string& file, int line,
                                    std::int64_t tid, std::int64_t ignore) {
  Value args;
  args.set("file", file);
  args.set("line", line);
  if (tid != 0) args.set("tid", tid);
  if (ignore != 0) args.set("ignore", ignore);
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdBreakSet, std::move(args)));
  return static_cast<int>(response.get_int("id"));
}

Status Session::clear_breakpoint(int id) {
  Value args;
  args.set("id", id);
  return request(proto::kCmdBreakClear, std::move(args)).status();
}

namespace {
ipc::wire::Value tid_args(std::int64_t tid) {
  Value args;
  args.set("tid", tid);
  return args;
}
}  // namespace

Status Session::cont(std::int64_t tid) {
  return request(proto::kCmdContinue, tid_args(tid)).status();
}
Status Session::cont_all() { return request(proto::kCmdContinueAll).status(); }
Status Session::step(std::int64_t tid) {
  return request(proto::kCmdStep, tid_args(tid)).status();
}
Status Session::next(std::int64_t tid) {
  return request(proto::kCmdNext, tid_args(tid)).status();
}
Status Session::finish(std::int64_t tid) {
  return request(proto::kCmdFinish, tid_args(tid)).status();
}
Status Session::pause(std::int64_t tid) {
  return request(proto::kCmdPause, tid_args(tid)).status();
}
Status Session::pause_all() { return request(proto::kCmdPauseAll).status(); }

Status Session::set_disturb(bool on) {
  Value args;
  args.set("on", on);
  return request(proto::kCmdDisturb, std::move(args)).status();
}

Status Session::detach() { return request(proto::kCmdDetach).status(); }

Result<std::vector<RemoteThread>> Session::threads() {
  DIONEA_ASSIGN_OR_RETURN(Value response, request(proto::kCmdThreads));
  std::vector<RemoteThread> out;
  for (const Value& entry : response.at("threads").as_array()) {
    RemoteThread t;
    t.tid = entry.get_int("tid");
    t.name = entry.get_string("name");
    t.state = entry.get_string("state");
    t.file = entry.get_string("file");
    t.line = static_cast<int>(entry.get_int("line"));
    t.note = entry.get_string("note");
    t.depth = static_cast<int>(entry.get_int("depth"));
    out.push_back(std::move(t));
  }
  return out;
}

Result<std::vector<RemoteFrame>> Session::frames(std::int64_t tid) {
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdFrames, tid_args(tid)));
  std::vector<RemoteFrame> out;
  for (const Value& entry : response.at("frames").as_array()) {
    out.push_back(RemoteFrame{entry.get_string("function"),
                              entry.get_string("file"),
                              static_cast<int>(entry.get_int("line"))});
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> Session::locals(
    std::int64_t tid, int depth) {
  Value args;
  args.set("tid", tid);
  args.set("depth", depth);
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdLocals, std::move(args)));
  std::vector<std::pair<std::string, std::string>> out;
  for (const Value& entry : response.at("locals").as_array()) {
    out.emplace_back(entry.get_string("name"), entry.get_string("value"));
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> Session::globals() {
  DIONEA_ASSIGN_OR_RETURN(Value response, request(proto::kCmdGlobals));
  std::vector<std::pair<std::string, std::string>> out;
  for (const Value& entry : response.at("globals").as_array()) {
    out.emplace_back(entry.get_string("name"), entry.get_string("value"));
  }
  return out;
}

Result<std::string> Session::source(const std::string& file) {
  Value args;
  args.set("file", file);
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdSource, std::move(args)));
  return response.get_string("text");
}

Result<std::string> Session::eval(std::int64_t tid,
                                  const std::string& expression, int depth) {
  Value args;
  args.set("tid", tid);
  args.set("depth", depth);
  args.set("expr", expression);
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdEval, std::move(args)));
  return response.get_string("value");
}

Result<std::optional<DebugEvent>> Session::poll_event(int timeout_millis) {
  if (!replay_.empty()) {
    DebugEvent event = std::move(replay_.front());
    replay_.pop_front();
    return std::optional<DebugEvent>(std::move(event));
  }
  auto frame = ipc::recv_frame_timeout(events_, timeout_millis);
  if (!frame.is_ok()) {
    if (frame.error().code() == ErrorCode::kTimeout) {
      return std::optional<DebugEvent>();
    }
    return frame.error();
  }
  DebugEvent event;
  event.name = frame.value().get_string("event");
  event.payload = std::move(frame).value();
  return std::optional<DebugEvent>(std::move(event));
}

Result<DebugEvent> Session::wait_event(const std::string& name,
                                       int timeout_millis) {
  // Scan the replay queue first.
  for (auto it = replay_.begin(); it != replay_.end(); ++it) {
    if (it->name == name) {
      DebugEvent event = std::move(*it);
      replay_.erase(it);
      return event;
    }
  }
  Stopwatch watch;
  while (true) {
    int remaining =
        timeout_millis - static_cast<int>(watch.elapsed_seconds() * 1000.0);
    if (remaining <= 0) {
      return Error(ErrorCode::kTimeout, "no '" + name + "' event");
    }
    auto frame = ipc::recv_frame_timeout(events_, remaining);
    if (!frame.is_ok()) {
      if (frame.error().code() == ErrorCode::kTimeout) {
        return Error(ErrorCode::kTimeout, "no '" + name + "' event");
      }
      return frame.error();
    }
    DebugEvent event;
    event.name = frame.value().get_string("event");
    event.payload = std::move(frame).value();
    if (event.name == name) return event;
    replay_.push_back(std::move(event));
  }
}

Result<StopInfo> Session::wait_stopped(int timeout_millis) {
  DIONEA_ASSIGN_OR_RETURN(DebugEvent event,
                          wait_event(proto::kEvStopped, timeout_millis));
  StopInfo info;
  info.tid = event.payload.get_int("tid");
  info.file = event.payload.get_string("file");
  info.line = static_cast<int>(event.payload.get_int("line"));
  info.function = event.payload.get_string("function");
  info.reason = event.payload.get_string("reason");
  info.breakpoint_id = static_cast<int>(event.payload.get_int("breakpoint"));
  return info;
}

}  // namespace dionea::client
