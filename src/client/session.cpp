#include "client/session.hpp"

#include "support/strings.hpp"
#include "support/timing.hpp"

namespace dionea::client {

namespace proto = dbg::proto;
using ipc::wire::Value;

Result<std::unique_ptr<Session>> Session::attach(std::uint16_t port,
                                                 int timeout_millis) {
  auto session = std::unique_ptr<Session>(new Session());
  session->port_ = port;

  DIONEA_ASSIGN_OR_RETURN(session->control_,
                          ipc::TcpStream::connect_retry(port, timeout_millis));
  (void)session->control_.set_nodelay(true);
  DIONEA_RETURN_IF_ERROR(ipc::send_frame(
      session->control_, proto::make_hello(proto::kChannelControl, 0)));

  DIONEA_ASSIGN_OR_RETURN(session->events_,
                          ipc::TcpStream::connect_retry(port, timeout_millis));
  (void)session->events_.set_nodelay(true);
  DIONEA_RETURN_IF_ERROR(ipc::send_frame(
      session->events_, proto::make_hello(proto::kChannelEvents, 0)));

  // First ping doubles as the session handshake and pid discovery.
  // The server advertises its beacon period there; 5 missed beats =
  // dead peer.
  DIONEA_ASSIGN_OR_RETURN(Value pong, session->request(proto::kCmdPing));
  session->pid_ = static_cast<int>(pong.get_int("pid"));
  int heartbeat_ms = static_cast<int>(pong.get_int("heartbeat_ms"));
  if (heartbeat_ms > 0) session->heartbeat_timeout_millis_ = 5 * heartbeat_ms;
  session->last_activity_ = mono_seconds();
  return session;
}

void Session::hard_close() {
  control_ = ipc::TcpStream();
  events_ = ipc::TcpStream();
  event_reader_.reset();
  connected_ = false;
}

Error Session::transport_lost(const Error& err) {
  connected_ = false;
  return Error(err.code(),
               strings::format("session to pid %d lost: %s", pid_,
                               err.message().c_str()));
}

Result<Value> Session::request(const std::string& cmd, Value args) {
  if (!connected_) {
    return Error(ErrorCode::kClosed,
                 strings::format("session to pid %d is disconnected", pid_));
  }
  std::int64_t seq = next_seq_++;
  Value frame = std::move(args);
  frame.set("cmd", cmd);
  frame.set("seq", seq);
  if (Status sent = ipc::send_frame(control_, frame); !sent.is_ok()) {
    return transport_lost(sent.error());
  }
  auto received = ipc::recv_frame_timeout(control_, request_timeout_millis_);
  if (!received.is_ok()) return transport_lost(received.error());
  // A round trip on the control channel is proof of life too — it
  // keeps an interactive client (long gaps between event polls) from
  // mistaking its own inattention for peer silence.
  last_activity_ = mono_seconds();
  Value response = std::move(received).value();
  if (response.get_int("re") != seq) {
    // A mismatched seq means the framing itself is out of step; no
    // later exchange on this channel can be trusted.
    connected_ = false;
    return Error(ErrorCode::kProtocol,
                 strings::format("response out of order (want seq %lld)",
                                 static_cast<long long>(seq)));
  }
  if (!response.get_bool("ok")) {
    return Error(ErrorCode::kInvalidArgument,
                 cmd + " failed: " + response.get_string("error"));
  }
  return response;
}

Result<int> Session::set_breakpoint(const std::string& file, int line,
                                    std::int64_t tid, std::int64_t ignore) {
  Value args;
  args.set("file", file);
  args.set("line", line);
  if (tid != 0) args.set("tid", tid);
  if (ignore != 0) args.set("ignore", ignore);
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdBreakSet, std::move(args)));
  int id = static_cast<int>(response.get_int("id"));
  breakpoints_set_.push_back(BreakpointSpec{file, line, tid, ignore, id});
  return id;
}

Status Session::clear_breakpoint(int id) {
  Value args;
  args.set("id", id);
  DIONEA_RETURN_IF_ERROR(
      request(proto::kCmdBreakClear, std::move(args)).status());
  if (id == 0) {
    breakpoints_set_.clear();
  } else {
    std::erase_if(breakpoints_set_,
                  [id](const BreakpointSpec& bp) { return bp.id == id; });
  }
  return Status::ok();
}

namespace {
ipc::wire::Value tid_args(std::int64_t tid) {
  Value args;
  args.set("tid", tid);
  return args;
}
}  // namespace

Status Session::cont(std::int64_t tid) {
  return request(proto::kCmdContinue, tid_args(tid)).status();
}
Status Session::cont_all() { return request(proto::kCmdContinueAll).status(); }
Status Session::step(std::int64_t tid) {
  return request(proto::kCmdStep, tid_args(tid)).status();
}
Status Session::next(std::int64_t tid) {
  return request(proto::kCmdNext, tid_args(tid)).status();
}
Status Session::finish(std::int64_t tid) {
  return request(proto::kCmdFinish, tid_args(tid)).status();
}
Status Session::pause(std::int64_t tid) {
  return request(proto::kCmdPause, tid_args(tid)).status();
}
Status Session::pause_all() { return request(proto::kCmdPauseAll).status(); }

Status Session::set_disturb(bool on) {
  Value args;
  args.set("on", on);
  return request(proto::kCmdDisturb, std::move(args)).status();
}

Status Session::detach() { return request(proto::kCmdDetach).status(); }

Result<std::vector<RemoteThread>> Session::threads() {
  DIONEA_ASSIGN_OR_RETURN(Value response, request(proto::kCmdThreads));
  std::vector<RemoteThread> out;
  for (const Value& entry : response.at("threads").as_array()) {
    RemoteThread t;
    t.tid = entry.get_int("tid");
    t.name = entry.get_string("name");
    t.state = entry.get_string("state");
    t.file = entry.get_string("file");
    t.line = static_cast<int>(entry.get_int("line"));
    t.note = entry.get_string("note");
    t.depth = static_cast<int>(entry.get_int("depth"));
    out.push_back(std::move(t));
  }
  return out;
}

Result<std::vector<RemoteFrame>> Session::frames(std::int64_t tid) {
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdFrames, tid_args(tid)));
  std::vector<RemoteFrame> out;
  for (const Value& entry : response.at("frames").as_array()) {
    out.push_back(RemoteFrame{entry.get_string("function"),
                              entry.get_string("file"),
                              static_cast<int>(entry.get_int("line"))});
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> Session::locals(
    std::int64_t tid, int depth) {
  Value args;
  args.set("tid", tid);
  args.set("depth", depth);
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdLocals, std::move(args)));
  std::vector<std::pair<std::string, std::string>> out;
  for (const Value& entry : response.at("locals").as_array()) {
    out.emplace_back(entry.get_string("name"), entry.get_string("value"));
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> Session::globals() {
  DIONEA_ASSIGN_OR_RETURN(Value response, request(proto::kCmdGlobals));
  std::vector<std::pair<std::string, std::string>> out;
  for (const Value& entry : response.at("globals").as_array()) {
    out.emplace_back(entry.get_string("name"), entry.get_string("value"));
  }
  return out;
}

Result<std::string> Session::source(const std::string& file) {
  Value args;
  args.set("file", file);
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdSource, std::move(args)));
  return response.get_string("text");
}

Result<std::string> Session::eval(std::int64_t tid,
                                  const std::string& expression, int depth) {
  Value args;
  args.set("tid", tid);
  args.set("depth", depth);
  args.set("expr", expression);
  DIONEA_ASSIGN_OR_RETURN(Value response,
                          request(proto::kCmdEval, std::move(args)));
  return response.get_string("value");
}

Result<std::optional<DebugEvent>> Session::recv_event(int timeout_millis) {
  if (!connected_) {
    return Error(ErrorCode::kClosed,
                 strings::format("session to pid %d is disconnected", pid_));
  }
  Stopwatch watch;
  while (true) {
    int remaining =
        timeout_millis - static_cast<int>(watch.elapsed_seconds() * 1000.0);
    if (remaining < 0) remaining = 0;
    // A quiet wire is only "no event yet" while the peer is still
    // beaconing — heartbeat silence past the budget means the peer is
    // gone even though the TCP connection looks healthy (SIGKILL'd
    // process, dead listener thread, pulled cable). Cap each wait at
    // the silence budget so the loss is declared when the budget runs
    // out, not when the caller's (possibly much longer) poll does.
    // An exhausted budget is judged only after a read attempt comes
    // back empty: a client that hasn't polled in a while must first
    // drain the beacons queued in the socket buffer, or it would
    // declare a healthy peer dead out of its own inattention. The
    // grace must be > 0 — a zero deadline times out before it ever
    // looks at the wire — and wide enough to ride out a slow frame.
    constexpr int kDrainGraceMillis = 50;
    int wire_wait = remaining;
    bool silence_exhausted = false;
    if (heartbeat_timeout_millis_ > 0) {
      int silence_left =
          heartbeat_timeout_millis_ -
          static_cast<int>((mono_seconds() - last_activity_) * 1000.0);
      if (silence_left <= 0) {
        silence_exhausted = true;
        wire_wait = kDrainGraceMillis;
      } else if (silence_left < wire_wait) {
        wire_wait = silence_left;
      }
    }
    auto frame = event_reader_.recv_timeout(events_, wire_wait);
    if (!frame.is_ok()) {
      if (frame.error().code() != ErrorCode::kTimeout) {
        return transport_lost(frame.error());
      }
      if (silence_exhausted) {
        return transport_lost(Error(
            ErrorCode::kClosed,
            strings::format("no heartbeat for %d ms",
                            heartbeat_timeout_millis_)));
      }
      if (remaining == 0) return std::optional<DebugEvent>();
      continue;
    }
    last_activity_ = mono_seconds();
    DebugEvent event;
    event.name = frame.value().get_string("event");
    if (event.name == proto::kEvHeartbeat) continue;  // transport-internal
    if (event.name == proto::kEvTerminated) terminated_seen_ = true;
    event.payload = std::move(frame).value();
    return std::optional<DebugEvent>(std::move(event));
  }
}

Result<std::optional<DebugEvent>> Session::poll_event(int timeout_millis) {
  if (!replay_.empty()) {
    DebugEvent event = std::move(replay_.front());
    replay_.pop_front();
    return std::optional<DebugEvent>(std::move(event));
  }
  return recv_event(timeout_millis);
}

Result<DebugEvent> Session::wait_event(const std::string& name,
                                       int timeout_millis) {
  // Scan the replay queue first.
  for (auto it = replay_.begin(); it != replay_.end(); ++it) {
    if (it->name == name) {
      DebugEvent event = std::move(*it);
      replay_.erase(it);
      return event;
    }
  }
  Stopwatch watch;
  while (true) {
    int remaining =
        timeout_millis - static_cast<int>(watch.elapsed_seconds() * 1000.0);
    if (remaining <= 0) {
      return Error(ErrorCode::kTimeout, "no '" + name + "' event");
    }
    DIONEA_ASSIGN_OR_RETURN(std::optional<DebugEvent> next,
                            recv_event(remaining));
    if (!next) {
      return Error(ErrorCode::kTimeout, "no '" + name + "' event");
    }
    if (next->name == name) return std::move(*next);
    replay_.push_back(std::move(*next));
  }
}

Result<StopInfo> Session::wait_stopped(int timeout_millis) {
  DIONEA_ASSIGN_OR_RETURN(DebugEvent event,
                          wait_event(proto::kEvStopped, timeout_millis));
  StopInfo info;
  info.tid = event.payload.get_int("tid");
  info.file = event.payload.get_string("file");
  info.line = static_cast<int>(event.payload.get_int("line"));
  info.function = event.payload.get_string("function");
  info.reason = event.payload.get_string("reason");
  info.breakpoint_id = static_cast<int>(event.payload.get_int("breakpoint"));
  return info;
}

}  // namespace dionea::client
