// Session-addressed client API (the 1.5 redesign).
//
// The older MultiClient exposes debuggees by pid, which only works
// when the client itself discovers every process (port-file tailing).
// Behind a hub the client holds ONE connection and addresses sessions
// by hub-assigned id; pids are advisory. Client unifies the three
// transports behind one handle-centric surface:
//
//  - discover(port_file): the classic §5.3 mode. One Session per
//    debuggee, handles are pids (stable across reconnects — the hub
//    property holds trivially).
//  - connect(port): single endpoint. If the peer advertises the `hub`
//    capability, handles are hub session ids and every request rides
//    the shared connection with a session_id envelope stamp. If not,
//    the client downgrades to plain 1.4 single-session behavior over
//    the same code path (handle = the one pid).
//
// Handles survive reconnect() in every mode: they name the session,
// not the socket.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/multi_client.hpp"
#include "client/session.hpp"
#include "debugger/protocol.hpp"
#include "support/result.hpp"

namespace dionea::client {

// Opaque, stable address of one debuggee session. In discover() mode
// the id happens to equal the pid; against a hub it is the hub's
// session id. Code should not rely on either beyond display.
struct SessionHandle {
  std::int64_t id = 0;
  bool valid() const noexcept { return id != 0; }
  bool operator==(const SessionHandle&) const = default;
  bool operator<(const SessionHandle& other) const noexcept {
    return id < other.id;
  }
};

class Client {
 public:
  // Port-file discovery mode (direct sessions, one per debuggee).
  static std::unique_ptr<Client> discover(std::string port_file_path);

  // Single-endpoint mode: hub when the peer advertises kCapHub,
  // single-session downgrade otherwise.
  static Result<std::unique_ptr<Client>> connect(std::uint16_t port,
                                                 int timeout_millis);

  bool hub_mode() const noexcept { return mode_ == Mode::kHub; }

  // Adopt sessions that appeared since the last call (new port-file
  // records / new hub registrations). Returns how many are new.
  Result<int> refresh(int timeout_millis);

  // Known live sessions, in handle order.
  std::vector<SessionHandle> sessions() const;
  size_t session_count() const;
  SessionHandle handle_for_pid(int pid) const;
  int pid_of(SessionHandle handle) const;

  // Attach to the session debugging `pid`, waiting for it to appear
  // (a fork handler may still be publishing it). Claims the session.
  Result<SessionHandle> attach(int pid, int timeout_millis);
  // Attach to the next session nobody has claimed yet (fork-storm
  // adoption: each call hands out a different child).
  Result<SessionHandle> attach_any(int timeout_millis);
  void claim(SessionHandle handle);

  // The Session to speak through for `handle`. In hub mode this is the
  // shared hub connection with its route set to the handle — use it
  // and re-fetch rather than caching across handles. Null when the
  // handle is unknown.
  Session* session(SessionHandle handle);

  void drop(SessionHandle handle);

  // Re-establish transport for `handle` with capped exponential
  // backoff. The handle keeps working afterwards — in hub mode the ids
  // live in the hub, in discover mode the pid re-binds to the new
  // port record (breakpoints re-applied).
  Result<Session*> reconnect(SessionHandle handle,
                             const ReconnectPolicy& policy = {});

  // Out-of-band child-exit observation (mp::ChildReaper), direct modes
  // only; the hub synthesizes these itself.
  void note_child_exit(int pid, int exit_code, int term_signal);
  std::string crash_report_path(SessionHandle handle) const;

  // ---- debug views (§4.2) ----
  struct View {
    SessionHandle session;
    std::int64_t tid = 0;
    bool valid() const noexcept { return session.valid(); }
  };
  Status activate(SessionHandle handle, std::int64_t tid);
  View active_view() const;
  Result<std::string> active_source();
  Result<std::vector<RemoteFrame>> active_frames();

  // ---- events ----
  struct SessionEvent {
    SessionHandle session;
    DebugEvent event;
  };
  // Drain pending events across every session. A dead session yields
  // one synthesized process-exited/process-crashed and is then muted.
  Result<std::vector<SessionEvent>> poll_events(int timeout_millis);

  // ---- hub-specific (kUnavailable in other modes) ----
  Result<std::vector<dbg::proto::HubSessionEntry>> hub_sessions();
  // Subscribe the events channel to every session, present and future.
  // connect() does this automatically in hub mode.
  Status hub_attach_all();

  // Deprecated escape hatch for code mid-migration: the underlying
  // MultiClient in discover() mode, null otherwise.
  MultiClient* legacy() noexcept { return multi_.get(); }

 private:
  enum class Mode { kDiscover, kHub, kSingle };

  Client() = default;
  Status hub_handshake(std::uint16_t port, int timeout_millis);
  Result<int> hub_refresh(int timeout_millis);
  Session* routed(std::int64_t session_id);

  Mode mode_ = Mode::kDiscover;

  // kDiscover
  std::unique_ptr<MultiClient> multi_;

  // kHub / kSingle: the one connection.
  std::unique_ptr<Session> link_;
  std::uint16_t endpoint_port_ = 0;
  std::string token_;

  // kHub bookkeeping.
  std::map<std::int64_t, dbg::proto::HubSessionEntry> known_;
  std::deque<std::int64_t> unclaimed_;
  std::set<std::int64_t> claimed_;
  std::set<std::int64_t> reported_dead_;
  std::map<std::int64_t, std::string> crash_reports_;
  std::deque<SessionEvent> pending_events_;  // note_child_exit, kSingle
  View active_{};
};

}  // namespace dionea::client
