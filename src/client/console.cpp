#include "client/console.hpp"

#include "replay/timetravel.hpp"
#include "support/strings.hpp"

namespace dionea::client {

namespace proto = dbg::proto;

namespace {

std::string render_threads(const std::vector<RemoteThread>& threads) {
  std::string out;
  for (const RemoteThread& t : threads) {
    out += strings::format("  [%lld] %-10s %-9s %s:%d %s\n",
                           static_cast<long long>(t.tid), t.name.c_str(),
                           t.state.c_str(), t.file.c_str(), t.line,
                           t.note.c_str());
  }
  return out.empty() ? "  (no threads)\n" : out;
}

std::string render_stats(const proto::StatsResponse& stats) {
  std::string out = strings::format("  pid %d (zero-valued metrics hidden)\n",
                                    stats.pid);
  out += "  counters:\n";
  for (const auto& [name, value] : stats.counters) {
    if (value == 0) continue;
    out += strings::format("    %-24s %lld\n", name.c_str(),
                           static_cast<long long>(value));
  }
  for (const auto& [name, value] : stats.gauges) {
    if (value == 0) continue;
    out += strings::format("    %-24s %lld  (gauge)\n", name.c_str(),
                           static_cast<long long>(value));
  }
  out += "  latencies (us):          mean      p50      p99      max\n";
  for (const proto::StatsHistogram& h : stats.histograms) {
    if (h.count == 0) continue;
    out += strings::format(
        "    %-22s %8.1f %8.1f %8.1f %8.1f  n=%llu\n", h.name.c_str(),
        h.mean_nanos() / 1000.0, static_cast<double>(h.p50_nanos) / 1000.0,
        static_cast<double>(h.p99_nanos) / 1000.0,
        static_cast<double>(h.max_nanos) / 1000.0,
        static_cast<unsigned long long>(h.count));
  }
  return out;
}

std::string render_findings(const std::vector<proto::AnalysisFindingWire>& fs) {
  std::string out;
  for (const proto::AnalysisFindingWire& f : fs) {
    out += strings::format(
        "    [%s] %s at %s\n", f.kind.c_str(), f.message.c_str(),
        strings::source_location(f.file, static_cast<int>(f.line)).c_str());
    if (!f.object.empty()) {
      out += strings::format("      object: %s\n", f.object.c_str());
    }
    if (!f.file2.empty()) {
      out += strings::format(
          "      see also %s\n",
          strings::source_location(f.file2, static_cast<int>(f.line2))
              .c_str());
    }
  }
  return out.empty() ? "    (none)\n" : out;
}

bool parse_location(const std::string& arg, std::string* file, int* line) {
  size_t colon = arg.rfind(':');
  if (colon == std::string::npos) return false;
  std::int64_t parsed = 0;
  if (!strings::parse_int(arg.substr(colon + 1), &parsed)) return false;
  *file = arg.substr(0, colon);
  *line = static_cast<int>(parsed);
  return true;
}

}  // namespace

std::string Console::help() {
  return
      "commands:\n"
      "  session list          list sessions (hub ids, pids, liveness)\n"
      "  session use <id> [tid]  activate a session by id\n"
      "  procs                 list attached processes\n"
      "  refresh               adopt newly forked processes\n"
      "  use <pid> [tid]       activate a debug view by pid\n"
      "  threads               threads of the active session\n"
      "  frames                stack of the active view\n"
      "  locals [depth]        locals of the active view\n"
      "  p <expr>              evaluate an expression in the active view\n"
      "  globals               globals of the active session\n"
      "  source                source of the active view\n"
      "  break <file>:<line>   set breakpoint\n"
      "  delete <id>           delete breakpoint (0 = all)\n"
      "  c [tid]               continue (active or given thread)\n"
      "  ca                    continue all threads\n"
      "  s | n | fin           step into / over / out\n"
      "  pause [tid]           suspend at next line\n"
      "  pauseall              suspend every thread\n"
      "  disturb on|off        stop new UEs at birth (§6.4)\n"
      "  stats [id]            debugger overhead metrics of a session\n"
      "  replay [id]           record/replay status of a session\n"
      "  races [id]            dynamic race/deadlock findings of a session\n"
      "  lint [id]             run the static concurrency lint remotely\n"
      "  forklint [id]         run the fork-safety analysis (bytecode\n"
      "                        dataflow + native atfork audit) remotely\n"
      "  postmortem [id] [now]  crash report of a session; `now` snapshots\n"
      "                        the live process as if it had crashed\n"
      "  checkpoint [id]       time-travel checkpoint ring of a session\n"
      "  rbreak [step]         set (or list) reverse breakpoints at replay steps\n"
      "  rstep [n]             fork back n recorded steps (default 1)\n"
      "  rcontinue             reverse-continue to the nearest earlier rbreak\n"
      "  events                drain pending events\n"
      "  reconnect <id>        reattach to a lost session\n"
      "  quit                  leave the console\n"
      "([id] is a hub session id or a pid; the session id wins.)\n";
}

std::string Console::prompt() const {
  Client::View view = client_.active_view();
  if (!view.valid()) return "dionea> ";
  return strings::format("dionea[s%lld]> ",
                         static_cast<long long>(view.session.id));
}

SessionHandle Console::resolve(std::int64_t number) const {
  for (SessionHandle handle : client_.sessions()) {
    if (handle.id == number) return handle;
  }
  return client_.handle_for_pid(static_cast<int>(number));
}

Session* Console::active_session(std::string* error_out) {
  Client::View view = client_.active_view();
  if (!view.valid()) {
    // Fall back to the only session if there is exactly one.
    std::vector<SessionHandle> all = client_.sessions();
    if (all.size() == 1) {
      (void)client_.activate(all[0], 1);
      view = client_.active_view();
    }
  }
  if (!view.valid()) {
    *error_out = "no active view; use `session use <id>` or `use <pid>`\n";
    return nullptr;
  }
  Session* session = client_.session(view.session);
  if (session == nullptr) {
    *error_out = "active session is gone\n";
  }
  return session;
}

std::string Console::session_verb(const std::vector<std::string>& words) {
  const std::string usage = "usage: session list | session use <id> [tid]\n";
  if (words.size() < 2) return usage;
  if (words[1] == "list") {
    (void)client_.refresh(500);
    Client::View view = client_.active_view();
    std::string out;
    for (SessionHandle handle : client_.sessions()) {
      Session* s = client_.session(handle);
      out += strings::format(
          "  s%-5lld pid %-7d%s%s\n", static_cast<long long>(handle.id),
          client_.pid_of(handle),
          view.session == handle ? "  (active)" : "",
          s != nullptr && !s->connected() ? "  (disconnected)" : "");
    }
    return out.empty() ? "  (no sessions)\n" : out;
  }
  if (words[1] == "use") {
    if (words.size() < 3) return usage;
    std::int64_t id = 0;
    std::int64_t tid = 1;
    if (!strings::parse_int(words[2], &id) ||
        (words.size() > 3 && !strings::parse_int(words[3], &tid))) {
      return usage;
    }
    SessionHandle handle = resolve(id);
    if (!handle.valid()) {
      return strings::format("  no session %lld\n",
                             static_cast<long long>(id));
    }
    Status status = client_.activate(handle, tid);
    if (!status.is_ok()) return status.to_string() + "\n";
    return strings::format("  view: session s%lld thread %lld\n",
                           static_cast<long long>(handle.id),
                           static_cast<long long>(tid));
  }
  return usage;
}

std::string Console::reverse_verb(const std::vector<std::string>& words) {
  using replay::tt::CheckpointManager;
  const std::string& cmd = words[0];

  if (cmd == "rbreak") {
    if (words.size() < 2) {
      if (rbreaks_.empty()) return "  (no reverse breakpoints)\n";
      std::string out;
      for (std::uint64_t step : rbreaks_) {
        out += strings::format("  rbreak @%llu\n",
                               static_cast<unsigned long long>(step));
      }
      return out;
    }
    std::int64_t step = 0;
    if (!strings::parse_int(words[1], &step) || step <= 0) {
      return "usage: rbreak [step]\n";
    }
    rbreaks_.push_back(static_cast<std::uint64_t>(step));
    return strings::format("  rbreak @%lld set\n",
                           static_cast<long long>(step));
  }

  std::string error;
  Session* session = active_session(&error);
  if (session == nullptr) return error;
  auto info = session->timetravel_info();
  if (!info.is_ok()) return info.error().to_string() + "\n";
  if (!info.value().active) {
    return "  time travel off (set DIONEA_CKPT_EVERY under DIONEA_REPLAY)\n";
  }
  const std::uint64_t current =
      static_cast<std::uint64_t>(info.value().step);

  std::uint64_t target = 0;
  if (cmd == "rstep") {
    std::int64_t n = 1;
    if (words.size() > 1 && (!strings::parse_int(words[1], &n) || n <= 0)) {
      return "usage: rstep [n]\n";
    }
    target = CheckpointManager::resolve_rstep(current,
                                              static_cast<std::uint64_t>(n));
  } else {  // rcontinue
    std::int64_t best = CheckpointManager::resolve_rcontinue(rbreaks_, current);
    if (best < 0) {
      return strings::format(
          "  no reverse breakpoint before step %llu (set one with rbreak)\n",
          static_cast<unsigned long long>(current));
    }
    target = static_cast<std::uint64_t>(best);
  }
  if (target == 0) target = 1;

  auto resumed = session->timetravel_resume(static_cast<std::int64_t>(target));
  if (!resumed.is_ok()) return resumed.error().to_string() + "\n";
  const auto& r = resumed.value();

  // Transparent re-point: the resumer registers itself (fork handler
  // C) as it starts; adopt its session as the active view as soon as
  // it shows up.
  for (int attempt = 0; attempt < 20; ++attempt) {
    (void)client_.refresh(250);
    SessionHandle handle = client_.handle_for_pid(r.pid);
    if (handle.valid()) {
      (void)client_.activate(handle, 1);
      return strings::format(
          "  reverse to step %lld via checkpoint @%lld: now viewing pid %d\n"
          "  (replaying forward to the target; it freezes there)\n",
          static_cast<long long>(r.target_step),
          static_cast<long long>(r.checkpoint_step), r.pid);
    }
  }
  return strings::format(
      "  resumer pid %d launched toward step %lld; session not visible yet "
      "— try `refresh`\n",
      r.pid, static_cast<long long>(r.target_step));
}

std::string Console::execute(const std::string& line) {
  std::vector<std::string> words = strings::split_whitespace(line);
  if (words.empty()) return "";
  const std::string& cmd = words[0];

  if (cmd == "help") return help();
  if (cmd == "quit" || cmd == "q") {
    quit_ = true;
    return "";
  }

  if (cmd == "session") return session_verb(words);

  if (cmd == "procs") {
    Client::View view = client_.active_view();
    std::string out;
    for (SessionHandle handle : client_.sessions()) {
      Session* s = client_.session(handle);
      out += strings::format("  pid %d%s%s\n", client_.pid_of(handle),
                             view.session == handle ? "  (active)" : "",
                             s && !s->connected() ? "  (disconnected)" : "");
    }
    return out.empty() ? "  (no processes)\n" : out;
  }

  if (cmd == "refresh") {
    auto added = client_.refresh(2000);
    if (!added.is_ok()) return added.error().to_string() + "\n";
    return strings::format("  %d new process(es)\n", added.value());
  }

  if (cmd == "use") {
    if (words.size() < 2) return "usage: use <pid> [tid]\n";
    std::int64_t pid = 0;
    std::int64_t tid = 1;
    if (!strings::parse_int(words[1], &pid) ||
        (words.size() > 2 && !strings::parse_int(words[2], &tid))) {
      return "usage: use <pid> [tid]\n";
    }
    SessionHandle handle = client_.handle_for_pid(static_cast<int>(pid));
    if (!handle.valid()) {
      return strings::format("  no session for pid %lld\n",
                             static_cast<long long>(pid));
    }
    Status status = client_.activate(handle, tid);
    if (!status.is_ok()) return status.to_string() + "\n";
    return strings::format("  view: pid %lld thread %lld\n",
                           static_cast<long long>(pid),
                           static_cast<long long>(tid));
  }

  if (cmd == "reconnect") {
    if (words.size() < 2) return "usage: reconnect <id>\n";
    std::int64_t id = 0;
    if (!strings::parse_int(words[1], &id)) {
      return "usage: reconnect <id>\n";
    }
    SessionHandle handle = resolve(id);
    if (!handle.valid()) handle = SessionHandle{id};  // may be re-published
    auto revived = client_.reconnect(handle);
    if (!revived.is_ok()) return revived.error().to_string() + "\n";
    return strings::format("  reattached to session %lld (%zu breakpoint(s) "
                           "restored)\n",
                           static_cast<long long>(handle.id),
                           revived.value()->breakpoints_set().size());
  }

  if (cmd == "events") {
    // Drains every session's pending events; needs no active view.
    auto events = client_.poll_events(50);
    if (!events.is_ok()) return events.error().to_string() + "\n";
    std::string out;
    for (const Client::SessionEvent& se : events.value()) {
      out += strings::format("  [s%lld pid %d] %s %s\n",
                             static_cast<long long>(se.session.id),
                             client_.pid_of(se.session),
                             se.event.name.c_str(),
                             se.event.payload.to_json().c_str());
    }
    return out.empty() ? "  (no events)\n" : out;
  }

  if (cmd == "rbreak" || cmd == "rstep" || cmd == "rcontinue") {
    return reverse_verb(words);
  }

  if (cmd == "stats" || cmd == "replay" || cmd == "races" || cmd == "lint" ||
      cmd == "forklint" || cmd == "postmortem" || cmd == "checkpoint") {
    Session* target = nullptr;
    bool capture = false;
    std::int64_t id = 0;
    for (size_t i = 1; i < words.size(); ++i) {
      if (cmd == "postmortem" && words[i] == "now") {
        capture = true;
      } else if (!strings::parse_int(words[i], &id)) {
        return strings::format("usage: %s [id]%s\n", cmd.c_str(),
                               cmd == "postmortem" ? " [now]" : "");
      }
    }
    SessionHandle target_handle{};
    if (id != 0) {
      target_handle = resolve(id);
      if (!target_handle.valid()) {
        return strings::format("  no session %lld\n",
                               static_cast<long long>(id));
      }
      target = client_.session(target_handle);
      if (target == nullptr) {
        return strings::format("  no session %lld\n",
                               static_cast<long long>(id));
      }
    } else {
      std::string error;
      target = active_session(&error);
      if (target == nullptr) return error;
      target_handle = client_.active_view().session;
    }

    if (cmd == "checkpoint") {
      auto info = target->timetravel_info();
      if (!info.is_ok()) return info.error().to_string() + "\n";
      const auto& t = info.value();
      if (!t.active) {
        return "  time travel off (set DIONEA_CKPT_EVERY under "
               "DIONEA_REPLAY)\n";
      }
      std::string out = strings::format(
          "  time travel: role %s, step %lld/%lld, every %lld, "
          "ring %zu/%d (taken %lld, evicted %lld, dead %lld)\n",
          t.role.c_str(), static_cast<long long>(t.step),
          static_cast<long long>(t.total_steps),
          static_cast<long long>(t.every), t.checkpoints.size(), t.max_live,
          static_cast<long long>(t.taken), static_cast<long long>(t.evicted),
          static_cast<long long>(t.dead));
      for (const auto& ckpt : t.checkpoints) {
        out += strings::format("    @%-8lld pid %-7d %s\n",
                               static_cast<long long>(ckpt.step), ckpt.pid,
                               ckpt.alive ? "live" : "dead");
      }
      if (t.stop_at > 0) {
        out += strings::format("    stop gate armed at step %lld\n",
                               static_cast<long long>(t.stop_at));
      }
      return out;
    }

    if (cmd == "stats") {
      auto stats = target->stats();
      if (!stats.is_ok()) return stats.error().to_string() + "\n";
      return render_stats(stats.value());
    }

    if (cmd == "replay") {
      auto info = target->replay_info();
      if (!info.is_ok()) return info.error().to_string() + "\n";
      const auto& r = info.value();
      if (r.mode == "off") {
        return strings::format("  [pid %d] replay engine off\n", r.pid);
      }
      std::string out = strings::format(
          "  [pid %d] mode %s, step %lld", r.pid, r.mode.c_str(),
          static_cast<long long>(r.step));
      if (r.mode != "record") {
        out += strings::format("/%lld", static_cast<long long>(r.total_steps));
      }
      out += strings::format(", log %s\n", r.log_path.c_str());
      if (r.divergence_step >= 0) {
        out += strings::format("  diverged at step %lld: %s\n",
                               static_cast<long long>(r.divergence_step),
                               r.divergence_reason.c_str());
      }
      return out;
    }

    if (cmd == "postmortem") {
      if (!target->connected()) {
        // The process is gone; the corpse (if any) is on disk — its
        // path came down the wire with the process-crashed event.
        std::string path = client_.crash_report_path(target_handle);
        if (path.empty()) {
          return strings::format(
              "  session %lld is gone and left no crash report\n",
              static_cast<long long>(target_handle.id));
        }
        return strings::format("  session %lld crashed; report: %s\n",
                               static_cast<long long>(target_handle.id),
                               path.c_str());
      }
      auto report = target->postmortem(capture);
      if (!report.is_ok()) return report.error().to_string() + "\n";
      const auto& r = report.value();
      std::string out = strings::format(
          "  [pid %d] post-mortem capture %s, report path %s\n", r.pid,
          r.installed ? "armed" : "not installed", r.report_path.c_str());
      if (r.has_report) {
        out += r.report;
        if (!r.report.empty() && r.report.back() != '\n') out += "\n";
      } else {
        out += "  (no report on disk)\n";
      }
      return out;
    }

    // races / lint / forklint
    auto report = target->analysis_report(/*run_lint=*/cmd == "lint",
                                          /*run_forklint=*/cmd == "forklint");
    if (!report.is_ok()) return report.error().to_string() + "\n";
    const auto& r = report.value();
    if (cmd == "lint") {
      std::string out =
          strings::format("  [pid %d] static lint findings:\n", r.pid);
      out += render_findings(r.lint_findings);
      return out;
    }
    if (cmd == "forklint") {
      std::string out =
          strings::format("  [pid %d] fork-safety findings:\n", r.pid);
      out += render_findings(r.forklint_findings);
      return out;
    }
    std::string out = strings::format(
        "  [pid %d] dynamic analysis %s: %llu accesses, %llu sync events\n",
        r.pid, r.enabled ? "on" : "off (set DIONEA_ANALYZE=1)",
        static_cast<unsigned long long>(r.accesses),
        static_cast<unsigned long long>(r.sync_events));
    out += render_findings(r.findings);
    return out;
  }

  std::string error;
  Session* session = active_session(&error);
  if (session == nullptr) return error;
  Client::View view = client_.active_view();

  if (cmd == "threads") {
    auto threads = session->threads();
    if (!threads.is_ok()) return threads.error().to_string() + "\n";
    return render_threads(threads.value());
  }
  if (cmd == "frames") {
    auto frames = client_.active_frames();
    if (!frames.is_ok()) return frames.error().to_string() + "\n";
    std::string out;
    int depth = 0;
    for (const RemoteFrame& frame : frames.value()) {
      out += strings::format(
          "  #%d %s at %s\n", depth++, frame.function.c_str(),
          strings::source_location(frame.file, frame.line).c_str());
    }
    return out.empty() ? "  (no frames)\n" : out;
  }
  if (cmd == "locals") {
    std::int64_t depth = 0;
    if (words.size() > 1 && !strings::parse_int(words[1], &depth)) {
      return "usage: locals [depth]\n";
    }
    auto locals = session->locals(view.tid, static_cast<int>(depth));
    if (!locals.is_ok()) return locals.error().to_string() + "\n";
    std::string out;
    for (const auto& [name, value] : locals.value()) {
      out += strings::format("  %s = %s\n", name.c_str(), value.c_str());
    }
    return out.empty() ? "  (no locals)\n" : out;
  }
  if (cmd == "globals") {
    auto globals = session->globals();
    if (!globals.is_ok()) return globals.error().to_string() + "\n";
    std::string out;
    for (const auto& [name, value] : globals.value()) {
      out += strings::format("  %s = %s\n", name.c_str(), value.c_str());
    }
    return out.empty() ? "  (no globals)\n" : out;
  }
  if (cmd == "p") {
    if (words.size() < 2) return "usage: p <expr>\n";
    // Re-join the expression (it may contain spaces).
    size_t pos = line.find("p ");
    std::string expr = std::string(strings::trim(line.substr(pos + 2)));
    auto value = session->eval(view.tid, expr);
    if (!value.is_ok()) return value.error().to_string() + "\n";
    return "  " + value.value() + "\n";
  }
  if (cmd == "source") {
    auto source = client_.active_source();
    if (!source.is_ok()) return source.error().to_string() + "\n";
    return source.value();
  }
  if (cmd == "break") {
    std::string file;
    int line_no = 0;
    if (words.size() < 2 || !parse_location(words[1], &file, &line_no)) {
      return "usage: break <file>:<line>\n";
    }
    auto id = session->set_breakpoint(file, line_no);
    if (!id.is_ok()) return id.error().to_string() + "\n";
    return strings::format(
        "  breakpoint %d at %s\n", id.value(),
        strings::source_location(file, line_no).c_str());
  }
  if (cmd == "delete") {
    std::int64_t id = 0;
    if (words.size() < 2 || !strings::parse_int(words[1], &id)) {
      return "usage: delete <id>\n";
    }
    Status status = session->clear_breakpoint(static_cast<int>(id));
    return status.is_ok() ? "" : status.to_string() + "\n";
  }
  if (cmd == "c" || cmd == "s" || cmd == "n" || cmd == "fin" ||
      cmd == "pause") {
    std::int64_t tid = view.tid;
    if (words.size() > 1 && !strings::parse_int(words[1], &tid)) {
      return "usage: " + cmd + " [tid]\n";
    }
    Status status = cmd == "c"       ? session->cont(tid)
                    : cmd == "s"     ? session->step(tid)
                    : cmd == "n"     ? session->next(tid)
                    : cmd == "fin"   ? session->finish(tid)
                                     : session->pause(tid);
    return status.is_ok() ? "" : status.to_string() + "\n";
  }
  if (cmd == "ca") {
    Status status = session->cont_all();
    return status.is_ok() ? "" : status.to_string() + "\n";
  }
  if (cmd == "pauseall") {
    Status status = session->pause_all();
    return status.is_ok() ? "" : status.to_string() + "\n";
  }
  if (cmd == "disturb") {
    if (words.size() < 2) return "usage: disturb on|off\n";
    Status status = session->set_disturb(words[1] == "on");
    return status.is_ok() ? "" : status.to_string() + "\n";
  }
  return "unknown command; try `help`\n";
}

}  // namespace dionea::client
