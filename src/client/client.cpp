#include "client/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>

#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

namespace dionea::client {

namespace proto = dbg::proto;

namespace {

std::string fresh_token() {
  static std::atomic<std::uint64_t> counter{0};
  return "cli-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed) + 1);
}

DebugEvent make_gone_event(int pid, bool clean_exit) {
  DebugEvent event;
  event.kind = clean_exit ? proto::Event::kProcessExited
                          : proto::Event::kProcessCrashed;
  event.name = proto::event_name(event.kind);
  event.payload = proto::make_event(event.kind);
  if (pid != 0) event.payload.set("pid", pid);
  return event;
}

}  // namespace

std::unique_ptr<Client> Client::discover(std::string port_file_path) {
  auto client = std::unique_ptr<Client>(new Client());
  client->mode_ = Mode::kDiscover;
  client->multi_ = std::make_unique<MultiClient>(std::move(port_file_path));
  return client;
}

Result<std::unique_ptr<Client>> Client::connect(std::uint16_t port,
                                                int timeout_millis) {
  auto client = std::unique_ptr<Client>(new Client());
  DIONEA_RETURN_IF_ERROR(client->hub_handshake(port, timeout_millis));
  return client;
}

Status Client::hub_handshake(std::uint16_t port, int timeout_millis) {
  token_ = fresh_token();
  DIONEA_ASSIGN_OR_RETURN(link_, Session::attach(port, timeout_millis, token_));
  endpoint_port_ = port;
  if (link_->supports(proto::kCapHub)) {
    mode_ = Mode::kHub;
    DIONEA_RETURN_IF_ERROR(hub_attach_all());
    DIONEA_RETURN_IF_ERROR(hub_refresh(timeout_millis).status());
  } else {
    // Pre-1.5 peer (or a direct per-process server): same surface, one
    // session, handle = the debuggee pid.
    mode_ = Mode::kSingle;
  }
  return Status::ok();
}

Result<int> Client::refresh(int timeout_millis) {
  switch (mode_) {
    case Mode::kDiscover:
      return multi_->refresh(timeout_millis);
    case Mode::kHub:
      return hub_refresh(timeout_millis);
    case Mode::kSingle:
      return 0;  // one endpoint, nothing new can appear
  }
  return 0;
}

Result<int> Client::hub_refresh(int) {
  DIONEA_ASSIGN_OR_RETURN(std::vector<proto::HubSessionEntry> entries,
                          hub_sessions());
  int fresh = 0;
  for (proto::HubSessionEntry& entry : entries) {
    auto it = known_.find(entry.session_id);
    bool is_new = it == known_.end();
    known_[entry.session_id] = entry;
    if (is_new && entry.alive && !entry.synthetic) {
      unclaimed_.push_back(entry.session_id);
      ++fresh;
    }
  }
  return fresh;
}

std::vector<SessionHandle> Client::sessions() const {
  std::vector<SessionHandle> out;
  switch (mode_) {
    case Mode::kDiscover:
      for (int pid : multi_->pids()) out.push_back({pid});
      break;
    case Mode::kHub:
      for (const auto& [id, entry] : known_) {
        if (entry.alive && !entry.synthetic) out.push_back({id});
      }
      break;
    case Mode::kSingle:
      if (link_ != nullptr) out.push_back({link_->pid()});
      break;
  }
  return out;
}

size_t Client::session_count() const { return sessions().size(); }

SessionHandle Client::handle_for_pid(int pid) const {
  switch (mode_) {
    case Mode::kDiscover:
      return multi_->session(pid) != nullptr ? SessionHandle{pid}
                                             : SessionHandle{};
    case Mode::kHub: {
      // Newest matching registration wins: after a double fork the
      // same pid re-registers under a fresh (higher) session id.
      SessionHandle found{};
      for (const auto& [id, entry] : known_) {
        if (entry.pid == pid && entry.alive) found = SessionHandle{id};
      }
      return found;
    }
    case Mode::kSingle:
      return (link_ != nullptr && link_->pid() == pid) ? SessionHandle{pid}
                                                       : SessionHandle{};
  }
  return {};
}

int Client::pid_of(SessionHandle handle) const {
  switch (mode_) {
    case Mode::kDiscover:
    case Mode::kSingle:
      return static_cast<int>(handle.id);
    case Mode::kHub: {
      auto it = known_.find(handle.id);
      return it == known_.end() ? 0 : it->second.pid;
    }
  }
  return 0;
}

Result<SessionHandle> Client::attach(int pid, int timeout_millis) {
  if (mode_ == Mode::kDiscover) {
    DIONEA_RETURN_IF_ERROR(
        multi_->await_process(pid, timeout_millis).status());
    return SessionHandle{pid};
  }
  if (mode_ == Mode::kSingle) {
    if (link_ != nullptr && link_->pid() == pid) return SessionHandle{pid};
    return Error(ErrorCode::kNotFound,
                 "single-session endpoint is not pid " + std::to_string(pid));
  }
  Stopwatch watch;
  while (true) {
    DIONEA_RETURN_IF_ERROR(hub_refresh(timeout_millis).status());
    SessionHandle handle = handle_for_pid(pid);
    if (handle.valid()) {
      claim(handle);
      return handle;
    }
    if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
      return Error(ErrorCode::kTimeout,
                   "no hub session for pid " + std::to_string(pid));
    }
    sleep_for_millis(10);
  }
}

Result<SessionHandle> Client::attach_any(int timeout_millis) {
  if (mode_ == Mode::kDiscover) {
    DIONEA_ASSIGN_OR_RETURN(Session * session,
                            multi_->await_new_process(timeout_millis));
    return SessionHandle{session->pid()};
  }
  if (mode_ == Mode::kSingle) {
    if (link_ == nullptr) return Error(ErrorCode::kClosed, "no endpoint");
    SessionHandle handle{link_->pid()};
    if (claimed_.count(handle.id) > 0) {
      return Error(ErrorCode::kTimeout, "no new process appeared");
    }
    claimed_.insert(handle.id);
    return handle;
  }
  Stopwatch watch;
  while (true) {
    while (!unclaimed_.empty()) {
      std::int64_t id = unclaimed_.front();
      unclaimed_.pop_front();
      auto it = known_.find(id);
      if (it == known_.end() || !it->second.alive) continue;
      claimed_.insert(id);
      return SessionHandle{id};
    }
    DIONEA_RETURN_IF_ERROR(hub_refresh(timeout_millis).status());
    if (unclaimed_.empty()) {
      if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
        return Error(ErrorCode::kTimeout, "no new session appeared");
      }
      sleep_for_millis(10);
    }
  }
}

void Client::claim(SessionHandle handle) {
  switch (mode_) {
    case Mode::kDiscover:
      multi_->claim(static_cast<int>(handle.id));
      break;
    case Mode::kHub:
    case Mode::kSingle:
      claimed_.insert(handle.id);
      unclaimed_.erase(
          std::remove(unclaimed_.begin(), unclaimed_.end(), handle.id),
          unclaimed_.end());
      break;
  }
}

Session* Client::session(SessionHandle handle) {
  switch (mode_) {
    case Mode::kDiscover:
      return multi_->session(static_cast<int>(handle.id));
    case Mode::kHub:
      return known_.count(handle.id) > 0 ? routed(handle.id) : nullptr;
    case Mode::kSingle:
      return (link_ != nullptr && link_->pid() == handle.id) ? link_.get()
                                                             : nullptr;
  }
  return nullptr;
}

Session* Client::routed(std::int64_t session_id) {
  link_->set_route(session_id);
  return link_.get();
}

void Client::drop(SessionHandle handle) {
  switch (mode_) {
    case Mode::kDiscover:
      multi_->drop(static_cast<int>(handle.id));
      break;
    case Mode::kHub:
      known_.erase(handle.id);
      claimed_.erase(handle.id);
      reported_dead_.erase(handle.id);
      unclaimed_.erase(
          std::remove(unclaimed_.begin(), unclaimed_.end(), handle.id),
          unclaimed_.end());
      break;
    case Mode::kSingle:
      if (link_ != nullptr && link_->pid() == handle.id) link_->hard_close();
      break;
  }
  if (active_.session == handle) active_ = View{};
}

Result<Session*> Client::reconnect(SessionHandle handle,
                                   const ReconnectPolicy& policy) {
  if (mode_ == Mode::kDiscover) {
    return multi_->reconnect(static_cast<int>(handle.id), policy);
  }
  // Hub / single: re-dial the one endpoint with the same token and
  // capped exponential backoff. Handles are server-side state (hub
  // session ids / the debuggee pid), so they survive untouched.
  std::vector<BreakpointSpec> carry;
  if (link_ != nullptr) carry = link_->breakpoints_set();
  Rng rng(policy.seed ^ static_cast<std::uint64_t>(handle.id));
  double delay = static_cast<double>(policy.initial_delay_millis);
  Error last(ErrorCode::kUnavailable, "no reconnect attempt made");
  for (int attempt = 0; attempt < std::max(1, policy.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      double factor =
          1.0 - policy.jitter + 2.0 * policy.jitter * rng.next_double();
      sleep_for_millis(static_cast<int>(delay * factor));
      delay = std::min(delay * policy.multiplier,
                       static_cast<double>(policy.max_delay_millis));
    }
    auto attached = Session::attach(endpoint_port_, /*timeout_millis=*/500,
                                    token_);
    if (!attached.is_ok()) {
      last = attached.error();
      continue;
    }
    link_ = std::move(attached).value();
    if (mode_ == Mode::kHub) {
      if (Status sub = hub_attach_all(); !sub.is_ok()) {
        DLOG_DEBUG("client") << "reconnect: hub re-subscribe failed: "
                             << sub.to_string();
      }
      (void)hub_refresh(500);
      reported_dead_.erase(handle.id);
      if (known_.count(handle.id) == 0) {
        return Error(ErrorCode::kNotFound,
                     "session " + std::to_string(handle.id) +
                         " no longer known to the hub");
      }
    } else {
      reported_dead_.clear();
    }
    Session* raw = session(handle);
    if (raw == nullptr) {
      last = Error(ErrorCode::kNotFound, "handle vanished across reconnect");
      continue;
    }
    for (const BreakpointSpec& bp : carry) {
      auto re_set = raw->set_breakpoint(bp.file, bp.line, bp.tid, bp.ignore);
      if (!re_set.is_ok()) {
        DLOG_DEBUG("client") << "reconnect: breakpoint " << bp.file << ":"
                             << bp.line << " not re-applied: "
                             << re_set.error().to_string();
      }
    }
    return raw;
  }
  return Error(last.code(),
               "reconnect failed after " + std::to_string(policy.max_attempts) +
                   " attempts: " + last.message());
}

void Client::note_child_exit(int pid, int exit_code, int term_signal) {
  if (mode_ == Mode::kDiscover) {
    multi_->note_child_exit(pid, exit_code, term_signal);
    return;
  }
  if (mode_ == Mode::kHub) return;  // the hub synthesizes these itself
  SessionHandle handle{pid};
  if (reported_dead_.count(handle.id) > 0) return;
  reported_dead_.insert(handle.id);
  DebugEvent event = make_gone_event(pid, term_signal == 0);
  if (exit_code >= 0) event.payload.set("exit_code", exit_code);
  if (term_signal != 0) event.payload.set("signal", term_signal);
  pending_events_.push_back({handle, std::move(event)});
}

std::string Client::crash_report_path(SessionHandle handle) const {
  if (mode_ == Mode::kDiscover) {
    return multi_->crash_report_path(static_cast<int>(handle.id));
  }
  auto it = crash_reports_.find(handle.id);
  return it == crash_reports_.end() ? std::string() : it->second;
}

Status Client::activate(SessionHandle handle, std::int64_t tid) {
  if (mode_ == Mode::kDiscover) {
    DIONEA_RETURN_IF_ERROR(
        multi_->activate(static_cast<int>(handle.id), tid));
    active_ = View{handle, tid};
    return Status::ok();
  }
  Session* target = session(handle);
  if (target == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "no session " + std::to_string(handle.id));
  }
  DIONEA_ASSIGN_OR_RETURN(std::vector<RemoteThread> threads,
                          target->threads());
  for (const RemoteThread& t : threads) {
    if (t.tid == tid) {
      active_ = View{handle, tid};
      return Status::ok();
    }
  }
  return Status(ErrorCode::kNotFound,
                "session " + std::to_string(handle.id) + " has no thread " +
                    std::to_string(tid));
}

Client::View Client::active_view() const { return active_; }

Result<std::string> Client::active_source() {
  if (!active_.valid()) {
    return Error(ErrorCode::kInvalidArgument, "no active view");
  }
  Session* target = session(active_.session);
  if (target == nullptr) {
    return Error(ErrorCode::kNotFound, "active session is gone");
  }
  DIONEA_ASSIGN_OR_RETURN(std::vector<RemoteFrame> frames,
                          target->frames(active_.tid));
  if (frames.empty()) {
    return Error(ErrorCode::kNotFound, "active thread has no frames");
  }
  return target->source(frames.front().file);
}

Result<std::vector<RemoteFrame>> Client::active_frames() {
  if (!active_.valid()) {
    return Error(ErrorCode::kInvalidArgument, "no active view");
  }
  Session* target = session(active_.session);
  if (target == nullptr) {
    return Error(ErrorCode::kNotFound, "active session is gone");
  }
  return target->frames(active_.tid);
}

Result<std::vector<Client::SessionEvent>> Client::poll_events(
    int timeout_millis) {
  if (mode_ == Mode::kDiscover) {
    DIONEA_ASSIGN_OR_RETURN(auto pairs, multi_->poll_all_events(timeout_millis));
    std::vector<SessionEvent> out;
    out.reserve(pairs.size());
    for (auto& [pid, event] : pairs) {
      out.push_back({SessionHandle{pid}, std::move(event)});
    }
    return out;
  }

  std::vector<SessionEvent> out;
  while (!pending_events_.empty()) {
    out.push_back(std::move(pending_events_.front()));
    pending_events_.pop_front();
  }

  if (link_ == nullptr || !link_->connected()) {
    // The one transport is gone. In hub mode that silences every
    // session at once; announce each live one exactly once.
    for (SessionHandle handle : sessions()) {
      if (reported_dead_.count(handle.id) > 0) continue;
      reported_dead_.insert(handle.id);
      bool clean = link_ != nullptr && link_->terminated_seen();
      out.push_back({handle, make_gone_event(pid_of(handle), clean)});
    }
    return out;
  }

  int wait = timeout_millis;
  while (true) {
    auto event = link_->poll_event(wait);
    if (!event.is_ok()) {
      if (event.error().code() == ErrorCode::kClosed) {
        for (SessionHandle handle : sessions()) {
          if (reported_dead_.count(handle.id) > 0) continue;
          reported_dead_.insert(handle.id);
          out.push_back(
              {handle, make_gone_event(pid_of(handle),
                                       link_->terminated_seen())});
        }
        return out;
      }
      return event.error();
    }
    if (!event.value().has_value()) break;
    DebugEvent ev = std::move(*event.value());
    // The hub stamps every routed event with its session id; a direct
    // 1.4 server doesn't, so fall back to the link's own session.
    std::int64_t sid = ev.payload.get_int(proto::kSessionIdKey);
    SessionHandle handle =
        sid != 0 ? SessionHandle{sid}
                 : (mode_ == Mode::kSingle ? SessionHandle{link_->pid()}
                                           : SessionHandle{});
    if (ev.kind == proto::Event::kProcessCrashed ||
        ev.kind == proto::Event::kProcessExited) {
      std::string path = ev.payload.get_string("report_path");
      if (!path.empty()) crash_reports_[handle.id] = path;
      reported_dead_.insert(handle.id);
      auto it = known_.find(handle.id);
      if (it != known_.end()) it->second.alive = false;
    }
    out.push_back({handle, std::move(ev)});
    wait = 0;  // drain whatever else is buffered without blocking again
  }
  return out;
}

Result<std::vector<proto::HubSessionEntry>> Client::hub_sessions() {
  if (mode_ != Mode::kHub) {
    return Error(ErrorCode::kUnavailable, "not connected to a hub");
  }
  DIONEA_ASSIGN_OR_RETURN(
      ipc::wire::Value reply,
      link_->request(proto::HubSessionsRequest::kName));
  DIONEA_ASSIGN_OR_RETURN(proto::HubSessionsResponse response,
                          proto::HubSessionsResponse::from_wire(reply));
  return std::move(response.sessions);
}

Status Client::hub_attach_all() {
  if (mode_ != Mode::kHub) {
    return Status(ErrorCode::kUnavailable, "not connected to a hub");
  }
  proto::HubAttachRequest request;
  request.session_id = 0;  // 0 = everything, present and future
  return link_->request(proto::HubAttachRequest::kName, request.to_wire())
      .status();
}

}  // namespace dionea::client
