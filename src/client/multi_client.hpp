// The multi-process client (Fig. 1): a single client holding one
// session per debuggee process — "1 client : N servers; 1 server : 1
// client" (§4.1) — plus the debug-view multiplexing of §4.2 (exactly
// one active view (process, thread) at a time).
//
// New processes are discovered by tailing the shared port file that
// fork handler C appends to; refresh() adopts any not-yet-attached
// records. This is the client half of §5.3 problem 3.
//
// DEPRECATED (1.5): new code should use client::Client (client.hpp),
// which subsumes this class — Client::discover() wraps a MultiClient
// and adds the handle-addressed surface that also works against a
// debug hub. This class stays as the discovery engine behind Client
// and for code mid-migration (Client::legacy()).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/session.hpp"
#include "ipc/port_file.hpp"
#include "support/result.hpp"

namespace dionea::client {

// Capped exponential backoff with jitter for reconnect(): the first
// attempt is immediate; attempt n sleeps
//   delay_n * uniform(1 - jitter, 1 + jitter),
// delay_{n+1} = min(delay_n * multiplier, max_delay_millis).
// `seed` (xor'd with the pid) makes the jitter deterministic in tests.
struct ReconnectPolicy {
  int max_attempts = 8;
  int initial_delay_millis = 20;
  int max_delay_millis = 1000;
  double multiplier = 2.0;
  double jitter = 0.25;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

class MultiClient {
 public:
  explicit MultiClient(std::string port_file_path)
      : port_file_(std::move(port_file_path)) {}

  // Attach sessions for every port record not seen yet. Returns the
  // number of new sessions. Sessions whose process has exited are
  // dropped silently (their record may outlive them).
  Result<int> refresh(int timeout_millis);

  // Block until a session to `pid` exists (adopting new port records
  // as they appear) — used right after the debuggee forks.
  Result<Session*> await_process(int pid, int timeout_millis);

  // Block until an unclaimed process is available and return its
  // session. Every session starts "unclaimed" when adopted; it is
  // claimed by await_new_process, await_process, or claim().
  Result<Session*> await_new_process(int timeout_millis);

  // Mark a pid as claimed so await_new_process won't hand it out
  // (e.g. the initial debuggee after the first refresh()).
  void claim(int pid);

  Session* session(int pid);
  std::vector<int> pids() const;
  size_t session_count() const noexcept { return sessions_.size(); }
  void drop(int pid) { sessions_.erase(pid); }

  // Re-attach to `pid` after its session died (debuggee restarted the
  // server, forked over itself, or the transport broke). Tails the
  // port file for the pid's newest record on each attempt, backing off
  // per `policy`. On success the old session is replaced, breakpoints
  // the old session had set are re-applied (server ids change; paused-
  // thread state is NOT recovered — the peer restarted), and the pid
  // is cleared from the dead list so events flow again.
  Result<Session*> reconnect(int pid, const ReconnectPolicy& policy = {});

  // Feed an out-of-band child-exit observation (e.g. from
  // mp::ChildReaper) into the event stream: queues a process-exited /
  // process-crashed event for `pid` and marks it dead. `term_signal`
  // != 0 means the child was killed by that signal (a crash).
  void note_child_exit(int pid, int exit_code, int term_signal);

  // Post-mortem report path for `pid`, learned from the server's
  // last-gasp process-crashed frame (or a fetched postmortem
  // response). Empty when no crash has been seen for that pid.
  std::string crash_report_path(int pid) const {
    auto it = crash_reports_.find(pid);
    return it == crash_reports_.end() ? std::string() : it->second;
  }

  // ---- debug views (§4.2) ----
  struct View {
    int pid = 0;
    std::int64_t tid = 0;
    bool valid() const noexcept { return pid != 0; }
  };
  // Clicking a thread in the GUI: that (process, thread) becomes the
  // active view; the previous one is hidden.
  Status activate(int pid, std::int64_t tid);
  View active_view() const noexcept { return active_; }
  // Source text + current frame stack of the active view — what the
  // GUI's Source code view would render.
  Result<std::string> active_source();
  Result<std::vector<RemoteFrame>> active_frames();

  // Poll every session for one pending event; returns {pid, event}
  // pairs in session order. A session whose transport died yields one
  // synthesized event — process-exited if the debuggee announced a
  // clean `terminated` first, process-crashed otherwise — and is then
  // muted until reconnect() revives it.
  Result<std::vector<std::pair<int, DebugEvent>>> poll_all_events(
      int timeout_millis_per_session);

 private:
  ipc::PortFile port_file_;
  size_t records_seen_ = 0;
  std::map<int, std::unique_ptr<Session>> sessions_;
  std::deque<int> unclaimed_;  // adopted but not yet returned by
                               // await_new_process
  // Pids whose death was already reported; their sessions are skipped
  // (not erased — state like breakpoints_set survives for reconnect).
  std::set<int> reported_dead_;
  // pid -> crash-report path from the server's last-gasp frame.
  std::map<int, std::string> crash_reports_;
  // Synthesized events (note_child_exit) waiting for poll_all_events.
  std::deque<std::pair<int, DebugEvent>> pending_events_;
  View active_{};
};

}  // namespace dionea::client
