// The command shell of Fig. 2 ("The command shell is used to send
// commands to the debuggee, e.g., continue, step, next") as a headless
// text console over the session-addressed Client. Examples and the
// interactive `dioneac` binary feed it lines; it returns rendered
// output.
//
// Verb grammar (see README for the full table):
//   session list | session use <id> [tid] — hub-addressed selection
//   procs / refresh / use <pid> [tid]     — pid-addressed selection
//   everything else acts on the selected (active) session.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/client.hpp"

namespace dionea::client {

class Console {
 public:
  explicit Console(Client& client) : client_(client) {}

  // Execute one command line, returning the text a terminal would
  // show. Unknown commands return usage help. Never throws; transport
  // errors are rendered into the output.
  std::string execute(const std::string& line);

  // The interactive prompt, prefixed with the active session so the
  // user always knows which debuggee a verb will hit: "dionea[s3]> ".
  std::string prompt() const;

  static std::string help();

  bool quit_requested() const noexcept { return quit_; }

 private:
  Session* active_session(std::string* error_out);
  // Accepts either a session id (hub) or a pid (discover/direct); the
  // session id wins when both exist.
  SessionHandle resolve(std::int64_t number) const;
  std::string session_verb(const std::vector<std::string>& words);
  // rbreak / rstep / rcontinue (1.6): reverse execution over the
  // active session's checkpoint ring.
  std::string reverse_verb(const std::vector<std::string>& words);

  Client& client_;
  bool quit_ = false;
  // Reverse breakpoints are client-side state: replay steps rcontinue
  // jumps back to. The server only ever sees a target step.
  std::vector<std::uint64_t> rbreaks_;
};

}  // namespace dionea::client
