// The command shell of Fig. 2 ("The command shell is used to send
// commands to the debuggee, e.g., continue, step, next") as a headless
// text console over MultiClient. Examples and the interactive
// `dioneac` binary feed it lines; it returns rendered output.
#pragma once

#include <string>

#include "client/multi_client.hpp"

namespace dionea::client {

class Console {
 public:
  explicit Console(MultiClient& client) : client_(client) {}

  // Execute one command line, returning the text a terminal would
  // show. Unknown commands return usage help. Never throws; transport
  // errors are rendered into the output.
  std::string execute(const std::string& line);

  static std::string help();

  bool quit_requested() const noexcept { return quit_; }

 private:
  Session* active_session(std::string* error_out);

  MultiClient& client_;
  bool quit_ = false;
};

}  // namespace dionea::client
