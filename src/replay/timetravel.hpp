// replay::tt — time-travel debugging over DRLG replay.
//
// During DIONEA_REPLAY the interpreter periodically forks *checkpoint
// processes*: copies of the VM frozen at a recorded-step boundary. A
// boundary is a GIL switch point with exactly one live interpreter
// thread, which is the only state fork(2) can capture coherently — the
// one thread fork preserves is the one thread that exists, and the
// recorded schedule regenerates the rest deterministically on resume
// (thread-id counters ride across the fork untouched).
//
// The checkpoint fork is NOT a recorded event. Vm::fork_checkpoint
// runs the same A/B/C fork-handler stack as a debuggee fork (paper
// §5.4) so every lock, the GIL, the metrics shards, the code-cache
// pins and the server listener are coherent in the child, but the
// replay engine keeps its log, cursor and per-thread ordinals instead
// of descending the fork tree (Engine::checkpoint_child_atfork).
//
// Each checkpoint parks on a command pipe (ThreadState::kIoBlocked, so
// the deadlock detector and `threads` verb describe it honestly) and
// its debug server keeps serving, registered with the hub as a
// `checkpoint` session. Reverse execution = pick the nearest earlier
// checkpoint, ask it to fork a *resumer*, and let the resumer replay
// forward under the run-to-step gate until Engine::stop_gated() parks
// every thread at the target step. Checkpoints are reusable: each
// resume request forks a fresh grandchild, so "resume checkpoint N
// twenty times" is twenty independent replays of the same prefix.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "mp/reaper.hpp"
#include "support/result.hpp"

namespace dionea::vm {
class Vm;
class InterpThread;
}  // namespace dionea::vm

namespace dionea::replay::tt {

struct Options {
  std::uint64_t every = 64;  // steps between checkpoints (DIONEA_CKPT_EVERY)
  int max_live = 8;          // live-checkpoint ring bound (DIONEA_CKPT_MAX)
  // Directory for pause markers. When set, a resumed process that
  // reaches its target step writes `pause.<pid>` there with the step
  // and a VM fingerprint — the protocol-free observation channel the
  // conformance suite uses.
  std::string pause_dir;
  // Resumed processes _exit once the pause marker is written instead
  // of staying inspectable (tests/bench; DIONEA_CKPT_EXIT_AT_TARGET).
  bool exit_at_target = false;
};

struct CheckpointInfo {
  std::uint64_t step = 0;
  int pid = 0;
  bool alive = true;
};

// What resume_to() scheduled: a fresh process replaying toward target.
struct ResumeTicket {
  int pid = 0;
  std::uint64_t checkpoint_step = 0;
  std::uint64_t target_step = 0;
};

enum class Role : int {
  kRoot = 0,    // the original replaying debuggee
  kCheckpoint,  // parked on the command pipe
  kResumed,     // replaying toward a stop target
};

const char* role_name(Role role) noexcept;

struct Snapshot {
  bool active = false;
  Role role = Role::kRoot;
  std::uint64_t every = 0;
  int max_live = 0;
  std::uint64_t next_at = 0;
  std::uint64_t taken = 0;
  std::uint64_t evicted = 0;
  std::uint64_t deferred = 0;  // boundaries skipped (threads live / fork gate)
  std::uint64_t dead = 0;      // checkpoints that died under us
  std::vector<CheckpointInfo> ring;
};

// Deterministic digest of the paused VM: same prefix + same target
// must reproduce it bit-for-bit (the conformance suite's oracle).
struct Fingerprint {
  std::uint64_t step = 0;
  std::uint64_t frames_hash = 0;
  std::uint64_t globals_hash = 0;
  std::string to_string() const;
  bool operator==(const Fingerprint& other) const noexcept {
    return step == other.step && frames_hash == other.frames_hash &&
           globals_hash == other.globals_hash;
  }
};

// Safe from any non-interpreter thread; takes the GIL internally via
// the Vm snapshot API, so call it only when the VM is parked (e.g.
// after Engine::await_step + quiescence).
Fingerprint fingerprint_of(vm::Vm& vm);

class CheckpointManager {
 public:
  static CheckpointManager& instance();

  // Install the boundary hook and start checkpointing `vm`. Fails with
  // kInvalidArgument unless the engine is replaying. Idempotent per
  // process (kAlreadyExists on a second activation).
  Status activate(vm::Vm& vm, const Options& opts);

  // DIONEA_CKPT_EVERY=<n> (with DIONEA_REPLAY) switches the subsystem
  // on; DIONEA_CKPT_MAX / DIONEA_CKPT_PAUSE_DIR / _EXIT_AT_TARGET
  // refine it. No-op when unset or not replaying.
  static void init_from_env(vm::Vm& vm);

  // Quit every live checkpoint ('q' on its pipe), reap, uninstall the
  // boundary hook. Safe to call when inactive.
  void deactivate();

  bool active() const;
  Role role() const;
  Snapshot snapshot() const;

  // Fork a resumer from the nearest live checkpoint at or before
  // `target_step` (clamped to the log length) and set it replaying
  // toward the target. Dead checkpoints encountered on the way are
  // reaped, reported and skipped. kNotFound when no live checkpoint
  // precedes the target.
  Result<ResumeTicket> resume_to(std::uint64_t target_step);

  // ---- pure planning helpers (shared with the property suite) ----
  // rstep n: the step you land on walking n recorded steps backwards.
  static std::uint64_t resolve_rstep(std::uint64_t current, std::uint64_t n);
  // rcontinue: largest break step strictly before `current`, else -1.
  static std::int64_t resolve_rcontinue(const std::vector<std::uint64_t>& breaks,
                                        std::uint64_t current);
  // Index of the best checkpoint (max step <= target), else -1.
  static std::int64_t pick_checkpoint(const std::vector<std::uint64_t>& steps,
                                      std::uint64_t target);
  // Ring admission: evict (into *evicted) and double *every until
  // there is room under max_live, then append `step`. Mirrors the
  // live eviction policy exactly — keep even slots, thin odd ones, so
  // the survivors spread over the doubled grid.
  static void plan_insert(std::vector<std::uint64_t>& steps,
                          std::uint64_t step, int max_live,
                          std::uint64_t* every,
                          std::vector<std::uint64_t>* evicted);

 private:
  CheckpointManager() = default;

  struct Entry {
    std::uint64_t step = 0;
    int pid = 0;
    int cmd_w = -1;    // manager -> checkpoint commands
    int reply_r = -1;  // checkpoint -> manager replies
    bool alive = true;
  };

  void on_boundary(vm::Vm& vm, vm::InterpThread& th);
  void take_checkpoint(vm::Vm& vm, vm::InterpThread& th, std::uint64_t step);
  // The checkpoint process's life: park on the pipe, serve resume
  // requests by forking grandchildren. Returns only in a grandchild
  // (the resumer), with the stop gate armed and the watcher running.
  void child_park_loop(vm::Vm& vm, vm::InterpThread& th, int cmd_r,
                       int reply_w, std::uint64_t my_step);
  // Park the (single) interpreter thread while the stop gate holds.
  void pause_park(vm::Vm& vm, vm::InterpThread& th);
  void start_pause_watcher(vm::Vm& vm, std::uint64_t target);
  void reap_locked();
  void kill_entry_locked(Entry& entry, bool send_quit);
  // Fork handler (C layer): a *recorded* debuggee fork descends into a
  // fresh subtree log, so the inherited ring — steps in the parent's
  // log, pids that are the parent's children — is meaningless there.
  // Drop it and restart checkpointing against the child's own log.
  // Checkpoint forks (in_checkpoint_fork_) keep the ring: they replay
  // the same log, and the fds still reach live sibling checkpoints.
  void on_debuggee_fork_child();

  mutable std::mutex mutex_;
  vm::Vm* vm_ = nullptr;
  Options opts_;
  bool active_ = false;
  // True across Vm::fork_checkpoint so the fork handler can tell a
  // snapshot fork from a recorded debuggee fork. Written with mutex_
  // held; read lock-free in the child (single interpreter thread).
  std::atomic<bool> in_checkpoint_fork_{false};
  // Only the forking thread touches this (fork handlers run on it).
  int fork_lock_depth_ = 0;
  Role role_ = Role::kRoot;
  std::uint64_t my_step_ = 0;  // checkpoint/resumed: the fork step
  std::uint64_t next_at_ = 0;
  std::vector<Entry> ring_;
  std::uint64_t taken_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t deferred_ = 0;
  std::uint64_t dead_ = 0;
  mp::ChildReaper reaper_;
};

}  // namespace dionea::replay::tt
