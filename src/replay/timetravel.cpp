#include "replay/timetravel.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "replay/replay.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"
#include "vm/thread.hpp"
#include "vm/vm.hpp"

namespace dionea::replay::tt {

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
// Spacing stops doubling here: past this the ring would thin itself
// into uselessness chasing a pathological log.
constexpr std::uint64_t kEveryCap = 1ull << 20;

std::uint64_t mix_bytes(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix_str(std::uint64_t h, const std::string& s) {
  h = mix_bytes(h, s.data(), s.size());
  return mix_bytes(h, "\x1f", 1);  // field separator: "ab"+"c" != "a"+"bc"
}

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (i * 8));
  return mix_bytes(h, buf, sizeof buf);
}

void put_u64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>(v >> (i * 8));
}

std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (i * 8);
  return v;
}

// Full-buffer read across EINTR/short reads; 0 on EOF, -1 on error.
ssize_t read_full(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    ssize_t n = ::read(fd, p + done, len - done);
    if (n == 0) return static_cast<ssize_t>(done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

bool write_full(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, p + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// Read the 8-byte pid reply with a deadline (the checkpoint may have
// died between our liveness check and the request).
bool read_reply_pid(int fd, int timeout_millis, std::int64_t* pid_out) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_millis);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return false;
    break;
  }
  unsigned char buf[8];
  if (read_full(fd, buf, sizeof buf) != static_cast<ssize_t>(sizeof buf)) {
    return false;
  }
  *pid_out = static_cast<std::int64_t>(get_u64(buf));
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

const char* role_name(Role role) noexcept {
  switch (role) {
    case Role::kRoot: return "root";
    case Role::kCheckpoint: return "checkpoint";
    case Role::kResumed: return "resumed";
  }
  return "?";
}

std::string Fingerprint::to_string() const {
  return strings::format("step=%llu frames=%016llx globals=%016llx",
                         static_cast<unsigned long long>(step),
                         static_cast<unsigned long long>(frames_hash),
                         static_cast<unsigned long long>(globals_hash));
}

Fingerprint fingerprint_of(vm::Vm& vm) {
  Fingerprint fp;
  fp.step = Engine::instance().replay_step();
  std::uint64_t h = kFnvBasis;
  for (const auto& info : vm.list_threads()) {
    h = mix_u64(h, static_cast<std::uint64_t>(info.id));
    h = mix_u64(h, static_cast<std::uint64_t>(info.state));
    for (const auto& frame : vm.thread_frames(info.id)) {
      h = mix_str(h, frame.function);
      h = mix_str(h, frame.file);
      h = mix_u64(h, static_cast<std::uint64_t>(frame.line));
    }
  }
  fp.frames_hash = h;
  h = kFnvBasis;
  for (const auto& [name, repr] : vm.globals_snapshot()) {
    h = mix_str(h, name);
    h = mix_str(h, repr);
  }
  fp.globals_hash = h;
  return fp;
}

CheckpointManager& CheckpointManager::instance() {
  static CheckpointManager* mgr = new CheckpointManager();
  return *mgr;
}

Status CheckpointManager::activate(vm::Vm& vm, const Options& opts) {
  Engine& rep = Engine::instance();
  if (!rep.replaying()) {
    return Error(ErrorCode::kInvalidArgument,
                 "time travel requires DIONEA_REPLAY (checkpoints are "
                 "snapshots of a recorded schedule)");
  }
  std::scoped_lock lock(mutex_);
  if (active_) {
    return Error(ErrorCode::kAlreadyExists, "checkpointing already active");
  }
  vm_ = &vm;
  opts_ = opts;
  if (opts_.every == 0) opts_.every = 1;
  if (opts_.max_live < 1) opts_.max_live = 1;
  next_at_ = opts_.every;
  role_ = Role::kRoot;
  my_step_ = 0;
  taken_ = 0;
  evicted_ = 0;
  deferred_ = 0;
  dead_ = 0;
  active_ = true;
  // A dead checkpoint's pipe must fail the write, not kill us.
  ::signal(SIGPIPE, SIG_IGN);
  // Fork handler for *recorded* debuggee forks: hold mutex_ across the
  // fork (a server thread answering timetravel-info mid-fork must not
  // leave the child's copy locked forever), then reset the inherited
  // ring in the child. Checkpoint forks skip all three stages — the
  // forking thread already holds mutex_ there. The depth counter makes
  // double registration (re-activated VM; no removal API) lock once.
  vm::ForkHooks hooks;
  hooks.prepare = [this](vm::Vm&) {
    if (in_checkpoint_fork_.load(std::memory_order_relaxed)) return;
    if (fork_lock_depth_++ == 0) mutex_.lock();
  };
  hooks.parent = [this](vm::Vm&, int) {
    if (in_checkpoint_fork_.load(std::memory_order_relaxed)) return;
    if (--fork_lock_depth_ == 0) mutex_.unlock();
  };
  hooks.child = [this](vm::Vm&, int) {
    if (in_checkpoint_fork_.load(std::memory_order_relaxed)) return;
    if (--fork_lock_depth_ == 0) {
      mutex_.unlock();
      on_debuggee_fork_child();
    }
  };
  vm.add_fork_handlers(hooks);
  vm.set_boundary_hook([this](vm::Vm& v, vm::InterpThread& th) {
    on_boundary(v, th);
  });
  DLOG_INFO("timetravel") << "checkpointing active: every=" << opts_.every
                          << " max_live=" << opts_.max_live;
  return Status::ok();
}

void CheckpointManager::init_from_env(vm::Vm& vm) {
  const char* every = std::getenv("DIONEA_CKPT_EVERY");
  if (every == nullptr || *every == '\0') return;
  if (!Engine::instance().replaying()) return;
  Options opts;
  opts.every = env_u64("DIONEA_CKPT_EVERY", opts.every);
  opts.max_live = static_cast<int>(
      env_u64("DIONEA_CKPT_MAX", static_cast<std::uint64_t>(opts.max_live)));
  if (const char* dir = std::getenv("DIONEA_CKPT_PAUSE_DIR")) {
    opts.pause_dir = dir;
  }
  opts.exit_at_target = env_u64("DIONEA_CKPT_EXIT_AT_TARGET", 0) != 0;
  Status st = instance().activate(vm, opts);
  if (!st.is_ok() && st.error().code() != ErrorCode::kAlreadyExists) {
    DLOG_WARN("timetravel") << "env activation failed: " << st.to_string();
  }
}

void CheckpointManager::deactivate() {
  vm::Vm* vm = nullptr;
  {
    std::scoped_lock lock(mutex_);
    if (!active_) return;
    active_ = false;
    vm = vm_;
    for (Entry& entry : ring_) {
      kill_entry_locked(entry, /*send_quit=*/true);
    }
    ring_.clear();
    (void)reaper_.terminate_all(500);
  }
  if (vm != nullptr) vm->set_boundary_hook(nullptr);
}

bool CheckpointManager::active() const {
  std::scoped_lock lock(mutex_);
  return active_;
}

Role CheckpointManager::role() const {
  std::scoped_lock lock(mutex_);
  return role_;
}

Snapshot CheckpointManager::snapshot() const {
  std::scoped_lock lock(mutex_);
  Snapshot out;
  out.active = active_;
  out.role = role_;
  out.every = opts_.every;
  out.max_live = opts_.max_live;
  out.next_at = next_at_;
  out.taken = taken_;
  out.evicted = evicted_;
  out.deferred = deferred_;
  out.dead = dead_;
  out.ring.reserve(ring_.size());
  for (const Entry& entry : ring_) {
    out.ring.push_back(CheckpointInfo{entry.step, entry.pid, entry.alive});
  }
  return out;
}

Result<ResumeTicket> CheckpointManager::resume_to(std::uint64_t target_step) {
  std::scoped_lock lock(mutex_);
  if (!active_) {
    return Error(ErrorCode::kUnavailable, "time travel is not active");
  }
  Info info = Engine::instance().info();
  if (info.total_steps != 0 && target_step > info.total_steps) {
    target_step = info.total_steps;
  }
  reap_locked();
  for (;;) {
    // Nearest live checkpoint at or before the target.
    Entry* best = nullptr;
    for (Entry& entry : ring_) {
      if (!entry.alive || entry.step > target_step) continue;
      if (best == nullptr || entry.step > best->step) best = &entry;
    }
    if (best == nullptr) {
      return Error(
          ErrorCode::kNotFound,
          strings::format("no live checkpoint at or before step %llu",
                          static_cast<unsigned long long>(target_step)));
    }
    unsigned char req[9];
    req[0] = 'r';
    put_u64(req + 1, target_step);
    std::int64_t pid = -1;
    if (!write_full(best->cmd_w, req, sizeof req) ||
        !read_reply_pid(best->reply_r, 5000, &pid) || pid <= 0) {
      // Checkpoint died (or its fork failed): report, drop it, fall
      // back to the next-nearest. The live session is unaffected.
      DLOG_WARN("timetravel")
          << "checkpoint @" << best->step << " pid " << best->pid
          << " unresponsive; rerouting resume";
      kill_entry_locked(*best, /*send_quit=*/false);
      ++dead_;
      continue;
    }
    ResumeTicket ticket;
    ticket.pid = static_cast<int>(pid);
    ticket.checkpoint_step = best->step;
    ticket.target_step = target_step;
    DLOG_INFO("timetravel") << "resume to step " << target_step
                            << " via checkpoint @" << best->step << ": pid "
                            << ticket.pid;
    return ticket;
  }
}

std::uint64_t CheckpointManager::resolve_rstep(std::uint64_t current,
                                               std::uint64_t n) {
  return n >= current ? 0 : current - n;
}

std::int64_t CheckpointManager::resolve_rcontinue(
    const std::vector<std::uint64_t>& breaks, std::uint64_t current) {
  std::int64_t best = -1;
  for (std::uint64_t b : breaks) {
    if (b < current && static_cast<std::int64_t>(b) > best) {
      best = static_cast<std::int64_t>(b);
    }
  }
  return best;
}

std::int64_t CheckpointManager::pick_checkpoint(
    const std::vector<std::uint64_t>& steps, std::uint64_t target) {
  std::int64_t best = -1;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (steps[i] > target) continue;
    if (best < 0 || steps[i] > steps[static_cast<std::size_t>(best)]) {
      best = static_cast<std::int64_t>(i);
    }
  }
  return best;
}

void CheckpointManager::plan_insert(std::vector<std::uint64_t>& steps,
                                    std::uint64_t step, int max_live,
                                    std::uint64_t* every,
                                    std::vector<std::uint64_t>* evicted) {
  if (max_live < 1) max_live = 1;
  while (static_cast<int>(steps.size()) >= max_live) {
    if (*every < kEveryCap) *every *= 2;
    // Keep even slots, thin odd ones: the survivors sit on the doubled
    // grid, so coverage stays uniform instead of clustering.
    std::vector<std::uint64_t> kept;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (i % 2 == 1) {
        evicted->push_back(steps[i]);
      } else {
        kept.push_back(steps[i]);
      }
    }
    if (kept.size() == steps.size()) {
      // max_live == 1: nothing was odd; evict the lone occupant.
      evicted->push_back(kept.back());
      kept.pop_back();
    }
    steps.swap(kept);
  }
  steps.push_back(step);
}

void CheckpointManager::on_boundary(vm::Vm& vm, vm::InterpThread& th) {
  Engine& rep = Engine::instance();
  // A run-to-step pause is in force: Gil::yield (right after this
  // hook) parks us. Taking a checkpoint past the target would be
  // wasted work.
  if (rep.stop_gated()) return;
  if (!rep.replaying()) return;  // diverged or finished: stop snapshotting
  const std::uint64_t step = rep.replay_step();
  {
    std::scoped_lock lock(mutex_);
    if (!active_) return;
    // A resumer's one job is to reach its target and pause; spawning
    // more checkpoints on the way would fork a process storm (every
    // resume of every checkpoint re-checkpointing the same prefix).
    if (role_ == Role::kResumed) return;
    if (taken_ != 0 && step < next_at_) return;
  }
  // fork(2) captures exactly one thread: the caller. A checkpoint is
  // only coherent when that is the only live interpreter thread — the
  // recorded schedule regenerates the rest on resume. Anything else
  // (sibling parked on a VM mutex, mid-spawn) defers to a later
  // boundary.
  if (vm.live_thread_count() != 1) {
    std::scoped_lock lock(mutex_);
    ++deferred_;
    return;
  }
  take_checkpoint(vm, th, step);
}

void CheckpointManager::take_checkpoint(vm::Vm& vm, vm::InterpThread& th,
                                        std::uint64_t step) {
  int cmd[2] = {-1, -1};
  int reply[2] = {-1, -1};
  if (::pipe(cmd) != 0 || ::pipe(reply) != 0) {
    close_fd(cmd[0]);
    close_fd(cmd[1]);
    close_fd(reply[0]);
    close_fd(reply[1]);
    return;
  }
  std::unique_lock lock(mutex_);
  if (!active_) {
    lock.unlock();
    close_fd(cmd[0]);
    close_fd(cmd[1]);
    close_fd(reply[0]);
    close_fd(reply[1]);
    return;
  }
  reap_locked();
  // Plan admission before forking so parent and child agree on the
  // ring and the (possibly doubled) spacing.
  std::vector<std::uint64_t> live_steps;
  for (const Entry& entry : ring_) {
    if (entry.alive) live_steps.push_back(entry.step);
  }
  std::vector<std::uint64_t> evict_steps;
  std::uint64_t every = opts_.every;
  plan_insert(live_steps, step, opts_.max_live, &every, &evict_steps);
  if (every != opts_.every) {
    DLOG_INFO("timetravel") << "ring full: spacing doubled " << opts_.every
                            << " -> " << every;
    opts_.every = every;
  }
  for (std::uint64_t evict : evict_steps) {
    for (Entry& entry : ring_) {
      if (entry.alive && entry.step == evict) {
        kill_entry_locked(entry, /*send_quit=*/true);
        ++evicted_;
        break;
      }
    }
  }
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [](const Entry& e) { return !e.alive; }),
              ring_.end());
  next_at_ = step + opts_.every;
  // Pre-stage the child's identity: fork handler C (hub re-register)
  // runs inside fork_checkpoint, before control returns here.
  const Role saved_role = role_;
  const std::uint64_t saved_step = my_step_;
  role_ = Role::kCheckpoint;
  my_step_ = step;
  in_checkpoint_fork_.store(true, std::memory_order_relaxed);
  Result<int> forked = vm.fork_checkpoint(th);
  in_checkpoint_fork_.store(false, std::memory_order_relaxed);
  if (!forked.is_ok()) {
    role_ = saved_role;
    my_step_ = saved_step;
    lock.unlock();
    close_fd(cmd[0]);
    close_fd(cmd[1]);
    close_fd(reply[0]);
    close_fd(reply[1]);
    DLOG_WARN("timetravel") << "checkpoint fork failed: "
                            << forked.error().to_string();
    return;
  }
  if (forked.value() == 0) {
    close_fd(cmd[1]);
    close_fd(reply[0]);
    lock.unlock();
    child_park_loop(vm, th, cmd[0], reply[1], step);
    return;  // we are a resumer now; dispatch replays toward the target
  }
  role_ = saved_role;
  my_step_ = saved_step;
  close_fd(cmd[0]);
  close_fd(reply[1]);
  Entry entry;
  entry.step = step;
  entry.pid = forked.value();
  entry.cmd_w = cmd[1];
  entry.reply_r = reply[0];
  ring_.push_back(entry);
  reaper_.watch(forked.value());
  ++taken_;
  DLOG_INFO("timetravel") << "checkpoint @" << step << ": pid "
                          << forked.value() << " (live "
                          << live_steps.size() << "/" << opts_.max_live
                          << ")";
}

void CheckpointManager::child_park_loop(vm::Vm& vm, vm::InterpThread& th,
                                        int cmd_r, int reply_w,
                                        std::uint64_t my_step) {
  Engine& rep = Engine::instance();
  // The inherited watch set names the PARENT's children (sibling
  // checkpoints); waitpid on them from here would misreport them dead.
  for (pid_t pid : reaper_.watched()) reaper_.unwatch(pid);
  const std::string note = strings::format(
      "timetravel checkpoint @%llu", static_cast<unsigned long long>(my_step));
  for (;;) {
    // Park GIL-free so the debug server can inspect this frozen world.
    // The read is NOT a recorded wait, so the GIL must come back via
    // the out-of-band path — a log consume here would desync replay.
    th.state = vm::ThreadState::kIoBlocked;
    th.block_note = note;
    vm.gil().release();
    unsigned char req[9];
    ssize_t got = read_full(cmd_r, req, sizeof req);
    vm.gil().reacquire_out_of_band(th.id());
    th.state = vm::ThreadState::kRunnable;
    th.block_note.clear();
    if (got < static_cast<ssize_t>(sizeof req) || req[0] == 'q') {
      // Quit command, or every commander is gone (EOF).
      rep.flush();
      std::fflush(nullptr);
      std::_Exit(0);
    }
    if (req[0] != 'r') continue;
    const std::uint64_t target = get_u64(req + 1);
    std::unique_lock lock(mutex_);
    reap_locked();  // collect resumers that have since exited
    const Role saved_role = role_;
    role_ = Role::kResumed;
    in_checkpoint_fork_.store(true, std::memory_order_relaxed);
    Result<int> forked = vm.fork_checkpoint(th);
    in_checkpoint_fork_.store(false, std::memory_order_relaxed);
    if (!forked.is_ok()) {
      role_ = saved_role;
      lock.unlock();
      unsigned char reply[8];
      put_u64(reply, static_cast<std::uint64_t>(-1));
      write_full(reply_w, reply, sizeof reply);
      continue;
    }
    if (forked.value() == 0) {
      // The resumer: shed the checkpoint's pipe ends, arm the gate,
      // return into dispatch and replay forward to the target.
      lock.unlock();
      ::close(cmd_r);
      ::close(reply_w);
      for (pid_t pid : reaper_.watched()) reaper_.unwatch(pid);
      rep.set_stop_at_step(target == 0 ? 1 : target);
      start_pause_watcher(vm, target);
      return;
    }
    role_ = saved_role;
    reaper_.watch(forked.value());
    lock.unlock();
    unsigned char reply[8];
    put_u64(reply, static_cast<std::uint64_t>(forked.value()));
    write_full(reply_w, reply, sizeof reply);
  }
}

void CheckpointManager::start_pause_watcher(vm::Vm& vm, std::uint64_t target) {
  Options opts;
  {
    std::scoped_lock lock(mutex_);
    opts = opts_;
  }
  vm::Vm* vmp = &vm;
  std::thread([vmp, target, opts] {
    Engine& rep = Engine::instance();
    Status arrived = rep.await_step(target, 60000);
    const char* status = "ok";
    if (!arrived.is_ok()) {
      status = arrived.error().code() == ErrorCode::kTimeout ? "stalled"
                                                             : "diverged";
      DLOG_WARN("timetravel") << "resume to step " << target
                              << " did not pause cleanly: "
                              << arrived.to_string();
    }
    // Quiesce: the step counter alone is not enough — the thread that
    // reached the target may still be draining its dispatch interval.
    // Settle when the GIL is free and statements stop moving.
    std::uint64_t prev = vmp->statements_executed();
    int stable = 0;
    for (int i = 0; i < 2000 && stable < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      std::uint64_t cur = vmp->statements_executed();
      if (cur == prev && vmp->gil().owner() == 0) {
        ++stable;
      } else {
        stable = 0;
      }
      prev = cur;
    }
    Fingerprint fp = fingerprint_of(*vmp);
    DLOG_INFO("timetravel") << "paused (" << status << ") at "
                            << fp.to_string() << " (target " << target << ")";
    if (!opts.pause_dir.empty()) {
      std::string path =
          opts.pause_dir + "/pause." + std::to_string(::getpid());
      std::string tmp = path + ".tmp";
      if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
        std::fprintf(f, "status=%s\ntarget=%llu\n%s\n", status,
                     static_cast<unsigned long long>(target),
                     fp.to_string().c_str());
        std::fclose(f);
        ::rename(tmp.c_str(), path.c_str());
      }
    }
    if (opts.exit_at_target) {
      rep.flush();
      std::fflush(nullptr);
      std::_Exit(arrived.is_ok() ? 0 : 3);
    }
  }).detach();
}

void CheckpointManager::on_debuggee_fork_child() {
  if (in_checkpoint_fork_.load(std::memory_order_relaxed)) return;
  std::scoped_lock lock(mutex_);
  if (!active_) return;
  // Recorded fork: this process now replays a fresh subtree log. The
  // inherited checkpoints are the *parent's* children pinned at the
  // parent's steps — close our fd copies (no 'q': the parent still
  // owns them) and restart checkpointing from this log's step 0.
  for (Entry& entry : ring_) {
    close_fd(entry.cmd_w);
    close_fd(entry.reply_r);
  }
  ring_.clear();
  for (pid_t pid : reaper_.watched()) reaper_.unwatch(pid);
  role_ = Role::kRoot;
  my_step_ = 0;
  next_at_ = opts_.every;
  taken_ = 0;
  evicted_ = 0;
  deferred_ = 0;
  dead_ = 0;
}

void CheckpointManager::reap_locked() {
  for (const mp::ChildReaper::Exit& exit : reaper_.poll()) {
    for (Entry& entry : ring_) {
      if (entry.alive && entry.pid == exit.pid) {
        DLOG_WARN("timetravel")
            << "checkpoint @" << entry.step << " pid " << entry.pid
            << (exit.crashed()
                    ? strings::format(" killed by signal %d", exit.signal)
                    : strings::format(" exited with %d", exit.exit_code));
        close_fd(entry.cmd_w);
        close_fd(entry.reply_r);
        entry.alive = false;
        ++dead_;
      }
    }
  }
}

void CheckpointManager::kill_entry_locked(Entry& entry, bool send_quit) {
  if (send_quit && entry.cmd_w >= 0) {
    unsigned char req[9] = {'q', 0, 0, 0, 0, 0, 0, 0, 0};
    write_full(entry.cmd_w, req, sizeof req);
  }
  close_fd(entry.cmd_w);
  close_fd(entry.reply_r);
  entry.alive = false;
}

}  // namespace dionea::replay::tt
