// Deterministic record/replay for MiniVM executions.
//
// Heisenbugs in GIL hand-off order and fork timing vanish on re-run —
// the classic execution-replay problem (Ronsse et al.). This engine
// captures every scheduling decision the VM makes into a compact
// binary log, one log per process:
//
//   - GIL grants and voluntary hand-offs (the interleaving itself),
//     keyed by a per-thread step counter so a replay that drifts is
//     caught at the exact step, not by its downstream wreckage;
//   - sync-object outcomes: mutex acquisition order, queue pop
//     pairings, condvar wakeups — the only places where the winner
//     among several GIL-released waiters is decided by the OS;
//   - fork events (child pid -> logical child id), so a multi-process
//     run replays end-to-end: each child derives its log name from its
//     logical position in the fork tree, not its (fresh) pid;
//   - nondeterministic builtins (clock, rand), whose recorded values
//     are substituted on replay.
//
// In replay mode the GIL and the sync objects consult the log and
// force the recorded interleaving: a thread that would acquire out of
// turn parks until it is the designated next holder. A replay that
// cannot match the log (the program changed, or genuinely
// unreproducible input sneaked in) never hangs: the engine declares a
// *divergence* — recording the step and reason, releasing every parked
// thread, and letting the rest of the run free-run. `replay-info`
// (protocol) and the console's `replay` verb surface that state.
//
// Activation: programmatically (tests) or via DIONEA_RECORD=<dir> /
// DIONEA_REPLAY=<dir> read by Vm's constructor. Fork handler C's
// analog here is Engine::child_atfork: invoked by the VM's own child
// handler, it abandons the parent's engine state and opens the child's
// own log — mirroring how the metrics registry resets its shards.
//
// Lock ordering: the engine mutex is a leaf. It is taken under the GIL
// state mutex (grant logging / grant gating), under sync-object
// mutexes (outcome gating inside wait predicates) and under the VM's
// sched_mutex (deadlock-suppression queries); the engine itself never
// takes any other lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "support/result.hpp"

namespace dionea::replay {

enum class Mode : int {
  kOff = 0,
  kRecord,
  kReplay,
  kDiverged,  // was kReplay; gave up forcing the schedule (see above)
};

const char* mode_name(Mode mode) noexcept;

enum class EventKind : std::uint8_t {
  kGilAcquire = 1,  // obj = per-thread grant ordinal
  kGilYield,        // voluntary hand-off taken at a switch point
  kMutexLock,       // obj = sync-object id
  kMutexTryLock,    // payload = 1 if the lock was taken
  kQueuePop,        // obj = sync-object id
  kQueueTryPop,     // payload = 1 if an item was popped
  kCondWake,        // obj = sync-object id
  kFork,            // payload = logical child id (1-based, per process)
  kClock,           // payload = bit pattern of the double returned
  kRand,            // payload = raw u64 the value was derived from
  kForkPid,         // annotation: payload = real child pid (info only)
  kThreadDone,      // join verdict: obj = target tid, payload = 1 if the
                    // target was already dead when the joiner looked
  kWaitResult,      // waitpid verdict: payload = exit code (as u64). On
                    // replay the code is substituted from the log, so a
                    // checkpoint resumer whose snapshot predates the
                    // child's parent (ECHILD on the real wait) still
                    // replays through the wait deterministically.
};

const char* event_kind_name(EventKind kind) noexcept;

// Records flagged as info are annotations for humans/tools; the replay
// cursor skips them instead of matching against them.
inline constexpr std::uint8_t kFlagInfo = 1;

struct Record {
  EventKind kind = EventKind::kGilAcquire;
  std::uint8_t flags = 0;
  std::int64_t tid = 0;
  std::uint64_t obj = 0;
  std::uint64_t payload = 0;
};

// Status snapshot for replay-info / the console verb.
struct Info {
  Mode mode = Mode::kOff;
  std::uint64_t step = 0;         // records written (record) / consumed (replay)
  std::uint64_t total_steps = 0;  // log length (replay/diverged only)
  std::string log_path;           // this process's log file ("" when off)
  std::int64_t divergence_step = -1;
  std::string divergence_reason;
};

class Engine {
 public:
  // Process-wide instance (never destroyed; logs are flushed
  // explicitly and via atexit).
  static Engine& instance();

  // Reads DIONEA_RECORD / DIONEA_REPLAY once per process and starts
  // the engine accordingly. Idempotent; errors are logged, not fatal.
  static void init_from_env();

  // ---- lifecycle ----
  // Start recording into (resp. replaying from) `dir`. The root
  // process uses <dir>/root.rlog; a forked child appends ".c<N>" per
  // fork-tree level (root.c1.rlog, root.c1.c2.rlog, ...). start_*
  // resets the object/fork/step counters so a record and a replay of
  // the same program number everything identically.
  Status start_record(const std::string& dir);
  Status start_replay(const std::string& dir);
  void stop();   // flush + close + Mode::kOff
  void flush();  // fsync-less flush of the record buffer

  Mode mode() const noexcept {
    return static_cast<Mode>(mode_.load(std::memory_order_acquire));
  }
  bool recording() const noexcept { return mode() == Mode::kRecord; }
  // True in replay *and* diverged mode: call sites stay on the replay
  // code path after a divergence (every gate passes through).
  bool replaying() const noexcept {
    Mode m = mode();
    return m == Mode::kReplay || m == Mode::kDiverged;
  }
  bool active() const noexcept { return mode() != Mode::kOff; }

  // ---- record side (no-ops unless recording; external tids skipped) ----
  void record(EventKind kind, std::int64_t tid, std::uint64_t obj = 0,
              std::uint64_t payload = 0);

  // ---- replay side ----
  // Non-blocking gate: if the head of the log is (kind, tid) — and obj
  // matches when both sides carry one — consume it and return true.
  // Returns true without consuming when the engine is off, recording,
  // diverged, or tid is external. `probe` distinguishes a question
  // ("did the record hand off here?") from a committed operation: a
  // committed mismatch against the same thread's next event means the
  // execution took a different path than recorded and declares a
  // divergence; a probe just answers false.
  bool try_consume(EventKind kind, std::int64_t tid, std::uint64_t obj = 0,
                   std::uint64_t* payload = nullptr, bool probe = false);

  // Blocking gate: park until try_consume succeeds (slices, so a
  // stalled replay is detected and diverges rather than hanging).
  // Returns false only when the wait ended because of a divergence.
  bool await_turn(EventKind kind, std::int64_t tid, std::uint64_t obj = 0,
                  std::uint64_t* payload = nullptr);

  // True while `tid` is parked at a replay gate (refreshed every wait
  // slice). The VM's deadlock detector treats such a thread as making
  // progress — it is waiting for its turn, not for the program.
  bool gated(std::int64_t tid) const;

  // ---- step accounting / run-to-step gate (time travel) ----
  // Monotonic public step counter: records written (record mode) or
  // consumed (replay). Lock-free — this is what tests and the
  // checkpoint machinery key on instead of grepping log tails.
  std::uint64_t replay_step() const noexcept {
    return step_mirror_.load(std::memory_order_acquire);
  }

  // Arm (step > 0) or clear (0) the run-to-step gate. While armed and
  // replay_step() >= step, every consume attempt parks instead of
  // matching — the whole schedule freezes at the target without any
  // divergence being declared. Clearing wakes every parked thread and
  // the replay resumes exactly where it stopped.
  void set_stop_at_step(std::uint64_t step) noexcept;
  std::uint64_t stop_at_step() const noexcept {
    return stop_at_step_.load(std::memory_order_acquire);
  }
  // Cheap probe for hot paths: gate armed and target reached.
  bool stop_gated() const noexcept {
    std::uint64_t at = stop_at_step_.load(std::memory_order_acquire);
    return at != 0 && replay_step() >= at;
  }

  // Block until replay_step() >= min(step, total_steps). Fails with
  // kAborted on divergence (step + reason in the message, the PR 3
  // contract) and kTimeout if nothing progresses in time — never hangs.
  Status await_step(std::uint64_t step, int timeout_millis);

  // ---- id services (valid in every mode, cheap atomics) ----
  // Sync objects take a stable 1-based id at construction; creation
  // happens under the GIL, so record and replay number them alike.
  std::uint64_t register_object() noexcept;

  // Fork bookkeeping: returns the logical child id (1-based per
  // process; 0 when the engine is off). Records the kFork event /
  // consumes it on replay. Call with the GIL held, before fork(2).
  std::uint64_t on_fork(std::int64_t tid);
  // Parent-side annotation after a successful fork.
  void record_fork_pid(std::int64_t tid, int child_pid);

  // ---- fork pinning (driven by Vm::internal_fork_*) ----
  void prepare_fork();
  void parent_atfork();
  // In the child: abandon the parent's engine state (same leak
  // rationale as Gil::child_atfork) and open/load this child's log.
  void child_atfork(std::uint64_t logical_child_id);

  // Checkpoint-fork variant (timetravel): the child is a *snapshot* of
  // this replay, not a recorded member of the fork tree. It keeps the
  // parent's log, cursor, per-thread ordinals and object/fork counters
  // so that resuming it continues the very same schedule; only the
  // mutex/cv block is abandoned (vanished-waiter rationale above).
  void checkpoint_child_atfork();
  // Nesting depth of checkpoint forks above this process (0 = never
  // checkpoint-forked). Fork handler C uses this to register the
  // session with the hub under the `checkpoint` kind.
  int checkpoint_generation() const noexcept {
    return checkpoint_generation_.load(std::memory_order_relaxed);
  }

  Info info() const;

  // How long a gated thread may wait with no global replay progress
  // before the engine declares a divergence (default 2000, env
  // DIONEA_REPLAY_TIMEOUT_MS).
  void set_divergence_timeout_millis(int millis) noexcept;

 private:
  Engine();

  struct State;

  bool try_consume_locked(EventKind kind, std::int64_t tid, std::uint64_t obj,
                          std::uint64_t* payload, bool probe);
  void declare_divergence_locked(std::string reason);
  void skip_info_locked();
  void append_locked(const Record& rec);
  Status open_log_locked();
  Status load_log_locked();
  std::string log_path_locked() const;
  void reset_counters();

  std::atomic<int> mode_{static_cast<int>(Mode::kOff)};
  std::atomic<std::uint64_t> object_seq_{0};
  std::atomic<std::uint64_t> fork_seq_{0};
  std::atomic<int> divergence_timeout_millis_{2000};
  // Lock-free mirror of written/cursor (see replay_step()).
  std::atomic<std::uint64_t> step_mirror_{0};
  std::atomic<std::uint64_t> stop_at_step_{0};
  std::atomic<int> checkpoint_generation_{0};
  // Abandoned wholesale in the child at fork (mutex/cv state may
  // reference parent-only threads); bounded leak, one block per fork.
  std::unique_ptr<State> state_;
};

// Convenience probe used by hot paths.
inline bool engine_active() { return Engine::instance().active(); }

}  // namespace dionea::replay
