#include "replay/replay.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/timing.hpp"

namespace dionea::replay {

namespace {

// Log layout: 8-byte header ("DRLG", u8 version, 3 reserved) followed
// by fixed 26-byte records: u8 kind, u8 flags, i64 tid, u64 obj,
// u64 payload — all little-endian. A truncated trailing record (the
// recorder died mid-write) is tolerated and ignored on load.
constexpr char kMagic[4] = {'D', 'R', 'L', 'G'};
constexpr std::uint8_t kVersion = 1;
constexpr size_t kHeaderBytes = 8;
constexpr size_t kRecordBytes = 26;

void put_u64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

std::string describe(const Record& rec) {
  return strings::format("%s tid=%lld obj=%llu payload=%llu",
                         event_kind_name(rec.kind),
                         static_cast<long long>(rec.tid),
                         static_cast<unsigned long long>(rec.obj),
                         static_cast<unsigned long long>(rec.payload));
}

}  // namespace

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kRecord: return "record";
    case Mode::kReplay: return "replay";
    case Mode::kDiverged: return "diverged";
  }
  return "?";
}

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kGilAcquire: return "gil_acquire";
    case EventKind::kGilYield: return "gil_yield";
    case EventKind::kMutexLock: return "mutex_lock";
    case EventKind::kMutexTryLock: return "mutex_try_lock";
    case EventKind::kQueuePop: return "queue_pop";
    case EventKind::kQueueTryPop: return "queue_try_pop";
    case EventKind::kCondWake: return "cond_wake";
    case EventKind::kFork: return "fork";
    case EventKind::kClock: return "clock";
    case EventKind::kRand: return "rand";
    case EventKind::kForkPid: return "fork_pid";
    case EventKind::kThreadDone: return "thread_done";
    case EventKind::kWaitResult: return "wait_result";
  }
  return "?";
}

struct Engine::State {
  mutable std::mutex mutex;
  std::condition_variable cv;

  std::string dir;
  std::string path = "root";  // logical position in the fork tree

  // record side
  std::FILE* log_file = nullptr;
  std::uint64_t written = 0;

  // replay side
  std::vector<Record> log;
  std::uint64_t cursor = 0;
  double last_progress = 0.0;
  std::int64_t divergence_step = -1;
  std::string divergence_reason;

  // Per-thread grant ordinals (both modes) and the set of threads
  // currently parked at a gate (tid -> last refresh, mono seconds).
  std::unordered_map<std::int64_t, std::uint64_t> thread_steps;
  std::unordered_map<std::int64_t, double> gated;

  std::unique_lock<std::mutex> fork_lock;  // held between prepare and parent
};

Engine::Engine() : state_(std::make_unique<State>()) {}

Engine& Engine::instance() {
  // Leaked on purpose: debuggee threads may still hit gates while
  // static destructors run.
  static Engine* engine = new Engine();
  return *engine;
}

void Engine::init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* record_dir = std::getenv("DIONEA_RECORD");
    const char* replay_dir = std::getenv("DIONEA_REPLAY");
    if (const char* ms = std::getenv("DIONEA_REPLAY_TIMEOUT_MS")) {
      instance().set_divergence_timeout_millis(std::atoi(ms));
    }
    if (record_dir != nullptr && *record_dir != '\0') {
      Status status = instance().start_record(record_dir);
      if (!status.is_ok()) {
        DLOG_ERROR("replay") << "DIONEA_RECORD: " << status.to_string();
      }
    } else if (replay_dir != nullptr && *replay_dir != '\0') {
      Status status = instance().start_replay(replay_dir);
      if (!status.is_ok()) {
        DLOG_ERROR("replay") << "DIONEA_REPLAY: " << status.to_string();
      }
    }
  });
}

void Engine::reset_counters() {
  object_seq_.store(0, std::memory_order_relaxed);
  fork_seq_.store(0, std::memory_order_relaxed);
}

std::string Engine::log_path_locked() const {
  return state_->dir + "/" + state_->path + ".rlog";
}

Status Engine::open_log_locked() {
  ::mkdir(state_->dir.c_str(), 0777);  // best effort; fopen reports failure
  std::string path = log_path_locked();
  state_->log_file = std::fopen(path.c_str(), "wb");
  if (state_->log_file == nullptr) {
    return Status(ErrorCode::kOsError,
                  "replay: cannot open " + path + ": " + std::strerror(errno));
  }
  unsigned char header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, 4);
  header[4] = kVersion;
  std::fwrite(header, 1, kHeaderBytes, state_->log_file);
  state_->written = 0;
  step_mirror_.store(0, std::memory_order_release);
  return Status::ok();
}

Status Engine::load_log_locked() {
  std::string path = log_path_locked();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "replay: no recorded log at " + path);
  }
  unsigned char header[kHeaderBytes] = {};
  if (std::fread(header, 1, kHeaderBytes, f) != kHeaderBytes ||
      std::memcmp(header, kMagic, 4) != 0 || header[4] != kVersion) {
    std::fclose(f);
    return Status(ErrorCode::kProtocol,
                  "replay: " + path + " is not a v1 replay log");
  }
  state_->log.clear();
  unsigned char buf[kRecordBytes];
  while (std::fread(buf, 1, kRecordBytes, f) == kRecordBytes) {
    Record rec;
    rec.kind = static_cast<EventKind>(buf[0]);
    rec.flags = buf[1];
    rec.tid = static_cast<std::int64_t>(get_u64(buf + 2));
    rec.obj = get_u64(buf + 10);
    rec.payload = get_u64(buf + 18);
    state_->log.push_back(rec);
  }
  std::fclose(f);
  state_->cursor = 0;
  step_mirror_.store(0, std::memory_order_release);
  state_->last_progress = mono_seconds();
  return Status::ok();
}

Status Engine::start_record(const std::string& dir) {
  std::scoped_lock lock(state_->mutex);
  if (mode() != Mode::kOff) {
    return Status(ErrorCode::kAlreadyExists, "replay engine already active");
  }
  state_->dir = dir;
  state_->path = "root";
  state_->thread_steps.clear();
  state_->gated.clear();
  state_->written = 0;
  reset_counters();
  DIONEA_RETURN_IF_ERROR(open_log_locked());
  mode_.store(static_cast<int>(Mode::kRecord), std::memory_order_release);
  std::atexit([] { Engine::instance().flush(); });
  DLOG_INFO("replay") << "recording to " << log_path_locked();
  return Status::ok();
}

Status Engine::start_replay(const std::string& dir) {
  std::scoped_lock lock(state_->mutex);
  if (mode() != Mode::kOff) {
    return Status(ErrorCode::kAlreadyExists, "replay engine already active");
  }
  state_->dir = dir;
  state_->path = "root";
  state_->thread_steps.clear();
  state_->gated.clear();
  state_->divergence_step = -1;
  state_->divergence_reason.clear();
  reset_counters();
  DIONEA_RETURN_IF_ERROR(load_log_locked());
  mode_.store(static_cast<int>(Mode::kReplay), std::memory_order_release);
  DLOG_INFO("replay") << "replaying " << state_->log.size()
                      << " step(s) from " << log_path_locked();
  return Status::ok();
}

void Engine::stop() {
  std::scoped_lock lock(state_->mutex);
  if (state_->log_file != nullptr) {
    std::fflush(state_->log_file);
    std::fclose(state_->log_file);
    state_->log_file = nullptr;
  }
  state_->log.clear();
  state_->cursor = 0;
  state_->thread_steps.clear();
  state_->gated.clear();
  step_mirror_.store(0, std::memory_order_release);
  stop_at_step_.store(0, std::memory_order_release);
  mode_.store(static_cast<int>(Mode::kOff), std::memory_order_release);
  state_->cv.notify_all();
}

void Engine::flush() {
  std::scoped_lock lock(state_->mutex);
  if (state_->log_file != nullptr) std::fflush(state_->log_file);
}

void Engine::set_divergence_timeout_millis(int millis) noexcept {
  divergence_timeout_millis_.store(millis > 0 ? millis : 1,
                                   std::memory_order_relaxed);
}

std::uint64_t Engine::register_object() noexcept {
  return object_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
}

// ----------------------------------------------------------- record side

void Engine::append_locked(const Record& rec) {
  if (state_->log_file == nullptr) return;
  unsigned char buf[kRecordBytes];
  buf[0] = static_cast<unsigned char>(rec.kind);
  buf[1] = rec.flags;
  put_u64(buf + 2, static_cast<std::uint64_t>(rec.tid));
  put_u64(buf + 10, rec.obj);
  put_u64(buf + 18, rec.payload);
  std::fwrite(buf, 1, kRecordBytes, state_->log_file);
  ++state_->written;
  step_mirror_.store(state_->written, std::memory_order_release);
  metrics::add(metrics::Counter::kReplaySteps);
}

void Engine::record(EventKind kind, std::int64_t tid, std::uint64_t obj,
                    std::uint64_t payload) {
  if (mode() != Mode::kRecord || tid < 0) return;
  std::scoped_lock lock(state_->mutex);
  if (kind == EventKind::kGilAcquire) {
    obj = ++state_->thread_steps[tid];  // per-thread step counter
  }
  append_locked(Record{kind, 0, tid, obj, payload});
}

void Engine::record_fork_pid(std::int64_t tid, int child_pid) {
  if (mode() != Mode::kRecord || tid < 0) return;
  std::scoped_lock lock(state_->mutex);
  append_locked(Record{EventKind::kForkPid, kFlagInfo, tid, 0,
                       static_cast<std::uint64_t>(child_pid)});
}

// ----------------------------------------------------------- replay side

void Engine::skip_info_locked() {
  while (state_->cursor < state_->log.size() &&
         (state_->log[state_->cursor].flags & kFlagInfo) != 0) {
    ++state_->cursor;
  }
}

void Engine::declare_divergence_locked(std::string reason) {
  if (mode() != Mode::kReplay) return;
  state_->divergence_step = static_cast<std::int64_t>(state_->cursor);
  state_->divergence_reason = std::move(reason);
  mode_.store(static_cast<int>(Mode::kDiverged), std::memory_order_release);
  metrics::add(metrics::Counter::kReplayDivergences);
  DLOG_WARN("replay") << "divergence at step " << state_->cursor << ": "
                      << state_->divergence_reason
                      << " (free-running from here)";
  state_->gated.clear();
  state_->cv.notify_all();
}

bool Engine::try_consume_locked(EventKind kind, std::int64_t tid,
                                std::uint64_t obj, std::uint64_t* payload,
                                bool probe) {
  if (mode() != Mode::kReplay) return true;  // diverged: pass through
  skip_info_locked();
  step_mirror_.store(state_->cursor, std::memory_order_release);
  const std::uint64_t stop_at = stop_at_step_.load(std::memory_order_acquire);
  if (stop_at != 0 && state_->cursor >= stop_at) {
    // Run-to-step gate reached. Only GIL *grants* are refused: that
    // freezes the schedule (no thread gets scheduled past the target)
    // without ever parking a thread that still holds the GIL — a
    // holder mid-interval drains its few remaining non-scheduling
    // events and then parks, GIL-free, at its next switch point
    // (Gil::yield checks stop_gated()). last_progress is pinned so the
    // stall detector cannot mistake a deliberate pause for a wedged
    // replay; gated() keeps the deadlock detector quiet the same way
    // it does for ordinary turn-waiting.
    double now = mono_seconds();
    state_->last_progress = now;
    if (kind == EventKind::kGilAcquire) {
      state_->gated[tid] = now;
      return false;
    }
  }
  if (state_->cursor >= state_->log.size()) {
    if (probe) return false;
    declare_divergence_locked(strings::format(
        "log exhausted; thread %lld attempted %s",
        static_cast<long long>(tid), event_kind_name(kind)));
    return true;
  }
  const Record& head = state_->log[state_->cursor];
  std::uint64_t want_obj = obj;
  if (kind == EventKind::kGilAcquire) {
    want_obj = state_->thread_steps[tid] + 1;
  }
  if (head.kind == kind && head.tid == tid &&
      (want_obj == 0 || head.obj == 0 || head.obj == want_obj)) {
    if (kind == EventKind::kGilAcquire) ++state_->thread_steps[tid];
    if (payload != nullptr) *payload = head.payload;
    ++state_->cursor;
    skip_info_locked();
    step_mirror_.store(state_->cursor, std::memory_order_release);
    state_->last_progress = mono_seconds();
    state_->gated.erase(tid);
    metrics::add(metrics::Counter::kReplaySteps);
    state_->cv.notify_all();
    return true;
  }
  if (probe) return false;
  if (head.tid == tid) {
    // The same thread's next recorded event is something else: this
    // execution took a different path than the recording.
    declare_divergence_locked(strings::format(
        "thread %lld attempted %s (obj=%llu) but recorded step is %s",
        static_cast<long long>(tid), event_kind_name(kind),
        static_cast<unsigned long long>(want_obj),
        describe(head).c_str()));
    return true;
  }
  // Another thread's turn: park, and track the stall so a replay whose
  // designated thread never shows up diverges instead of hanging.
  double now = mono_seconds();
  auto [it, fresh] = state_->gated.try_emplace(tid, now);
  if (fresh) {
    metrics::add(metrics::Counter::kReplayParkWaits);
  } else {
    it->second = now;
  }
  const double timeout =
      divergence_timeout_millis_.load(std::memory_order_relaxed) / 1000.0;
  if (now - state_->last_progress > timeout) {
    declare_divergence_locked(strings::format(
        "stalled for %.1fs waiting for %s; thread %lld parked at %s",
        now - state_->last_progress, describe(head).c_str(),
        static_cast<long long>(tid), event_kind_name(kind)));
    return true;
  }
  return false;
}

bool Engine::try_consume(EventKind kind, std::int64_t tid, std::uint64_t obj,
                         std::uint64_t* payload, bool probe) {
  if (!replaying() || tid < 0) return true;
  std::scoped_lock lock(state_->mutex);
  return try_consume_locked(kind, tid, obj, payload, probe);
}

bool Engine::await_turn(EventKind kind, std::int64_t tid, std::uint64_t obj,
                        std::uint64_t* payload) {
  if (!replaying() || tid < 0) return true;
  std::unique_lock lock(state_->mutex);
  while (!try_consume_locked(kind, tid, obj, payload, /*probe=*/false)) {
    state_->cv.wait_for(lock, std::chrono::milliseconds(20));
  }
  return mode() != Mode::kDiverged;
}

bool Engine::gated(std::int64_t tid) const {
  if (mode() != Mode::kReplay) return false;
  std::scoped_lock lock(state_->mutex);
  auto it = state_->gated.find(tid);
  if (it == state_->gated.end()) return false;
  // Stale entries (the thread was interrupted mid-gate) expire so they
  // cannot mask a genuine deadlock forever.
  return mono_seconds() - it->second < 0.1;
}

// ------------------------------------------- run-to-step gate (timetravel)

void Engine::set_stop_at_step(std::uint64_t step) noexcept {
  stop_at_step_.store(step, std::memory_order_release);
  // Wake every parked consumer: with the gate cleared (or moved) they
  // re-probe and the replay picks up exactly where it stopped. Pinning
  // last_progress forward keeps the stall detector honest across the
  // pause.
  std::scoped_lock lock(state_->mutex);
  state_->last_progress = mono_seconds();
  state_->cv.notify_all();
}

Status Engine::await_step(std::uint64_t step, int timeout_millis) {
  if (!replaying()) {
    return Status(ErrorCode::kInvalidArgument,
                  "replay: await_step outside replay mode");
  }
  std::unique_lock lock(state_->mutex);
  const double deadline = mono_seconds() + timeout_millis / 1000.0;
  for (;;) {
    const std::uint64_t goal =
        std::min<std::uint64_t>(step, state_->log.size());
    if (state_->cursor >= goal) return Status::ok();
    if (mode() == Mode::kDiverged) {
      return Status(ErrorCode::kInternal,
                    strings::format("replay diverged at step %lld: %s",
                                    static_cast<long long>(
                                        state_->divergence_step),
                                    state_->divergence_reason.c_str()));
    }
    if (mono_seconds() >= deadline) {
      return Status(ErrorCode::kTimeout,
                    strings::format(
                        "replay stalled at step %llu awaiting step %llu",
                        static_cast<unsigned long long>(state_->cursor),
                        static_cast<unsigned long long>(goal)));
    }
    state_->cv.wait_for(lock, std::chrono::milliseconds(20));
  }
}

// ------------------------------------------------------------------- fork

std::uint64_t Engine::on_fork(std::int64_t tid) {
  Mode m = mode();
  if (m == Mode::kOff) return 0;
  std::uint64_t logical = fork_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (m == Mode::kRecord) {
    record(EventKind::kFork, tid, 0, logical);
  } else {
    std::uint64_t recorded = 0;
    if (await_turn(EventKind::kFork, tid, 0, &recorded) &&
        recorded != logical) {
      std::scoped_lock lock(state_->mutex);
      declare_divergence_locked(strings::format(
          "fork #%llu by thread %lld was recorded as #%llu",
          static_cast<unsigned long long>(logical),
          static_cast<long long>(tid),
          static_cast<unsigned long long>(recorded)));
    }
  }
  return logical;
}

void Engine::prepare_fork() {
  if (!active()) return;
  state_->fork_lock = std::unique_lock(state_->mutex);
  // Empty the stdio buffer so the child does not inherit (and later
  // re-emit) the parent's buffered records.
  if (state_->log_file != nullptr) std::fflush(state_->log_file);
}

void Engine::parent_atfork() {
  if (!active()) return;
  state_->fork_lock.unlock();
  state_->fork_lock = {};
}

void Engine::child_atfork(std::uint64_t logical_child_id) {
  Mode m = mode();
  if (m == Mode::kOff) return;
  // Abandon the parent's state block: its mutex is pinned by
  // prepare_fork's lock and its cv may reference vanished threads
  // (same rationale — and the same bounded leak — as Gil::child_atfork).
  state_->fork_lock.release();
  State* old = state_.release();
  state_ = std::make_unique<State>();
  state_->dir = old->dir;
  state_->path = old->path + ".c" + std::to_string(logical_child_id);
  // The inherited FILE* shares its descriptor with the parent; the
  // buffer was flushed in prepare, so closing our copy is safe.
  if (old->log_file != nullptr) std::fclose(old->log_file);
  // Children number their own forks and threads from scratch, in both
  // modes alike.
  fork_seq_.store(0, std::memory_order_relaxed);
  // A run-to-step gate is parent-log-relative; carrying it into a
  // fresh subtree log would freeze this child at a meaningless step
  // (checkpoint forks keep it — they replay the *same* log).
  stop_at_step_.store(0, std::memory_order_release);
  if (m == Mode::kRecord) {
    Status status = open_log_locked();
    if (!status.is_ok()) {
      DLOG_ERROR("replay") << status.to_string();
      mode_.store(static_cast<int>(Mode::kOff), std::memory_order_release);
    }
    return;
  }
  // Replay (or diverged) child: map our logical id back to the
  // recorded subtree. A diverged parent cannot say which subtree we
  // are; stop forcing anything in that case.
  if (m == Mode::kDiverged) {
    mode_.store(static_cast<int>(Mode::kOff), std::memory_order_release);
    return;
  }
  Status status = load_log_locked();
  if (!status.is_ok()) {
    state_->divergence_step = 0;
    state_->divergence_reason = status.to_string();
    mode_.store(static_cast<int>(Mode::kDiverged), std::memory_order_release);
    metrics::add(metrics::Counter::kReplayDivergences);
    DLOG_WARN("replay") << "child free-running: " << status.to_string();
  }
}

void Engine::checkpoint_child_atfork() {
  checkpoint_generation_.fetch_add(1, std::memory_order_relaxed);
  stop_at_step_.store(0, std::memory_order_release);
  if (mode() == Mode::kOff) return;
  // Same abandon-the-block dance as child_atfork, but this child is a
  // snapshot of the replay itself: it keeps the log, the cursor, the
  // per-thread grant ordinals and (crucially) the inherited object/fork
  // sequence counters, so a resume numbers everything exactly as the
  // recording did. Only the mutex/cv (vanished waiters) is replaced.
  state_->fork_lock.release();
  State* old = state_.release();
  state_ = std::make_unique<State>();
  state_->dir = old->dir;
  state_->path = old->path;
  state_->log = old->log;
  state_->cursor = old->cursor;
  state_->thread_steps = old->thread_steps;
  state_->divergence_step = old->divergence_step;
  state_->divergence_reason = old->divergence_reason;
  state_->last_progress = mono_seconds();
  step_mirror_.store(state_->cursor, std::memory_order_release);
  // The inherited FILE* (record mode only, which never checkpoints in
  // practice) shares its descriptor with the parent; close our copy.
  if (old->log_file != nullptr) std::fclose(old->log_file);
}

// ------------------------------------------------------------------- info

Info Engine::info() const {
  Info out;
  out.mode = mode();
  if (out.mode == Mode::kOff) return out;
  std::scoped_lock lock(state_->mutex);
  out.log_path = log_path_locked();
  if (out.mode == Mode::kRecord) {
    out.step = state_->written;
    out.total_steps = state_->written;
  } else {
    out.step = state_->cursor;
    out.total_steps = state_->log.size();
    out.divergence_step = state_->divergence_step;
    out.divergence_reason = state_->divergence_reason;
  }
  return out;
}

}  // namespace dionea::replay
