#!/usr/bin/env bash
# Pretty-print a DIONEA-CRASH v1 post-mortem report.
#
# Usage:
#   tools/crashdump.sh                     # newest report in the crash dir
#   tools/crashdump.sh /tmp/dionea-crash.12345.txt
#   tools/crashdump.sh /some/crash/dir     # newest report in that dir
#
# The crash dir defaults to $DIONEA_CRASH_DIR, then /tmp — the same
# resolution the in-process writer uses (src/support/crash_report.cpp).
#
# Report anatomy (written by an async-signal-safe handler, so the
# format is deliberately line-oriented and fixed):
#   DIONEA-CRASH v1
#   pid: <pid>                 reason: <signal name or caller reason>
#   signal: <n> <SIGNAME>      (absent for non-signal captures)
#   last-trace: <file>:<line> tid=<tid>
#   == section: <name> ==      (vm: threads/backtraces/sync owners/GIL,
#   ...                         replay-tail: last DRLG records, ...)
#   == end ==                  (present iff the write completed)
set -euo pipefail

bold=""; dim=""; red=""; yellow=""; reset=""
if [[ -t 1 ]]; then
  bold=$'\033[1m'; dim=$'\033[2m'; red=$'\033[31m'
  yellow=$'\033[33m'; reset=$'\033[0m'
fi

newest_report() {
  # shellcheck disable=SC2012
  ls -t "$1"/dionea-crash.*.txt 2>/dev/null | head -1
}

target="${1:-}"
if [[ -z "${target}" ]]; then
  dir="${DIONEA_CRASH_DIR:-/tmp}"
  target="$(newest_report "${dir}")"
  if [[ -z "${target}" ]]; then
    echo "crashdump.sh: no dionea-crash.*.txt in ${dir}" >&2
    exit 1
  fi
elif [[ -d "${target}" ]]; then
  dir="${target}"
  target="$(newest_report "${dir}")"
  if [[ -z "${target}" ]]; then
    echo "crashdump.sh: no dionea-crash.*.txt in ${dir}" >&2
    exit 1
  fi
fi

if [[ ! -r "${target}" ]]; then
  echo "crashdump.sh: cannot read ${target}" >&2
  exit 1
fi

if ! head -1 "${target}" | grep -q '^DIONEA-CRASH v1$'; then
  echo "crashdump.sh: ${target} is not a DIONEA-CRASH v1 report" >&2
  exit 1
fi

echo "${bold}${target}${reset}"
echo

# Header summary: one line a human scans first.
pid="$(sed -n 's/^pid: //p' "${target}" | head -1)"
reason="$(sed -n 's/^reason: //p' "${target}" | head -1)"
signal="$(sed -n 's/^signal: //p' "${target}" | head -1)"
last_trace="$(sed -n 's/^last-trace: //p' "${target}" | head -1)"
echo "${bold}pid${reset} ${pid:-?}   ${bold}reason${reset} ${red}${reason:-?}${reset}\
${signal:+   ${bold}signal${reset} ${red}${signal}${reset}}"
[[ -n "${last_trace}" ]] && echo "${bold}last traced line${reset} ${last_trace}"

# Truncation check: the == end == sentinel is the writer's last line.
if ! grep -q '^== end ==$' "${target}"; then
  echo "${yellow}warning: no '== end ==' sentinel — the report is truncated" \
       "(the process died mid-write)${reset}"
fi
echo

# Body with section headers highlighted.
while IFS= read -r line; do
  case "${line}" in
    "DIONEA-CRASH v1"|"pid: "*|"reason: "*|"signal: "*|"last-trace: "*)
      ;;  # already summarized above
    "== section: "*)
      name="${line#== section: }"
      echo "${bold}--- ${name% ==} ---${reset}" ;;
    "== end ==")
      echo "${dim}(complete)${reset}" ;;
    "thread "*|"gil-owner: "*|"fork-depth: "*)
      echo "${bold}${line}${reset}" ;;
    *)
      echo "${line}" ;;
  esac
done < "${target}"
