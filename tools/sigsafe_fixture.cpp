// sigsafe_fixture — a deliberately *bad* signal handler, used to prove
// the sigsafe gate can fail. The handler calls printf (stdio lock) and
// malloc (heap lock): both classic crash-handler deadlocks. The
// paired ctest runs sigsafe_lint.sh --expect-fail over this binary;
// if a scanner regression ever stops seeing these calls, that test
// fails instead of the real gate passing vacuously.
//
// The binary never installs the handler for real — it exists only to
// be disassembled.
#include <csignal>
#include <cstdio>
#include <cstdlib>

namespace fixture {

// noinline + used: the call edges must survive into the linked binary
// for objdump to see them.
__attribute__((noinline, used)) void handle_fatal_signal(int sig) {
  std::printf("crashed with signal %d\n", sig);     // stdio: unsafe
  void* scratch = std::malloc(64);                  // heap: unsafe
  std::free(scratch);
}

}  // namespace fixture

int main(int argc, char**) {
  // Keep the handler reachable without running it (argc is never 17).
  if (argc == 17) fixture::handle_fatal_signal(SIGSEGV);
  return 0;
}
