// sigsafe_scan — async-signal-safety gate over a linked binary.
//
// The crash handlers (support/crash_report.cpp) run inside a fatal
// signal, possibly while the faulting thread held the malloc lock or a
// stdio lock. POSIX allows only the async-signal-safe set there; one
// stray printf compiles fine and deadlocks once a decade. This tool
// makes the rule mechanical: walk the *linked* binary's call graph
// from the handler entry points and reject any reachable external
// call that is not on the allowlist.
//
// Input is `objdump -d -C <binary>` on stdin (the shell wrapper
// tools/sigsafe_lint.sh drives it). We parse function bodies
//
//   0000000000012345 <dionea::crash::(anonymous namespace)::write_report(...)>:
//     12345:  e8 ..    call   45678 <malloc@plt>
//
// and BFS from every function whose demangled name contains a --root
// substring. Reached symbols with a body are scanned recursively;
// symbols without one (PLT stubs, libc) must match the allowlist.
// Indirect calls (`call *%rax`) cannot be resolved statically and are
// reported as warnings, not failures — the handler code is written
// without function pointers, so any that appear deserve eyeballs.
//
// Exit codes: 0 clean, 1 violations, 64 usage, 65 no root matched
// (the binary changed under the gate — that must fail loudly, not
// vacuously pass).
//
//   sigsafe_scan --allow tools/sigsafe_allow.txt \
//                --root handle_fatal_signal < dump.txt
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace {

struct Options {
  std::string allow_path;
  std::vector<std::string> roots;
  bool verbose = false;
};

// "malloc@plt" -> "malloc"; "operator new(unsigned long)@plt" too.
std::string strip_plt(const std::string& sym) {
  if (sym.size() > 4 && sym.compare(sym.size() - 4, 4, "@plt") == 0) {
    return sym.substr(0, sym.size() - 4);
  }
  return sym;
}

// Allowlist entries are exact symbol names, or prefixes ending in '*'
// ("__memcpy*" covers __memcpy_avx_unaligned and friends). C++
// symbols compare demangled but without their parameter list, so an
// entry "dionea::crash::Writer::flush" matches every overload.
std::string drop_params(const std::string& sym) {
  // Demangled names carry one top-level "(...)" parameter list at the
  // end (possibly with nested parens inside). Scan back from the tail.
  if (sym.empty() || sym.back() != ')') return sym;
  int depth = 0;
  for (size_t i = sym.size(); i-- > 0;) {
    if (sym[i] == ')') ++depth;
    if (sym[i] == '(' && --depth == 0) {
      // Keep "operator()" intact.
      if (i >= 8 && sym.compare(i - 8, 8, "operator") == 0) return sym;
      return sym.substr(0, i);
    }
  }
  return sym;
}

bool allowed(const std::string& symbol, const std::set<std::string>& exact,
             const std::vector<std::string>& prefixes) {
  std::string name = drop_params(strip_plt(symbol));
  if (exact.count(name) != 0) return true;
  for (const std::string& prefix : prefixes) {
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

struct Function {
  std::vector<std::string> callees;   // direct call/tail-jump targets
  std::vector<std::string> indirect;  // textual operands of `call *...`
};

// `   12345:\t e8 xx xx \tcall   45678 <sym+0x10>` -> "sym" (empty if
// the line is not a direct call/jump to a named symbol).
bool parse_edge(const std::string& line, const std::string& current,
                std::string* target, bool* is_indirect) {
  size_t tab = line.rfind('\t');
  if (tab == std::string::npos) return false;
  std::string insn = line.substr(tab + 1);
  bool is_call = insn.compare(0, 4, "call") == 0;
  bool is_jmp = insn.compare(0, 3, "jmp") == 0;
  if (!is_call && !is_jmp) return false;
  size_t lt = insn.find('<');
  // Indirect: `call *%rax` / `jmp *0x..(%rip)`. Only look at the
  // operand *before* any symbol bracket — demangled C++ names carry
  // their parameter list, and `char const*` is not an indirect call.
  if (insn.find('*') < lt) {
    *is_indirect = is_call;  // indirect jmp = switch table, not an edge
    return false;
  }
  size_t gt = insn.rfind('>');
  if (lt == std::string::npos || gt == std::string::npos || gt <= lt) {
    return false;
  }
  std::string sym = insn.substr(lt + 1, gt - lt - 1);
  size_t plus = sym.rfind("+0x");
  if (plus != std::string::npos) {
    // <sym+0x..>: a jump into a body. Inside the current function it
    // is plain control flow; into another function it is a (rare)
    // cross-function jump — treat as an edge to that function.
    sym = sym.substr(0, plus);
    if (is_jmp && sym == current) return false;
  }
  if (sym.empty() || sym == current) return false;
  *target = std::move(sym);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--allow" && i + 1 < argc) {
      opt.allow_path = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      opt.roots.push_back(argv[++i]);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: sigsafe_scan --allow FILE --root SUBSTR... "
                   "[--verbose] < objdump-d-C-output\n");
      return 64;
    }
  }
  if (opt.allow_path.empty() || opt.roots.empty()) {
    std::fprintf(stderr, "sigsafe_scan: --allow and --root are required\n");
    return 64;
  }

  std::set<std::string> allow_exact;
  std::vector<std::string> allow_prefixes;
  {
    std::FILE* f = std::fopen(opt.allow_path.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "sigsafe_scan: cannot open %s\n",
                   opt.allow_path.c_str());
      return 64;
    }
    char buf[512];
    while (std::fgets(buf, sizeof buf, f) != nullptr) {
      std::string line(buf);
      while (!line.empty() &&
             (line.back() == '\n' || line.back() == '\r' ||
              line.back() == ' ')) {
        line.pop_back();
      }
      if (line.empty() || line[0] == '#') continue;
      if (line.back() == '*') {
        allow_prefixes.push_back(line.substr(0, line.size() - 1));
      } else {
        allow_exact.insert(line);
      }
    }
    std::fclose(f);
  }

  // ---- parse the disassembly ----
  std::map<std::string, Function> functions;
  Function* current = nullptr;
  std::string current_name;
  std::string line;
  while (std::getline(std::cin, line)) {
    // Function header: "0000000000012345 <demangled name>:"
    size_t first_nonhex = line.find_first_not_of("0123456789abcdef");
    if (first_nonhex != std::string::npos && first_nonhex > 0 &&
        line[first_nonhex] == ' ' && line.back() == ':' &&
        first_nonhex + 1 < line.size() && line[first_nonhex + 1] == '<') {
      current_name = line.substr(first_nonhex + 2,
                                 line.size() - first_nonhex - 4);
      current = &functions[current_name];
      continue;
    }
    if (current == nullptr) continue;
    std::string target;
    bool indirect = false;
    if (parse_edge(line, current_name, &target, &indirect)) {
      current->callees.push_back(std::move(target));
    } else if (indirect) {
      current->indirect.push_back(line.substr(line.rfind('\t') + 1));
    }
  }

  // ---- BFS from the roots ----
  std::deque<std::string> queue;
  std::map<std::string, std::string> parent;  // visited -> via
  for (const auto& [name, fn] : functions) {
    for (const std::string& root : opt.roots) {
      if (name.find(root) != std::string::npos) {
        queue.push_back(name);
        parent.emplace(name, "");
      }
    }
  }
  if (queue.empty()) {
    std::fprintf(stderr,
                 "sigsafe_scan: no function matched any --root — "
                 "handler symbols renamed? The gate must not pass "
                 "vacuously.\n");
    return 65;
  }

  int violations = 0;
  int warnings = 0;
  auto chain = [&parent](std::string node) {
    std::string out = node;
    while (!parent[node].empty()) {
      node = parent[node];
      out = node + "\n      -> " + out;
    }
    return out;
  };
  while (!queue.empty()) {
    std::string name = queue.front();
    queue.pop_front();
    const Function& fn = functions[name];
    for (const std::string& op : fn.indirect) {
      ++warnings;
      std::fprintf(stderr,
                   "sigsafe_scan: warning: indirect call in %s: %s\n",
                   name.c_str(), op.c_str());
    }
    for (const std::string& callee : fn.callees) {
      // A `sym@plt` target is a lazy-binding trampoline: objdump gives
      // the stub a "body" (jmp through the GOT into the dynamic
      // linker), but the real code lives in libc. Walking the stub
      // would make every external call vanish into PLT0/_init — treat
      // it as external and check the allowlist instead.
      bool is_plt = callee.size() > 4 &&
                    callee.compare(callee.size() - 4, 4, "@plt") == 0;
      auto it = is_plt ? functions.end() : functions.find(callee);
      if (it != functions.end()) {
        if (parent.emplace(callee, name).second) queue.push_back(callee);
        continue;
      }
      // External (no body in the dump): must be on the allowlist.
      if (allowed(callee, allow_exact, allow_prefixes)) {
        if (opt.verbose) {
          std::fprintf(stderr, "sigsafe_scan: ok: %s -> %s\n", name.c_str(),
                       callee.c_str());
        }
        continue;
      }
      ++violations;
      std::string via = chain(name);
      std::fprintf(stderr,
                   "sigsafe_scan: NOT async-signal-safe: %s\n"
                   "    reached via:\n      %s\n",
                   callee.c_str(), via.c_str());
    }
  }

  std::fprintf(stderr,
               "sigsafe_scan: %zu functions scanned from %zu roots, "
               "%d violation(s), %d indirect-call warning(s)\n",
               parent.size(),
               static_cast<size_t>(
                   std::count_if(parent.begin(), parent.end(),
                                 [](const auto& p) {
                                   return p.second.empty();
                                 })),
               violations, warnings);
  return violations == 0 ? 0 : 1;
}
