#!/bin/sh
# sigsafe_lint.sh — async-signal-safety gate (ForkLint pass 3).
#
# Disassembles a linked binary and walks the crash-handler call graph
# against the async-signal-safe allowlist. See tools/sigsafe_scan.cpp
# for the model; this wrapper only plumbs objdump into the scanner.
#
#   sigsafe_lint.sh [--expect-fail] --scan SCAN_BIN BINARY [ROOT...]
#
#   --scan SCAN_BIN  path to the built sigsafe_scan tool
#   BINARY           the linked binary to audit
#   ROOT...          handler entry substrings
#                    (default: handle_fatal_signal)
#   --expect-fail    invert: succeed iff the scan finds violations.
#                    Used by the known-bad fixture test — proves the
#                    gate can actually fail, so a parser regression
#                    cannot turn it into a vacuous pass.
#
# Exit: 0 gate passed, 1 gate failed, 64 usage,
#       77 skipped (objdump unavailable; ctest SKIP_RETURN_CODE).
set -u

expect_fail=0
scan_bin=""
while [ $# -gt 0 ]; do
  case "$1" in
    --expect-fail) expect_fail=1; shift ;;
    --scan) scan_bin="$2"; shift 2 ;;
    -*) echo "sigsafe_lint.sh: unknown option $1" >&2; exit 64 ;;
    *) break ;;
  esac
done

if [ -z "$scan_bin" ] || [ $# -lt 1 ]; then
  echo "usage: sigsafe_lint.sh [--expect-fail] --scan SCAN_BIN BINARY [ROOT...]" >&2
  exit 64
fi

binary="$1"
shift
if [ $# -gt 0 ]; then
  roots="$*"
else
  roots="handle_fatal_signal"
fi

if ! command -v objdump >/dev/null 2>&1; then
  echo "sigsafe_lint.sh: objdump not found; skipping" >&2
  exit 77
fi
if [ ! -x "$scan_bin" ]; then
  echo "sigsafe_lint.sh: scanner $scan_bin not built" >&2
  exit 64
fi
if [ ! -r "$binary" ]; then
  echo "sigsafe_lint.sh: cannot read $binary" >&2
  exit 64
fi

allow="$(dirname "$0")/sigsafe_allow.txt"

root_args=""
for r in $roots; do
  root_args="$root_args --root $r"
done

# shellcheck disable=SC2086
objdump -d -C "$binary" | "$scan_bin" --allow "$allow" $root_args
status=$?

if [ "$expect_fail" = 1 ]; then
  if [ "$status" = 1 ]; then
    echo "sigsafe_lint.sh: fixture correctly rejected" >&2
    exit 0
  fi
  echo "sigsafe_lint.sh: expected violations, scan exited $status" >&2
  exit 1
fi
exit "$status"
