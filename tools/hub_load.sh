#!/usr/bin/env bash
# Hub load sweep (ISSUE 7 acceptance: bench_hub sustains >= 10k
# concurrent sessions with a measured p99).
#
# Usage:
#   tools/hub_load.sh [build-dir] [sweep...]
#
# Runs bench_hub at each fleet size (default 100 1000 10000), appending
# one JSONL record per run to BENCH_hub.json in the build dir. The
# first run truncates the file so a sweep is self-contained.
set -euo pipefail

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
SWEEP=("$@")
if [[ ${#SWEEP[@]} -eq 0 ]]; then
  SWEEP=(100 1000 10000)
fi

BENCH="${BUILD_DIR}/bench/bench_hub"
if [[ ! -x "${BENCH}" ]]; then
  echo "hub_load.sh: ${BENCH} not built (cmake --build ${BUILD_DIR})" >&2
  exit 2
fi

cd "${BUILD_DIR}"
rm -f BENCH_hub.json
for sessions in "${SWEEP[@]}"; do
  echo "=== bench_hub --sessions ${sessions} ==="
  ./bench/bench_hub --sessions "${sessions}" --append
done

echo "--- BENCH_hub.json ---"
cat BENCH_hub.json
