#!/usr/bin/env bash
# Backwards race replay, end to end (ISSUE 9's flagship demo).
#
# Usage:
#   tools/timetravel_demo.sh [build-dir]
#
# Drives the full pipeline: record a racy run, replay it under the
# debugger with fork-based checkpoints and MiniSan armed, read the
# data-race finding's DRLG step off the analysis report, then
# rcontinue to it 20 times — every resume must freeze at the same VM
# fingerprint within one checkpoint interval of the racing write. The
# pipeline lives in timetravel_e2e_test (so CI runs the identical
# thing); this script builds it if needed and runs it verbosely,
# followed by the spacing/latency bench for the economics half.
set -euo pipefail

BUILD_DIR="${1:-build}"

TEST="${BUILD_DIR}/tests/timetravel_e2e_test"
if [[ ! -x "${TEST}" ]]; then
  echo "timetravel_demo.sh: building timetravel_e2e_test..."
  cmake --build "${BUILD_DIR}" --target timetravel_e2e_test bench_timetravel
fi

echo "=== backwards race replay: 20/20 identical resumes ==="
"${TEST}" --gtest_filter='TimetravelE2eTest.MinisanRaceReplaysBackwards20x'

echo
echo "=== proto-1.5 client, silent downgrade ==="
"${TEST}" --gtest_filter='TimetravelE2eTest.ProtoOneDotFiveClientCompletesBreakpointSession'

BENCH="${BUILD_DIR}/bench/bench_timetravel"
if [[ -x "${BENCH}" ]]; then
  echo
  echo "=== checkpoint cost / rcontinue latency ==="
  (cd "${BUILD_DIR}/bench" && ./bench_timetravel)
  echo "--- ${BUILD_DIR}/bench/BENCH_timetravel.json ---"
  cat "${BUILD_DIR}/bench/BENCH_timetravel.json"
fi
