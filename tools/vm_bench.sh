#!/usr/bin/env bash
# VM raw-speed sweep (ISSUE 8: dispatch backends + quickening + trace
# arming, with the BENCH_vm.json regression gate).
#
# Usage:
#   tools/vm_bench.sh [build-dir]
#
# Runs bench_vm (which measures both dispatch backends in-process and
# writes BENCH_vm.json in the build dir), then re-runs the vmspeed
# ctest label under each DIONEA_DISPATCH value as a correctness
# cross-check: a speed number from a backend that no longer passes its
# suite is worthless.
set -euo pipefail

BUILD_DIR="${1:-build}"

BENCH="${BUILD_DIR}/bench/bench_vm"
if [[ ! -x "${BENCH}" ]]; then
  echo "vm_bench.sh: ${BENCH} not built (cmake --build ${BUILD_DIR})" >&2
  exit 2
fi

for backend in goto switch; do
  echo "=== vmspeed suite, DIONEA_DISPATCH=${backend} ==="
  DIONEA_DISPATCH="${backend}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -L vmspeed
done

cd "${BUILD_DIR}"
./bench/bench_vm

echo "--- BENCH_vm.json ---"
cat BENCH_vm.json
