#!/usr/bin/env bash
# Coverage driver for the `coverage` CMake target.
#
# Usage (configure with instrumentation first):
#   cmake -S . -B build-cov -DDIONEA_COVERAGE=ON
#   cmake --build build-cov -j
#   cmake --build build-cov --target coverage
#
# The instrumented test suite runs once; the report covers src/ only
# (tests and third-party headers excluded).
#
# Thresholds (checked on total line coverage when the tooling reports
# one; advisory otherwise):
#   - src/ overall:       >= 70% lines
#   - src/replay/:        >= 85% lines — the record/replay engine is
#     the subsystem most prone to silent divergence bugs, so its
#     branches are held to a higher bar.
# Raising a threshold is cheap; lowering one needs a written rationale
# in the PR that does it.
set -euo pipefail

BUILD_DIR="${DIONEA_COVERAGE_BUILD_DIR:-$(pwd)}"
COMPILER_ID="${DIONEA_COVERAGE_COMPILER:-GNU}"
MIN_TOTAL="${DIONEA_COVERAGE_MIN:-70}"
MIN_REPLAY="${DIONEA_COVERAGE_MIN_REPLAY:-85}"

cd "${BUILD_DIR}"

run_tests() {
  # Fuzz + stress included: coverage runs are exactly when their rare
  # branches should be counted.
  ctest --output-on-failure "$@"
}

if [[ "${COMPILER_ID}" == *Clang* ]]; then
  # Source-based coverage: one raw profile per test process (forked
  # children included via %p), merged then reported.
  profdir="${BUILD_DIR}/coverage-profiles"
  rm -rf "${profdir}" && mkdir -p "${profdir}"
  LLVM_PROFILE_FILE="${profdir}/%p.profraw" run_tests
  llvm-profdata merge -sparse "${profdir}"/*.profraw \
    -o "${profdir}/merged.profdata"
  binaries=()
  while IFS= read -r bin; do
    binaries+=(-object "${bin}")
  done < <(find "${BUILD_DIR}/tests" -maxdepth 1 -type f -perm -u+x)
  llvm-cov report "${binaries[@]}" \
    -instr-profile="${profdir}/merged.profdata" \
    -ignore-filename-regex='(tests|_deps|/usr)/' | tee coverage.txt
  total=$(awk '/^TOTAL/ {gsub(/%/, "", $(NF)); print int($(NF))}' \
    coverage.txt)
else
  run_tests
  if command -v gcovr > /dev/null; then
    gcovr --root .. --filter '\.\./src/' --print-summary \
      --txt coverage.txt .
    total=$(awk '/^lines:/ {print int($2)}' coverage.txt || echo "")
  else
    # Bare gcov fallback: per-file .gcov dumps plus a line-rate total.
    find . -name '*.gcda' | while IFS= read -r gcda; do
      gcov -r -o "$(dirname "${gcda}")" "${gcda}" > /dev/null 2>&1 || true
    done
    total=$(find . -name '*.gcov' -exec awk -F: '
        $1 !~ /-/ { if ($1 ~ /#####/) miss++; else hit++ }
        END { if (hit + miss > 0) printf "%d", 100 * hit / (hit + miss) }
      ' {} + 2>/dev/null | tail -1)
    echo "line coverage (gcov aggregate): ${total:-unknown}%" \
      | tee coverage.txt
  fi
fi

if [[ -n "${total:-}" ]]; then
  echo "total src/ line coverage: ${total}% (threshold ${MIN_TOTAL}%)"
  if (( total < MIN_TOTAL )); then
    echo "coverage below threshold" >&2
    exit 1
  fi
else
  echo "coverage total not computed by this toolchain; report written" \
       "to coverage.txt (thresholds: src >= ${MIN_TOTAL}%," \
       "src/replay >= ${MIN_REPLAY}%)"
fi
