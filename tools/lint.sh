#!/usr/bin/env bash
# Static-analysis driver: clang-tidy over src/ with the curated check
# set in .clang-tidy (warnings-as-errors), plus a clang-format dry run.
#
# Usage:
#   cmake -S . -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
#   cmake --build build -j          # generated headers must exist
#   tools/lint.sh [build-dir]
#
# Exits 0 with a skip notice when clang-tidy is not installed, so the
# script is safe to call from environments that only carry gcc; CI
# installs clang-tidy and gets the full run.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"

status=0

if ! command -v clang-tidy > /dev/null; then
  echo "lint.sh: clang-tidy not found on PATH; skipping tidy pass"
else
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 1
  fi
  # One invocation per TU keeps output attributable; the curated check
  # list is small enough that this stays fast.
  mapfile -t sources < <(find "${ROOT}/src" -name '*.cpp' | sort)
  echo "lint.sh: clang-tidy over ${#sources[@]} files"
  if ! clang-tidy -p "${BUILD_DIR}" --quiet "${sources[@]}"; then
    status=1
  fi
fi

if ! command -v clang-format > /dev/null; then
  echo "lint.sh: clang-format not found on PATH; skipping format check"
else
  mapfile -t all < <(find "${ROOT}/src" "${ROOT}/tests" "${ROOT}/bench" \
    "${ROOT}/examples" \( -name '*.cpp' -o -name '*.hpp' \) 2>/dev/null \
    | sort)
  echo "lint.sh: clang-format check over ${#all[@]} files"
  if ! clang-format --dry-run --Werror "${all[@]}"; then
    status=1
  fi
fi

exit "${status}"
