#!/usr/bin/env bash
# Seeded sweep of the hostile-fork survival corpus (ISSUE 6 acceptance:
# every scenario passes 50/50 consecutive runs).
#
# Usage:
#   tools/hostile_sweep.sh [build-dir] [runs]
#
# Each iteration runs `ctest -L hostile`; every 5th iteration addition-
# ally enables environment-driven fault injection (recoverable kinds,
# rotating seed) so the corpus is exercised both clean and under churn.
# Stops at the first failing iteration and leaves its log behind.
set -euo pipefail

BUILD_DIR="${1:-build}"
RUNS="${2:-50}"
LOG_DIR="$(mktemp -d -t hostile-sweep-XXXXXX)"

if [[ ! -f "${BUILD_DIR}/CTestTestfile.cmake" ]]; then
  echo "hostile_sweep.sh: ${BUILD_DIR} is not a CMake build dir" >&2
  exit 2
fi

echo "hostile sweep: ${RUNS} runs, logs in ${LOG_DIR}"
pass=0
for ((i = 1; i <= RUNS; i++)); do
  log="${LOG_DIR}/run-${i}.log"
  env_args=()
  if ((i % 5 == 0)); then
    # Recoverable faults only: the corpus asserts clean outcomes, and
    # connreset would legitimately sever sessions.
    env_args=(DIONEA_FAULT_SEED=$((1000 + i)) DIONEA_FAULT_PROB=0.05
              DIONEA_FAULT_KINDS=recoverable)
  fi
  if env "${env_args[@]}" ctest --test-dir "${BUILD_DIR}" -L hostile \
       --output-on-failure > "${log}" 2>&1; then
    pass=$((pass + 1))
    printf 'run %3d/%d: PASS%s\n' "${i}" "${RUNS}" \
      "${env_args:+  (faults seed=$((1000 + i)))}"
  else
    printf 'run %3d/%d: FAIL — see %s\n' "${i}" "${RUNS}" "${log}"
    tail -40 "${log}"
    exit 1
  fi
done

echo "hostile sweep: ${pass}/${RUNS} passed"
