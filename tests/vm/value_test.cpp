#include "vm/value.hpp"

#include <gtest/gtest.h>

#include "vm/sync.hpp"

namespace dionea::vm {
namespace {

TEST(ValueTest, KindsAndTypeNames) {
  EXPECT_EQ(Value().kind(), ValueKind::kNil);
  EXPECT_EQ(Value(true).kind(), ValueKind::kBool);
  EXPECT_EQ(Value(7).kind(), ValueKind::kInt);
  EXPECT_EQ(Value(1.5).kind(), ValueKind::kFloat);
  EXPECT_EQ(Value::str("x").kind(), ValueKind::kStr);
  EXPECT_EQ(Value::new_list().kind(), ValueKind::kList);
  EXPECT_EQ(Value::new_map().kind(), ValueKind::kMap);
  EXPECT_STREQ(Value(7).type_name(), "int");
  EXPECT_STREQ(Value::str("").type_name(), "str");
}

TEST(ValueTest, RubyTruthiness) {
  // Only nil and false are falsy (§ deliberately Ruby, not Python).
  EXPECT_FALSE(Value().truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_TRUE(Value(true).truthy());
  EXPECT_TRUE(Value(0).truthy());
  EXPECT_TRUE(Value(0.0).truthy());
  EXPECT_TRUE(Value::str("").truthy());
  EXPECT_TRUE(Value::new_list().truthy());
}

TEST(ValueTest, NumericEqualityCoerces) {
  EXPECT_TRUE(Value(2).equals(Value(2.0)));
  EXPECT_TRUE(Value(2.0).equals(Value(2)));
  EXPECT_FALSE(Value(2).equals(Value(3)));
  EXPECT_FALSE(Value(2).equals(Value::str("2")));
  EXPECT_FALSE(Value(0).equals(Value(false)));
}

TEST(ValueTest, StructuralEqualityForContainers) {
  Value a = Value::new_list();
  a.as_list()->items = {Value(1), Value::str("x")};
  Value b = Value::new_list();
  b.as_list()->items = {Value(1), Value::str("x")};
  EXPECT_TRUE(a.equals(b));
  b.as_list()->items.push_back(Value());
  EXPECT_FALSE(a.equals(b));

  Value m1 = Value::new_map();
  m1.as_map()->items["k"] = Value(1);
  Value m2 = Value::new_map();
  m2.as_map()->items["k"] = Value(1);
  EXPECT_TRUE(m1.equals(m2));
  m2.as_map()->items["k"] = Value(2);
  EXPECT_FALSE(m1.equals(m2));
}

TEST(ValueTest, IdentityEqualityForSyncObjects) {
  auto mutex = std::make_shared<VmMutex>();
  Value a(mutex);
  Value b(mutex);
  Value c(std::make_shared<VmMutex>());
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
}

TEST(ValueTest, ReprScalars) {
  EXPECT_EQ(Value().repr(), "nil");
  EXPECT_EQ(Value(true).repr(), "true");
  EXPECT_EQ(Value(false).repr(), "false");
  EXPECT_EQ(Value(42).repr(), "42");
  EXPECT_EQ(Value(-3).repr(), "-3");
  EXPECT_EQ(Value(2.5).repr(), "2.5");
  EXPECT_EQ(Value(2.0).repr(), "2.0");  // floats stay visually float
  EXPECT_EQ(Value::str("hi\n").repr(), "\"hi\\n\"");
}

TEST(ValueTest, ReprContainersRecursive) {
  Value list = Value::new_list();
  list.as_list()->items = {Value(1), Value::str("two"), Value()};
  EXPECT_EQ(list.repr(), "[1, \"two\", nil]");

  Value map = Value::new_map();
  map.as_map()->items["a"] = Value(1);
  map.as_map()->items["b"] = list;
  EXPECT_EQ(map.repr(), "{\"a\": 1, \"b\": [1, \"two\", nil]}");
}

TEST(ValueTest, ToDisplayBareStrings) {
  EXPECT_EQ(Value::str("plain").to_display(), "plain");
  EXPECT_EQ(Value(5).to_display(), "5");
  EXPECT_EQ(Value().to_display(), "nil");
}

TEST(ValueTest, SharedHeapSemantics) {
  // Copying a Value aliases the heap payload (CPython-object-like).
  Value a = Value::new_list();
  Value b = a;
  b.as_list()->items.push_back(Value(1));
  EXPECT_EQ(a.as_list()->items.size(), 1u);
}

TEST(ValueTest, NumberCoercionHelpers) {
  EXPECT_DOUBLE_EQ(Value(3).number(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).number(), 2.5);
  EXPECT_TRUE(Value(3).is_number());
  EXPECT_TRUE(Value(2.5).is_number());
  EXPECT_FALSE(Value::str("3").is_number());
}

TEST(VmErrorTest, ToStringWithTraceback) {
  VmError error;
  error.message = "deadlock detected (fatal)";
  error.traceback.push_back(TracebackEntry{"pop", "thread.rb", 185});
  error.traceback.push_back(TracebackEntry{"<main>", "deadlock.ml", 14});
  std::string rendered = error.to_string();
  // Listing 6 shape: message then "from file:line:in `fn'" lines.
  EXPECT_NE(rendered.find("deadlock detected (fatal)"), std::string::npos);
  EXPECT_NE(rendered.find("from thread.rb:185:in `pop'"), std::string::npos);
  EXPECT_NE(rendered.find("from deadlock.ml:14:in `<main>'"),
            std::string::npos);
}

TEST(VmErrorTest, FatalOnlyForDeadlock) {
  VmError error;
  EXPECT_FALSE(error.fatal());
  error.kind = VmErrorKind::kFatalDeadlock;
  EXPECT_TRUE(error.fatal());
}

}  // namespace
}  // namespace dionea::vm
