// fork(2) semantics in the VM: only the calling thread survives
// (Listing 1/2), sync objects are re-initialized, fork handlers run in
// pthread_atfork order, and fork-with-block matches Listing 3.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::vm {
namespace {

using test::expect_ml_output;
using test::run_ml;

TEST(ForkTest, PidZeroInChildPositiveInParent) {
  const char* program =
      "pid = fork()\n"
      "if pid == 0\n"
      "  exit(5)\n"
      "end\n"
      "assert(pid > 0)\n"
      "puts(waitpid(pid))";
  expect_ml_output(program, "5\n");
}

TEST(ForkTest, ForkWithBlockRunsChildAndExitsZero) {
  // Listing 3: the block runs in the child, then Kernel.exit(0).
  const char* program =
      "pid = fork(fn()\n"
      "  x = 1 + 1\n"
      "end)\n"
      "puts(waitpid(pid))";
  expect_ml_output(program, "0\n");
}

TEST(ForkTest, ChildSeesCopyOfHeap) {
  const char* program =
      "data = [1, 2, 3]\n"
      "pid = fork(fn()\n"
      "  push(data, 4)\n"          // child-only mutation
      "  exit(len(data))\n"
      "end)\n"
      "st = waitpid(pid)\n"
      "puts(st)\n"
      "puts(len(data))";           // parent copy unchanged
  expect_ml_output(program, "4\n3\n");
}

TEST(ForkTest, OnlyForkingThreadSurvivesInChild) {
  // A sibling thread keeps incrementing in the parent; in the child it
  // must be gone (the counter freezes at the fork snapshot).
  const char* program =
      "box = [0]\n"
      "spawn(fn()\n"
      "  while true\n"
      "    box[0] = box[0] + 1\n"
      "    sleep(0.01)\n"
      "  end\n"
      "end)\n"
      "sleep(0.1)\n"
      "pid = fork(fn()\n"
      "  snapshot = box[0]\n"
      "  sleep(0.2)\n"
      "  if box[0] == snapshot\n"  // nobody advanced it: thread is gone
      "    exit(0)\n"
      "  end\n"
      "  exit(1)\n"
      "end)\n"
      "puts(waitpid(pid))";
  expect_ml_output(program, "0\n");
}

TEST(ForkTest, ChildCanSpawnNewThreads) {
  // After the VM's child handler reinitializes the GIL and registry,
  // threading must work again in the child.
  const char* program =
      "pid = fork(fn()\n"
      "  t = spawn(fn() return 21 end)\n"
      "  exit(join(t) * 2 - 40)\n"   // 2
      "end)\n"
      "puts(waitpid(pid))";
  expect_ml_output(program, "2\n");
}

TEST(ForkTest, MutexHeldByVanishedThreadIsReleasedInChild) {
  // §5.3 problem 1: a sibling holds the mutex at fork time; the child
  // must still be able to take it (ownership by a vanished thread is
  // cleared by reinit_in_child).
  const char* program =
      "m = mutex()\n"
      "ready = queue()\n"
      "spawn(fn()\n"
      "  lock(m)\n"
      "  ready.push(true)\n"
      "  sleep(10)\n"
      "end)\n"
      "ready.pop()\n"               // sibling now owns m
      "pid = fork(fn()\n"
      "  lock(m)\n"                 // must not hang
      "  unlock(m)\n"
      "  exit(0)\n"
      "end)\n"
      "puts(waitpid(pid))";
  expect_ml_output(program, "0\n");
}

TEST(ForkTest, QueueContentsCopiedWaitersNot) {
  const char* program =
      "q = queue()\n"
      "q.push(7)\n"
      "pid = fork(fn()\n"
      "  exit(q.pop())\n"           // sees the copied item
      "end)\n"
      "puts(waitpid(pid))\n"
      "puts(q.pop())";              // parent's copy still has it
  expect_ml_output(program, "7\n7\n");
}

TEST(ForkTest, NestedForks) {
  const char* program =
      "pid = fork(fn()\n"
      "  inner = fork(fn()\n"
      "    exit(3)\n"
      "  end)\n"
      "  exit(waitpid(inner) + 1)\n"
      "end)\n"
      "puts(waitpid(pid))";
  expect_ml_output(program, "4\n");
}

TEST(ForkTest, SequentialForksAllReaped) {
  const char* program =
      "pids = []\n"
      "for i in 5\n"
      "  push(pids, fork(fn() exit(0) end))\n"
      "end\n"
      "total = 0\n"
      "for p in pids\n"
      "  total = total + waitpid(p)\n"
      "end\n"
      "puts(total)";
  expect_ml_output(program, "0\n");
}

TEST(ForkTest, ChildExitCodePropagatesThroughRunResult) {
  test::RunOutcome outcome = run_ml(
      "pid = fork()\n"
      "if pid == 0\n"
      "  exit(9)\n"
      "end\n"
      "st = waitpid(pid)\n"
      "exit(st)");
  EXPECT_TRUE(outcome.exited);
  EXPECT_EQ(outcome.exit_code, 9);
}

TEST(ForkTest, ChildRuntimeErrorExitsNonzero) {
  const char* program =
      "pid = fork(fn()\n"
      "  boom_undefined()\n"
      "end)\n"
      "puts(waitpid(pid))";
  expect_ml_output(program, "1\n");
}

// ---- C++-level fork hooks ----

TEST(ForkHooksTest, OrderMatchesPthreadAtfork) {
  vm::Interp interp;
  auto log = std::make_shared<std::vector<std::string>>();
  interp.vm().add_fork_handlers(ForkHooks{
      [log](Vm&) { log->push_back("prepare-1"); },
      [log](Vm&, int) { log->push_back("parent-1"); },
      nullptr,
  });
  interp.vm().add_fork_handlers(ForkHooks{
      [log](Vm&) { log->push_back("prepare-2"); },
      [log](Vm&, int) { log->push_back("parent-2"); },
      nullptr,
  });
  interp.vm().set_output([](std::string_view) {});
  auto result = interp.run_string(
      "pid = fork(fn() exit(0) end)\nwaitpid(pid)", "hooks.ml");
  ASSERT_TRUE(result.ok) << result.error.to_string();
  // prepare: newest-first; parent: registration order.
  ASSERT_EQ(log->size(), 4u);
  EXPECT_EQ((*log)[0], "prepare-2");
  EXPECT_EQ((*log)[1], "prepare-1");
  EXPECT_EQ((*log)[2], "parent-1");
  EXPECT_EQ((*log)[3], "parent-2");
}

TEST(ForkHooksTest, ChildHookRunsInChild) {
  vm::Interp interp;
  interp.vm().add_fork_handlers(ForkHooks{
      nullptr,
      nullptr,
      [](Vm& vm, int) {
        // Visible only via the child's exit code.
        vm.set_global("from_child_hook", Value(11));
      },
  });
  interp.vm().set_output([](std::string_view) {});
  auto result = interp.run_string(
      "from_child_hook = 0\n"
      "pid = fork(fn() exit(from_child_hook) end)\n"
      "exit(waitpid(pid))",
      "childhook.ml");
  ASSERT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, 11);
}

TEST(ForkHooksTest, IsForkedChildFlagAndDepth) {
  vm::Interp interp;
  EXPECT_FALSE(interp.vm().is_forked_child());
  EXPECT_EQ(interp.vm().fork_depth(), 0);
  interp.vm().set_output([](std::string_view) {});
  auto result = interp.run_string(
      "pid = fork(fn() exit(0) end)\nwaitpid(pid)", "flag.ml");
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(interp.vm().is_forked_child());  // parent side unchanged
}

}  // namespace
}  // namespace dionea::vm

namespace dionea::vm {
namespace {

using test::expect_ml_output;

TEST(ForkSyncTest, CondVariableUsableInChild) {
  // VmCond is re-initialized in the child; signal/wait must work on the
  // child's fresh threads.
  expect_ml_output(
      "m = mutex()\n"
      "c = cond()\n"
      "pid = fork(fn()\n"
      "  box = [0]\n"
      "  t = spawn(fn()\n"
      "    lock(m)\n"
      "    while box[0] == 0\n"
      "      wait(c, m)\n"
      "    end\n"
      "    unlock(m)\n"
      "    return nil\n"
      "  end)\n"
      "  sleep(0.05)\n"
      "  lock(m)\n"
      "  box[0] = 1\n"
      "  unlock(m)\n"
      "  signal(c)\n"
      "  join(t)\n"
      "  exit(0)\n"
      "end)\n"
      "puts(waitpid(pid))",
      "0\n");
}

TEST(ForkSyncTest, ParentSyncObjectsUnaffectedByChild) {
  // The child locking its copy of a mutex must not affect the parent's.
  expect_ml_output(
      "m = mutex()\n"
      "sync = ipc_queue()\n"
      "pid = fork(fn()\n"
      "  lock(m)\n"
      "  ipc_push(sync, 1)\n"
      "  sleep(0.3)\n"          // hold it while the parent checks
      "  exit(0)\n"
      "end)\n"
      "ipc_pop(sync)\n"          // child definitely holds its copy now
      "puts(locked(m))\n"        // parent copy: still free
      "lock(m)\n"
      "puts(locked(m))\n"
      "unlock(m)\n"
      "waitpid(pid)",
      "false\ntrue\n");
}

TEST(ForkSyncTest, ThreadHandlesFromParentAreInertInChild) {
  // A ThreadHandle captured before the fork refers to a thread that no
  // longer exists in the child; join returns its last known result or
  // nil, but never hangs.
  test::RunOutcome outcome = test::run_ml(
      "t = spawn(fn()\n"
      "  sleep(5)\n"
      "  return 1\n"
      "end)\n"
      "pid = fork(fn()\n"
      "  exit(0)\n"              // child exits without touching t
      "end)\n"
      "st = waitpid(pid)\n"
      "puts(st)\n"
      "exit(0)");                // don't wait 5s for the sleeper
  EXPECT_TRUE(outcome.exited);
  EXPECT_EQ(outcome.output, "0\n");
}

TEST(ForkSyncTest, ForkInsideSpawnedThread) {
  // §5.1: "only the thread that called fork remains in the child" —
  // here the FORKING thread is not main; in the child it becomes main.
  expect_ml_output(
      "q = queue()\n"
      "t = spawn(fn()\n"
      "  pid = fork(fn()\n"
      "    exit(7)\n"
      "  end)\n"
      "  q.push(waitpid(pid))\n"
      "  return nil\n"
      "end)\n"
      "puts(q.pop())\n"
      "join(t)",
      "7\n");
}

}  // namespace
}  // namespace dionea::vm
