// MiniLang execution semantics: expressions, control flow, functions,
// closures, containers. Each test runs a program in a fresh VM and
// checks its output — the same surface a debuggee exercises.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::vm {
namespace {

using test::expect_ml_error;
using test::expect_ml_output;
using test::run_ml;

// ---- expression evaluation, parameterized sweep ----

struct ExprCase {
  const char* expr;
  const char* expected;  // repr() of the result
};

class ExprEval : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprEval, EvaluatesTo) {
  const ExprCase& c = GetParam();
  expect_ml_output(std::string("puts(repr(") + c.expr + "))",
                   std::string(c.expected) + "\n");
}

INSTANTIATE_TEST_SUITE_P(Arithmetic, ExprEval, ::testing::Values(
    ExprCase{"1 + 2", "3"},
    ExprCase{"7 - 10", "-3"},
    ExprCase{"6 * 7", "42"},
    ExprCase{"7 / 2", "3"},          // int division truncates
    ExprCase{"-7 / 2", "-3"},
    ExprCase{"7 % 3", "1"},
    ExprCase{"7.0 / 2", "3.5"},      // float contaminates
    ExprCase{"1 + 2.5", "3.5"},
    ExprCase{"-(3)", "-3"},
    ExprCase{"-2.5", "-2.5"},
    ExprCase{"2 * 3 + 4", "10"},
    ExprCase{"2 + 3 * 4", "14"},
    ExprCase{"(2 + 3) * 4", "20"}));

INSTANTIATE_TEST_SUITE_P(Comparison, ExprEval, ::testing::Values(
    ExprCase{"1 < 2", "true"},
    ExprCase{"2 < 1", "false"},
    ExprCase{"2 <= 2", "true"},
    ExprCase{"3 > 2.5", "true"},
    ExprCase{"2 >= 3", "false"},
    ExprCase{"1 == 1.0", "true"},
    ExprCase{"1 != 2", "true"},
    ExprCase{"\"a\" < \"b\"", "true"},
    ExprCase{"\"abc\" == \"abc\"", "true"},
    ExprCase{"\"a\" == 1", "false"},
    ExprCase{"nil == nil", "true"},
    ExprCase{"[1, 2] == [1, 2]", "true"},
    ExprCase{"[1] == [1, 2]", "false"},
    ExprCase{"{\"a\": 1} == {\"a\": 1}", "true"}));

INSTANTIATE_TEST_SUITE_P(Logic, ExprEval, ::testing::Values(
    ExprCase{"true and false", "false"},
    ExprCase{"true and 5", "5"},        // Ruby-ish: last operand
    ExprCase{"false and 5", "false"},   // short-circuit keeps lhs
    ExprCase{"nil or \"x\"", "\"x\""},
    ExprCase{"1 or 2", "1"},
    ExprCase{"not nil", "true"},
    ExprCase{"not 0", "false"},         // 0 is truthy
    ExprCase{"not not true", "true"}));

INSTANTIATE_TEST_SUITE_P(StringsAndContainers, ExprEval, ::testing::Values(
    ExprCase{"\"foo\" + \"bar\"", "\"foobar\""},
    ExprCase{"[1] + [2, 3]", "[1, 2, 3]"},
    ExprCase{"\"hello\"[1]", "\"e\""},
    ExprCase{"\"hello\"[-1]", "\"o\""},
    ExprCase{"[10, 20, 30][1]", "20"},
    ExprCase{"[10, 20, 30][-1]", "30"},
    ExprCase{"{\"k\": 9}[\"k\"]", "9"},
    ExprCase{"{\"k\": 9}[\"missing\"]", "nil"},
    ExprCase{"len(\"abc\")", "3"},
    ExprCase{"len([])", "0"},
    ExprCase{"len({\"a\": 1, \"b\": 2})", "2"}));

// ---- statements and control flow ----

TEST(ExecTest, GlobalAssignment) {
  expect_ml_output("x = 5\nx = x + 1\nputs(x)", "6\n");
}

TEST(ExecTest, IfElifElseBranches) {
  const char* program =
      "fn classify(n)\n"
      "  if n < 0\n    return \"neg\"\n"
      "  elif n == 0\n    return \"zero\"\n"
      "  else\n    return \"pos\"\n  end\n"
      "end\n"
      "puts(classify(-5))\nputs(classify(0))\nputs(classify(9))";
  expect_ml_output(program, "neg\nzero\npos\n");
}

TEST(ExecTest, WhileLoopWithBreakContinue) {
  const char* program =
      "total = 0\ni = 0\n"
      "while true\n"
      "  i = i + 1\n"
      "  if i > 10\n    break\n  end\n"
      "  if i % 2 == 0\n    continue\n  end\n"
      "  total = total + i\n"
      "end\n"
      "puts(total)";  // 1+3+5+7+9
  expect_ml_output(program, "25\n");
}

TEST(ExecTest, ForOverListMapStringInt) {
  expect_ml_output("for x in [7, 8]\n  puts(x)\nend", "7\n8\n");
  expect_ml_output("for k in {\"b\": 2, \"a\": 1}\n  puts(k)\nend",
                   "a\nb\n");  // map keys in sorted order
  expect_ml_output("for c in \"hi\"\n  puts(c)\nend", "h\ni\n");
  expect_ml_output("for i in 3\n  puts(i)\nend", "0\n1\n2\n");
}

TEST(ExecTest, ForSnapshotsTheList) {
  // Mutating the list during iteration does not affect the loop.
  const char* program =
      "l = [1, 2]\n"
      "for x in l\n  push(l, x + 10)\nend\n"
      "puts(len(l))";
  expect_ml_output(program, "4\n");
}

TEST(ExecTest, NestedLoopsAndBreakTargetsInnermost) {
  const char* program =
      "hits = 0\n"
      "for i in 3\n"
      "  for j in 3\n"
      "    if j == 1\n      break\n    end\n"
      "    hits = hits + 1\n"
      "  end\n"
      "end\n"
      "puts(hits)";
  expect_ml_output(program, "3\n");
}

// ---- functions and closures ----

TEST(ExecTest, RecursionFibonacci) {
  const char* program =
      "fn fib(n)\n"
      "  if n < 2\n    return n\n  end\n"
      "  return fib(n - 1) + fib(n - 2)\n"
      "end\n"
      "puts(fib(20))";
  expect_ml_output(program, "6765\n");
}

TEST(ExecTest, MutualRecursionThroughGlobals) {
  const char* program =
      "fn is_even(n)\n  if n == 0\n    return true\n  end\n"
      "  return is_odd(n - 1)\nend\n"
      "fn is_odd(n)\n  if n == 0\n    return false\n  end\n"
      "  return is_even(n - 1)\nend\n"
      "puts(is_even(10))\nputs(is_odd(7))";
  expect_ml_output(program, "true\ntrue\n");
}

TEST(ExecTest, ImplicitReturnIsNil) {
  expect_ml_output("fn f()\n  x = 1\nend\nputs(repr(f()))", "nil\n");
  expect_ml_output("fn g()\n  return\nend\nputs(repr(g()))", "nil\n");
}

TEST(ExecTest, FirstClassFunctions) {
  const char* program =
      "fn apply(f, x)\n  return f(x)\nend\n"
      "fn double(n)\n  return n * 2\nend\n"
      "puts(apply(double, 21))\n"
      "puts(apply(fn(n) return n + 1 end, 41))";
  expect_ml_output(program, "42\n42\n");
}

TEST(ExecTest, ClosureCapturesByValue) {
  // Scalars are captured at creation (by value); later changes to the
  // enclosing local don't show.
  const char* program =
      "fn make()\n"
      "  x = 1\n"
      "  f = fn() return x end\n"
      "  x = 99\n"
      "  return f\n"
      "end\n"
      "puts(make()())";
  expect_ml_output(program, "1\n");
}

TEST(ExecTest, ClosureSharesHeapObjects) {
  // Heap payloads alias through the captured handle — the property the
  // paper's `Thread.new { queue.push(true) }` depends on.
  const char* program =
      "fn make_counter()\n"
      "  box = [0]\n"
      "  return fn()\n"
      "    box[0] = box[0] + 1\n"
      "    return box[0]\n"
      "  end\n"
      "end\n"
      "c = make_counter()\n"
      "c()\nc()\nputs(c())";
  expect_ml_output(program, "3\n");
}

TEST(ExecTest, NestedClosuresCaptureTransitively) {
  const char* program =
      "fn outer(x)\n"
      "  return fn()\n"
      "    return fn() return x * 2 end\n"
      "  end\n"
      "end\n"
      "puts(outer(21)()())";
  expect_ml_output(program, "42\n");
}

TEST(ExecTest, CaptureWriteStaysInClosure) {
  const char* program =
      "fn make(x)\n"
      "  bump = fn()\n    x = x + 1\n    return x\n  end\n"
      "  bump()\n"
      "  return [bump(), x]\n"
      "end\n"
      "puts(repr(make(10)))";
  // The closure's copy advances (11, 12); the enclosing local stays 10.
  expect_ml_output(program, "[12, 10]\n");
}

TEST(ExecTest, MethodSugarDispatch) {
  expect_ml_output("l = []\nl.push(1)\nl.push(2)\nputs(repr(l))",
                   "[1, 2]\n");
  expect_ml_output("puts(\"ABC\".lower())", "abc\n");
}

// ---- containers ----

TEST(ExecTest, IndexAssignment) {
  expect_ml_output("l = [1, 2, 3]\nl[1] = 99\nl[-1] = 7\nputs(repr(l))",
                   "[1, 99, 7]\n");
  expect_ml_output("m = {}\nm[\"a\"] = 1\nm[\"a\"] = m[\"a\"] + 1\n"
                   "puts(repr(m))",
                   "{\"a\": 2}\n");
}

TEST(ExecTest, NestedContainers) {
  const char* program =
      "grid = [[1, 2], [3, 4]]\n"
      "grid[1][0] = 99\n"
      "puts(grid[1][0] + grid[0][1])";
  expect_ml_output(program, "101\n");
}

TEST(ExecTest, MapLiteralEvaluationOrder) {
  expect_ml_output(
      "i = 0\nfn next()\n  return 1\nend\n"
      "m = {\"x\": next(), \"y\": next()}\nputs(len(m))",
      "2\n");
}

TEST(ExecTest, DeepRecursionHitsLimitCleanly) {
  test::RunOutcome outcome = run_ml(
      "fn down(n)\n  return down(n + 1)\nend\ndown(0)");
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error_message.find("stack level too deep"),
            std::string::npos);
}

TEST(ExecTest, LongLoopCompletes) {
  expect_ml_output(
      "total = 0\ni = 0\nwhile i < 100000\n  total = total + i\n  "
      "i = i + 1\nend\nputs(total)",
      "4999950000\n");
}

TEST(ExecTest, ShadowingParamInFunction) {
  const char* program =
      "x = \"global\"\n"
      "fn f(x)\n  x = x + \"!\"\n  return x\nend\n"
      "puts(f(\"local\"))\nputs(x)";
  expect_ml_output(program, "local!\nglobal\n");
}

TEST(ExecTest, ReturnValueOfAssignmentlessCall) {
  expect_ml_output("fn f()\n  return 5\nend\nf()\nputs(\"ok\")", "ok\n");
}

}  // namespace
}  // namespace dionea::vm
