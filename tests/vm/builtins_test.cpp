#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::vm {
namespace {

using test::expect_ml_error;
using test::expect_ml_output;
using test::run_ml;

TEST(BuiltinsTest, PutsFormats) {
  expect_ml_output("puts()", "\n");
  expect_ml_output("puts(1, \"two\", nil)", "1\ntwo\nnil\n");
  expect_ml_output("puts([1, 2])", "[1, 2]\n");
  expect_ml_output("print(\"a\", 1)\nprint(\"b\")", "a1b");
}

TEST(BuiltinsTest, Conversions) {
  expect_ml_output("puts(to_s(42) + \"!\")", "42!\n");
  expect_ml_output("puts(to_i(\"  42 \") + 1)", "43\n");
  expect_ml_output("puts(to_i(3.9))", "3\n");
  expect_ml_output("puts(to_i(true))", "1\n");
  expect_ml_output("puts(to_f(\"2.5\") * 2)", "5.0\n");
  expect_ml_output("puts(to_f(2))", "2.0\n");
  expect_ml_error("to_i(\"abc\")", "cannot parse");
  expect_ml_output("puts(type(1), type(1.0), type(\"\"), type([]), type({}))",
                   "int\nfloat\nstr\nlist\nmap\n");
  expect_ml_output("puts(repr(\"x\\n\"))", "\"x\\n\"\n");
}

TEST(BuiltinsTest, AssertPassesAndFails) {
  expect_ml_output("assert(true)\nassert(1)\nputs(\"ok\")", "ok\n");
  expect_ml_error("assert(false)", "AssertionError");
  expect_ml_error("assert(1 == 2, \"custom note\")", "custom note");
  expect_ml_error("assert(nil)", "AssertionError");
}

TEST(BuiltinsTest, ClockMonotonic) {
  test::RunOutcome outcome = run_ml(
      "a = clock()\nb = clock()\nassert(b >= a)\nputs(\"ok\")");
  EXPECT_TRUE(outcome.ok) << outcome.error_message;
}

TEST(BuiltinsTest, SleepDuration) {
  test::RunOutcome outcome = run_ml(
      "a = clock()\nsleep(0.05)\nassert(clock() - a >= 0.04)\nputs(\"ok\")");
  EXPECT_TRUE(outcome.ok) << outcome.error_message;
}

TEST(BuiltinsTest, RangeForms) {
  expect_ml_output("puts(repr(range(3)))", "[0, 1, 2]\n");
  expect_ml_output("puts(repr(range(2, 5)))", "[2, 3, 4]\n");
  expect_ml_output("puts(repr(range(0)))", "[]\n");
  expect_ml_output("puts(repr(range(5, 2)))", "[]\n");
}

TEST(BuiltinsTest, ListOperations) {
  expect_ml_output("l = [3]\npush(l, 4)\nputs(repr(l))", "[3, 4]\n");
  expect_ml_output("l = [1, 2, 3]\nputs(pop(l))\nputs(repr(l))",
                   "3\n[1, 2]\n");
  expect_ml_error("pop([])", "pop from empty list");
  expect_ml_output("puts(repr(sort([3, 1, 2])))", "[1, 2, 3]\n");
  expect_ml_output("puts(repr(sort([\"b\", \"a\"])))", "[\"a\", \"b\"]\n");
  expect_ml_error("sort([1, \"a\"])", "sort");
  expect_ml_output("puts(contains([1, 2], 2))\nputs(contains([1], 9))",
                   "true\nfalse\n");
  expect_ml_output("puts(repr(slice([1, 2, 3, 4], 1, 3)))", "[2, 3]\n");
  expect_ml_output("puts(repr(slice([1, 2, 3], -2)))", "[2, 3]\n");
}

TEST(BuiltinsTest, MapOperations) {
  expect_ml_output("m = {\"a\": 1}\nputs(get(m, \"a\"))\n"
                   "puts(repr(get(m, \"b\")))\nputs(get(m, \"b\", 42))",
                   "1\nnil\n42\n");
  expect_ml_output("m = {\"x\": 1, \"y\": 2}\nputs(repr(keys(m)))",
                   "[\"x\", \"y\"]\n");
  expect_ml_output("m = {\"a\": 1}\nputs(contains(m, \"a\"))\n"
                   "puts(contains(m, \"z\"))",
                   "true\nfalse\n");
  expect_ml_output("m = {\"a\": 1}\nputs(delete(m, \"a\"))\nputs(len(m))\n"
                   "puts(repr(delete(m, \"a\")))",
                   "1\n0\nnil\n");
}

TEST(BuiltinsTest, MathHelpers) {
  expect_ml_output("puts(min(2, 5))\nputs(max(2, 5))", "2\n5\n");
  expect_ml_output("puts(min(2.5, 2))\nputs(max(-1, -2))", "2\n-1\n");
  expect_ml_output("puts(abs(-5))\nputs(abs(5))\nputs(abs(-2.5))",
                   "5\n5\n2.5\n");
}

TEST(BuiltinsTest, StringOperations) {
  expect_ml_output("puts(repr(split(\"a,b,,c\", \",\")))",
                   "[\"a\", \"b\", \"\", \"c\"]\n");
  expect_ml_output("puts(repr(split(\"a--b\", \"--\")))",
                   "[\"a\", \"b\"]\n");
  expect_ml_output("puts(repr(words(\"  foo  bar\\tbaz \")))",
                   "[\"foo\", \"bar\", \"baz\"]\n");
  expect_ml_output("puts(lower(\"AbC\"))\nputs(upper(\"AbC\"))",
                   "abc\nABC\n");
  expect_ml_output("puts(is_alpha(\"abc\"))\nputs(is_alpha(\"ab1\"))\n"
                   "puts(is_alpha(\"\"))",
                   "true\nfalse\nfalse\n");
  expect_ml_output("puts(slice(\"hello\", 1, 3))", "el\n");
  expect_ml_output("puts(slice(\"hello\", -3))", "llo\n");
  expect_ml_output("puts(contains(\"hello\", \"ell\"))", "true\n");
}

TEST(BuiltinsTest, GetpidReturnsOurPid) {
  test::RunOutcome outcome = run_ml("puts(getpid())");
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.output, std::to_string(getpid()) + "\n");
}

TEST(BuiltinsTest, ExitStopsProgram) {
  test::RunOutcome outcome = run_ml("puts(\"before\")\nexit(3)\nputs(\"after\")");
  EXPECT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.exited);
  EXPECT_EQ(outcome.exit_code, 3);
  EXPECT_EQ(outcome.output, "before\n");
}

TEST(BuiltinsTest, ExitDefaultsToZero) {
  test::RunOutcome outcome = run_ml("exit()");
  EXPECT_TRUE(outcome.exited);
  EXPECT_EQ(outcome.exit_code, 0);
}

TEST(BuiltinsTest, FileRoundTripAndWalk) {
  auto tmp = TempDir::create("builtin-files");
  ASSERT_TRUE(tmp.is_ok());
  ASSERT_TRUE(make_dir(tmp.value().file("sub")).is_ok());
  ASSERT_TRUE(write_file(tmp.value().file("a.txt"), "alpha").is_ok());
  ASSERT_TRUE(write_file(tmp.value().file("sub/b.txt"), "beta").is_ok());
  std::string program =
      "root = \"" + tmp.value().path() + "\"\n"
      "files = walk_files(root)\n"
      "puts(len(files))\n"
      "puts(read_file(files[0]))\n"
      "write_file(root + \"/c.txt\", \"gamma\")\n"
      "puts(read_file(root + \"/c.txt\"))";
  expect_ml_output(program, "2\nalpha\ngamma\n");
}

TEST(BuiltinsTest, ReadMissingFileErrors) {
  expect_ml_error("read_file(\"/definitely/not/here\")", "NOT_FOUND");
}

TEST(BuiltinsTest, ArityErrors) {
  expect_ml_error("len()", "wrong number of arguments");
  expect_ml_error("len(1, 2)", "wrong number of arguments");
  expect_ml_error("to_s()", "wrong number of arguments");
}

TEST(BuiltinsTest, TypeErrorsNameTheBuiltin) {
  expect_ml_error("len(5)", "len");
  expect_ml_error("push(5, 1)", "push");
  expect_ml_error("lower(5)", "lower");
  expect_ml_error("split(\"a\", \"\")", "split");
}

}  // namespace
}  // namespace dionea::vm
