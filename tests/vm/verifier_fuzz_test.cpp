// Load-time bytecode verifier: the contract that lets the dispatch
// loop run with zero per-instruction bounds checks. Two layers:
// handcrafted chunks hitting each rejection rule, and a seeded
// mutation sweep (the `fuzz` ctest label) that bit-flips compiled
// programs and requires verify-then-run to never crash the process.
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "vm/bytecode.hpp"
#include "vm/compiler.hpp"
#include "vm/verifier.hpp"
#include "vm/vm.hpp"

namespace dionea::vm {
namespace {

std::string reject_reason(const FunctionProto& proto) {
  Status status = verify_chunk(proto);
  if (status.is_ok()) return "";
  return status.error().message();
}

TEST(VerifierTest, AcceptsCompiledPrograms) {
  const char* programs[] = {
      "x = 1 + 2\nputs(x)\n",
      "fn f(a)\n  b = a * 2\n  return b + 1\nend\nputs(f(20))\n",
      "i = 0\nwhile i < 10\n  i = i + 1\nend\n",
      "for x in [1, 2, 3]\n  puts(x)\nend\n",
      "fn make(n)\n  return fn(x)\n    return x + n\n  end\nend\n"
      "puts(make(1)(2))\n",
      "m = {\"k\": [1, 2]}\nm[\"k\"][0] = 9\nputs(m[\"k\"][0])\n",
  };
  for (const char* source : programs) {
    auto compiled = compile_source(source, "ok.ml");
    ASSERT_TRUE(compiled.is_ok());
    EXPECT_EQ(reject_reason(*compiled.value()), "") << source;
    // Nested functions are verified when first called; check them
    // directly here too.
    for (const Value& constant : compiled.value()->chunk.constants()) {
      if (constant.is_closure()) {
        EXPECT_EQ(reject_reason(*constant.as_closure()->proto), "") << source;
      }
    }
  }
}

TEST(VerifierTest, RejectsEmptyChunk) {
  FunctionProto proto;
  EXPECT_NE(reject_reason(proto).find("empty chunk"), std::string::npos);
}

TEST(VerifierTest, RejectsUndefinedOpcode) {
  FunctionProto proto;
  proto.chunk.write_u8(0xee, 1);
  EXPECT_NE(reject_reason(proto).find("undefined opcode"), std::string::npos);
}

TEST(VerifierTest, RejectsQuickenedOpcodeInCompiledCode) {
  // Quickened forms live only inside a CodeCache rewrite; a compiled
  // chunk carrying one means someone leaked cache state into a proto.
  for (Op op : {Op::kGetGlobalIC, Op::kSetGlobalIC, Op::kTraceLineQ}) {
    FunctionProto proto;
    proto.chunk.write(op, 1);
    proto.chunk.write_u16(0, 1);
    proto.chunk.write(Op::kHalt, 1);
    EXPECT_NE(reject_reason(proto).find("quickened opcode"),
              std::string::npos);
  }
}

TEST(VerifierTest, RejectsTruncatedOperand) {
  FunctionProto proto;
  proto.chunk.write(Op::kConst, 1);
  proto.chunk.write_u8(0, 1);  // one byte of a two-byte operand
  EXPECT_NE(reject_reason(proto).find("truncated operand"),
            std::string::npos);
}

TEST(VerifierTest, RejectsOutOfRangeIndices) {
  {
    FunctionProto proto;  // no constants at all
    proto.chunk.write(Op::kConst, 1);
    proto.chunk.write_u16(0, 1);
    proto.chunk.write(Op::kHalt, 1);
    EXPECT_NE(reject_reason(proto).find("constant index out of range"),
              std::string::npos);
  }
  {
    FunctionProto proto;  // no locals
    proto.chunk.write(Op::kGetLocal, 1);
    proto.chunk.write_u16(3, 1);
    proto.chunk.write(Op::kHalt, 1);
    EXPECT_NE(reject_reason(proto).find("local slot out of range"),
              std::string::npos);
  }
  {
    FunctionProto proto;  // global name must be a string constant
    proto.chunk.add_constant(Value(std::int64_t{42}));
    proto.chunk.write(Op::kGetGlobal, 1);
    proto.chunk.write_u16(0, 1);
    proto.chunk.write(Op::kHalt, 1);
    EXPECT_NE(reject_reason(proto).find("not a string"), std::string::npos);
  }
}

TEST(VerifierTest, RejectsBadControlFlow) {
  {
    FunctionProto proto;  // jump lands past the end
    proto.chunk.write(Op::kJump, 1);
    proto.chunk.write_u16(500, 1);
    proto.chunk.write(Op::kHalt, 1);
    EXPECT_NE(reject_reason(proto).find("runs off the end"),
              std::string::npos);
  }
  {
    FunctionProto proto;  // jump lands inside an operand
    proto.chunk.write(Op::kJump, 1);
    proto.chunk.write_u16(1, 1);  // into kConst's operand bytes
    proto.chunk.write(Op::kConst, 1);
    proto.chunk.add_constant(Value(std::int64_t{1}));
    proto.chunk.write_u16(0, 1);
    proto.chunk.write(Op::kPop, 1);
    proto.chunk.write(Op::kHalt, 1);
    EXPECT_NE(reject_reason(proto).find("not an instruction boundary"),
              std::string::npos);
  }
  {
    FunctionProto proto;  // falls off the end without kReturn/kHalt
    proto.chunk.write(Op::kNil, 1);
    proto.chunk.write(Op::kPop, 1);
    EXPECT_NE(reject_reason(proto).find("runs off the end"),
              std::string::npos);
  }
}

TEST(VerifierTest, RejectsStackImbalance) {
  {
    FunctionProto proto;  // pop from an empty stack
    proto.chunk.write(Op::kPop, 1);
    proto.chunk.write(Op::kHalt, 1);
    EXPECT_NE(reject_reason(proto).find("stack underflow"),
              std::string::npos);
  }
  {
    // Two paths reach the same join with different depths.
    FunctionProto proto;
    proto.chunk.add_constant(Value(std::int64_t{1}));
    proto.chunk.write(Op::kNil, 1);           // 0: depth 0 -> 1
    proto.chunk.write(Op::kJumpIfFalse, 1);   // 1: pops, branches
    proto.chunk.write_u16(1, 1);              //    taken -> offset 5
    proto.chunk.write(Op::kNil, 1);           // 4: fallthrough pushes
    proto.chunk.write(Op::kHalt, 1);          // 5: join: depth 0 vs 1
    EXPECT_NE(reject_reason(proto).find("inconsistent stack depth"),
              std::string::npos);
  }
}

TEST(VerifierTest, ErrorsNameTheOffendingOffset) {
  FunctionProto proto;
  proto.chunk.write(Op::kNil, 1);
  proto.chunk.write_u8(0xee, 1);
  EXPECT_NE(reject_reason(proto).find("invalid bytecode at offset 1"),
            std::string::npos);
}

// ---- mutation sweep ---------------------------------------------------
// Compile a benign program, corrupt 1–3 random bytes, verify. Accepted
// mutants (minus any that could loop forever) are additionally
// executed: the loop is check-free only because the verifier already
// said yes, so an accepted mutant that crashes the interpreter is a
// verifier hole, not bad luck. The program's constant pool contains no
// names of blocking or forking builtins, so no mutant can reach one —
// a kGetGlobal can only name strings that are already in the pool.
TEST(VerifierFuzzTest, MutatedChunksNeverCrashVerifyOrRun) {
  // Deliberately loop-free: a `while` would put kLoop in the pristine
  // code and the may_loop guard below would then skip every survivor.
  const std::string source =
      "a = 3\n"
      "b = 4\n"
      "if a < b\n"
      "  c = a + b\n"
      "else\n"
      "  c = a - b\n"
      "end\n"
      "xs = [1, 2, 3]\n"
      "m = {\"k\": 1, \"j\": 2}\n"
      "xs[0] = c\n"
      "total = xs[0] + xs[1] * xs[2] + m[\"k\"] - m[\"j\"]\n"
      "puts(total + len(xs))\n";
  auto compiled = compile_source(source, "fuzz.ml");
  ASSERT_TRUE(compiled.is_ok());
  const FunctionProto& pristine = *compiled.value();
  ASSERT_TRUE(verify_chunk(pristine).is_ok());

  std::mt19937 rng(0xd10ea5u);
  const size_t code_size = pristine.chunk.size();
  int accepted = 0;
  int rejected = 0;
  int executed = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    auto mutant = std::make_shared<FunctionProto>(pristine);
    const int flips = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < flips; ++f) {
      mutant->chunk.poke_for_test(rng() % code_size,
                                  static_cast<std::uint8_t>(rng() % 256));
    }
    Status status = verify_chunk(*mutant);
    if (!status.is_ok()) {
      ++rejected;
      EXPECT_NE(status.error().message().find("invalid bytecode at offset"),
                std::string::npos);
      continue;
    }
    ++accepted;
    // Executing mutants with a backward edge could spin forever (the
    // interrupt poll needs someone to interrupt); skip any mutant
    // whose code might contain kLoop. Conservative: operand bytes that
    // merely equal the kLoop byte also skip, which is fine.
    bool may_loop = false;
    for (size_t i = 0; i < code_size; ++i) {
      if (mutant->chunk.read_u8(i) ==
          static_cast<std::uint8_t>(Op::kLoop)) {
        may_loop = true;
        break;
      }
    }
    if (may_loop) continue;
    ++executed;
    Vm vm;
    vm.set_output([](std::string_view) {});
    vm.run_main(mutant);  // any outcome is fine; crashing is not
  }
  // The sweep must exercise both sides of the verifier and actually
  // run a meaningful share of survivors.
  EXPECT_GT(rejected, 100);
  EXPECT_GT(accepted, 10);
  EXPECT_GT(executed, 0);
}

}  // namespace
}  // namespace dionea::vm
