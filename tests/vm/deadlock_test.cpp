// Deadlock detection: the Ruby `deadlock detected (fatal)` semantics
// (§6.2) plus the cases that must NOT be flagged.
//
// The schedule-sensitive cases are record-once/replay-many fixtures:
// one recorded run pins the interleaving, and the assertions run
// against forced replays of it instead of racing the live scheduler.
#include <gtest/gtest.h>

#include "replay/replay.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"

namespace dionea::vm {
namespace {

using test::run_ml;
using test::run_ml_record;
using test::run_ml_replay;

void expect_fatal_deadlock(const std::string& program) {
  test::RunOutcome outcome = run_ml(program);
  ASSERT_FALSE(outcome.ok) << "expected deadlock, got output: "
                           << outcome.output;
  EXPECT_NE(outcome.error_message.find("deadlock detected (fatal)"),
            std::string::npos)
      << outcome.error_message;
}

void expect_no_deadlock(const std::string& program) {
  test::RunOutcome outcome = run_ml(program);
  EXPECT_TRUE(outcome.ok) << outcome.error_message;
}

TEST(DeadlockTest, SoloPopOnEmptyQueue) {
  expect_fatal_deadlock("q = queue()\nq.pop()");
}

TEST(DeadlockTest, SoloSleepForever) {
  expect_fatal_deadlock("sleep()");
}

TEST(DeadlockTest, TwoThreadsPoppingEachOthersQueues) {
  expect_fatal_deadlock(
      "q1 = queue()\n"
      "q2 = queue()\n"
      "t = spawn(fn()\n"
      "  v = q1.pop()\n"
      "  q2.push(v)\n"
      "end)\n"
      "v = q2.pop()\n"   // waits for t, which waits for us
      "q1.push(v)");
}

TEST(DeadlockTest, MutexCycle) {
  // Classic ABBA with a rendezvous so both threads hold one lock each.
  expect_fatal_deadlock(
      "a = mutex()\n"
      "b = mutex()\n"
      "sync = queue()\n"
      "t = spawn(fn()\n"
      "  lock(b)\n"
      "  sync.push(true)\n"
      "  lock(a)\n"
      "  unlock(a)\n"
      "  unlock(b)\n"
      "end)\n"
      "lock(a)\n"
      "sync.pop()\n"  // t holds b now
      "lock(b)");
}

TEST(DeadlockTest, MainSleepsAfterWorkerDies) {
  // Listing 5's parent-side fate: the helper thread pushes and exits,
  // main sleeps forever with nobody left to wake it.
  expect_fatal_deadlock(
      "q = queue()\n"
      "spawn(fn() q.push(1) end)\n"
      "q.pop()\n"
      "sleep()");
}

TEST(DeadlockTest, ErrorPointsAtBlockedLine) {
  test::RunOutcome outcome = run_ml("q = queue()\nq.pop()", "dead.ml");
  ASSERT_FALSE(outcome.ok);
  // Traceback names the file:line of the blocked statement.
  EXPECT_NE(outcome.error_message.find("dead.ml:2"), std::string::npos)
      << outcome.error_message;
}

// ---- cases that must NOT trigger ----

TEST(DeadlockTest, TimedSleepIsNotDeadlock) {
  expect_no_deadlock("sleep(0.3)\nputs(\"woke\")");
}

TEST(DeadlockTest, WakeableBlockIsNotDeadlock) {
  // Record once (pinning where the push lands relative to the pop and
  // the detector's transient all-blocked snapshots), then assert
  // against a forced replay of that schedule.
  auto tmp = TempDir::create("deadlock-wakeable");
  ASSERT_TRUE(tmp.is_ok());
  const std::string program =
      "q = queue()\n"
      "spawn(fn()\n"
      "  sleep(0.3)\n"  // longer than the detector's grace period
      "  q.push(1)\n"
      "end)\n"
      "puts(q.pop())";
  auto recorded = run_ml_record(tmp.value().file("logs"), program);
  EXPECT_TRUE(recorded.ok) << recorded.error_message;
  auto replayed = run_ml_replay(tmp.value().file("logs"), program);
  EXPECT_TRUE(replayed.ok) << replayed.error_message;
  EXPECT_EQ(replayed.info.mode, replay::Mode::kReplay)
      << replayed.info.divergence_reason;
  EXPECT_EQ(replayed.output, recorded.output);
}

TEST(DeadlockTest, HandoffChainCompletes) {
  // Threads blocked in a chain that eventually resolves — transient
  // all-blocked snapshots must not fire (grace + epoch re-check).
  // Replayed: the recorded hand-off order is forced, so the test
  // exercises the detector against the same chain shape every run.
  auto tmp = TempDir::create("deadlock-chain");
  ASSERT_TRUE(tmp.is_ok());
  const std::string program =
      "q1 = queue()\nq2 = queue()\nq3 = queue()\n"
      "spawn(fn() q2.push(q1.pop() + 1) end)\n"
      "spawn(fn() q3.push(q2.pop() + 1) end)\n"
      "spawn(fn()\n  sleep(0.25)\n  q1.push(1)\nend)\n"
      "puts(q3.pop())";
  auto recorded = run_ml_record(tmp.value().file("logs"), program);
  EXPECT_TRUE(recorded.ok) << recorded.error_message;
  auto replayed = run_ml_replay(tmp.value().file("logs"), program);
  EXPECT_TRUE(replayed.ok) << replayed.error_message;
  EXPECT_EQ(replayed.info.mode, replay::Mode::kReplay)
      << replayed.info.divergence_reason;
  EXPECT_EQ(replayed.output, recorded.output);
}

TEST(DeadlockTest, RecordedDeadlockReproducesOnReplay) {
  // The flagship replay use case: a once-observed deadlock replays on
  // demand. Record the ABBA cycle, then reproduce the identical fatal
  // error from the log — three times.
  auto tmp = TempDir::create("deadlock-replay");
  ASSERT_TRUE(tmp.is_ok());
  const std::string program =
      "a = mutex()\n"
      "b = mutex()\n"
      "sync = queue()\n"
      "t = spawn(fn()\n"
      "  lock(b)\n"
      "  sync.push(true)\n"
      "  lock(a)\n"
      "  unlock(a)\n"
      "  unlock(b)\n"
      "end)\n"
      "lock(a)\n"
      "sync.pop()\n"
      "lock(b)";
  auto recorded = run_ml_record(tmp.value().file("logs"), program);
  ASSERT_FALSE(recorded.ok) << recorded.output;
  ASSERT_NE(recorded.error_message.find("deadlock detected (fatal)"),
            std::string::npos)
      << recorded.error_message;
  for (int round = 0; round < 3; ++round) {
    auto replayed = run_ml_replay(tmp.value().file("logs"), program);
    ASSERT_FALSE(replayed.ok) << "round " << round;
    EXPECT_EQ(replayed.error_message, recorded.error_message)
        << "round " << round;
  }
}

TEST(DeadlockTest, IpcPopIsNotDeadlock) {
  // Blocking on an INTER-PROCESS queue is an IO wait: another process
  // can feed it, so the detector must ignore it (here the feeder is a
  // forked child).
  expect_no_deadlock(
      "q = ipc_queue()\n"
      "pid = fork(fn()\n"
      "  sleep(0.3)\n"
      "  ipc_push(q, 99)\n"
      "end)\n"
      "puts(ipc_pop(q))\n"
      "waitpid(pid)");
}

TEST(DeadlockTest, RepeatedBlockingDoesNotAccumulate) {
  // Block/wake cycles must keep working after the first (the epoch
  // logic resets candidates).
  expect_no_deadlock(
      "q = queue()\n"
      "spawn(fn()\n"
      "  for i in 3\n"
      "    sleep(0.2)\n"
      "    q.push(i)\n"
      "  end\n"
      "end)\n"
      "total = 0\n"
      "for i in 3\n"
      "  total = total + q.pop()\n"
      "end\n"
      "puts(total)");
}

TEST(DeadlockTest, DeadlockHookSuppressesFatal) {
  vm::Interp interp;
  std::vector<DeadlockInfo> seen;
  interp.vm().set_deadlock_hook(
      [&seen](Vm& vm, const std::vector<DeadlockInfo>& infos) {
        seen = infos;
        // Handled: resolve it by interrupting via exit.
        vm.request_exit(7);
        return true;
      });
  vm::RunResult result = interp.run_string("q = queue()\nq.pop()", "hook.ml");
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, 7);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].file, "hook.ml");
  EXPECT_EQ(seen[0].line, 2);
  EXPECT_EQ(seen[0].note, "Queue#pop");
  EXPECT_EQ(seen[0].thread_id, 1);
}

}  // namespace
}  // namespace dionea::vm
