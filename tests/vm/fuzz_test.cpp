// Differential property test: for randomly generated (but well-typed,
// terminating) MiniLang programs, the observable output must be
// identical with tracing disabled, tracing enabled, and a full debug
// server attached. This is the debugger's core soundness property —
// observation must not change behaviour (the paper's §3 Heisenberg
// worry) — checked mechanically over many programs.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "testutil.hpp"
#include "vm/compiler.hpp"

namespace dionea::vm {
namespace {

// Generates programs over integer-valued expressions, bounded loops
// and straight-line calls, so every program terminates and never
// raises (overflow is avoided by keeping operands small via %).
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    source_.clear();
    globals_ = {"seed"};
    fns_.clear();
    emit("seed = " + std::to_string(rng_.next_range(1, 50)));
    int fn_count = static_cast<int>(rng_.next_range(1, 3));
    for (int i = 0; i < fn_count; ++i) emit_fn(i);
    int stmt_count = static_cast<int>(rng_.next_range(3, 8));
    for (int i = 0; i < stmt_count; ++i) emit_stmt(0, &globals_);
    // Deterministic final digest so empty-output programs still
    // differentiate.
    std::string sum = "0";
    for (const std::string& name : globals_) sum += " + " + name;
    emit("puts(" + sum + ")");
    return source_;
  }

 private:
  void emit(const std::string& line) { source_ += line + "\n"; }

  std::string pick_var(const std::vector<std::string>& scope) {
    return scope[rng_.next_below(scope.size())];
  }

  // An int-valued expression over `scope` variables.
  std::string expr(const std::vector<std::string>& scope, int depth) {
    if (depth >= 3 || rng_.next_bool(0.35)) {
      if (!scope.empty() && rng_.next_bool(0.6)) return pick_var(scope);
      return std::to_string(rng_.next_range(0, 99));
    }
    switch (rng_.next_below(6)) {
      case 0:
        return "(" + expr(scope, depth + 1) + " + " + expr(scope, depth + 1) +
               ")";
      case 1:
        return "(" + expr(scope, depth + 1) + " - " + expr(scope, depth + 1) +
               ")";
      case 2:
        // Keep magnitudes bounded.
        return "((" + expr(scope, depth + 1) + ") % 97 * " +
               std::to_string(rng_.next_range(1, 9)) + ")";
      case 3:
        return "len([" + expr(scope, depth + 1) + ", " +
               expr(scope, depth + 1) + "])";
      case 4:
        if (!fns_.empty()) {
          const auto& [name, arity] = fns_[rng_.next_below(fns_.size())];
          std::string call = name + "(";
          for (int i = 0; i < arity; ++i) {
            if (i != 0) call += ", ";
            call += expr(scope, depth + 1);
          }
          return call + ")";
        }
        [[fallthrough]];
      default:
        return "min(" + expr(scope, depth + 1) + ", " +
               expr(scope, depth + 1) + ")";
    }
  }

  std::string condition(const std::vector<std::string>& scope) {
    static const char* kOps[] = {"<", "<=", ">", ">=", "==", "!="};
    return expr(scope, 2) + " " + kOps[rng_.next_below(6)] + " " +
           expr(scope, 2);
  }

  void emit_stmt(int indent_level, std::vector<std::string>* scope) {
    std::string indent(static_cast<size_t>(indent_level) * 2, ' ');
    switch (rng_.next_below(5)) {
      case 0: {  // new or existing assignment
        // Generate the value first: a fresh variable must not appear
        // in its own initializer.
        std::string value = expr(*scope, 0);
        std::string name;
        if (!scope->empty() && rng_.next_bool(0.5)) {
          name = pick_var(*scope);
        } else {
          name = "v" + std::to_string(scope->size()) + "_" +
                 std::to_string(indent_level);
          scope->push_back(name);
        }
        emit(indent + name + " = " + value);
        return;
      }
      case 1:
        emit(indent + "puts(" + expr(*scope, 1) + ")");
        return;
      case 2: {  // if/else — branch-local names must not leak out
                 // (the branch may not execute).
        emit(indent + "if " + condition(*scope));
        std::vector<std::string> then_scope = *scope;
        emit_stmt(indent_level + 1, &then_scope);
        if (rng_.next_bool(0.5)) {
          emit(indent + "else");
          std::vector<std::string> else_scope = *scope;
          emit_stmt(indent_level + 1, &else_scope);
        }
        emit(indent + "end");
        return;
      }
      case 3: {  // bounded for loop
        std::string loop_var = "i" + std::to_string(indent_level);
        emit(indent + "for " + loop_var + " in " +
             std::to_string(rng_.next_range(1, 6)));
        std::vector<std::string> inner = *scope;
        inner.push_back(loop_var);
        emit_stmt(indent_level + 1, &inner);
        emit(indent + "end");
        return;
      }
      default:
        emit(indent + "puts(to_s(" + expr(*scope, 1) + ") + \"!\")");
        return;
    }
  }

  void emit_fn(int index) {
    int arity = static_cast<int>(rng_.next_range(1, 2));
    std::string name = "fn" + std::to_string(index);
    std::vector<std::string> params;
    std::string header = "fn " + name + "(";
    for (int i = 0; i < arity; ++i) {
      if (i != 0) header += ", ";
      params.push_back("p" + std::to_string(i));
      header += params.back();
    }
    emit(header + ")");
    std::vector<std::string> scope = params;
    int body = static_cast<int>(rng_.next_range(1, 3));
    for (int i = 0; i < body; ++i) emit_stmt(1, &scope);
    emit("  return " + expr(scope, 1));
    emit("end");
    fns_.emplace_back(name, arity);
  }

  Rng rng_;
  std::string source_;
  std::vector<std::string> globals_;
  std::vector<std::pair<std::string, int>> fns_;
};

struct RunDigest {
  bool ok = false;
  std::string output;
  std::uint64_t statements = 0;
};

RunDigest run_plain(const std::string& program, bool traced) {
  vm::Interp interp;
  RunDigest digest;
  interp.vm().set_output(
      [&digest](std::string_view text) { digest.output.append(text); });
  if (traced) {
    interp.vm().set_trace_fn(
        [](Vm&, InterpThread&, const TraceEvent&) {});
    interp.vm().set_trace_enabled(true);
  }
  auto result = interp.run_string(program, "fuzz.ml");
  digest.ok = result.ok;
  digest.statements = interp.vm().statements_executed();
  return digest;
}

RunDigest run_debugged(const std::string& program) {
  vm::Interp interp;
  RunDigest digest;
  interp.vm().set_output(
      [&digest](std::string_view text) { digest.output.append(text); });
  auto tmp = TempDir::create("fuzz-dbg");
  EXPECT_TRUE(tmp.is_ok());
  dbg::DebugServer::Options options;
  options.port_file = tmp.value().file("ports");
  dbg::DebugServer server(interp.vm(), options);
  EXPECT_TRUE(server.start().is_ok());
  auto session = client::Session::attach(server.port(), 3000);
  EXPECT_TRUE(session.is_ok());
  auto result = interp.run_string(program, "fuzz.ml");
  digest.ok = result.ok;
  digest.statements = interp.vm().statements_executed();
  server.stop();
  return digest;
}

class FuzzDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDifferential, TracingDoesNotChangeBehaviour) {
  ProgramGenerator generator(GetParam());
  for (int round = 0; round < 12; ++round) {
    std::string program = generator.generate();
    RunDigest plain = run_plain(program, false);
    ASSERT_TRUE(plain.ok) << program;
    RunDigest traced = run_plain(program, true);
    RunDigest debugged = run_debugged(program);

    EXPECT_TRUE(traced.ok) << program;
    EXPECT_TRUE(debugged.ok) << program;
    EXPECT_EQ(plain.output, traced.output) << program;
    EXPECT_EQ(plain.output, debugged.output) << program;
    // Identical statement streams: tracing is pure observation.
    EXPECT_EQ(plain.statements, traced.statements) << program;
    EXPECT_EQ(plain.statements, debugged.statements) << program;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(FuzzGeneratorTest, ProducesParsablePrograms) {
  ProgramGenerator generator(777);
  for (int i = 0; i < 40; ++i) {
    std::string program = generator.generate();
    auto proto = compile_source(program, "gen.ml");
    EXPECT_TRUE(proto.is_ok())
        << proto.error().to_string() << "\n" << program;
  }
}

}  // namespace
}  // namespace dionea::vm
