#include "vm/compiler.hpp"

#include <gtest/gtest.h>

namespace dionea::vm {
namespace {

std::shared_ptr<const FunctionProto> compile_ok(std::string_view source) {
  auto proto = compile_source(source, "test.ml");
  EXPECT_TRUE(proto.is_ok()) << proto.error().to_string();
  return proto.is_ok() ? proto.value() : nullptr;
}

void expect_compile_error(std::string_view source, const std::string& needle) {
  auto proto = compile_source(source, "test.ml");
  ASSERT_FALSE(proto.is_ok());
  EXPECT_NE(proto.error().message().find(needle), std::string::npos)
      << "actual: " << proto.error().message();
}

TEST(CompilerTest, MainProtoShape) {
  auto proto = compile_ok("x = 1");
  ASSERT_NE(proto, nullptr);
  EXPECT_EQ(proto->name, "<main>");
  EXPECT_EQ(proto->file, "test.ml");
  EXPECT_EQ(proto->arity, 0);
  EXPECT_GT(proto->chunk.size(), 0u);
}

TEST(CompilerTest, EveryStatementGetsTraceLine) {
  auto proto = compile_ok("a = 1\nb = 2\nc = a + b");
  int trace_lines = 0;
  const Chunk& chunk = proto->chunk;
  size_t offset = 0;
  while (offset < chunk.size()) {
    Op op = static_cast<Op>(chunk.read_u8(offset));
    if (op == Op::kTraceLine) ++trace_lines;
    offset += 1 + static_cast<size_t>(op_operand_bytes(op));
  }
  EXPECT_EQ(trace_lines, 3);
}

TEST(CompilerTest, ConstantsDeduplicated) {
  auto proto = compile_ok("a = 5\nb = 5\nc = \"s\"\nd = \"s\"");
  // 5, "s", plus the name constants a..d: no duplicates.
  size_t count = proto->chunk.constants().size();
  EXPECT_EQ(count, 6u);
}

TEST(CompilerTest, FunctionLocalsTracked) {
  auto proto = compile_ok("fn f(p, q)\n  local = p\n  return local\nend");
  const auto& constants = proto->chunk.constants();
  const Closure* inner = nullptr;
  for (const Value& constant : constants) {
    if (constant.is_closure()) inner = constant.as_closure().get();
  }
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->proto->arity, 2);
  EXPECT_EQ(inner->proto->local_names,
            (std::vector<std::string>{"p", "q", "local"}));
}

TEST(CompilerTest, LambdaCapturesEnclosingLocal) {
  auto proto = compile_ok(
      "fn outer(x)\n  return fn() return x end\nend");
  // Find the innermost lambda proto.
  const FunctionProto* lambda = nullptr;
  std::function<void(const FunctionProto&)> walk =
      [&](const FunctionProto& p) {
        for (const Value& constant : p.chunk.constants()) {
          if (constant.is_closure()) {
            const FunctionProto& child = *constant.as_closure()->proto;
            if (child.name.empty()) lambda = &child;
            walk(child);
          }
        }
      };
  walk(*proto);
  ASSERT_NE(lambda, nullptr);
  ASSERT_EQ(lambda->captures.size(), 1u);
  EXPECT_FALSE(lambda->captures[0].from_enclosing_capture);
  EXPECT_EQ(lambda->capture_names, (std::vector<std::string>{"x"}));
}

TEST(CompilerTest, NestedLambdaCapturesThroughMiddle) {
  auto proto = compile_ok(
      "fn outer(x)\n"
      "  return fn()\n"
      "    return fn() return x end\n"
      "  end\n"
      "end");
  // Innermost lambda captures from the middle lambda's captures.
  const FunctionProto* innermost = nullptr;
  std::function<void(const FunctionProto&, int)> walk =
      [&](const FunctionProto& p, int depth) {
        for (const Value& constant : p.chunk.constants()) {
          if (constant.is_closure()) {
            const FunctionProto& child = *constant.as_closure()->proto;
            if (depth == 2) innermost = &child;
            walk(child, depth + 1);
          }
        }
      };
  walk(*proto, 0);
  ASSERT_NE(innermost, nullptr);
  ASSERT_EQ(innermost->captures.size(), 1u);
  EXPECT_TRUE(innermost->captures[0].from_enclosing_capture);
}

TEST(CompilerTest, TopLevelNamesAreGlobalsNotCaptures) {
  auto proto = compile_ok("g = 1\nf = fn() return g end");
  const FunctionProto* lambda = nullptr;
  for (const Value& constant : proto->chunk.constants()) {
    if (constant.is_closure()) lambda = constant.as_closure()->proto.get();
  }
  ASSERT_NE(lambda, nullptr);
  EXPECT_TRUE(lambda->captures.empty());  // g resolves as a global
}

TEST(CompilerTest, BreakOutsideLoopRejected) {
  expect_compile_error("break", "'break' outside loop");
  expect_compile_error("continue", "'continue' outside loop");
  expect_compile_error("fn f()\n  break\nend", "'break' outside loop");
}

TEST(CompilerTest, DuplicateParameterRejected) {
  expect_compile_error("fn f(a, a)\n  return a\nend", "duplicate parameter");
}

TEST(CompilerTest, BreakInsideLoopInsideFnAllowed) {
  auto proto = compile_ok(
      "fn f()\n  while true\n    break\n  end\nend");
  EXPECT_NE(proto, nullptr);
}

TEST(CompilerTest, HiddenIteratorSlotsInvisible) {
  auto proto = compile_ok("for x in [1]\n  y = x\nend");
  // Top-level for loop: hidden slots exist and start with '$'.
  int hidden = 0;
  for (const std::string& name : proto->local_names) {
    if (!name.empty() && name[0] == '$') ++hidden;
  }
  EXPECT_EQ(hidden, 2);
}

TEST(CompilerTest, DisassemblerProducesListing) {
  auto proto = compile_ok("x = 1 + 2\nputs(x)");
  std::string listing = proto->chunk.disassemble("<main>");
  EXPECT_NE(listing.find("TRACE_LINE"), std::string::npos);
  EXPECT_NE(listing.find("ADD"), std::string::npos);
  EXPECT_NE(listing.find("SET_GLOBAL"), std::string::npos);
  EXPECT_NE(listing.find("CALL"), std::string::npos);
  EXPECT_NE(listing.find("RETURN"), std::string::npos);
}

TEST(CompilerTest, JumpTargetsWithinChunk) {
  auto proto = compile_ok(
      "i = 0\nwhile i < 100\n  if i % 2 == 0\n    i = i + 1\n  else\n    "
      "i = i + 2\n  end\nend");
  const Chunk& chunk = proto->chunk;
  size_t offset = 0;
  while (offset < chunk.size()) {
    Op op = static_cast<Op>(chunk.read_u8(offset));
    size_t next = offset + 1 + static_cast<size_t>(op_operand_bytes(op));
    switch (op) {
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek:
        EXPECT_LE(next + chunk.read_u16(offset + 1), chunk.size());
        break;
      case Op::kLoop:
        EXPECT_GE(next, static_cast<size_t>(chunk.read_u16(offset + 1)));
        break;
      default:
        break;
    }
    offset = next;
  }
}

}  // namespace
}  // namespace dionea::vm
