#include "vm/gil.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/timing.hpp"
#include "testutil.hpp"

namespace dionea::vm {
namespace {

TEST(GilTest, AcquireReleaseTracksOwner) {
  Gil gil;
  EXPECT_EQ(gil.owner(), 0);
  gil.acquire(5);
  EXPECT_EQ(gil.owner(), 5);
  EXPECT_TRUE(gil.held_by(5));
  EXPECT_FALSE(gil.held_by(6));
  gil.release();
  EXPECT_EQ(gil.owner(), 0);
}

TEST(GilTest, MutualExclusion) {
  Gil gil;
  std::atomic<int> inside{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        gil.acquire(t + 1);
        if (inside.fetch_add(1) != 0) violation.store(true);
        inside.fetch_sub(1);
        gil.release();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(violation.load());
}

TEST(GilTest, YieldHandsOffWhenContended) {
  Gil gil;
  gil.acquire(1);
  std::atomic<bool> peer_ran{false};
  std::thread peer([&] {
    gil.acquire(2);
    peer_ran.store(true);
    gil.release();
  });
  // Give the peer time to start waiting, then yield repeatedly until
  // it gets through.
  Stopwatch watch;
  while (!peer_ran.load() && watch.elapsed_seconds() < 2.0) {
    gil.yield(1);
  }
  EXPECT_TRUE(peer_ran.load());
  EXPECT_TRUE(gil.held_by(1));  // we end up holding it again
  gil.release();
  peer.join();
}

TEST(GilTest, YieldWithoutWaitersIsCheapNoop) {
  Gil gil;
  gil.acquire(1);
  for (int i = 0; i < 1000; ++i) gil.yield(1);
  EXPECT_TRUE(gil.held_by(1));
  gil.release();
}

TEST(GilTest, ForkProtocolReinitializes) {
  Gil gil;
  gil.acquire(1);
  gil.prepare_fork();
  // (no actual fork needed: child_atfork must leave a working GIL held
  // by the survivor)
  gil.child_atfork(1);
  EXPECT_TRUE(gil.held_by(1));
  gil.release();
  gil.acquire(1);
  gil.release();
}

TEST(GilTest, ForkParentPathRestores) {
  Gil gil;
  gil.acquire(1);
  gil.prepare_fork();
  gil.parent_atfork();
  EXPECT_TRUE(gil.held_by(1));
  gil.release();
}

TEST(GilSemanticsTest, SwitchIntervalAffectsInterleaving) {
  // With a huge switch interval and no blocking, a spawned thread's
  // statements run in long bursts; with interval 1 they interleave
  // finely. We only check both settings produce correct results.
  for (int interval : {1, 10'000}) {
    vm::Interp interp;
    interp.vm().set_switch_interval(interval);
    std::string output;
    interp.vm().set_output([&](std::string_view s) { output.append(s); });
    auto result = interp.run_string(
        "total = [0]\n"
        "fn add()\n"
        "  for i in 100\n"
        "    total[0] = total[0] + 1\n"
        "  end\n"
        "  return nil\n"
        "end\n"
        "t1 = spawn(add)\n"
        "t2 = spawn(add)\n"
        "join(t1)\n"
        "join(t2)\n"
        "puts(total[0])",
        "gil.ml");
    ASSERT_TRUE(result.ok) << result.error.to_string();
    // Statement-level increments are GIL-atomic (the whole statement
    // executes under the lock), so no updates are lost.
    EXPECT_EQ(output, "200\n") << "interval " << interval;
  }
}

}  // namespace
}  // namespace dionea::vm
