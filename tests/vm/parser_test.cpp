#include "vm/parser.hpp"

#include <gtest/gtest.h>

namespace dionea::vm {
namespace {

Program parse_ok(std::string_view source) {
  auto program = parse_source(source);
  EXPECT_TRUE(program.is_ok()) << program.error().to_string();
  return program.is_ok() ? std::move(program).value() : Program{};
}

void expect_parse_error(std::string_view source, const std::string& needle) {
  auto program = parse_source(source);
  ASSERT_FALSE(program.is_ok()) << "source parsed unexpectedly: " << source;
  EXPECT_NE(program.error().message().find(needle), std::string::npos)
      << "actual: " << program.error().message();
}

TEST(ParserTest, EmptyProgram) {
  Program program = parse_ok("");
  EXPECT_TRUE(program.statements.empty());
}

TEST(ParserTest, ExpressionStatement) {
  Program program = parse_ok("1 + 2 * 3");
  ASSERT_EQ(program.statements.size(), 1u);
  const Stmt& stmt = *program.statements[0];
  EXPECT_EQ(stmt.kind, StmtKind::kExpr);
  // Precedence: (1 + (2 * 3)).
  ASSERT_EQ(stmt.expr->kind, ExprKind::kBinary);
  EXPECT_EQ(stmt.expr->op, TokenKind::kPlus);
  EXPECT_EQ(stmt.expr->rhs->op, TokenKind::kStar);
}

TEST(ParserTest, ComparisonBindsLooserThanArithmetic) {
  Program program = parse_ok("a + 1 < b * 2");
  const Expr& expr = *program.statements[0]->expr;
  EXPECT_EQ(expr.op, TokenKind::kLt);
  EXPECT_EQ(expr.lhs->op, TokenKind::kPlus);
  EXPECT_EQ(expr.rhs->op, TokenKind::kStar);
}

TEST(ParserTest, LogicalOperatorsShortCircuitShape) {
  Program program = parse_ok("a or b and not c");
  const Expr& expr = *program.statements[0]->expr;
  // or is loosest; and tighter; not tightest.
  EXPECT_EQ(expr.kind, ExprKind::kLogical);
  EXPECT_EQ(expr.op, TokenKind::kOr);
  EXPECT_EQ(expr.rhs->op, TokenKind::kAnd);
  EXPECT_EQ(expr.rhs->rhs->kind, ExprKind::kUnary);
}

TEST(ParserTest, AssignmentTargets) {
  Program program = parse_ok("x = 1\nm[\"k\"] = 2\nl[0] = 3");
  ASSERT_EQ(program.statements.size(), 3u);
  EXPECT_EQ(program.statements[0]->kind, StmtKind::kAssign);
  EXPECT_EQ(program.statements[0]->expr->kind, ExprKind::kName);
  EXPECT_EQ(program.statements[1]->expr->kind, ExprKind::kIndex);
  EXPECT_EQ(program.statements[2]->expr->kind, ExprKind::kIndex);
}

TEST(ParserTest, InvalidAssignmentTarget) {
  expect_parse_error("1 + 2 = 3", "invalid assignment target");
  expect_parse_error("f() = 3", "invalid assignment target");
}

TEST(ParserTest, FunctionDefinition) {
  Program program = parse_ok("fn add(a, b)\n  return a + b\nend");
  ASSERT_EQ(program.statements.size(), 1u);
  const Stmt& stmt = *program.statements[0];
  EXPECT_EQ(stmt.kind, StmtKind::kFnDef);
  EXPECT_EQ(stmt.fn->name, "add");
  EXPECT_EQ(stmt.fn->params, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(stmt.fn->body.size(), 1u);
  EXPECT_EQ(stmt.fn->body[0]->kind, StmtKind::kReturn);
}

TEST(ParserTest, LambdaExpression) {
  Program program = parse_ok("f = fn(x) return x end");
  const Stmt& stmt = *program.statements[0];
  EXPECT_EQ(stmt.kind, StmtKind::kAssign);
  EXPECT_EQ(stmt.value->kind, ExprKind::kLambda);
  EXPECT_TRUE(stmt.value->fn->name.empty());
}

TEST(ParserTest, NullaryLambdaAsArgument) {
  Program program = parse_ok("spawn(fn()\n  puts(1)\nend)");
  const Stmt& stmt = *program.statements[0];
  EXPECT_EQ(stmt.expr->kind, ExprKind::kCall);
  EXPECT_EQ(stmt.expr->args[0]->kind, ExprKind::kLambda);
}

TEST(ParserTest, IfElifElse) {
  Program program = parse_ok(
      "if a\n  x = 1\nelif b\n  x = 2\nelse\n  x = 3\nend");
  const Stmt& stmt = *program.statements[0];
  EXPECT_EQ(stmt.kind, StmtKind::kIf);
  ASSERT_EQ(stmt.arms.size(), 3u);
  EXPECT_NE(stmt.arms[0].condition, nullptr);
  EXPECT_NE(stmt.arms[1].condition, nullptr);
  EXPECT_EQ(stmt.arms[2].condition, nullptr);  // else
}

TEST(ParserTest, WhileAndForLoops) {
  Program program = parse_ok(
      "while x < 10\n  x = x + 1\nend\nfor item in list\n  puts(item)\nend");
  EXPECT_EQ(program.statements[0]->kind, StmtKind::kWhile);
  EXPECT_EQ(program.statements[1]->kind, StmtKind::kForIn);
  EXPECT_EQ(program.statements[1]->name, "item");
}

TEST(ParserTest, BreakContinueReturnForms) {
  Program program = parse_ok(
      "while true\n  break\nend\n"
      "while true\n  continue\nend\n"
      "fn f()\n  return\nend\n"
      "fn g()\n  return 5\nend");
  EXPECT_EQ(program.statements[0]->body[0]->kind, StmtKind::kBreak);
  EXPECT_EQ(program.statements[1]->body[0]->kind, StmtKind::kContinue);
  EXPECT_EQ(program.statements[2]->fn->body[0]->expr, nullptr);
  EXPECT_NE(program.statements[3]->fn->body[0]->expr, nullptr);
}

TEST(ParserTest, MethodCallSugar) {
  Program program = parse_ok("q.push(1)");
  const Expr& expr = *program.statements[0]->expr;
  EXPECT_EQ(expr.kind, ExprKind::kMethod);
  EXPECT_EQ(expr.str_val, "push");
  EXPECT_EQ(expr.callee->kind, ExprKind::kName);
  ASSERT_EQ(expr.args.size(), 1u);
}

TEST(ParserTest, MethodWithoutCallIsError) {
  expect_parse_error("a.b", "methods are builtin-call sugar");
}

TEST(ParserTest, ChainedPostfix) {
  Program program = parse_ok("m[\"k\"][0].foo(1)(2)");
  const Expr& expr = *program.statements[0]->expr;
  EXPECT_EQ(expr.kind, ExprKind::kCall);           // (...)(2)
  EXPECT_EQ(expr.callee->kind, ExprKind::kMethod);  // .foo(1)
}

TEST(ParserTest, ListAndMapLiterals) {
  Program program = parse_ok("x = [1, 2, [3]]\ny = {\"a\": 1, \"b\": {}}");
  EXPECT_EQ(program.statements[0]->value->kind, ExprKind::kListLit);
  EXPECT_EQ(program.statements[0]->value->args.size(), 3u);
  EXPECT_EQ(program.statements[1]->value->kind, ExprKind::kMapLit);
  EXPECT_EQ(program.statements[1]->value->args.size(), 4u);  // k,v pairs
}

TEST(ParserTest, MultilineLiterals) {
  Program program = parse_ok("x = [\n  1,\n  2,\n  3\n]\ny = {\n  \"a\": 1\n}");
  EXPECT_EQ(program.statements[0]->value->args.size(), 3u);
}

TEST(ParserTest, MissingEndReported) {
  expect_parse_error("fn f()\n  return 1\n", "unterminated block");
  expect_parse_error("if x\n  y = 1\n", "unterminated block");
  expect_parse_error("while x\n", "unterminated block");
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto program = parse_source("x = 1\ny = )");
  ASSERT_FALSE(program.is_ok());
  EXPECT_NE(program.error().message().find("2:"), std::string::npos);
}

TEST(ParserTest, LexicalErrorSurfaces) {
  expect_parse_error("x = @", "");
}

TEST(ParserTest, UnaryMinusAndNot) {
  Program program = parse_ok("x = -y\nz = not w\na = --b");
  EXPECT_EQ(program.statements[0]->value->kind, ExprKind::kUnary);
  EXPECT_EQ(program.statements[1]->value->op, TokenKind::kNot);
  EXPECT_EQ(program.statements[2]->value->rhs->kind, ExprKind::kUnary);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  Program program = parse_ok("(1 + 2) * 3");
  const Expr& expr = *program.statements[0]->expr;
  EXPECT_EQ(expr.op, TokenKind::kStar);
  EXPECT_EQ(expr.lhs->op, TokenKind::kPlus);
}

TEST(ParserTest, LineNumbersOnStatements) {
  Program program = parse_ok("a = 1\n\n\nb = 2");
  EXPECT_EQ(program.statements[0]->line, 1);
  EXPECT_EQ(program.statements[1]->line, 4);
}

}  // namespace
}  // namespace dionea::vm
