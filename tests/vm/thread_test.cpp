// Interpreter threads: spawn/join, GIL-mediated interleaving, result
// and error propagation.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::vm {
namespace {

using test::expect_ml_error;
using test::expect_ml_output;
using test::run_ml;

TEST(ThreadTest, SpawnJoinReturnsValue) {
  expect_ml_output("t = spawn(fn() return 40 + 2 end)\nputs(join(t))",
                   "42\n");
}

TEST(ThreadTest, SpawnWithArguments) {
  expect_ml_output(
      "t = spawn(fn(a, b) return a * b end, 6, 7)\nputs(join(t))", "42\n");
}

TEST(ThreadTest, SpawnArityMismatchFails) {
  expect_ml_error("t = spawn(fn(a) return a end)", "argument count");
  expect_ml_error("spawn(5)", "spawn expects a fn");
}

TEST(ThreadTest, ManyThreadsAllComplete) {
  const char* program =
      "q = queue()\n"
      "n = 16\n"
      "for i in n\n"
      "  spawn(fn(k) q.push(k) end, i)\n"
      "end\n"
      "total = 0\n"
      "for i in n\n"
      "  total = total + q.pop()\n"
      "end\n"
      "puts(total)";  // 0+1+...+15
  expect_ml_output(program, "120\n");
}

TEST(ThreadTest, ThreadIdsDistinct) {
  const char* program =
      "t1 = spawn(fn() return current_thread_id() end)\n"
      "t2 = spawn(fn() return current_thread_id() end)\n"
      "a = join(t1)\n"
      "b = join(t2)\n"
      "assert(a != b)\n"
      "assert(a == thread_id(t1))\n"
      "assert(b == thread_id(t2))\n"
      "assert(current_thread_id() == 1)\n"  // main is thread 1
      "puts(\"ok\")";
  expect_ml_output(program, "ok\n");
}

TEST(ThreadTest, JoinFinishedThreadReturnsItsValue) {
  // Ruby's Thread#value: the result survives the thread's death.
  const char* program =
      "t = spawn(fn() return 5 end)\n"
      "sleep(0.1)\n"  // let it finish first
      "puts(join(t))";
  expect_ml_output(program, "5\n");
}

TEST(ThreadTest, JoinTwiceGivesSameValue) {
  expect_ml_output(
      "t = spawn(fn() return 9 end)\nputs(join(t))\nputs(join(t))",
      "9\n9\n");
}

TEST(ThreadTest, SelfJoinIsError) {
  const char* self_join =
      "q = queue()\n"
      "t = spawn(fn()\n"
      "  me = q.pop()\n"
      "  return join(me)\n"
      "end)\n"
      "q.push(t)\n"
      "join(t)";
  test::RunOutcome outcome = run_ml(self_join);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error_message.find("must not be current thread"),
            std::string::npos)
      << outcome.error_message;
}

TEST(ThreadTest, MainExitKillsDaemonThreads) {
  // Ruby semantics: the program ends when main ends; the infinite
  // worker is killed, not waited for.
  const char* program =
      "spawn(fn()\n"
      "  i = 0\n"
      "  while true\n"
      "    i = i + 1\n"
      "  end\n"
      "end)\n"
      "sleep(0.05)\n"
      "puts(\"main done\")";
  Stopwatch watch;
  expect_ml_output(program, "main done\n");
  EXPECT_LT(watch.elapsed_seconds(), 10.0);
}

TEST(ThreadTest, BlockedSleeperKilledAtExit) {
  const char* program =
      "spawn(fn() sleep(60) end)\n"
      "sleep(0.05)\n"
      "puts(\"done\")";
  Stopwatch watch;
  expect_ml_output(program, "done\n");
  EXPECT_LT(watch.elapsed_seconds(), 5.0);  // not 60s
}

TEST(ThreadTest, ThreadsActuallyInterleave) {
  // Two threads appending to a shared list: both make progress before
  // either finishes (GIL switches at statement boundaries). A gate
  // queue lines both workers up before the race starts — otherwise the
  // first can finish before the second's OS thread even launches.
  const char* program =
      "log = []\n"
      "ready = queue()\n"
      "go = queue()\n"
      "fn worker(tag)\n"
      "  ready.push(tag)\n"
      "  go.pop()\n"
      "  for i in 30000\n"
      "    push(log, tag)\n"
      "  end\n"
      "  return nil\n"
      "end\n"
      "t1 = spawn(worker, \"a\")\n"
      "t2 = spawn(worker, \"b\")\n"
      "ready.pop()\n"
      "ready.pop()\n"
      "go.push(1)\n"
      "go.push(1)\n"
      "join(t1)\n"
      "join(t2)\n"
      "saw_a_then_b = false\n"
      "saw_b_then_a = false\n"
      "i = 1\n"
      "while i < len(log)\n"
      "  if log[i - 1] == \"a\" and log[i] == \"b\"\n"
      "    saw_a_then_b = true\n"
      "  end\n"
      "  if log[i - 1] == \"b\" and log[i] == \"a\"\n"
      "    saw_b_then_a = true\n"
      "  end\n"
      "  i = i + 1\n"
      "end\n"
      "puts(len(log))\n"
      "puts(saw_a_then_b and saw_b_then_a)";
  test::RunOutcome outcome = run_ml(program);
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "60000\ntrue\n");
}

TEST(ThreadTest, SpawnedThreadSeesGlobals) {
  const char* program =
      "shared = \"seen\"\n"
      "t = spawn(fn() return shared end)\n"
      "puts(join(t))";
  expect_ml_output(program, "seen\n");
}

TEST(ThreadTest, ProducerConsumerThroughQueue) {
  const char* program =
      "q = queue()\n"
      "consumer = spawn(fn()\n"
      "  total = 0\n"
      "  while true\n"
      "    v = q.pop()\n"
      "    if v == nil\n      break\n    end\n"
      "    total = total + v\n"
      "  end\n"
      "  return total\n"
      "end)\n"
      "for i in 100\n"
      "  q.push(i + 1)\n"
      "end\n"
      "q.push(nil)\n"
      "puts(join(consumer))";
  expect_ml_output(program, "5050\n");
}

}  // namespace
}  // namespace dionea::vm
