// Raw-speed machinery: dispatch backends, quickening, inline caches
// and compiler-fused superinstructions. The whole binary runs twice
// from ctest (vmspeed label) — once with DIONEA_DISPATCH=goto, once
// with =switch — so every test here is backend-parameterized for free;
// the explicit cross-backend tests below additionally force each mode
// so a single invocation still covers both.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "vm/bytecode.hpp"
#include "vm/code_cache.hpp"
#include "vm/compiler.hpp"
#include "vm/interp.hpp"
#include "vm/vm.hpp"

namespace dionea::vm {
namespace {

struct SpeedOutcome {
  bool ok = false;
  std::string output;
  std::string error;
};

SpeedOutcome run_with(const std::string& source, Vm::DispatchMode mode,
                      bool quicken) {
  Interp interp;
  SpeedOutcome outcome;
  interp.vm().set_output(
      [&outcome](std::string_view text) { outcome.output.append(text); });
  interp.vm().set_dispatch_mode(mode);
  interp.vm().set_quicken_enabled(quicken);
  RunResult result = interp.run_string(source, "speed.ml");
  outcome.ok = result.ok;
  if (!result.ok) outcome.error = result.error.to_string();
  return outcome;
}

// Programs chosen to cover every fused/quickened op: local⊕local and
// local⊕literal arithmetic and comparisons, literal stores, global
// reads/writes (hot and undefined), loops, calls, closures, lists.
const char* kBattery[] = {
    // Fused arithmetic inside a function + global result.
    "fn work(a, b)\n"
    "  c = a + b\n"
    "  d = a * 2\n"
    "  e = 100\n"
    "  f = c - d\n"
    "  return f + e\n"
    "end\n"
    "puts(work(7, 5))\n",
    // Fused comparisons drive control flow.
    "fn cmp(a, b)\n"
    "  if a < b\n"
    "    return 1\n"
    "  end\n"
    "  if a >= b\n"
    "    return 2\n"
    "  end\n"
    "  return 3\n"
    "end\n"
    "puts(cmp(1, 2))\n"
    "puts(cmp(9, 2))\n",
    // Global IC training: same sites hit many times.
    "total = 0\n"
    "i = 0\n"
    "while i < 500\n"
    "  total = total + i\n"
    "  i = i + 1\n"
    "end\n"
    "puts(total)\n",
    // Closures + captures (captures must never fuse).
    "fn make(n)\n"
    "  return fn(x)\n"
    "    return x + n\n"
    "  end\n"
    "end\n"
    "add3 = make(3)\n"
    "puts(add3(4))\n",
    // Containers and iteration.
    "xs = [1, 2, 3, 4]\n"
    "sum = 0\n"
    "for x in xs\n"
    "  sum = sum + x\n"
    "end\n"
    "puts(sum)\n",
};

const char* kExpected[] = {"98\n", "1\n2\n", "124750\n", "7\n", "10\n"};

TEST(VmSpeedTest, BothBackendsBothQuickenModesAgree) {
  for (size_t i = 0; i < std::size(kBattery); ++i) {
    for (bool quicken : {true, false}) {
      SpeedOutcome sw = run_with(kBattery[i], Vm::DispatchMode::kSwitch,
                                 quicken);
      EXPECT_TRUE(sw.ok) << sw.error;
      EXPECT_EQ(sw.output, kExpected[i]) << "switch quicken=" << quicken;
      if (Vm::computed_goto_available()) {
        SpeedOutcome gt = run_with(kBattery[i], Vm::DispatchMode::kGoto,
                                   quicken);
        EXPECT_TRUE(gt.ok) << gt.error;
        EXPECT_EQ(gt.output, kExpected[i]) << "goto quicken=" << quicken;
      }
    }
  }
}

TEST(VmSpeedTest, GotoModeDegradesGracefullyWhenUnavailable) {
  Interp interp;
  interp.vm().set_dispatch_mode(Vm::DispatchMode::kGoto);
  if (Vm::computed_goto_available()) {
    EXPECT_EQ(interp.vm().dispatch_mode(), Vm::DispatchMode::kGoto);
  } else {
    EXPECT_EQ(interp.vm().dispatch_mode(), Vm::DispatchMode::kSwitch);
  }
}

TEST(VmSpeedTest, QuickeningRewritesSitesInPlace) {
  Interp interp;
  interp.vm().set_output([](std::string_view) {});
  ASSERT_TRUE(interp.run_string(kBattery[2], "speed.ml").ok);

  CodeCacheStats stats = interp.vm().code_cache_stats();
  EXPECT_GE(stats.caches, 1u);
  EXPECT_GE(stats.quickened, 1u);
  EXPECT_GE(stats.ic_sites, 2u);     // total + i, read and written
  EXPECT_GE(stats.trained_ics, 2u);  // hot loop trains them
  EXPECT_EQ(stats.total_in_use, 0u);  // run finished, frames popped

  std::shared_ptr<const FunctionProto> program =
      interp.vm().current_program();
  ASSERT_NE(program, nullptr);
  const CodeCache* cache = interp.vm().find_code_cache(program.get());
  ASSERT_NE(cache, nullptr);
  const std::vector<std::uint8_t>& original = program->chunk.code();
  // Same-length rewrite: every offset maps the original op to itself
  // or to its quickened twin; operand widths never change.
  ASSERT_EQ(cache->code.size(), original.size());
  size_t rewritten = 0;
  size_t offset = 0;
  while (offset < original.size()) {
    const Op before = static_cast<Op>(original[offset]);
    const Op after = static_cast<Op>(cache->code[offset]);
    if (after != before) {
      ++rewritten;
      EXPECT_TRUE(
          (before == Op::kTraceLine && after == Op::kTraceLineQ) ||
          (before == Op::kGetGlobal && after == Op::kGetGlobalIC) ||
          (before == Op::kSetGlobal && after == Op::kSetGlobalIC))
          << "offset " << offset;
      EXPECT_EQ(op_operand_bytes(before), op_operand_bytes(after));
    }
    offset += 1 + static_cast<size_t>(op_operand_bytes(before));
  }
  EXPECT_GT(rewritten, 0u);
}

TEST(VmSpeedTest, QuickenDisabledLeavesChunkBytesUntouched) {
  Interp interp;
  interp.vm().set_output([](std::string_view) {});
  interp.vm().set_quicken_enabled(false);
  ASSERT_TRUE(interp.run_string(kBattery[0], "speed.ml").ok);
  std::shared_ptr<const FunctionProto> program =
      interp.vm().current_program();
  const CodeCache* cache = interp.vm().find_code_cache(program.get());
  ASSERT_NE(cache, nullptr);
  EXPECT_FALSE(cache->quickened);
  EXPECT_EQ(cache->code, program->chunk.code());
  EXPECT_EQ(interp.vm().code_cache_stats().ic_sites, 0u);
}

TEST(VmSpeedTest, CompilerFusesSuperinstructions) {
  auto compiled = compile_source(
      "fn work(a, b)\n"
      "  c = a + b\n"    // local ⊕ local        -> LOC_LOC_BIN
      "  d = a * 2\n"    // local ⊕ literal      -> LOC_CONST_BIN
      "  e = 5\n"        // literal -> local     -> CONST_SET_LOCAL
      "  return c + d + e\n"
      "end\n"
      "x = 1 + 2\n",     // top level: globals, must NOT fuse
      "fuse.ml");
  ASSERT_TRUE(compiled.is_ok());
  const FunctionProto* work = nullptr;
  for (const Value& constant : compiled.value()->chunk.constants()) {
    if (constant.is_closure()) work = constant.as_closure()->proto.get();
  }
  ASSERT_NE(work, nullptr);
  std::string body = work->chunk.disassemble("work");
  EXPECT_NE(body.find("LOC_LOC_BIN"), std::string::npos) << body;
  EXPECT_NE(body.find("LOC_CONST_BIN"), std::string::npos) << body;
  EXPECT_NE(body.find("CONST_SET_LOCAL"), std::string::npos) << body;
  // Top level writes globals; the generic ops must survive there.
  std::string top = compiled.value()->chunk.disassemble("<main>");
  EXPECT_EQ(top.find("LOC_LOC_BIN"), std::string::npos) << top;
  EXPECT_NE(top.find("SET_GLOBAL"), std::string::npos) << top;
}

TEST(VmSpeedTest, FusedOpsPreserveErrorMessages) {
  SpeedOutcome outcome = run_with(
      "fn div(a, b)\n  return a / b\nend\nputs(div(1, 0))\n",
      Vm::DispatchMode::kSwitch, true);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("divided by 0"), std::string::npos)
      << outcome.error;
  outcome = run_with(
      "fn add(a, b)\n  return a + b\nend\nputs(add(1, \"x\"))\n",
      Vm::DispatchMode::kSwitch, true);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("cannot add"), std::string::npos)
      << outcome.error;
}

TEST(VmSpeedTest, UndefinedGlobalStaysAnErrorUnderIc) {
  for (bool quicken : {true, false}) {
    SpeedOutcome outcome =
        run_with("puts(nope + 1)\n", Vm::DispatchMode::kSwitch, quicken);
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("undefined name 'nope'"), std::string::npos)
        << outcome.error;
  }
  // A failed read must not intern the name: a later store-then-read
  // sequence still works and the miss didn't leave a ghost binding.
  SpeedOutcome outcome = run_with(
      "fn poke()\n  return ghost\nend\n"
      "ghost = 7\nputs(poke())\n",
      Vm::DispatchMode::kSwitch, true);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.output, "7\n");
}

// Trace events must be identical with and without quickening, on both
// backends: same count, same line sequence — the §4 exactness
// guarantee the overhaul is not allowed to disturb.
TEST(VmSpeedTest, TraceEventsIdenticalAcrossBackendsAndQuickening) {
  auto lines_for = [](Vm::DispatchMode mode, bool quicken) {
    Interp interp;
    interp.vm().set_output([](std::string_view) {});
    interp.vm().set_dispatch_mode(mode);
    interp.vm().set_quicken_enabled(quicken);
    std::vector<int> lines;
    interp.vm().set_trace_fn(
        [&lines](Vm&, InterpThread&, const TraceEvent& event) {
          if (event.kind == TraceKind::kLine) lines.push_back(event.line);
        });
    interp.vm().set_trace_enabled(true);
    EXPECT_TRUE(interp.run_string(kBattery[0], "speed.ml").ok);
    return lines;
  };
  std::vector<int> reference = lines_for(Vm::DispatchMode::kSwitch, false);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(lines_for(Vm::DispatchMode::kSwitch, true), reference);
  if (Vm::computed_goto_available()) {
    EXPECT_EQ(lines_for(Vm::DispatchMode::kGoto, false), reference);
    EXPECT_EQ(lines_for(Vm::DispatchMode::kGoto, true), reference);
  }
}

// Arming mid-run (from inside the program, via a native) must
// invalidate already-quickened kTraceLineQ sites: every statement
// after the arm fires, none before it do.
TEST(VmSpeedTest, MidRunArmingCatchesQuickenedSites) {
  Interp interp;
  interp.vm().set_output([](std::string_view) {});
  std::vector<int> lines;
  interp.vm().define_native(
      "arm_trace", 0, 0,
      [&lines](Vm& vm, InterpThread&, std::vector<Value>&) -> NativeResult {
        vm.set_trace_fn(
            [&lines](Vm&, InterpThread&, const TraceEvent& event) {
              if (event.kind == TraceKind::kLine) lines.push_back(event.line);
            });
        vm.set_trace_enabled(true);
        return Value();
      });
  interp.vm().define_native(
      "disarm_trace", 0, 0,
      [](Vm& vm, InterpThread&, std::vector<Value>&) -> NativeResult {
        vm.clear_trace_fn();
        return Value();
      });
  ASSERT_TRUE(interp
                  .run_string(
                      "x = 1\n"           // 1: quickens + runs unarmed
                      "y = 2\n"           // 2
                      "arm_trace()\n"     // 3
                      "x = x + y\n"       // 4: must fire
                      "y = y + 1\n"       // 5: must fire
                      "disarm_trace()\n"  // 6
                      "x = 0\n",          // 7: must NOT fire
                      "arm.ml")
                  .ok);
  EXPECT_EQ(lines, (std::vector<int>{4, 5, 6}));
}

// The satellite bugfix: settrace toggled from another OS thread while
// the program runs. Pre-overhaul this was an unsynchronized trace_fn_
// read in the dispatch loop; now the armed decision is one relaxed
// gate load and the fn pointer is an atomic shared_ptr loaded only on
// the armed path. Run under -DDIONEA_SANITIZE=thread this test is the
// TSan witness; without TSan it still shakes out crashes/UAF.
TEST(VmSpeedTest, SettraceToggleRaceWhileRunning) {
  Interp interp;
  interp.vm().set_output([](std::string_view) {});
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> fired{0};
  std::thread toggler([&] {
    while (!done.load(std::memory_order_relaxed)) {
      interp.vm().set_trace_fn(
          [&fired](Vm&, InterpThread&, const TraceEvent&) {
            fired.fetch_add(1, std::memory_order_relaxed);
          });
      interp.vm().set_trace_enabled(true);
      std::this_thread::yield();
      interp.vm().set_trace_enabled(false);
      interp.vm().clear_trace_fn();
    }
  });
  RunResult result = interp.run_string(
      "i = 0\n"
      "while i < 30000\n"
      "  i = i + 1\n"
      "end\n"
      "puts(i)\n",
      "toggle.ml");
  done.store(true, std::memory_order_relaxed);
  toggler.join();
  EXPECT_TRUE(result.ok) << result.error.to_string();
}

TEST(VmSpeedTest, PurgeDropsIdleCachesOnly) {
  Interp interp;
  interp.vm().set_output([](std::string_view) {});
  ASSERT_TRUE(interp.run_string(kBattery[0], "speed.ml").ok);
  CodeCacheStats before = interp.vm().code_cache_stats();
  ASSERT_GE(before.caches, 1u);
  EXPECT_EQ(before.total_in_use, 0u);
  EXPECT_EQ(interp.vm().purge_code_caches(), before.caches);
  EXPECT_EQ(interp.vm().code_cache_stats().caches, 0u);
}

}  // namespace
}  // namespace dionea::vm
