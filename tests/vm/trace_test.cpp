// The trace hook (sys.settrace / set_trace_func analog): event kinds,
// ordering, payloads, and the enable/disable fast path the fork
// handlers rely on.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::vm {
namespace {

struct RecordedEvent {
  TraceKind kind;
  std::int64_t tid;
  int line;
  std::string function;  // copied out of the view
  int depth;
};

// Run a program with a recording trace fn installed.
std::vector<RecordedEvent> trace_run(const std::string& source,
                                     bool enabled = true) {
  vm::Interp interp;
  std::vector<RecordedEvent> events;
  interp.vm().set_output([](std::string_view) {});
  interp.vm().set_trace_fn(
      [&events](Vm&, InterpThread&, const TraceEvent& event) {
        events.push_back(RecordedEvent{event.kind, event.thread_id,
                                       event.line,
                                       std::string(event.function),
                                       event.frame_depth});
      });
  interp.vm().set_trace_enabled(enabled);
  auto result = interp.run_string(source, "trace.ml");
  EXPECT_TRUE(result.ok) << result.error.to_string();
  return events;
}

std::vector<int> lines_of(const std::vector<RecordedEvent>& events) {
  std::vector<int> out;
  for (const RecordedEvent& event : events) {
    if (event.kind == TraceKind::kLine) out.push_back(event.line);
  }
  return out;
}

TEST(TraceTest, LineEventsPerStatement) {
  auto events = trace_run("a = 1\nb = 2\nc = a + b");
  EXPECT_EQ(lines_of(events), (std::vector<int>{1, 2, 3}));
}

TEST(TraceTest, LoopRepeatsLineEvents) {
  auto events = trace_run("i = 0\nwhile i < 3\n  i = i + 1\nend");
  // line 1 once; line 2 (condition) x4 (3 passes + final check is the
  // same statement boundary); line 3 x3.
  std::vector<int> lines = lines_of(events);
  int line3 = 0;
  for (int line : lines) {
    if (line == 3) ++line3;
  }
  EXPECT_EQ(line3, 3);
}

TEST(TraceTest, CallAndReturnBracketFunctionBodies) {
  auto events = trace_run(
      "fn f()\n  return 1\nend\nx = f()");
  // Expect ... kCall(<main>) ... kCall(f) kLine(2) kReturn(f) ...
  std::vector<TraceKind> kinds;
  for (const auto& event : events) kinds.push_back(event.kind);
  int calls = 0;
  int returns = 0;
  bool saw_f_call = false;
  for (const auto& event : events) {
    if (event.kind == TraceKind::kCall) {
      ++calls;
      if (event.function == "f") saw_f_call = true;
    }
    if (event.kind == TraceKind::kReturn) ++returns;
  }
  EXPECT_TRUE(saw_f_call);
  EXPECT_EQ(calls, 2);    // <main> + f
  EXPECT_EQ(returns, 2);  // f + <main>
}

TEST(TraceTest, FrameDepthTracksNesting) {
  auto events = trace_run(
      "fn inner()\n  return 1\nend\n"
      "fn outer()\n  return inner()\nend\n"
      "outer()");
  int max_depth = 0;
  for (const auto& event : events) {
    if (event.kind == TraceKind::kLine) {
      max_depth = std::max(max_depth, event.depth);
    }
  }
  EXPECT_EQ(max_depth, 3);  // <main> -> outer -> inner
}

TEST(TraceTest, ThreadStartEndEvents) {
  auto events = trace_run(
      "t = spawn(fn() return 1 end)\njoin(t)");
  int starts = 0;
  int ends = 0;
  std::int64_t spawned_tid = 0;
  for (const auto& event : events) {
    if (event.kind == TraceKind::kThreadStart) {
      ++starts;
      if (event.tid != 1) spawned_tid = event.tid;
    }
    if (event.kind == TraceKind::kThreadEnd) ++ends;
  }
  EXPECT_EQ(starts, 2);  // main + spawned
  EXPECT_EQ(ends, 2);
  EXPECT_GT(spawned_tid, 1);
}

TEST(TraceTest, DisabledFlagSuppressesAllEvents) {
  auto events = trace_run("a = 1\nb = 2", /*enabled=*/false);
  EXPECT_TRUE(events.empty());
}

TEST(TraceTest, ToggleMidRunStopsEvents) {
  vm::Interp interp;
  int events_after_disable = 0;
  int total = 0;
  interp.vm().set_output([](std::string_view) {});
  interp.vm().set_trace_fn([&](Vm& vm, InterpThread&, const TraceEvent&) {
    ++total;
    if (total == 3) {
      vm.set_trace_enabled(false);  // fork handler A's move
    } else if (!vm.trace_enabled()) {
      ++events_after_disable;
    }
  });
  interp.vm().set_trace_enabled(true);
  auto result = interp.run_string("a = 1\nb = 2\nc = 3\nd = 4\ne = 5",
                                  "toggle.ml");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(events_after_disable, 0);
  EXPECT_LT(total, 8);  // far fewer than full tracing would produce
}

TEST(TraceTest, EventsCarryFileAndFunction) {
  vm::Interp interp;
  bool saw_main_line = false;
  interp.vm().set_output([](std::string_view) {});
  interp.vm().set_trace_fn(
      [&](Vm&, InterpThread&, const TraceEvent& event) {
        if (event.kind == TraceKind::kLine && event.function == "<main>") {
          EXPECT_EQ(std::string(event.file), "named.ml");
          saw_main_line = true;
        }
      });
  interp.vm().set_trace_enabled(true);
  ASSERT_TRUE(interp.run_string("x = 1", "named.ml").ok);
  EXPECT_TRUE(saw_main_line);
}

TEST(TraceTest, TraceFnSeesConsistentLocals) {
  // At a line event the statement boundary guarantees locals are
  // settled — the invariant debugger inspection depends on.
  vm::Interp interp;
  std::vector<std::string> observed;
  interp.vm().set_output([](std::string_view) {});
  interp.vm().set_trace_fn(
      [&](Vm&, InterpThread& th, const TraceEvent& event) {
        if (event.kind != TraceKind::kLine || event.function != "f") return;
        const auto& frame = th.frames.back();
        const auto& names = frame.closure->proto->local_names;
        for (size_t i = 0; i < names.size(); ++i) {
          observed.push_back(names[i] + "=" +
                             th.stack[frame.base + i].repr());
        }
      });
  interp.vm().set_trace_enabled(true);
  ASSERT_TRUE(interp.run_string(
      "fn f(a)\n  b = a * 2\n  return b\nend\nf(21)", "locals.ml").ok);
  // First line event in f: a=21, b=nil; second: a=21, b=42.
  ASSERT_EQ(observed.size(), 4u);
  EXPECT_EQ(observed[0], "a=21");
  EXPECT_EQ(observed[1], "b=nil");
  EXPECT_EQ(observed[2], "a=21");
  EXPECT_EQ(observed[3], "b=42");
}

TEST(TraceTest, StatementCountMatchesLineEvents) {
  vm::Interp interp;
  int line_events = 0;
  interp.vm().set_output([](std::string_view) {});
  interp.vm().set_trace_fn(
      [&](Vm&, InterpThread&, const TraceEvent& event) {
        if (event.kind == TraceKind::kLine) ++line_events;
      });
  interp.vm().set_trace_enabled(true);
  ASSERT_TRUE(interp.run_string("a = 1\nb = 2\nc = 3", "count.ml").ok);
  EXPECT_EQ(interp.vm().statements_executed(),
            static_cast<std::uint64_t>(line_events));
}

}  // namespace
}  // namespace dionea::vm
