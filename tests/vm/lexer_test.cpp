#include "vm/lexer.hpp"

#include <gtest/gtest.h>

namespace dionea::vm {
namespace {

std::vector<TokenKind> kinds_of(std::string_view source) {
  std::vector<TokenKind> out;
  for (const Token& token : Lexer::tokenize(source)) {
    out.push_back(token.kind);
  }
  return out;
}

TEST(LexerTest, EmptySourceIsJustEof) {
  EXPECT_EQ(kinds_of(""), (std::vector<TokenKind>{TokenKind::kEof}));
  EXPECT_EQ(kinds_of("   \n\n  \n"), (std::vector<TokenKind>{TokenKind::kEof}));
  EXPECT_EQ(kinds_of("# only a comment\n"),
            (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = Lexer::tokenize("42 3.5 0 100.25");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_EQ(tokens[1].text, "3.5");
  EXPECT_EQ(tokens[2].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[3].kind, TokenKind::kFloat);
}

TEST(LexerTest, DotAfterIntWithoutDigitIsMethodCall) {
  // `5.foo` lexes as int, dot, name — not a malformed float.
  EXPECT_EQ(kinds_of("5.foo"),
            (std::vector<TokenKind>{TokenKind::kInt, TokenKind::kDot,
                                    TokenKind::kName, TokenKind::kEof}));
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens =
      Lexer::tokenize(R"("plain" "a\nb" "q\"q" "back\\slash" "tab\t")");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "plain");
  EXPECT_EQ(tokens[1].text, "a\nb");
  EXPECT_EQ(tokens[2].text, "q\"q");
  EXPECT_EQ(tokens[3].text, "back\\slash");
  EXPECT_EQ(tokens[4].text, "tab\t");
}

TEST(LexerTest, UnterminatedStringIsError) {
  auto tokens = Lexer::tokenize("\"oops");
  EXPECT_EQ(tokens.back().kind, TokenKind::kError);
  auto newline = Lexer::tokenize("\"line\nbreak\"");
  EXPECT_EQ(newline.back().kind, TokenKind::kError);
  auto bad_escape = Lexer::tokenize(R"("\q")");
  EXPECT_EQ(bad_escape.back().kind, TokenKind::kError);
}

TEST(LexerTest, KeywordsVsIdentifiers) {
  auto tokens = Lexer::tokenize("if iffy end ender fn fnord not knot");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIf);
  EXPECT_EQ(tokens[1].kind, TokenKind::kName);
  EXPECT_EQ(tokens[2].kind, TokenKind::kEnd);
  EXPECT_EQ(tokens[3].kind, TokenKind::kName);
  EXPECT_EQ(tokens[4].kind, TokenKind::kFn);
  EXPECT_EQ(tokens[5].kind, TokenKind::kName);
  EXPECT_EQ(tokens[6].kind, TokenKind::kNot);
  EXPECT_EQ(tokens[7].kind, TokenKind::kName);
}

TEST(LexerTest, OperatorsSingleAndDouble) {
  EXPECT_EQ(kinds_of("= == != < <= > >= + - * / %"),
            (std::vector<TokenKind>{
                TokenKind::kAssign, TokenKind::kEq, TokenKind::kNe,
                TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                TokenKind::kGe, TokenKind::kPlus, TokenKind::kMinus,
                TokenKind::kStar, TokenKind::kSlash, TokenKind::kPercent,
                TokenKind::kEof}));
}

TEST(LexerTest, NewlinesCollapse) {
  EXPECT_EQ(kinds_of("a\n\n\nb"),
            (std::vector<TokenKind>{TokenKind::kName, TokenKind::kNewline,
                                    TokenKind::kName, TokenKind::kEof}));
}

TEST(LexerTest, CommentsEndAtNewline) {
  EXPECT_EQ(kinds_of("x # comment == junk\ny"),
            (std::vector<TokenKind>{TokenKind::kName, TokenKind::kNewline,
                                    TokenKind::kName, TokenKind::kEof}));
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = Lexer::tokenize("one\n  two");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  // tokens[1] is the newline; tokens[2] is `two`.
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(LexerTest, UnknownCharacterIsError) {
  auto tokens = Lexer::tokenize("a @ b");
  EXPECT_EQ(tokens[1].kind, TokenKind::kError);
  auto bang = Lexer::tokenize("!");
  EXPECT_EQ(bang[0].kind, TokenKind::kError);
  auto bang_eq = Lexer::tokenize("a != b");
  EXPECT_EQ(bang_eq[1].kind, TokenKind::kNe);
}

TEST(LexerTest, UnderscoreIdentifiers) {
  auto tokens = Lexer::tokenize("_x x_y _0");
  EXPECT_EQ(tokens[0].text, "_x");
  EXPECT_EQ(tokens[1].text, "x_y");
  EXPECT_EQ(tokens[2].text, "_0");
}

TEST(LexerTest, TokenKindNamesExist) {
  EXPECT_STREQ(token_kind_name(TokenKind::kFn), "fn");
  EXPECT_STREQ(token_kind_name(TokenKind::kNewline), "newline");
  EXPECT_STREQ(token_kind_name(TokenKind::kEq), "==");
}

}  // namespace
}  // namespace dionea::vm
