// VM sync objects: mutex, queue, condition variable — both through
// MiniLang programs and through the C++ API directly.
#include <gtest/gtest.h>

#include "testutil.hpp"
#include "vm/sync.hpp"

namespace dionea::vm {
namespace {

using test::expect_ml_error;
using test::expect_ml_output;
using test::run_ml;

// ---- MiniLang-level behaviour ----

TEST(MutexTest, LockUnlockBasics) {
  expect_ml_output(
      "m = mutex()\n"
      "puts(locked(m))\n"
      "lock(m)\n"
      "puts(locked(m))\n"
      "unlock(m)\n"
      "puts(locked(m))",
      "false\ntrue\nfalse\n");
}

TEST(MutexTest, RecursiveLockIsError) {
  // Ruby: "deadlock; recursive locking (ThreadError)".
  expect_ml_error("m = mutex()\nlock(m)\nlock(m)", "recursive locking");
}

TEST(MutexTest, UnlockNotOwnedIsError) {
  expect_ml_error("m = mutex()\nunlock(m)", "not owned");
  const char* other_thread =
      "m = mutex()\n"
      "lock(m)\n"
      "t = spawn(fn() unlock(m) end)\n"
      "join(t)";
  test::RunOutcome outcome = run_ml(other_thread);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error_message.find("not owned"), std::string::npos);
}

TEST(MutexTest, TryLockReflectsState) {
  expect_ml_output(
      "m = mutex()\n"
      "puts(try_lock(m))\n"
      "puts(try_lock(m))\n"  // recursive try_lock fails (owner != 0)
      "unlock(m)\n"
      "puts(try_lock(m))",
      "true\nfalse\ntrue\n");
}

TEST(MutexTest, MutualExclusionUnderContention) {
  // Without the mutex the read-modify-write races; with it, the count
  // is exact.
  const char* program =
      "m = mutex()\n"
      "box = [0]\n"
      "fn bump()\n"
      "  for i in 100\n"
      "    lock(m)\n"
      "    box[0] = box[0] + 1\n"
      "    unlock(m)\n"
      "  end\n"
      "  return nil\n"
      "end\n"
      "threads = []\n"
      "for i in 4\n"
      "  push(threads, spawn(bump))\n"
      "end\n"
      "for t in threads\n"
      "  join(t)\n"
      "end\n"
      "puts(box[0])";
  expect_ml_output(program, "400\n");
}

TEST(MutexTest, SynchronizeRunsBlockAndUnlocksOnError) {
  expect_ml_output(
      "m = mutex()\n"
      "v = synchronize(m, fn() return 7 end)\n"
      "puts(v)\nputs(locked(m))",
      "7\nfalse\n");
  // Error inside the block still releases the mutex.
  const char* error_block =
      "m = mutex()\n"
      "t = spawn(fn()\n"
      "  synchronize(m, fn() return 1 / 0 end)\n"
      "end)\n"
      "sleep(0.1)\n"
      "puts(locked(m))";
  expect_ml_output(error_block, "false\n");
}

TEST(QueueTest, FifoOrder) {
  expect_ml_output(
      "q = queue()\n"
      "q.push(1)\nq.push(2)\nq.push(3)\n"
      "puts(q.pop())\nputs(q.pop())\nputs(q.pop())",
      "1\n2\n3\n");
}

TEST(QueueTest, LenAndTryPop) {
  expect_ml_output(
      "q = queue()\n"
      "puts(len(q))\n"
      "puts(repr(try_pop(q)))\n"
      "q.push(9)\n"
      "puts(len(q))\n"
      "puts(try_pop(q))\n"
      "puts(len(q))",
      "0\nnil\n1\n9\n0\n");
}

TEST(QueueTest, PopBlocksUntilPush) {
  const char* program =
      "q = queue()\n"
      "t = spawn(fn()\n"
      "  sleep(0.1)\n"
      "  q.push(\"late\")\n"
      "end)\n"
      "a = clock()\n"
      "v = q.pop()\n"
      "assert(clock() - a >= 0.05)\n"
      "join(t)\n"
      "puts(v)";
  expect_ml_output(program, "late\n");
}

TEST(QueueTest, NumWaitingTracksBlockedPoppers) {
  const char* program =
      "q = queue()\n"
      "spawn(fn() q.push(q)\n  sleep(10)\nend)\n"  // keep a thread alive
      "t = spawn(fn() return nil end)\n"
      "join(t)\n"
      "puts(num_waiting(q) >= 0)";
  test::RunOutcome outcome = run_ml(program);
  EXPECT_TRUE(outcome.ok) << outcome.error_message;
}

TEST(CondTest, SignalWakesOneWaiter) {
  const char* program =
      "m = mutex()\n"
      "c = cond()\n"
      "box = [0]\n"
      "t = spawn(fn()\n"
      "  lock(m)\n"
      "  while box[0] == 0\n"
      "    wait(c, m)\n"
      "  end\n"
      "  unlock(m)\n"
      "  return \"woke\"\n"
      "end)\n"
      "sleep(0.05)\n"
      "lock(m)\n"
      "box[0] = 1\n"
      "unlock(m)\n"
      "signal(c)\n"
      "puts(join(t))";
  expect_ml_output(program, "woke\n");
}

TEST(CondTest, BroadcastWakesAllWaiters) {
  const char* program =
      "m = mutex()\n"
      "c = cond()\n"
      "gate = [false]\n"
      "done = queue()\n"
      "fn waiter()\n"
      "  lock(m)\n"
      "  while not gate[0]\n"
      "    wait(c, m)\n"
      "  end\n"
      "  unlock(m)\n"
      "  done.push(1)\n"
      "  return nil\n"
      "end\n"
      "for i in 3\n"
      "  spawn(waiter)\n"
      "end\n"
      "sleep(0.1)\n"
      "lock(m)\n"
      "gate[0] = true\n"
      "unlock(m)\n"
      "broadcast(c)\n"
      "total = 0\n"
      "for i in 3\n"
      "  total = total + done.pop()\n"
      "end\n"
      "puts(total)";
  expect_ml_output(program, "3\n");
}

TEST(CondTest, WaitWithoutMutexOwnershipIsError) {
  expect_ml_error("m = mutex()\nc = cond()\nwait(c, m)", "not owned");
}

// ---- C++-level API ----

TEST(SyncApiTest, MutexOwnerTracking) {
  VmMutex mutex;
  EXPECT_FALSE(mutex.locked());
  EXPECT_TRUE(mutex.try_lock(7));
  EXPECT_TRUE(mutex.locked());
  EXPECT_EQ(mutex.owner_tid(), 7);
  EXPECT_FALSE(mutex.try_lock(8));
  EXPECT_EQ(mutex.unlock(8), WaitOutcome::kNotOwner);
  EXPECT_EQ(mutex.unlock(7), WaitOutcome::kOk);
  EXPECT_FALSE(mutex.locked());
}

TEST(SyncApiTest, QueuePushPopSizes) {
  VmQueue queue;
  EXPECT_EQ(queue.size(), 0u);
  queue.push(Value(1));
  queue.push(Value::str("x"));
  EXPECT_EQ(queue.size(), 2u);
  Value out;
  EXPECT_TRUE(queue.try_pop(&out));
  EXPECT_EQ(out.as_int(), 1);
  EXPECT_TRUE(queue.try_pop(&out));
  EXPECT_EQ(out.as_str(), "x");
  EXPECT_FALSE(queue.try_pop(&out));
}

TEST(SyncApiTest, MutexForkReinitClearsForeignOwner) {
  VmMutex mutex;
  ASSERT_TRUE(mutex.try_lock(42));  // "another thread" owns it
  mutex.lock_for_fork();
  mutex.reinit_in_child(/*surviving_tid=*/1);
  EXPECT_FALSE(mutex.locked());  // foreign owner cleared
  EXPECT_TRUE(mutex.try_lock(1));
}

TEST(SyncApiTest, MutexForkReinitKeepsSurvivorOwner) {
  VmMutex mutex;
  ASSERT_TRUE(mutex.try_lock(1));
  mutex.lock_for_fork();
  mutex.reinit_in_child(/*surviving_tid=*/1);
  EXPECT_TRUE(mutex.locked());
  EXPECT_EQ(mutex.owner_tid(), 1);
  EXPECT_EQ(mutex.unlock(1), WaitOutcome::kOk);
}

TEST(SyncApiTest, QueueForkReinitKeepsItemsDropsWaiters) {
  VmQueue queue;
  queue.push(Value(10));
  queue.push(Value(20));
  queue.lock_for_fork();
  queue.reinit_in_child(1);
  // Items survive the fork (heap copy), waiting count resets.
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.num_waiting(), 0);
  Value out;
  EXPECT_TRUE(queue.try_pop(&out));
  EXPECT_EQ(out.as_int(), 10);
}

}  // namespace
}  // namespace dionea::vm
