// Runtime-error semantics: messages, tracebacks (the Listing 6 shape),
// and clean VM state after failure.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::vm {
namespace {

using test::expect_ml_error;
using test::run_ml;

struct ErrorCase {
  const char* program;
  const char* needle;
};

class RuntimeErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(RuntimeErrors, ReportsMessage) {
  expect_ml_error(GetParam().program, GetParam().needle);
}

INSTANTIATE_TEST_SUITE_P(TypeErrors, RuntimeErrors, ::testing::Values(
    ErrorCase{"x = 1 + \"s\"", "cannot add int and str"},
    ErrorCase{"x = \"s\" + 1", "cannot add str and int"},
    ErrorCase{"x = [] + \"s\"", "cannot add list and str"},
    ErrorCase{"x = nil * 2", "numeric operator"},
    ErrorCase{"x = \"a\" < 1", "cannot compare str with int"},
    ErrorCase{"x = -\"s\"", "cannot negate str"},
    ErrorCase{"x = 1.5 % 2", "'%' requires integers"},
    ErrorCase{"x = nil[0]", "not indexable"},
    ErrorCase{"x = 5(1)", "int is not callable"},
    ErrorCase{"x = \"s\"(1)", "str is not callable"},
    ErrorCase{"for x in nil\nend", "nil is not iterable"},
    ErrorCase{"for x in true\nend", "bool is not iterable"}));

INSTANTIATE_TEST_SUITE_P(NumericErrors, RuntimeErrors, ::testing::Values(
    ErrorCase{"x = 1 / 0", "divided by 0"},
    ErrorCase{"x = 1 % 0", "divided by 0"},
    ErrorCase{"x = 9223372036854775807 + 1", "integer overflow"},
    ErrorCase{"x = 9223372036854775807 * 2", "integer overflow"},
    ErrorCase{"x = 0 - 9223372036854775807 - 2", "integer overflow"}));

INSTANTIATE_TEST_SUITE_P(NameAndIndexErrors, RuntimeErrors, ::testing::Values(
    ErrorCase{"puts(never_defined)", "undefined name 'never_defined'"},
    ErrorCase{"x = [1][5]", "out of range"},
    ErrorCase{"x = [1][-2]", "out of range"},
    ErrorCase{"x = \"ab\"[9]", "out of range"},
    ErrorCase{"l = [1]\nl[7] = 2", "out of range"},
    ErrorCase{"m = {}\nm[1] = 2", "map key must be a string"},
    ErrorCase{"x = [1][\"k\"]", "list index must be an int"},
    ErrorCase{"x = {\"a\": 1}[0]", "map key must be a string"}));

INSTANTIATE_TEST_SUITE_P(CallErrors, RuntimeErrors, ::testing::Values(
    ErrorCase{"fn f(a)\n  return a\nend\nf()", "wrong number of arguments"},
    ErrorCase{"fn f(a)\n  return a\nend\nf(1, 2)",
              "wrong number of arguments"},
    ErrorCase{"f = fn(a, b) return a end\nf(1)", "given 1, expected 2"}));

TEST(ErrorTracebackTest, RubyStyleShape) {
  test::RunOutcome outcome = run_ml(
      "fn inner()\n"      // line 1
      "  x = 1 / 0\n"     // line 2 <- error here
      "end\n"
      "fn outer()\n"
      "  inner()\n"       // line 5
      "end\n"
      "outer()",          // line 7
      "trace.ml");
  ASSERT_FALSE(outcome.ok);
  // Innermost frame first, like Listing 6.
  size_t inner_pos = outcome.error_message.find("trace.ml:2:in `inner'");
  size_t outer_pos = outcome.error_message.find("trace.ml:5:in `outer'");
  size_t main_pos = outcome.error_message.find("trace.ml:7:in `<main>'");
  EXPECT_NE(inner_pos, std::string::npos) << outcome.error_message;
  EXPECT_NE(outer_pos, std::string::npos);
  EXPECT_NE(main_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
  EXPECT_LT(outer_pos, main_pos);
}

TEST(ErrorTracebackTest, LambdaFramesNamed) {
  test::RunOutcome outcome = run_ml("f = fn() return 1 / 0 end\nf()");
  ASSERT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error_message.find("`<lambda>'"), std::string::npos);
}

TEST(ErrorTracebackTest, ErrorInNativeGetsLocation) {
  test::RunOutcome outcome = run_ml("x = 1\nlen(5)", "native.ml");
  ASSERT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error_message.find("native.ml:2"), std::string::npos);
}

TEST(ErrorRecoveryTest, OutputBeforeErrorIsKept) {
  test::RunOutcome outcome = run_ml("puts(\"first\")\nboom()");
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.output, "first\n");
}

TEST(ErrorRecoveryTest, ErrorInSpawnedThreadSurfacesOnJoin) {
  test::RunOutcome outcome = run_ml(
      "t = spawn(fn() return 1 / 0 end)\njoin(t)");
  ASSERT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error_message.find("divided by 0"), std::string::npos);
}

TEST(ErrorRecoveryTest, ErrorInSpawnedThreadIgnoredWithoutJoin) {
  // Ruby: an unjoined thread's exception dies with the thread.
  test::RunOutcome outcome = run_ml(
      "t = spawn(fn() return 1 / 0 end)\nsleep(0.1)\nputs(\"main ok\")");
  EXPECT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "main ok\n");
}

TEST(ErrorRecoveryTest, CompileErrorReportedNotRun) {
  test::RunOutcome outcome = run_ml("fn broken(\nputs(\"nope\")");
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.output.empty());
  EXPECT_NE(outcome.error_message.find("parse error"), std::string::npos);
}

}  // namespace
}  // namespace dionea::vm
