#include "mapreduce/corpus.hpp"

#include <gtest/gtest.h>

#include "support/strings.hpp"
#include "support/temp_file.hpp"

namespace dionea::mapreduce {
namespace {

TEST(ReservedWordsTest, MatchesMiniLangKeywords) {
  EXPECT_TRUE(is_reserved_word("fn"));
  EXPECT_TRUE(is_reserved_word("while"));
  EXPECT_TRUE(is_reserved_word("end"));
  EXPECT_FALSE(is_reserved_word("banana"));
  EXPECT_FALSE(is_reserved_word(""));
  EXPECT_GE(reserved_words().size(), 15u);
}

TEST(CorpusTest, GeneratesRequestedShape) {
  auto tmp = TempDir::create("corpus-test");
  ASSERT_TRUE(tmp.is_ok());
  CorpusSpec spec;
  spec.name = "tiny";
  spec.file_count = 10;
  spec.target_bytes_per_file = 2048;
  spec.directory_fanout = 4;
  auto corpus = Corpus::generate(spec, tmp.value().file("c"));
  ASSERT_TRUE(corpus.is_ok()) << corpus.error().to_string();
  EXPECT_EQ(corpus.value().files().size(), 10u);
  // Every file exists, is non-empty, roughly the requested size.
  for (const std::string& path : corpus.value().files()) {
    auto contents = read_file(path);
    ASSERT_TRUE(contents.is_ok()) << path;
    EXPECT_GE(contents.value().size(), 2048u);
    EXPECT_LT(contents.value().size(), 2048u + 256u);
  }
  EXPECT_GE(corpus.value().bytes_written(), 10 * 2048);
  // Fanout: 10 files over fanout 4 -> 3 subdirectories.
  EXPECT_TRUE(file_exists(tmp.value().file("c/src000")));
  EXPECT_TRUE(file_exists(tmp.value().file("c/src002")));
  EXPECT_FALSE(file_exists(tmp.value().file("c/src003")));
}

TEST(CorpusTest, DeterministicForSeed) {
  auto tmp = TempDir::create("corpus-test");
  ASSERT_TRUE(tmp.is_ok());
  CorpusSpec spec;
  spec.file_count = 3;
  spec.target_bytes_per_file = 1024;
  auto a = Corpus::generate(spec, tmp.value().file("a"));
  auto b = Corpus::generate(spec, tmp.value().file("b"));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  for (size_t i = 0; i < a.value().files().size(); ++i) {
    EXPECT_EQ(read_file(a.value().files()[i]).value(),
              read_file(b.value().files()[i]).value());
  }
  // Different seed -> different text.
  spec.seed = 999;
  auto c = Corpus::generate(spec, tmp.value().file("c"));
  ASSERT_TRUE(c.is_ok());
  EXPECT_NE(read_file(a.value().files()[0]).value(),
            read_file(c.value().files()[0]).value());
}

TEST(CorpusTest, ContentLooksLikeCode) {
  auto tmp = TempDir::create("corpus-test");
  ASSERT_TRUE(tmp.is_ok());
  CorpusSpec spec;
  spec.file_count = 2;
  spec.target_bytes_per_file = 8192;
  auto corpus = Corpus::generate(spec, tmp.value().file("c"));
  ASSERT_TRUE(corpus.is_ok());
  auto text = read_file(corpus.value().files()[0]);
  ASSERT_TRUE(text.is_ok());
  int words = 0;
  int reserved = 0;
  int numbers = 0;
  for (const std::string& token :
       strings::split_whitespace(text.value())) {
    ++words;
    if (is_reserved_word(token)) ++reserved;
    bool numeric = !token.empty() &&
                   token.find_first_not_of("0123456789") == std::string::npos;
    if (numeric) ++numbers;
  }
  EXPECT_GT(words, 500);
  // ~15% reserved, ~10% numbers (loose bounds).
  EXPECT_GT(reserved, words / 20);
  EXPECT_GT(numbers, words / 40);
  // Lines stay short (the generator wraps at ~72 columns).
  for (const std::string& line : strings::split(text.value(), '\n')) {
    EXPECT_LT(line.size(), 100u);
  }
}

TEST(CorpusTest, PresetsScaleUpward) {
  CorpusSpec small = dionea_trunk_spec();
  CorpusSpec medium = rust_master_spec();
  CorpusSpec large = linux_3_18_spec();
  EXPECT_LT(small.total_bytes(), medium.total_bytes());
  EXPECT_LT(medium.total_bytes(), large.total_bytes());
  EXPECT_NE(small.name, medium.name);
}

TEST(CorpusTest, ScaledSpecMultipliesFiles) {
  CorpusSpec base = dionea_trunk_spec();
  CorpusSpec doubled = scaled_spec(base, 2.0);
  EXPECT_EQ(doubled.file_count, base.file_count * 2);
  CorpusSpec tiny = scaled_spec(base, 0.001);
  EXPECT_EQ(tiny.file_count, 1);  // floor of 1
  EXPECT_NE(doubled.name, base.name);
}

}  // namespace
}  // namespace dionea::mapreduce
