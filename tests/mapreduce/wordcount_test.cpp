// The §7 workload: three implementations (native, mp::Pool, MiniLang
// multi-process) must agree exactly.
#include <gtest/gtest.h>

#include "mapreduce/wordcount.hpp"
#include "mp/vm_bindings.hpp"
#include "testutil.hpp"
#include "vm/interp.hpp"

namespace dionea::mapreduce {
namespace {

TEST(CountWordsTest, PaperFilterRules) {
  // "maps words that contain only letters and are not reserved words"
  WordCounts counts = count_words(
      "Foo foo FOO bar2 if while end zig zig zig 42 x_y !");
  EXPECT_EQ(counts["foo"], 3);      // case-folded
  EXPECT_EQ(counts["zig"], 3);
  EXPECT_EQ(counts.count("bar2"), 0u);   // digits
  EXPECT_EQ(counts.count("if"), 0u);     // reserved
  EXPECT_EQ(counts.count("while"), 0u);  // reserved
  EXPECT_EQ(counts.count("x_y"), 0u);    // underscore
  EXPECT_EQ(counts.count("42"), 0u);
  EXPECT_EQ(counts.size(), 2u);
}

TEST(CountWordsTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(count_words("").empty());
  EXPECT_TRUE(count_words("  \n\t ").empty());
  EXPECT_TRUE(count_words("123 456 ++ --").empty());
}

TEST(MergeCountsTest, Accumulates) {
  WordCounts total{{"a", 1}, {"b", 2}};
  merge_counts(&total, WordCounts{{"b", 3}, {"c", 4}});
  EXPECT_EQ(total["a"], 1);
  EXPECT_EQ(total["b"], 5);
  EXPECT_EQ(total["c"], 4);
}

TEST(DigestTest, DistinguishesCounts) {
  WordCounts a{{"x", 1}};
  WordCounts b{{"x", 2}};
  WordCounts c{{"y", 1}};
  EXPECT_EQ(digest(a), digest(a));
  EXPECT_NE(digest(a).fnv, digest(b).fnv);
  EXPECT_NE(digest(a).fnv, digest(c).fnv);
  EXPECT_EQ(digest(a).unique, 1);
  EXPECT_EQ(digest(b).total, 2);
}

class WordcountAgreement : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tmp = TempDir::create("wc-test");
    ASSERT_TRUE(tmp.is_ok());
    tmp_ = std::make_unique<TempDir>(std::move(tmp).value());
    CorpusSpec spec = dionea_trunk_spec();
    spec.file_count = 12;  // keep the test fast
    auto corpus = Corpus::generate(spec, tmp_->file("corpus"));
    ASSERT_TRUE(corpus.is_ok());
    corpus_ = std::make_unique<Corpus>(std::move(corpus).value());
    auto native = count_corpus(*corpus_);
    ASSERT_TRUE(native.is_ok());
    native_ = native.value();
  }

  std::unique_ptr<TempDir> tmp_;
  std::unique_ptr<Corpus> corpus_;
  WordCounts native_;
};

TEST_F(WordcountAgreement, PoolMatchesNative) {
  auto pooled = pool_count_corpus(*corpus_, 3);
  ASSERT_TRUE(pooled.is_ok()) << pooled.error().to_string();
  EXPECT_EQ(digest(pooled.value()), digest(native_));
}

TEST_F(WordcountAgreement, PoolWorkerCountIrrelevantToResult) {
  auto one = pool_count_corpus(*corpus_, 1);
  auto many = pool_count_corpus(*corpus_, 6);
  ASSERT_TRUE(one.is_ok());
  ASSERT_TRUE(many.is_ok());
  EXPECT_EQ(digest(one.value()), digest(many.value()));
}

TEST_F(WordcountAgreement, MiniLangMultiProcessMatchesNative) {
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  std::string output;
  interp.vm().set_output([&](std::string_view s) { output.append(s); });
  auto result = interp.run_string(wordcount_program(corpus_->root(), 3),
                                  "wordcount.ml");
  if (interp.vm().is_forked_child()) ::_exit(0);
  ASSERT_TRUE(result.ok) << result.error.to_string();
  CountsDigest d = digest(native_);
  EXPECT_EQ(output, "unique=" + std::to_string(d.unique) +
                        " total=" + std::to_string(d.total) + "\n");
}

TEST_F(WordcountAgreement, MiniLangSerialMatchesNative) {
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  std::string output;
  interp.vm().set_output([&](std::string_view s) { output.append(s); });
  auto result = interp.run_string(wordcount_program_serial(corpus_->root()),
                                  "wordcount_serial.ml");
  ASSERT_TRUE(result.ok) << result.error.to_string();
  CountsDigest d = digest(native_);
  EXPECT_EQ(output, "unique=" + std::to_string(d.unique) +
                        " total=" + std::to_string(d.total) + "\n");
}

TEST_F(WordcountAgreement, ProgramTextEmbedsParameters) {
  std::string program = wordcount_program("/some/root", 7);
  EXPECT_NE(program.find("\"/some/root\""), std::string::npos);
  EXPECT_NE(program.find("nworkers = 7"), std::string::npos);
  // Reserved words map present (the paper's filter).
  EXPECT_NE(program.find("\"while\": true"), std::string::npos);
}

}  // namespace
}  // namespace dionea::mapreduce
