// Drives the shipped `dioneas` (server) and `dioneac` (console client)
// binaries as real subprocesses — the §6.1 usage flow:
//   "we start Dionea server issuing `dioneas path/to/program` ...
//    once started it waits until the client connects to it."
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "client/client.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"

#ifndef DIONEA_DIONEAS_PATH
#define DIONEA_DIONEAS_PATH ""
#endif
#ifndef DIONEA_DIONEAC_PATH
#define DIONEA_DIONEAC_PATH ""
#endif

namespace dionea {
namespace {

constexpr const char* kProgram =
    "x = 1\n"
    "y = x + 1\n"
    "pid = fork(fn()\n"
    "  z = 99\n"
    "end)\n"
    "st = waitpid(pid)\n"
    "puts(\"done \" + to_s(x + y + st))\n";

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(DIONEA_DIONEAS_PATH).empty() ||
        !file_exists(DIONEA_DIONEAS_PATH)) {
      GTEST_SKIP() << "dioneas binary not built";
    }
    auto tmp = TempDir::create("cli-test");
    ASSERT_TRUE(tmp.is_ok());
    tmp_ = std::make_unique<TempDir>(std::move(tmp).value());
    ASSERT_TRUE(write_file(tmp_->file("prog.ml"), kProgram).is_ok());
  }

  // Launch dioneas with stdout+stderr captured to a file.
  pid_t launch_server(const std::vector<std::string>& extra_args) {
    std::fflush(nullptr);
    pid_t pid = ::fork();
    if (pid == 0) {
      int out = ::open(tmp_->file("server.log").c_str(),
                       O_WRONLY | O_CREAT | O_TRUNC, 0644);
      ::dup2(out, 1);
      ::dup2(out, 2);
      std::vector<std::string> args = {DIONEA_DIONEAS_PATH, "--port-file",
                                       tmp_->file("ports")};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      args.push_back(tmp_->file("prog.ml"));
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(DIONEA_DIONEAS_PATH, argv.data());
      ::_exit(127);
    }
    return pid;
  }

  std::string server_log() {
    return read_file(tmp_->file("server.log")).value_or("");
  }

  std::unique_ptr<TempDir> tmp_;
};

TEST_F(CliTest, RunModeExecutesToCompletion) {
  pid_t pid = launch_server({"--run"});
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(server_log().find("done 3"), std::string::npos) << server_log();
}

TEST_F(CliTest, WaitsForClientThenObeysIt) {
  pid_t pid = launch_server({});  // default: waits for a client
  ASSERT_GT(pid, 0);

  // Attach with the library client (dioneac uses the same path).
  std::unique_ptr<client::Client> cc =
      client::Client::discover(tmp_->file("ports"));
  Stopwatch watch;
  while (cc->session_count() == 0 && watch.elapsed_seconds() < 5.0) {
    (void)cc->refresh(2000);
    sleep_for_millis(20);
  }
  ASSERT_EQ(cc->session_count(), 1u);
  client::Session* session = cc->session(cc->handle_for_pid(pid));
  ASSERT_NE(session, nullptr);

  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());
  EXPECT_EQ(entry.value().line, 1);
  // While parked, the program has produced nothing.
  EXPECT_EQ(server_log().find("done"), std::string::npos);

  // Inspect and step, then let it run.
  ASSERT_TRUE(session->step(entry.value().tid).is_ok());
  auto stepped = session->wait_stopped(5000);
  ASSERT_TRUE(stepped.is_ok());
  EXPECT_EQ(stepped.value().line, 2);
  auto value = session->eval(stepped.value().tid, "x + 41");
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), "42");
  ASSERT_TRUE(session->cont(stepped.value().tid).is_ok());

  // The forked child publishes its own record; adopt and release it.
  auto child = cc->attach_any(10'000);
  if (child.is_ok()) {
    client::Session* child_session = cc->session(child.value());
    auto stop = child_session->wait_stopped(2000);
    if (stop.is_ok()) {
      (void)child_session->cont(stop.value().tid);
    }
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(server_log().find("done 3"), std::string::npos) << server_log();
}

TEST_F(CliTest, DioneacBatchSession) {
  if (std::string(DIONEA_DIONEAC_PATH).empty() ||
      !file_exists(DIONEA_DIONEAC_PATH)) {
    GTEST_SKIP() << "dioneac binary not built";
  }
  pid_t server = launch_server({});
  ASSERT_GT(server, 0);
  // Wait for the port file to appear.
  ipc::PortFile ports(tmp_->file("ports"));
  ASSERT_TRUE(ports.await_pid(server, 5000).is_ok());

  // Drive dioneac in batch mode through a pipe.
  std::string script =
      "procs\n"
      "threads\n"
      "locals\n"
      "c\n"
      "quit\n";
  ASSERT_TRUE(write_file(tmp_->file("script.txt"), script).is_ok());
  std::string command = std::string(DIONEA_DIONEAC_PATH) + " --port-file " +
                        tmp_->file("ports") + " < " +
                        tmp_->file("script.txt") + " > " +
                        tmp_->file("client.log") + " 2>&1";
  int client_status = std::system(command.c_str());
  EXPECT_EQ(WEXITSTATUS(client_status), 0);

  std::string client_log = read_file(tmp_->file("client.log")).value_or("");
  EXPECT_NE(client_log.find("attached to 1 process"), std::string::npos)
      << client_log;
  EXPECT_NE(client_log.find("main"), std::string::npos) << client_log;

  // The `c` released the entry stop; the child will park at birth under
  // the default options only if --disturb was given — it wasn't, so the
  // program runs to completion by itself.
  int status = 0;
  ASSERT_EQ(::waitpid(server, &status, 0), server);
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(server_log().find("done 3"), std::string::npos) << server_log();
}

}  // namespace
}  // namespace dionea
