// Time-travel end to end (ISSUE 9's flagship): a MiniSan-detected
// data race, replayed BACKWARDS over the wire.
//
//   record racy run → replay under debugger with checkpoints + MiniSan
//   → analysis-report names the first divergent write AND the DRLG
//   step it was detected at → rbreak at that step + rcontinue
//   (timetravel-resume) forks a resumer from the nearest earlier
//   checkpoint → 20/20 resumes freeze at the same fingerprint.
//
// Plus the compatibility half of proto 1.6: a client speaking 1.5
// completes a full breakpoint session against this server (additive
// protocol — the server never forces the new verbs on an old client).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "client/session.hpp"
#include "debugger/protocol.hpp"
#include "ipc/frame.hpp"
#include "ipc/socket.hpp"
#include "replay/conformance/tt_testutil.hpp"
#include "replay/replay.hpp"
#include "replay/timetravel.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using replay::Engine;
using replay::tt::await_marker;
using replay::tt::CheckpointManager;
using replay::tt::Marker;
using replay::tt::Options;
using test::DebugHarness;
using test::HarnessOptions;
using test::run_ml_record;
namespace proto = dbg::proto;

// Prologue long enough for pre-spawn checkpoints, a seeded race (two
// unsynchronized bumpers), and a tail so the race step is strictly in
// the past when the replayed run finishes.
const char* kRacyWorld =
    "for i in 150\n"
    "  t = clock()\n"
    "end\n"
    "box = [0]\n"
    "fn bump()\n"
    "  i = 0\n"
    "  while i < 20\n"
    "    box[0] = box[0] + 1\n"
    "    i = i + 1\n"
    "  end\n"
    "  return nil\n"
    "end\n"
    "t1 = spawn(bump)\n"
    "t2 = spawn(bump)\n"
    "join(t1)\n"
    "join(t2)\n"
    "for i in 60\n"
    "  t = clock()\n"
    "end\n"
    "puts(box[0])\n";

TEST(TimetravelE2eTest, MinisanRaceReplaysBackwards20x) {
  auto tmp = TempDir::create("tt-e2e");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");
  std::string pause_dir = tmp.value().path();

  test::ReplayOutcome recorded = run_ml_record(dir, kRacyWorld);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;

  // Replay the recorded schedule under the full debugger stack:
  // checkpoints forking at boundaries, MiniSan watching for the race.
  Engine& engine = Engine::instance();
  ASSERT_TRUE(engine.start_replay(dir).is_ok());
  analysis::Engine::instance().reset();
  analysis::Engine::instance().enable();
  {
    DebugHarness harness(kRacyWorld, HarnessOptions{.stop_at_entry = false});
    Options opts;
    opts.every = 16;
    opts.max_live = 8;
    opts.pause_dir = pause_dir;
    opts.exit_at_target = true;
    ASSERT_TRUE(
        CheckpointManager::instance().activate(harness.vm(), opts).is_ok());
    client::Session* session = harness.launch();
    vm::RunResult result = harness.join();
    analysis::Engine::instance().disable();
    ASSERT_TRUE(result.ok) << result.error.to_string();
    EXPECT_EQ(harness.output(), recorded.output);

    // The server's report names the race and stamps the DRLG step of
    // the detection — the first write the detector could prove
    // divergent. That stamp is the whole reverse-debugging anchor.
    ASSERT_TRUE(session->supports(proto::kCapTimetravel));
    auto report = session->analysis_report();
    ASSERT_TRUE(report.is_ok()) << report.error().to_string();
    const proto::AnalysisFindingWire* race = nullptr;
    for (const proto::AnalysisFindingWire& finding :
         report.value().findings) {
      if (finding.kind == "data-race") {
        race = &finding;
        break;
      }
    }
    ASSERT_NE(race, nullptr) << "MiniSan missed the seeded race";
    EXPECT_NE(race->message.find("'box'"), std::string::npos);
    ASSERT_GT(race->step, 0) << "race finding carries no replay step";

    // timetravel-info: the ring is live and covers steps before the
    // race.
    auto tt_info = session->timetravel_info();
    ASSERT_TRUE(tt_info.is_ok()) << tt_info.error().to_string();
    EXPECT_TRUE(tt_info.value().active);
    EXPECT_EQ(tt_info.value().role, "root");
    ASSERT_FALSE(tt_info.value().checkpoints.empty());

    // rbreak at the divergent write + rcontinue: the client resolves
    // the nearest earlier break, the server forks the resumer from the
    // nearest earlier checkpoint.
    const std::uint64_t current =
        static_cast<std::uint64_t>(tt_info.value().step);
    std::vector<std::uint64_t> rbreaks{
        static_cast<std::uint64_t>(race->step)};
    std::int64_t resolved =
        CheckpointManager::resolve_rcontinue(rbreaks, current);
    ASSERT_EQ(resolved, race->step) << "race step is not in the past";

    // The nearest live checkpoint at or before the target — the resume
    // must start there, i.e. within one checkpoint interval of the
    // race, never from the beginning.
    std::int64_t nearest = -1;
    for (const proto::TimetravelCheckpoint& ckpt :
         tt_info.value().checkpoints) {
      if (ckpt.alive && ckpt.step <= resolved && ckpt.step > nearest) {
        nearest = ckpt.step;
      }
    }
    ASSERT_GE(nearest, 0) << "no checkpoint precedes the race";

    std::string reference;
    for (int round = 0; round < 20; ++round) {
      auto resumed = session->timetravel_resume(resolved);
      ASSERT_TRUE(resumed.is_ok())
          << "round " << round << ": " << resumed.error().to_string();
      EXPECT_EQ(resumed.value().checkpoint_step, nearest)
          << "round " << round << " resumed outside the checkpoint interval";
      EXPECT_EQ(resumed.value().target_step, resolved);
      Marker marker;
      ASSERT_TRUE(await_marker(pause_dir, resumed.value().pid, &marker))
          << "round " << round << ": no pause marker from pid "
          << resumed.value().pid;
      EXPECT_EQ(marker.status, "ok") << "round " << round;
      EXPECT_GE(marker.step, static_cast<std::uint64_t>(resolved))
          << "round " << round;
      if (round == 0) {
        reference = marker.fingerprint;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(marker.fingerprint, reference)
            << "round " << round << " diverged from round 0";
      }
    }

    CheckpointManager::instance().deactivate();
  }
  engine.stop();
  analysis::Engine::instance().reset();
}

// A 1.5 client against this 1.6 server: the handshake succeeds (minor
// skew is additive), and a complete breakpoint session — set, hit,
// resume, finish — runs without the client ever hearing about time
// travel. This is the silent-downgrade contract from the server's
// side; the client side (new client, old server) lives in
// version_skew_test.cpp.
TEST(TimetravelE2eTest, ProtoOneDotFiveClientCompletesBreakpointSession) {
  DebugHarness harness(
      "x = 1\n"
      "y = x + 1\n"
      "puts(y)\n");
  // No client::Session: this test IS the old client, speaking raw 1.5
  // frames. stop_at_entry parks the debuggee until we say continue.

  auto control = ipc::TcpStream::connect(harness.server().port());
  ASSERT_TRUE(control.is_ok());
  proto::Hello hello;
  hello.channel = proto::kChannelControl;
  hello.pid = 0;
  hello.proto_major = proto::kProtoMajor;
  hello.proto_minor = 5;  // one minor behind
  ASSERT_TRUE(ipc::send_frame(control.value(), hello.to_wire()).is_ok());

  auto events = ipc::TcpStream::connect(harness.server().port());
  ASSERT_TRUE(events.is_ok());
  proto::Hello ev_hello = hello;
  ev_hello.channel = proto::kChannelEvents;
  ASSERT_TRUE(ipc::send_frame(events.value(), ev_hello.to_wire()).is_ok());

  std::int64_t seq = 0;
  auto send_cmd = [&](const char* name,
                      auto fill) -> Result<ipc::wire::Value> {
    ipc::wire::Value frame;
    frame.set("cmd", name);
    frame.set("seq", ++seq);
    fill(frame);
    DIONEA_RETURN_IF_ERROR(ipc::send_frame(control.value(), frame));
    for (;;) {
      auto reply = ipc::recv_frame_timeout(control.value(), 5000);
      DIONEA_RETURN_IF_ERROR(reply.status());
      if (reply.value().get_int("re") != seq) continue;  // stale
      if (!reply.value().get_bool("ok")) {
        return Error(ErrorCode::kInternal,
                     reply.value().get_string("error"));
      }
      return reply.value();
    }
  };

  // Arm the breakpoint before the debuggee runs a single statement.
  auto set = send_cmd("break_set", [](ipc::wire::Value& f) {
    f.set("file", "test.ml");
    f.set("line", 3);
    f.set("tid", 0);
    f.set("ignore", 0);
  });
  ASSERT_TRUE(set.is_ok()) << set.error().to_string();
  EXPECT_GT(set.value().get_int("id"), 0);

  // The debuggee parks at entry (stop_at_entry default) and announces
  // it on the events channel. Returns the stopped tid (0 = never saw
  // the stop).
  harness.start_debuggee();
  auto wait_stop = [&](int line) -> std::int64_t {
    for (int i = 0; i < 50; ++i) {
      auto event = ipc::recv_frame_timeout(events.value(), 5000);
      if (!event.is_ok()) return 0;
      if (event.value().get_string("event") != "stopped") continue;
      if (line == 0 || event.value().get_int("line") == line) {
        return event.value().get_int("tid");
      }
    }
    return 0;
  };
  std::int64_t entry_tid = wait_stop(0);
  ASSERT_NE(entry_tid, 0) << "1.5 client never saw the entry stop";

  auto cont = send_cmd("continue", [&](ipc::wire::Value& f) {
    f.set("tid", entry_tid);
  });
  ASSERT_TRUE(cont.is_ok()) << cont.error().to_string();

  // The run stops again — this time at our breakpoint on line 3.
  std::int64_t break_tid = wait_stop(3);
  EXPECT_NE(break_tid, 0) << "1.5 client never saw its breakpoint hit";

  auto cont2 = send_cmd("continue", [&](ipc::wire::Value& f) {
    f.set("tid", break_tid);
  });
  ASSERT_TRUE(cont2.is_ok()) << cont2.error().to_string();

  vm::RunResult result = harness.join();
  EXPECT_TRUE(result.ok) << result.error.to_string();
  EXPECT_EQ(harness.output(), "2\n");
}

}  // namespace
}  // namespace dionea
