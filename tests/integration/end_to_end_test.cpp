// Whole-system scenarios: the paper's §6 usage flows driven through
// the public API exactly as the examples drive them.
#include <signal.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "mapreduce/corpus.hpp"
#include "mapreduce/wordcount.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

// §6.3 / Fig. 8: suspend one MapReduce worker; the others take over
// its jobs; the answer is still exactly right.
TEST(EndToEndTest, Fig8WorkerSuspensionRebalances) {
  auto tmp = TempDir::create("e2e-fig8");
  ASSERT_TRUE(tmp.is_ok());
  mapreduce::CorpusSpec spec = mapreduce::dionea_trunk_spec();
  spec.file_count = 24;
  auto corpus = mapreduce::Corpus::generate(spec, tmp.value().file("c"));
  ASSERT_TRUE(corpus.is_ok());
  auto native = mapreduce::count_corpus(corpus.value());
  ASSERT_TRUE(native.is_ok());
  auto expected = mapreduce::digest(native.value());

  DebugHarness harness(
      mapreduce::wordcount_program(corpus.value().root(), 3),
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  (void)harness.launch();

  // Adopt 3 workers; keep the first parked a while.
  client::Session* suspended = nullptr;
  std::int64_t suspended_tid = 0;
  for (int i = 0; i < 3; ++i) {
    auto worker_h = harness.client().attach_any(10'000);
    ASSERT_TRUE(worker_h.is_ok()) << i;
    client::Session* worker = harness.client().session(worker_h.value());
    auto stop = worker->wait_stopped(5000);
    ASSERT_TRUE(stop.is_ok()) << i;
    if (i == 0) {
      suspended = worker;
      suspended_tid = stop.value().tid;
    } else {
      ASSERT_TRUE(worker->cont(stop.value().tid).is_ok());
    }
  }
  sleep_for_millis(400);  // free workers drain the queue
  ASSERT_TRUE(suspended->cont(suspended_tid).is_ok());

  auto result = harness.join();
  ASSERT_TRUE(result.ok) << result.error.to_string();
  EXPECT_EQ(harness.output(),
            "unique=" + std::to_string(expected.unique) +
                " total=" + std::to_string(expected.total) + "\n");
}

// §6.1 typical flow: stop at entry, set breakpoints, inspect, step,
// continue to completion — all over the wire.
TEST(EndToEndTest, TypicalDebugSession) {
  DebugHarness harness(
      "fn factorial(n)\n"          // 1
      "  if n <= 1\n"              // 2
      "    return 1\n"             // 3
      "  end\n"
      "  return n * factorial(n - 1)\n"  // 5
      "end\n"
      "result = factorial(5)\n"    // 7
      "puts(result)");
  auto* session = harness.launch();
  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());

  // Break in the base case; when we get there the stack is 5 deep in
  // factorial frames plus <main>.
  ASSERT_TRUE(session->set_breakpoint("test.ml", 3).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  auto hit = session->wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok());
  auto frames = session->frames(1);
  ASSERT_TRUE(frames.is_ok());
  EXPECT_EQ(frames.value().size(), 6u);
  for (int depth = 0; depth < 5; ++depth) {
    auto locals = session->locals(1, depth);
    ASSERT_TRUE(locals.is_ok());
    ASSERT_EQ(locals.value().size(), 1u);
    EXPECT_EQ(locals.value()[0].first, "n");
    EXPECT_EQ(locals.value()[0].second, std::to_string(depth + 1));
  }

  ASSERT_TRUE(session->clear_breakpoint(0).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  auto result = harness.join();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "120\n");
}

// The full fork story under load: several children, each debugged.
TEST(EndToEndTest, DebugEveryWorkerOfAFork) {
  DebugHarness harness(
      "results = ipc_queue()\n"                 // 1
      "w = 0\n"                                 // 2
      "pids = []\n"                             // 3
      "while w < 3\n"                           // 4
      "  pid = fork()\n"                        // 5
      "  if pid == 0\n"                         // 6
      "    me = getpid()\n"                     // 7
      "    ipc_push(results, me)\n"             // 8
      "    exit(0)\n"                           // 9
      "  end\n"
      "  push(pids, pid)\n"                     // 11
      "  w = w + 1\n"                           // 12
      "end\n"
      "seen = []\n"                             // 14
      "for i in 3\n"                            // 15
      "  push(seen, ipc_pop(results))\n"        // 16
      "end\n"
      "for p in pids\n"                         // 18
      "  waitpid(p)\n"                          // 19
      "end\n"
      "puts(len(seen))",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  (void)harness.launch();

  std::set<int> child_pids;
  for (int i = 0; i < 3; ++i) {
    auto child_h = harness.client().attach_any(10'000);
    ASSERT_TRUE(child_h.is_ok()) << i;
    client::Session* child = harness.client().session(child_h.value());
    child_pids.insert(child->pid());
    auto stop = child->wait_stopped(5000);
    ASSERT_TRUE(stop.is_ok());
    // Inspect: each child sees pid == 0.
    auto globals = child->globals();
    ASSERT_TRUE(globals.is_ok());
    bool saw_pid_zero = false;
    for (const auto& [name, value] : globals.value()) {
      if (name == "pid" && value == "0") saw_pid_zero = true;
    }
    EXPECT_TRUE(saw_pid_zero);
    ASSERT_TRUE(child->cont(stop.value().tid).is_ok());
  }
  EXPECT_EQ(child_pids.size(), 3u);
  auto result = harness.join();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "3\n");
}

// Performance sanity: tracing with no breakpoints slows the program
// down but by a bounded factor (the §7 measurement, in miniature).
TEST(EndToEndTest, TracingOverheadIsBounded) {
  const std::string program =
      "total = 0\n"
      "i = 0\n"
      "while i < 60000\n"
      "  total = total + i\n"
      "  i = i + 1\n"
      "end\n"
      "puts(total)";

  auto timed_run = [&](bool with_server) -> double {
    vm::Interp interp;
    interp.vm().set_output([](std::string_view) {});
    std::unique_ptr<dbg::DebugServer> server;
    std::unique_ptr<TempDir> tmp;
    std::unique_ptr<client::Session> session;
    if (with_server) {
      auto created = TempDir::create("e2e-perf");
      EXPECT_TRUE(created.is_ok());
      tmp = std::make_unique<TempDir>(std::move(created).value());
      dbg::DebugServer::Options options;
      options.port_file = tmp->file("ports");
      server = std::make_unique<dbg::DebugServer>(interp.vm(), options);
      EXPECT_TRUE(server->start().is_ok());
      auto attached = client::Session::attach(server->port(), 2000);
      EXPECT_TRUE(attached.is_ok());
      session = std::move(attached).value();
    }
    Stopwatch watch;
    auto result = interp.run_string(program, "perf.ml");
    double elapsed = watch.elapsed_seconds();
    EXPECT_TRUE(result.ok);
    if (server) server->stop();
    return elapsed;
  };

  double base = timed_run(false);
  double traced = timed_run(true);
  // Tracing costs something but not orders of magnitude (generous
  // bounds; the real measurement is bench_fig9/bench_fig10).
  EXPECT_LT(traced, base * 25.0 + 0.5);
}

}  // namespace
}  // namespace dionea
