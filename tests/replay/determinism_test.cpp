// Record/replay determinism: a recorded execution replays bit-for-bit.
//
// The observable is the program's output stream. Every line a MiniLang
// program prints is emitted under the GIL, so the output ordering IS
// the thread interleaving — if 20 replays of a racy 4-thread, 2-fork
// program produce byte-identical output, the engine forced the
// recorded schedule 20 times. The divergence tests check the opposite
// contract: a replay that CANNOT match the log (the program changed)
// must report step + reason through Engine::info() instead of hanging.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "replay/replay.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"

namespace dionea::replay {
namespace {

using test::ReplayOutcome;
using test::run_ml;
using test::run_ml_record;
using test::run_ml_replay;

// Four workers race to interleave their prints; the scheduler (not the
// program) decides the order. yield pressure comes from the bytecode
// switch points themselves.
const char* kRacyThreads =
    "counts = queue()\n"
    "fn worker(name)\n"
    "  for i in 6\n"
    "    puts(name + \":\" + to_s(i))\n"
    "  end\n"
    "  counts.push(name)\n"
    "end\n"
    "t1 = spawn(worker, \"a\")\n"
    "t2 = spawn(worker, \"b\")\n"
    "t3 = spawn(worker, \"c\")\n"
    "t4 = spawn(worker, \"d\")\n"
    "for i in 4\n"
    "  puts(\"done:\" + counts.pop())\n"
    "end\n"
    "join(t1)\njoin(t2)\njoin(t3)\njoin(t4)\n";

TEST(ReplayDeterminismTest, ThreadScheduleReplaysIdentically20x) {
  auto tmp = TempDir::create("replay-threads");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir, kRacyThreads);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  ASSERT_EQ(recorded.info.mode, Mode::kRecord);
  ASSERT_GT(recorded.info.step, 0u) << "nothing was recorded";

  for (int round = 0; round < 20; ++round) {
    ReplayOutcome replayed = run_ml_replay(dir, kRacyThreads);
    ASSERT_TRUE(replayed.ok) << replayed.error_message;
    EXPECT_EQ(replayed.info.mode, Mode::kReplay)
        << "round " << round << " diverged at step "
        << replayed.info.divergence_step << ": "
        << replayed.info.divergence_reason;
    // Step accounting, not log-tail grepping: a complete replay
    // consumed every recorded event.
    EXPECT_EQ(replayed.info.step, replayed.info.total_steps)
        << "round " << round << " finished without draining the log";
    ASSERT_EQ(replayed.output, recorded.output) << "round " << round;
  }
}

// 2 forks (a child and a grandchild), 4 threads in the parent. Each
// process writes its verdict to its own file — the parent's output
// plus both children's files must replay identically.
std::string forky_program(const std::string& out_dir) {
  return
      "q = queue()\n"
      "fn worker(name)\n"
      "  for i in 4\n"
      "    puts(name + to_s(i))\n"
      "  end\n"
      "  q.push(name)\n"
      "end\n"
      "t1 = spawn(worker, \"w\")\n"
      "t2 = spawn(worker, \"x\")\n"
      "t3 = spawn(worker, \"y\")\n"
      "pid = fork(fn()\n"
      "  inner = fork(fn()\n"
      "    write_file(\"" + out_dir + "/grandchild.txt\", \"gc:\" + to_s(rand(1000)))\n"
      "  end)\n"
      "  code = waitpid(inner)\n"
      "  write_file(\"" + out_dir + "/child.txt\", \"c:\" + to_s(code) + \":\" + to_s(rand(1000)))\n"
      "end)\n"
      "for i in 3\n"
      "  puts(\"join:\" + q.pop())\n"
      "end\n"
      "join(t1)\njoin(t2)\njoin(t3)\n"
      "puts(\"child:\" + to_s(waitpid(pid)))\n";
}

TEST(ReplayDeterminismTest, ForkTreeReplaysIdentically20x) {
  auto tmp = TempDir::create("replay-forks");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");
  std::string out_dir = tmp.value().path();
  std::string program = forky_program(out_dir);

  ReplayOutcome recorded = run_ml_record(dir, program);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  auto child = read_file(out_dir + "/child.txt");
  auto grandchild = read_file(out_dir + "/grandchild.txt");
  ASSERT_TRUE(child.is_ok() && grandchild.is_ok());

  // The fork tree left one log per process, named by logical position.
  for (const char* name : {"root.rlog", "root.c1.rlog", "root.c1.c1.rlog"}) {
    EXPECT_TRUE(read_file(dir + "/" + std::string(name)).is_ok())
        << "missing log " << name;
  }

  for (int round = 0; round < 20; ++round) {
    ReplayOutcome replayed = run_ml_replay(dir, program);
    ASSERT_TRUE(replayed.ok) << replayed.error_message;
    EXPECT_EQ(replayed.info.mode, Mode::kReplay)
        << "round " << round << ": " << replayed.info.divergence_reason;
    ASSERT_EQ(replayed.output, recorded.output) << "round " << round;
    // The parent's waitpid drains the whole tree before the run
    // returns, and a fully-consumed log proves it: replay_step() (the
    // public counter behind info.step) replaces the old sleep-poll on
    // file contents that flaked when a child's write raced the check.
    ASSERT_EQ(replayed.info.step, replayed.info.total_steps)
        << "round " << round << " finished without draining the log";
    // Children replay their own subtree logs, including the recorded
    // rand() values — the files must match without scrubbing.
    auto c = read_file(out_dir + "/child.txt");
    auto g = read_file(out_dir + "/grandchild.txt");
    ASSERT_TRUE(c.is_ok() && g.is_ok()) << "round " << round;
    EXPECT_EQ(c.value(), child.value()) << "round " << round;
    EXPECT_EQ(g.value(), grandchild.value()) << "round " << round;
  }
}

TEST(ReplayDeterminismTest, ClockAndRandRoundTrip) {
  auto tmp = TempDir::create("replay-values");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");
  const char* program =
      "puts(to_s(rand(1000000)))\n"
      "puts(to_s(rand(1000000)))\n"
      "t = clock()\n"
      "puts(to_s(clock() >= t))\n"
      "puts(to_s(rand()))\n";

  ReplayOutcome recorded = run_ml_record(dir, program);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  ReplayOutcome replayed = run_ml_replay(dir, program);
  ASSERT_TRUE(replayed.ok) << replayed.error_message;
  EXPECT_EQ(replayed.info.mode, Mode::kReplay)
      << replayed.info.divergence_reason;
  // Fresh rand() draws would make two identical outputs astronomically
  // unlikely; equality proves the recorded values were substituted.
  EXPECT_EQ(replayed.output, recorded.output);
}

// ---- divergence: report, don't hang ----

TEST(ReplayDivergenceTest, ChangedProgramReportsStepAndReason) {
  auto tmp = TempDir::create("replay-diverge");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir,
      "m = mutex()\n"
      "lock(m)\nunlock(m)\n"
      "puts(to_s(rand(10)))\n");
  ASSERT_TRUE(recorded.ok) << recorded.error_message;

  // Same prefix, then a different operation: the mutex lock recorded
  // at the head cannot match the queue pop the new program performs.
  Engine::instance().set_divergence_timeout_millis(300);
  ReplayOutcome replayed = run_ml_replay(dir,
      "m = mutex()\n"
      "q = queue()\n"
      "q.push(1)\n"
      "puts(to_s(q.pop()))\n"
      "puts(to_s(rand(10)))\n");
  Engine::instance().set_divergence_timeout_millis(2'000);

  ASSERT_TRUE(replayed.ok) << replayed.error_message;  // completed, no hang
  EXPECT_EQ(replayed.info.mode, Mode::kDiverged);
  EXPECT_GE(replayed.info.divergence_step, 0);
  EXPECT_FALSE(replayed.info.divergence_reason.empty());
}

TEST(ReplayDivergenceTest, ExhaustedLogReportsInsteadOfFailing) {
  auto tmp = TempDir::create("replay-exhaust");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir, "puts(to_s(rand(10)))\n");
  ASSERT_TRUE(recorded.ok) << recorded.error_message;

  // The replayed program keeps going after the recorded one stopped:
  // the tail free-runs, and the engine says so.
  ReplayOutcome replayed = run_ml_replay(dir,
      "puts(to_s(rand(10)))\n"
      "puts(to_s(rand(10)))\n"
      "puts(to_s(rand(10)))\n");
  ASSERT_TRUE(replayed.ok) << replayed.error_message;
  EXPECT_EQ(replayed.info.mode, Mode::kDiverged);
  EXPECT_NE(replayed.info.divergence_reason.find("exhausted"),
            std::string::npos)
      << replayed.info.divergence_reason;
}

TEST(ReplayDeterminismTest, RecordingIsOffByDefault) {
  // No env, no start_*: the engine must stay inert and free.
  ASSERT_EQ(Engine::instance().mode(), Mode::kOff);
  test::RunOutcome outcome = run_ml("puts(\"plain\")");
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(Engine::instance().mode(), Mode::kOff);
}

}  // namespace
}  // namespace dionea::replay
