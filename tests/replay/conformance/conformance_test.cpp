// Replay-determinism conformance for time travel (ISSUE 9).
//
// The contract under test: resuming any checkpoint N times reaches an
// IDENTICAL VM fingerprint (frame-stack hash, globals hash, step
// counter) at the target step. The observation channel is the pause
// marker a resumed process writes into Options::pause_dir — a plain
// file, so the suite needs no protocol round-trip and works even when
// the paused process has no debug server.
//
// Table of worlds: a single-threaded clock/rand loop, a thread
// sandwich (single-threaded prologue, racy middle, suffix), and a
// 2-level fork tree. 20/20 identical per world, per the acceptance
// bar.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "mp/vm_bindings.hpp"
#include "replay/conformance/tt_testutil.hpp"
#include "replay/replay.hpp"
#include "replay/timetravel.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"
#include "vm/interp.hpp"

namespace dionea::replay::tt {
namespace {

using test::poll_until;
using test::ReplayOutcome;
using test::run_ml_record;

// ---- world 1: single-threaded clock/rand loop ----

const char* kClockLoop =
    "n = 0\n"
    "for i in 300\n"
    "  n = n + rand(3)\n"
    "  t = clock()\n"
    "end\n"
    "puts(\"sum:\" + to_s(n))\n";

TEST(TimetravelConformanceTest, SingleThreadedResumesIdentically20x) {
  auto tmp = TempDir::create("tt-single");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir, kClockLoop);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  ASSERT_GT(recorded.info.step, 200u) << "fixture recorded too few events";

  Options opts;
  opts.every = 16;
  opts.max_live = 8;
  opts.pause_dir = tmp.value().path();
  opts.exit_at_target = true;
  CheckpointedReplay replayed(dir, kClockLoop, opts);
  ASSERT_TRUE(replayed.outcome().ok) << replayed.outcome().error_message;
  EXPECT_EQ(replayed.outcome().info.mode, Mode::kReplay)
      << replayed.outcome().info.divergence_reason;
  EXPECT_EQ(replayed.outcome().output, recorded.output);

  Snapshot snap = CheckpointManager::instance().snapshot();
  ASSERT_GE(snap.taken, 2u) << "need at least two checkpoints to time-travel";
  ASSERT_FALSE(snap.ring.empty());

  expect_identical_resumes(tmp.value().path(), recorded.info.step / 2, 20);
}

// "Any checkpoint": each surviving ring slot, resumed twice, must
// reproduce itself — not just the one nearest the flagship target.
TEST(TimetravelConformanceTest, EveryRingSlotReproducesItself) {
  auto tmp = TempDir::create("tt-slots");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir, kClockLoop);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;

  Options opts;
  opts.every = 24;
  opts.max_live = 6;
  opts.pause_dir = tmp.value().path();
  opts.exit_at_target = true;
  CheckpointedReplay replayed(dir, kClockLoop, opts);
  ASSERT_TRUE(replayed.outcome().ok) << replayed.outcome().error_message;

  Snapshot snap = CheckpointManager::instance().snapshot();
  ASSERT_FALSE(snap.ring.empty());
  for (const CheckpointInfo& ckpt : snap.ring) {
    if (!ckpt.alive) continue;
    SCOPED_TRACE("checkpoint @" + std::to_string(ckpt.step));
    expect_identical_resumes(tmp.value().path(), ckpt.step + 8, 2);
  }
}

// ---- world 2: thread sandwich ----
// Single-threaded prologue (where checkpoints land), a racy 3-thread
// middle (where checkpointing defers and the target sits), suffix.

const char* kThreadSandwich =
    "for i in 200\n"
    "  x = rand(3)\n"
    "  t = clock()\n"
    "end\n"
    "q = queue()\n"
    "fn worker(name)\n"
    "  for i in 80\n"
    "    x = rand(5)\n"
    "    t = clock()\n"
    "  end\n"
    "  q.push(name)\n"
    "end\n"
    "t1 = spawn(worker, \"a\")\n"
    "t2 = spawn(worker, \"b\")\n"
    "t3 = spawn(worker, \"c\")\n"
    "for i in 3\n"
    "  puts(\"done:\" + q.pop())\n"
    "end\n"
    "join(t1)\njoin(t2)\njoin(t3)\n"
    "for i in 40\n"
    "  t = clock()\n"
    "end\n"
    "puts(\"end\")\n";

TEST(TimetravelConformanceTest, ThreadedResumesIdentically20x) {
  auto tmp = TempDir::create("tt-threads");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir, kThreadSandwich);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  ASSERT_GT(recorded.info.step, 250u);

  Options opts;
  opts.every = 16;
  opts.max_live = 8;
  opts.pause_dir = tmp.value().path();
  opts.exit_at_target = true;
  CheckpointedReplay replayed(dir, kThreadSandwich, opts);
  ASSERT_TRUE(replayed.outcome().ok) << replayed.outcome().error_message;
  EXPECT_EQ(replayed.outcome().info.mode, Mode::kReplay)
      << replayed.outcome().info.divergence_reason;
  EXPECT_EQ(replayed.outcome().output, recorded.output);

  Snapshot snap = CheckpointManager::instance().snapshot();
  ASSERT_GE(snap.taken, 1u)
      << "deferred=" << snap.deferred << " evicted=" << snap.evicted
      << " dead=" << snap.dead << " next_at=" << snap.next_at
      << " every=" << snap.every << " active=" << snap.active
      << " replay step=" << Engine::instance().replay_step();
  // The racy middle must have deferred at least one boundary: a fork
  // with siblings live is not a coherent snapshot.
  EXPECT_GE(snap.deferred, 1u);

  // ~60% through the log lands inside the threaded middle.
  expect_identical_resumes(tmp.value().path(),
                           recorded.info.step * 6 / 10, 20);
}

// ---- world 3: 2-level fork tree ----
// A resumer that crosses the recorded fork re-executes it: the child
// replays its own subtree log from scratch (stop gate cleared — it is
// parent-log-relative) and rewrites its files with the recorded rand
// values, so the tree's outputs stay byte-identical per resume.

std::string fork_tree_program(const std::string& out_dir) {
  return
      "for i in 80\n"
      "  t = clock()\n"
      "end\n"
      "pid = fork(fn()\n"
      "  inner = fork(fn()\n"
      "    write_file(\"" + out_dir + "/grandchild.txt\", \"gc:\" + to_s(rand(1000)))\n"
      "  end)\n"
      "  code = waitpid(inner)\n"
      "  write_file(\"" + out_dir + "/child.txt\", \"c:\" + to_s(code) + \":\" + to_s(rand(1000)))\n"
      "end)\n"
      "for i in 80\n"
      "  t = clock()\n"
      "end\n"
      "puts(\"child:\" + to_s(waitpid(pid)))\n"
      // A resume that crosses the fork re-executes it and gets a fresh
      // real pid; zeroing the global after the reap keeps fingerprints
      // at any post-reap target pid-free, hence byte-identical.
      "pid = 0\n"
      "for i in 150\n"
      "  t = clock()\n"
      "end\n"
      "puts(\"end\")\n";
}

TEST(TimetravelConformanceTest, ForkTreeResumesIdentically20x) {
  auto tmp = TempDir::create("tt-forks");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");
  std::string out_dir = tmp.value().path();
  std::string program = fork_tree_program(out_dir);

  ReplayOutcome recorded = run_ml_record(dir, program);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  auto child = read_file(out_dir + "/child.txt");
  auto grandchild = read_file(out_dir + "/grandchild.txt");
  ASSERT_TRUE(child.is_ok() && grandchild.is_ok());

  Options opts;
  opts.every = 16;
  opts.max_live = 8;
  opts.pause_dir = out_dir;
  opts.exit_at_target = true;
  CheckpointedReplay replayed(dir, program, opts);
  ASSERT_TRUE(replayed.outcome().ok) << replayed.outcome().error_message;
  EXPECT_EQ(replayed.outcome().info.mode, Mode::kReplay)
      << replayed.outcome().info.divergence_reason;

  // Target past the fork + reap: every resume re-runs the subtree.
  expect_identical_resumes(out_dir, recorded.info.step * 7 / 10, 20);

  EXPECT_EQ(read_file(out_dir + "/child.txt").value_or(""), child.value());
  EXPECT_EQ(read_file(out_dir + "/grandchild.txt").value_or(""),
            grandchild.value());
}

// ---- the pause machinery itself, without any forking ----
// set_stop_at_step + await_step + fingerprint_of: arm the gate before
// the run, let the program park, fingerprint it twice (stable), then
// release the gate and let it finish.

TEST(TimetravelConformanceTest, StopGateParksAndReleasesInProcess) {
  auto tmp = TempDir::create("tt-gate");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir, kClockLoop);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  const std::uint64_t target = recorded.info.step / 2;

  Engine& engine = Engine::instance();
  ASSERT_TRUE(engine.start_replay(dir).is_ok());
  engine.set_stop_at_step(target);
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  interp.vm().set_output([](std::string_view) {});
  std::thread runner([&] { interp.run_string(kClockLoop, "test.ml"); });

  Status arrived = engine.await_step(target, 20'000);
  EXPECT_TRUE(arrived.is_ok()) << arrived.to_string();
  EXPECT_GE(engine.replay_step(), target);
  EXPECT_TRUE(engine.stop_gated());
  // Let the gated thread drain its dispatch tail and park.
  ASSERT_TRUE(poll_until([&] { return interp.vm().gil().owner() == 0; }));
  std::uint64_t paused_at = engine.replay_step();
  Fingerprint first = fingerprint_of(interp.vm());
  Fingerprint second = fingerprint_of(interp.vm());
  EXPECT_EQ(first, second) << first.to_string() << " vs "
                           << second.to_string();
  EXPECT_EQ(first.step, paused_at);
  EXPECT_LT(paused_at, recorded.info.step) << "gate did not stop the run";

  engine.set_stop_at_step(0);  // release
  runner.join();
  EXPECT_EQ(engine.replay_step(), recorded.info.step)
      << "released run did not finish the log";
  engine.stop();
}

TEST(TimetravelConformanceTest, AwaitStepTimesOutWhenNothingRuns) {
  auto tmp = TempDir::create("tt-await");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");
  ReplayOutcome recorded = run_ml_record(dir, "t = clock()\nputs(\"x\")\n");
  ASSERT_TRUE(recorded.ok);

  Engine& engine = Engine::instance();
  ASSERT_TRUE(engine.start_replay(dir).is_ok());
  Status st = engine.await_step(recorded.info.step, 100);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.error().code(), ErrorCode::kTimeout);
  engine.stop();
}

}  // namespace
}  // namespace dionea::replay::tt
