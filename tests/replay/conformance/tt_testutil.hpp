// Shared fixtures for the time-travel suites (conformance + hostile).
//
// The observation channel is the pause marker a resumed checkpoint
// writes into Options::pause_dir — a plain file, so tests need no
// protocol round-trip and work even when the paused process has no
// debug server. CheckpointedReplay is run_ml_replay's stateful cousin:
// it keeps the VM and the checkpoint ring alive after the run so tests
// can resume checkpoints against them.
#pragma once

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mp/vm_bindings.hpp"
#include "replay/replay.hpp"
#include "replay/timetravel.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"
#include "testutil.hpp"
#include "vm/interp.hpp"

namespace dionea::replay::tt {

// ---- pause-marker plumbing ----

struct Marker {
  std::string status;
  std::uint64_t target = 0;
  std::uint64_t step = 0;
  std::string fingerprint;  // the full "step=... frames=... globals=..." line
};

inline bool parse_marker(const std::string& text, Marker* out) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  if (lines.size() < 3) return false;
  if (lines[0].rfind("status=", 0) != 0) return false;
  out->status = lines[0].substr(7);
  if (lines[1].rfind("target=", 0) != 0) return false;
  out->target = std::strtoull(lines[1].c_str() + 7, nullptr, 10);
  if (lines[2].rfind("step=", 0) != 0) return false;
  out->step = std::strtoull(lines[2].c_str() + 5, nullptr, 10);
  out->fingerprint = lines[2];
  return true;
}

// Wait for the resumer `pid` to pause and publish its marker.
inline bool await_marker(const std::string& pause_dir, int pid, Marker* out,
                         int timeout_millis = 30'000) {
  const std::string path = pause_dir + "/pause." + std::to_string(pid);
  if (!test::poll_until([&] { return read_file(path).is_ok(); },
                        timeout_millis)) {
    return false;
  }
  auto text = read_file(path);
  return text.is_ok() && parse_marker(text.value(), out);
}

// ---- checkpointed replay fixture ----
//
// Like test::run_ml_replay, but activates the checkpoint manager on
// the fresh VM before the run and keeps BOTH the manager and the VM
// alive afterwards so the test can resume checkpoints. The destructor
// quits the ring and stops the engine. Checkpoint children _Exit
// inside their park loop; a resumer that outruns its target to the end
// of the program leaves through the is_forked_child _exit below and
// never returns into gtest.
class CheckpointedReplay {
 public:
  CheckpointedReplay(const std::string& dir, const std::string& source,
                     const Options& opts) {
    Engine& engine = Engine::instance();
    Status started = engine.start_replay(dir);
    DIONEA_CHECK(started.is_ok(), "start_replay");
    interp_ = std::make_unique<vm::Interp>();
    mp::install_vm_bindings(interp_->vm());
    interp_->vm().set_output([this](std::string_view text) {
      outcome_.output.append(text);
    });
    Status activated =
        CheckpointManager::instance().activate(interp_->vm(), opts);
    DIONEA_CHECK(activated.is_ok(), "checkpoint activate");
    vm::RunResult result = interp_->run_string(source, "test.ml");
    if (interp_->vm().is_forked_child()) {
      // A resumer whose target sat close to the log end can finish the
      // program before its next switch point parks it. The watcher
      // still owes the marker (await_step's goal is clamped to the log
      // length) — park here and let its exit_at_target _Exit land.
      if (CheckpointManager::instance().role() == Role::kResumed) {
        sleep_for_millis(70'000);
      }
      engine.flush();
      std::fflush(nullptr);
      ::_exit(result.exited ? result.exit_code : (result.ok ? 0 : 1));
    }
    outcome_.ok = result.ok;
    outcome_.exited = result.exited;
    outcome_.exit_code = result.exit_code;
    if (!result.ok) outcome_.error_message = result.error.to_string();
    outcome_.info = engine.info();
  }

  ~CheckpointedReplay() {
    CheckpointManager::instance().deactivate();
    Engine::instance().stop();
  }

  vm::Vm& vm() { return interp_->vm(); }
  const test::ReplayOutcome& outcome() const noexcept { return outcome_; }

 private:
  std::unique_ptr<vm::Interp> interp_;
  test::ReplayOutcome outcome_;
};

// Resume to `target` `rounds` times; every marker must agree with the
// first one byte-for-byte (status ok, same fingerprint line).
inline void expect_identical_resumes(const std::string& pause_dir,
                                     std::uint64_t target, int rounds) {
  CheckpointManager& mgr = CheckpointManager::instance();
  std::string reference;
  for (int round = 0; round < rounds; ++round) {
    auto ticket = mgr.resume_to(target);
    ASSERT_TRUE(ticket.is_ok())
        << "round " << round << ": " << ticket.error().to_string();
    // resume_to clamps targets past the log end to the log length.
    const std::uint64_t effective = ticket.value().target_step;
    EXPECT_LE(ticket.value().checkpoint_step, effective) << "round " << round;
    Marker marker;
    ASSERT_TRUE(await_marker(pause_dir, ticket.value().pid, &marker))
        << "round " << round << ": no pause marker from pid "
        << ticket.value().pid;
    EXPECT_EQ(marker.status, "ok") << "round " << round;
    EXPECT_EQ(marker.target, effective) << "round " << round;
    EXPECT_GE(marker.step, effective) << "round " << round;
    if (round == 0) {
      reference = marker.fingerprint;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(marker.fingerprint, reference)
          << "round " << round << " diverged from round 0";
    }
  }
}

}  // namespace dionea::replay::tt
