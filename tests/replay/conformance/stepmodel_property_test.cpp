// Property test for reverse-execution step accounting (ISSUE 9).
//
// Fuzzes random rstep/step/rbreak/rcontinue/checkpoint sequences
// against a shadow model of the planning helpers the console and the
// CheckpointManager share. Every check is a closed-form invariant, so
// a violation reports the op index, the op, and the step it happened
// at — and nothing here can hang: all loops are bounded by the
// sequence length.
//
// The engine-level half replays one recorded fixture under randomly
// placed stop gates: the same target must pause at the same step every
// time (the in-process complement of the forked conformance suite).
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mp/vm_bindings.hpp"
#include "replay/replay.hpp"
#include "replay/timetravel.hpp"
#include "support/strings.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"
#include "vm/interp.hpp"

namespace dionea::replay::tt {
namespace {

using test::poll_until;
using test::ReplayOutcome;
using test::run_ml_record;

// ---- closed-form unit checks first: the anchors the fuzz leans on ----

TEST(StepModelTest, ResolveRstepWalksBackwardsAndSaturates) {
  EXPECT_EQ(CheckpointManager::resolve_rstep(100, 1), 99u);
  EXPECT_EQ(CheckpointManager::resolve_rstep(100, 40), 60u);
  EXPECT_EQ(CheckpointManager::resolve_rstep(5, 5), 0u);
  EXPECT_EQ(CheckpointManager::resolve_rstep(5, 50), 0u);
  EXPECT_EQ(CheckpointManager::resolve_rstep(0, 1), 0u);
}

TEST(StepModelTest, ResolveRcontinuePicksNearestEarlierBreak) {
  std::vector<std::uint64_t> breaks = {10, 50, 90};
  EXPECT_EQ(CheckpointManager::resolve_rcontinue(breaks, 60), 50);
  EXPECT_EQ(CheckpointManager::resolve_rcontinue(breaks, 91), 90);
  EXPECT_EQ(CheckpointManager::resolve_rcontinue(breaks, 90), 50);
  EXPECT_EQ(CheckpointManager::resolve_rcontinue(breaks, 10), -1);
  EXPECT_EQ(CheckpointManager::resolve_rcontinue({}, 100), -1);
}

TEST(StepModelTest, PickCheckpointFindsNearestAtOrBefore) {
  std::vector<std::uint64_t> steps = {10, 40, 80};
  EXPECT_EQ(CheckpointManager::pick_checkpoint(steps, 50), 1);
  EXPECT_EQ(CheckpointManager::pick_checkpoint(steps, 40), 1);
  EXPECT_EQ(CheckpointManager::pick_checkpoint(steps, 5), -1);
  EXPECT_EQ(CheckpointManager::pick_checkpoint(steps, 500), 2);
  EXPECT_EQ(CheckpointManager::pick_checkpoint({}, 500), -1);
}

TEST(StepModelTest, PlanInsertDoublesSpacingAndKeepsEvenSlots) {
  std::vector<std::uint64_t> steps = {0, 16, 32, 48};
  std::uint64_t every = 16;
  std::vector<std::uint64_t> evicted;
  CheckpointManager::plan_insert(steps, 64, 4, &every, &evicted);
  EXPECT_EQ(every, 32u);
  EXPECT_EQ(steps, (std::vector<std::uint64_t>{0, 32, 64}));
  EXPECT_EQ(evicted, (std::vector<std::uint64_t>{16, 48}));
}

TEST(StepModelTest, PlanInsertMaxLiveOneEvictsTheLoneOccupant) {
  std::vector<std::uint64_t> steps = {100};
  std::uint64_t every = 8;
  std::vector<std::uint64_t> evicted;
  CheckpointManager::plan_insert(steps, 200, 1, &every, &evicted);
  EXPECT_EQ(steps, (std::vector<std::uint64_t>{200}));
  EXPECT_EQ(evicted, (std::vector<std::uint64_t>{100}));
}

// ---- the fuzz: random command sequences vs the shadow model ----

struct Shadow {
  std::uint64_t total = 0;
  std::uint64_t current = 0;
  std::vector<std::uint64_t> breaks;
  std::vector<std::uint64_t> checkpoints;
  std::uint64_t every = 8;
};

std::string state_of(const Shadow& s, int op_index, const std::string& op) {
  return strings::format("op #%d (%s) at step %llu", op_index, op.c_str(),
                         static_cast<unsigned long long>(s.current));
}

TEST(StepModelPropertyTest, RandomSequencesAgreeWithShadowModel) {
  for (std::uint32_t seed = 1; seed <= 40; ++seed) {
    std::mt19937 rng(seed);
    Shadow s;
    s.total = 200 + rng() % 1800;
    s.current = s.total;
    const int max_live = 1 + static_cast<int>(rng() % 8);

    for (int op = 0; op < 64; ++op) {
      switch (rng() % 5) {
        case 0: {  // rstep n
          std::uint64_t n = 1 + rng() % 300;
          std::uint64_t target = CheckpointManager::resolve_rstep(s.current, n);
          ASSERT_LE(target, s.current) << state_of(s, op, "rstep");
          ASSERT_EQ(target, n >= s.current ? 0 : s.current - n)
              << state_of(s, op, "rstep") << ": walked to " << target
              << " instead of " << (n >= s.current ? 0 : s.current - n);
          s.current = target;
          break;
        }
        case 1: {  // step n (forward, clamped at the log end)
          std::uint64_t n = 1 + rng() % 300;
          s.current = std::min(s.current + n, s.total);
          break;
        }
        case 2: {  // rbreak
          s.breaks.push_back(rng() % s.total);
          break;
        }
        case 3: {  // rcontinue
          std::int64_t target =
              CheckpointManager::resolve_rcontinue(s.breaks, s.current);
          bool any_earlier = false;
          for (std::uint64_t b : s.breaks) any_earlier |= b < s.current;
          if (target < 0) {
            ASSERT_FALSE(any_earlier)
                << state_of(s, op, "rcontinue")
                << ": reported no break but one exists before the cursor";
            break;
          }
          ASSERT_LT(static_cast<std::uint64_t>(target), s.current)
              << state_of(s, op, "rcontinue");
          bool is_break = false, skipped = false;
          for (std::uint64_t b : s.breaks) {
            is_break |= b == static_cast<std::uint64_t>(target);
            skipped |= b > static_cast<std::uint64_t>(target) && b < s.current;
          }
          ASSERT_TRUE(is_break) << state_of(s, op, "rcontinue")
                                << ": landed on a non-break step " << target;
          ASSERT_FALSE(skipped) << state_of(s, op, "rcontinue")
                                << ": skipped a nearer break";
          s.current = static_cast<std::uint64_t>(target);
          break;
        }
        case 4: {  // checkpoint admission at the cursor
          std::vector<std::uint64_t> before = s.checkpoints;
          std::vector<std::uint64_t> evicted;
          std::uint64_t every_before = s.every;
          CheckpointManager::plan_insert(s.checkpoints, s.current, max_live,
                                         &s.every, &evicted);
          ASSERT_LE(static_cast<int>(s.checkpoints.size()), max_live)
              << state_of(s, op, "checkpoint") << ": ring overflowed";
          ASSERT_EQ(s.checkpoints.back(), s.current)
              << state_of(s, op, "checkpoint");
          ASSERT_GE(s.every, every_before)
              << state_of(s, op, "checkpoint") << ": spacing shrank";
          // Conservation: kept + evicted == before + the new step.
          std::multiset<std::uint64_t> lhs(s.checkpoints.begin(),
                                           s.checkpoints.end());
          lhs.insert(evicted.begin(), evicted.end());
          std::multiset<std::uint64_t> rhs(before.begin(), before.end());
          rhs.insert(s.current);
          ASSERT_EQ(lhs, rhs) << state_of(s, op, "checkpoint")
                              << ": admission lost or invented a checkpoint";
          break;
        }
      }
      // Whatever the sequence did, resume resolution stays coherent.
      std::int64_t idx =
          CheckpointManager::pick_checkpoint(s.checkpoints, s.current);
      if (idx >= 0) {
        std::uint64_t step = s.checkpoints[static_cast<std::size_t>(idx)];
        ASSERT_LE(step, s.current) << state_of(s, op, "pick");
        for (std::uint64_t c : s.checkpoints) {
          ASSERT_FALSE(c <= s.current && c > step)
              << state_of(s, op, "pick") << ": " << c
              << " is nearer than picked " << step;
        }
      } else {
        for (std::uint64_t c : s.checkpoints) {
          ASSERT_GT(c, s.current)
              << state_of(s, op, "pick")
              << ": a usable checkpoint was not found";
        }
      }
    }
  }
}

// ---- engine half: random stop-gate placement is deterministic ----

TEST(StepModelPropertyTest, RandomGateTargetsPauseAtTheSameStepTwice) {
  auto tmp = TempDir::create("tt-gatefuzz");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");
  const char* program =
      "n = 0\n"
      "for i in 200\n"
      "  n = n + rand(7)\n"
      "  t = clock()\n"
      "end\n"
      "puts(to_s(n))\n";
  ReplayOutcome recorded = run_ml_record(dir, program);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  ASSERT_GT(recorded.info.step, 100u);

  std::mt19937 rng(7);
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t target =
        20 + rng() % (recorded.info.step - 80);  // clear of the tail
    std::uint64_t paused[2] = {0, 0};
    for (int run = 0; run < 2; ++run) {
      Engine& engine = Engine::instance();
      ASSERT_TRUE(engine.start_replay(dir).is_ok());
      engine.set_stop_at_step(target);
      vm::Interp interp;
      mp::install_vm_bindings(interp.vm());
      interp.vm().set_output([](std::string_view) {});
      std::thread runner([&] { interp.run_string(program, "test.ml"); });
      Status arrived = engine.await_step(target, 20'000);
      EXPECT_TRUE(arrived.is_ok())
          << "target " << target << ": " << arrived.to_string();
      ASSERT_TRUE(poll_until([&] { return interp.vm().gil().owner() == 0; }))
          << "target " << target << " never parked";
      paused[run] = engine.replay_step();
      EXPECT_GE(paused[run], target);
      engine.set_stop_at_step(0);
      runner.join();
      engine.stop();
    }
    EXPECT_EQ(paused[0], paused[1])
        << "target " << target << " paused at different steps";
  }
}

}  // namespace
}  // namespace dionea::replay::tt
