#include "ipc/socket.hpp"

#include <thread>

#include <gtest/gtest.h>

#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

TEST(TcpTest, BindEphemeralAssignsPort) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok()) << listener.error().to_string();
  EXPECT_GT(listener.value().port(), 0);
}

TEST(TcpTest, ConnectAcceptExchange) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::uint16_t port = listener.value().port();

  std::thread client_thread([port] {
    auto stream = TcpStream::connect_retry(port, 2000);
    ASSERT_TRUE(stream.is_ok());
    EXPECT_TRUE(stream.value().write_all("ping", 4).is_ok());
    char reply[4];
    EXPECT_TRUE(stream.value().read_exact(reply, 4).is_ok());
    EXPECT_EQ(std::string(reply, 4), "pong");
  });

  auto accepted = listener.value().accept_timeout(2000);
  ASSERT_TRUE(accepted.is_ok());
  char request[4];
  EXPECT_TRUE(accepted.value().read_exact(request, 4).is_ok());
  EXPECT_EQ(std::string(request, 4), "ping");
  EXPECT_TRUE(accepted.value().write_all("pong", 4).is_ok());
  client_thread.join();
}

TEST(TcpTest, AcceptTimeoutExpires) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto accepted = listener.value().accept_timeout(50);
  ASSERT_FALSE(accepted.is_ok());
  EXPECT_EQ(accepted.error().code(), ErrorCode::kTimeout);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Bind then close to find a port that is (very likely) not listening.
  std::uint16_t port;
  {
    auto listener = TcpListener::bind(0);
    ASSERT_TRUE(listener.is_ok());
    port = listener.value().port();
  }
  auto stream = TcpStream::connect(port);
  EXPECT_FALSE(stream.is_ok());
}

TEST(TcpTest, ConnectRetryTimesOut) {
  std::uint16_t port;
  {
    auto listener = TcpListener::bind(0);
    ASSERT_TRUE(listener.is_ok());
    port = listener.value().port();
  }
  auto stream = TcpStream::connect_retry(port, 100);
  ASSERT_FALSE(stream.is_ok());
  EXPECT_EQ(stream.error().code(), ErrorCode::kTimeout);
}

TEST(TcpTest, ConnectRetrySurvivesLateServer) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::uint16_t port = listener.value().port();
  // Server accepts only after a delay; connect_retry should get there
  // (the backlog holds the connection even before accept()).
  std::thread late_accept([&] {
    sleep_for_millis(50);
    auto accepted = listener.value().accept_timeout(2000);
    EXPECT_TRUE(accepted.is_ok());
  });
  auto stream = TcpStream::connect_retry(port, 3000);
  EXPECT_TRUE(stream.is_ok());
  late_accept.join();
}

TEST(TcpTest, ReadableReflectsData) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = TcpStream::connect_retry(listener.value().port(), 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept_timeout(2000);
  ASSERT_TRUE(server.is_ok());

  auto idle = server.value().readable(0);
  ASSERT_TRUE(idle.is_ok());
  EXPECT_FALSE(idle.value());

  ASSERT_TRUE(client.value().write_all("x", 1).is_ok());
  auto ready = server.value().readable(1000);
  ASSERT_TRUE(ready.is_ok());
  EXPECT_TRUE(ready.value());
}

TEST(TcpTest, PeerCloseGivesEof) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = TcpStream::connect_retry(listener.value().port(), 2000);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value().accept_timeout(2000);
  ASSERT_TRUE(server.is_ok());
  client.value().close();
  char c;
  Status status = server.value().read_exact(&c, 1);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kClosed);
}

TEST(TcpTest, NodelaySetsOption) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = TcpStream::connect_retry(listener.value().port(), 2000);
  ASSERT_TRUE(client.is_ok());
  EXPECT_TRUE(client.value().set_nodelay(true).is_ok());
}

}  // namespace
}  // namespace dionea::ipc
