#include "ipc/port_file.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <thread>

#include <gtest/gtest.h>

#include "support/temp_file.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

class PortFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = TempDir::create("portfile-test");
    ASSERT_TRUE(created.is_ok());
    tmp_ = std::make_unique<TempDir>(std::move(created).value());
  }
  std::string path() const { return tmp_->file("ports"); }
  std::unique_ptr<TempDir> tmp_;
};

TEST_F(PortFileTest, EmptyOrMissingFileReadsEmpty) {
  PortFile file(path());
  auto records = file.read_all();
  ASSERT_TRUE(records.is_ok());
  EXPECT_TRUE(records.value().empty());
}

TEST_F(PortFileTest, PublishReadRoundTrip) {
  PortFile file(path());
  PortRecord record{1234, 1000, 45678, 0};
  ASSERT_TRUE(file.publish(record).is_ok());
  auto records = file.read_all();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0], record);
}

TEST_F(PortFileTest, AppendsPreserveOrder) {
  PortFile file(path());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(file.publish(PortRecord{100 + i, 1,
        static_cast<std::uint16_t>(2000 + i), i}).is_ok());
  }
  auto records = file.read_all();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records.value()[static_cast<size_t>(i)].pid, 100 + i);
  }
}

TEST_F(PortFileTest, ReadNewSkipsSeen) {
  PortFile file(path());
  ASSERT_TRUE(file.publish(PortRecord{1, 0, 1000, 0}).is_ok());
  ASSERT_TRUE(file.publish(PortRecord{2, 0, 1001, 0}).is_ok());
  auto fresh = file.read_new(1);
  ASSERT_TRUE(fresh.is_ok());
  ASSERT_EQ(fresh.value().size(), 1u);
  EXPECT_EQ(fresh.value()[0].pid, 2);
  EXPECT_TRUE(file.read_new(2).value().empty());
  EXPECT_TRUE(file.read_new(99).value().empty());
}

TEST_F(PortFileTest, TornAndGarbageLinesSkipped) {
  PortFile file(path());
  ASSERT_TRUE(file.publish(PortRecord{1, 0, 1000, 0}).is_ok());
  // Simulate garbage and a torn write.
  ASSERT_TRUE(write_file_atomic(
      path(), read_file(path()).value() + "garbage line\n77 88\n-1 0 99999 0\n" +
                  "2 0 1001 0\n").is_ok());
  auto records = file.read_all();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 2u);  // the two valid records
  EXPECT_EQ(records.value()[1].pid, 2);
}

TEST_F(PortFileTest, AwaitPidReturnsLatestRecord) {
  PortFile file(path());
  ASSERT_TRUE(file.publish(PortRecord{5, 0, 1000, 0}).is_ok());
  ASSERT_TRUE(file.publish(PortRecord{5, 0, 2000, 1}).is_ok());  // re-publish
  auto record = file.await_pid(5, 500);
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().port, 2000);  // latest wins
}

TEST_F(PortFileTest, AwaitPidTimesOut) {
  PortFile file(path());
  Stopwatch watch;
  auto record = file.await_pid(404, 100);
  ASSERT_FALSE(record.is_ok());
  EXPECT_EQ(record.error().code(), ErrorCode::kTimeout);
  EXPECT_GE(watch.elapsed_seconds(), 0.09);
}

TEST_F(PortFileTest, AwaitPidSeesLatePublisher) {
  PortFile file(path());
  std::thread publisher([this] {
    sleep_for_millis(50);
    PortFile late(path());
    EXPECT_TRUE(late.publish(PortRecord{777, 1, 3333, 0}).is_ok());
  });
  auto record = file.await_pid(777, 3000);
  publisher.join();
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().port, 3333);
}

// The actual fork-handler usage: parent and child publish concurrently
// through O_APPEND; no record may be lost or torn.
TEST_F(PortFileTest, ConcurrentPublishersAcrossFork) {
  PortFile file(path());
  constexpr int kPerSide = 50;
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    PortFile child(path());
    for (int i = 0; i < kPerSide; ++i) {
      if (!child.publish(PortRecord{20'000 + i, 1, 1500, i}).is_ok()) {
        ::_exit(1);
      }
    }
    ::_exit(0);
  }
  for (int i = 0; i < kPerSide; ++i) {
    ASSERT_TRUE(file.publish(PortRecord{10'000 + i, 1, 1400, i}).is_ok());
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_EQ(WEXITSTATUS(status), 0);
  auto records = file.read_all();
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 2u * kPerSide);
}

}  // namespace
}  // namespace dionea::ipc
