// Seeded fault sweeps over the ipc layer: recoverable faults (EINTR,
// short transfers, delays, torn appends) must be invisible to correct
// callers, and unrecoverable ones (injected ECONNRESET) must surface
// as clean typed errors — never hangs, never corrupted frames.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ipc/frame.hpp"
#include "ipc/port_file.hpp"
#include "ipc/socket.hpp"
#include "support/fault.hpp"
#include "support/temp_file.hpp"

namespace dionea::ipc {
namespace {

using fault::Config;
using fault::Scope;

// A connected loopback pair.
struct StreamPair {
  TcpStream client;
  TcpStream server;
};

StreamPair make_pair_or_die() {
  auto listener = TcpListener::bind();
  EXPECT_TRUE(listener.is_ok()) << listener.error().to_string();
  StreamPair pair;
  std::thread connector([&pair, port = listener.value().port()] {
    auto stream = TcpStream::connect_retry(port, 2000);
    ASSERT_TRUE(stream.is_ok()) << stream.error().to_string();
    pair.client = std::move(stream).value();
  });
  auto accepted = listener.value().accept_timeout(2000);
  EXPECT_TRUE(accepted.is_ok()) << accepted.error().to_string();
  connector.join();
  if (accepted.is_ok()) pair.server = std::move(accepted).value();
  return pair;
}

wire::Value make_payload(int i) {
  wire::Value value;
  value.set("seq", i);
  value.set("text", std::string(static_cast<size_t>(16 + i), 'x'));
  value.set("flag", i % 2 == 0);
  return value;
}

// The acceptance sweep: ≥8 seeds, recoverable kinds active on every fd
// and frame site, full frame round-trips must still be byte-perfect.
TEST(FaultSweepTest, RecoverableFaultsAreInvisibleToFrames) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    StreamPair pair = make_pair_or_die();
    ASSERT_TRUE(pair.client.valid());
    Scope scope(Config{.seed = seed,
                       .probability = 0.25,
                       .kinds = fault::kBitEintr | fault::kBitShortIo |
                                fault::kBitDelay});
    for (int i = 0; i < 25; ++i) {
      wire::Value sent = make_payload(i);
      ASSERT_TRUE(send_frame(pair.client, sent).is_ok())
          << "seed " << seed << " frame " << i;
      auto received = recv_frame_timeout(pair.server, 5000);
      ASSERT_TRUE(received.is_ok())
          << "seed " << seed << " frame " << i << ": "
          << received.error().to_string();
      EXPECT_EQ(received.value().get_int("seq"), i);
      EXPECT_EQ(received.value().get_string("text"),
                make_payload(i).get_string("text"));
    }
  }
  EXPECT_GT(fault::Injector::instance().injected(), 0u);
}

// Same sweep in the other framing direction (server -> client), with
// the site filter narrowed to the raw fd layer.
TEST(FaultSweepTest, FdSiteFilterSweep) {
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    StreamPair pair = make_pair_or_die();
    ASSERT_TRUE(pair.server.valid());
    Scope scope(Config{.seed = seed,
                       .probability = 0.5,
                       .kinds = fault::kBitEintr | fault::kBitShortIo,
                       .site_filter = "fd."});
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(send_frame(pair.server, make_payload(i)).is_ok());
      auto received = recv_frame(pair.client);
      ASSERT_TRUE(received.is_ok()) << received.error().to_string();
      EXPECT_EQ(received.value().get_int("seq"), i);
    }
  }
}

TEST(FaultSweepTest, InjectedConnResetIsATypedError) {
  StreamPair pair = make_pair_or_die();
  ASSERT_TRUE(pair.client.valid());
  {
    Scope scope(Config{.seed = 9, .probability = 1.0,
                       .kinds = fault::kBitConnReset,
                       .site_filter = "frame.send"});
    Status status = send_frame(pair.client, make_payload(0));
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.error().code(), ErrorCode::kClosed);
  }
  // The reset fired before any bytes left: framing is intact and the
  // stream is still usable once injection stops.
  ASSERT_TRUE(send_frame(pair.client, make_payload(1)).is_ok());
  auto received = recv_frame_timeout(pair.server, 2000);
  ASSERT_TRUE(received.is_ok()) << received.error().to_string();
  EXPECT_EQ(received.value().get_int("seq"), 1);
}

TEST(FaultSweepTest, TornPortFileAppendsStayParseable) {
  auto tmp = TempDir::create("fault-ports");
  ASSERT_TRUE(tmp.is_ok());
  PortFile ports(tmp.value().file("ports"));
  {
    Scope scope(Config{.seed = 21, .probability = 1.0,
                       .kinds = fault::kBitTorn,
                       .site_filter = "port_file.append"});
    for (int i = 0; i < 5; ++i) {
      PortRecord record;
      record.pid = 1000 + i;
      record.parent_pid = 1;
      record.port = static_cast<std::uint16_t>(40000 + i);
      record.seq = i;
      ASSERT_TRUE(ports.publish(record).is_ok());
    }
  }
  auto records = ports.read_all();
  ASSERT_TRUE(records.is_ok()) << records.error().to_string();
  // Every record survives: a publisher crashing mid-append (the torn
  // fragment) never destroys its neighbours.
  ASSERT_EQ(records.value().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records.value()[static_cast<size_t>(i)].pid, 1000 + i);
    EXPECT_EQ(records.value()[static_cast<size_t>(i)].port, 40000 + i);
  }
}

TEST(FaultSweepTest, PartialFrameYieldsTimeoutNotHang) {
  StreamPair pair = make_pair_or_die();
  ASSERT_TRUE(pair.client.valid());
  // A peer that dies after 4 header bytes: the reader must give up at
  // its deadline instead of blocking on the missing half.
  const char half_header[4] = {'D', 'N', 'E', 'A'};
  ASSERT_TRUE(pair.client.write_all(half_header, sizeof(half_header)).is_ok());
  auto received = recv_frame_timeout(pair.server, 300);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kTimeout);
}

// The interactive-client failure mode: an event frame arriving slower
// than one poll interval. recv_frame_timeout abandons its partial read
// on timeout — every later read starts mid-frame and dies on the magic
// check. FrameReader must instead carry the partial frame across any
// number of short polls and stay in sync for the frames that follow.
TEST(FaultSweepTest, SlowFrameSurvivesShortPolls) {
  StreamPair pair = make_pair_or_die();
  ASSERT_TRUE(pair.client.valid());
  wire::Value sent = make_payload(7);
  std::string bytes;
  {
    char header[8] = {'D', 'N', 'E', 'A', 0, 0, 0, 0};
    std::string payload;
    sent.encode(&payload);
    std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i) {
      header[4 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
    }
    bytes.assign(header, sizeof(header));
    bytes += payload;
  }
  std::thread dribbler([&] {
    for (char byte : bytes) {
      ASSERT_TRUE(pair.client.write_all(&byte, 1).is_ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // A promptly-delivered second frame proves the stream kept sync.
    ASSERT_TRUE(send_frame(pair.client, make_payload(8)).is_ok());
  });
  FrameReader reader;
  int timeouts = 0;
  Result<wire::Value> received = reader.recv_timeout(pair.server, 5);
  while (!received.is_ok()) {
    ASSERT_EQ(received.error().code(), ErrorCode::kTimeout)
        << received.error().to_string();
    ++timeouts;
    ASSERT_LT(timeouts, 1000);
    received = reader.recv_timeout(pair.server, 5);
  }
  EXPECT_GT(timeouts, 0) << "frame arrived too fast to exercise resume";
  EXPECT_EQ(received.value().get_int("seq"), 7);
  EXPECT_EQ(received.value().get_string("text"), sent.get_string("text"));
  auto second = reader.recv_timeout(pair.server, 2000);
  ASSERT_TRUE(second.is_ok()) << second.error().to_string();
  EXPECT_EQ(second.value().get_int("seq"), 8);
  dribbler.join();
}

TEST(FaultSweepTest, SweepUnderDelayedAccept) {
  Scope scope(Config{.seed = 77, .probability = 0.8,
                     .kinds = fault::kBitDelay,
                     .site_filter = "socket."});
  StreamPair pair = make_pair_or_die();
  ASSERT_TRUE(pair.client.valid());
  ASSERT_TRUE(pair.server.valid());
  ASSERT_TRUE(send_frame(pair.client, make_payload(3)).is_ok());
  auto received = recv_frame_timeout(pair.server, 2000);
  ASSERT_TRUE(received.is_ok()) << received.error().to_string();
  EXPECT_EQ(received.value().get_int("seq"), 3);
}

}  // namespace
}  // namespace dionea::ipc
