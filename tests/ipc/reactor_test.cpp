#include "ipc/reactor.hpp"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "ipc/pipe.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

TEST(ReactorTest, PollOnceFiresReadableCallback) {
  Reactor reactor;
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  int fired = 0;
  reactor.add_fd(pipe.value().read_end().get(), [&] {
    char c;
    (void)pipe.value().read_end().read_some(&c, 1);
    ++fired;
  });
  // Nothing readable yet.
  auto idle = reactor.poll_once(10);
  ASSERT_TRUE(idle.is_ok());
  EXPECT_EQ(fired, 0);

  ASSERT_TRUE(pipe.value().write_end().write_all("x", 1).is_ok());
  auto busy = reactor.poll_once(500);
  ASSERT_TRUE(busy.is_ok());
  EXPECT_EQ(fired, 1);
}

TEST(ReactorTest, RemoveFdStopsCallbacks) {
  Reactor reactor;
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  int fired = 0;
  int fd = pipe.value().read_end().get();
  reactor.add_fd(fd, [&] { ++fired; });
  reactor.remove_fd(fd);
  ASSERT_TRUE(pipe.value().write_end().write_all("x", 1).is_ok());
  (void)reactor.poll_once(20);
  EXPECT_EQ(fired, 0);
}

TEST(ReactorTest, HandlerMayRemoveItself) {
  Reactor reactor;
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  int fired = 0;
  int fd = pipe.value().read_end().get();
  reactor.add_fd(fd, [&] {
    char c;
    (void)pipe.value().read_end().read_some(&c, 1);
    ++fired;
    reactor.remove_fd(fd);
  });
  ASSERT_TRUE(pipe.value().write_end().write_all("ab", 2).is_ok());
  (void)reactor.poll_once(100);
  (void)reactor.poll_once(20);
  EXPECT_EQ(fired, 1);  // second byte ignored after self-removal
}

TEST(ReactorTest, PostRunsTaskOnLoop) {
  Reactor reactor;
  bool ran = false;
  reactor.post([&] { ran = true; });
  (void)reactor.poll_once(10);
  EXPECT_TRUE(ran);
}

TEST(ReactorTest, RunStopFromAnotherThread) {
  Reactor reactor;
  std::atomic<bool> started{false};
  std::thread loop([&] {
    started.store(true);
    Status status = reactor.run();
    EXPECT_TRUE(status.is_ok());
  });
  while (!started.load()) sleep_for_millis(1);
  sleep_for_millis(20);
  EXPECT_TRUE(reactor.running());
  reactor.stop();
  loop.join();
  EXPECT_FALSE(reactor.running());
}

TEST(ReactorTest, EventsDispatchWhileRunning) {
  Reactor reactor;
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  std::atomic<int> fired{0};
  reactor.add_fd(pipe.value().read_end().get(), [&] {
    char c;
    (void)pipe.value().read_end().read_some(&c, 1);
    fired.fetch_add(1);
  });
  std::thread loop([&] { (void)reactor.run(); });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pipe.value().write_end().write_all("x", 1).is_ok());
    sleep_for_millis(10);
  }
  Stopwatch watch;
  while (fired.load() < 5 && watch.elapsed_seconds() < 2.0) {
    sleep_for_millis(5);
  }
  reactor.stop();
  loop.join();
  EXPECT_EQ(fired.load(), 5);
}

TEST(ReactorTest, PostFromOtherThreadWakesLoop) {
  Reactor reactor;
  std::thread loop([&] { (void)reactor.run(); });
  std::atomic<bool> ran{false};
  sleep_for_millis(10);
  reactor.post([&] { ran.store(true); });
  Stopwatch watch;
  while (!ran.load() && watch.elapsed_seconds() < 2.0) sleep_for_millis(2);
  // Posting must wake the poll promptly — well under the 250ms tick.
  EXPECT_TRUE(ran.load());
  EXPECT_LT(watch.elapsed_seconds(), 0.2);
  reactor.stop();
  loop.join();
}

}  // namespace
}  // namespace dionea::ipc
