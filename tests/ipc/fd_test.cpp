#include "ipc/fd.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <thread>

#include <gtest/gtest.h>

#include "ipc/pipe.hpp"

namespace dionea::ipc {
namespace {

TEST(FdTest, DefaultInvalid) {
  Fd fd;
  EXPECT_FALSE(fd.valid());
  EXPECT_EQ(fd.get(), -1);
}

TEST(FdTest, ClosesOnDestruction) {
  int raw = -1;
  {
    auto pipe = Pipe::create();
    ASSERT_TRUE(pipe.is_ok());
    raw = pipe.value().read_end().get();
    EXPECT_GE(raw, 0);
  }
  // fd should be closed now: fcntl fails with EBADF.
  EXPECT_EQ(::fcntl(raw, F_GETFD), -1);
  EXPECT_EQ(errno, EBADF);
}

TEST(FdTest, MoveTransfers) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  int raw = pipe.value().read_end().get();
  Fd moved = std::move(pipe.value().read_end());
  EXPECT_EQ(moved.get(), raw);
  EXPECT_FALSE(pipe.value().read_end().valid());
}

TEST(FdTest, ReleaseDisownsWithoutClosing) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  int raw = pipe.value().read_end().release();
  EXPECT_FALSE(pipe.value().read_end().valid());
  EXPECT_EQ(::fcntl(raw, F_GETFD), 0);  // still open
  ::close(raw);
}

TEST(FdTest, WriteAllReadExactRoundTrip) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  std::string payload(100'000, 'z');  // larger than PIPE_BUF
  std::thread writer([&] {
    EXPECT_TRUE(pipe.value()
                    .write_end()
                    .write_all(payload.data(), payload.size())
                    .is_ok());
    pipe.value().close_write();
  });
  std::string received(payload.size(), '\0');
  EXPECT_TRUE(pipe.value()
                  .read_end()
                  .read_exact(received.data(), received.size())
                  .is_ok());
  writer.join();
  EXPECT_EQ(received, payload);
}

TEST(FdTest, ReadExactReportsEofAsClosed) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  ASSERT_TRUE(pipe.value().write_end().write_all("ab", 2).is_ok());
  pipe.value().close_write();
  char buffer[4];
  Status status = pipe.value().read_end().read_exact(buffer, 4);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kClosed);
}

TEST(FdTest, ReadSomeReturnsZeroAtEof) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  pipe.value().close_write();
  char buffer[8];
  auto n = pipe.value().read_end().read_some(buffer, sizeof(buffer));
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(FdTest, DuplicateIsIndependent) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  auto dup = pipe.value().write_end().duplicate();
  ASSERT_TRUE(dup.is_ok());
  pipe.value().close_write();  // original gone; dup still writable
  EXPECT_TRUE(dup.value().write_all("x", 1).is_ok());
  char c;
  EXPECT_TRUE(pipe.value().read_end().read_exact(&c, 1).is_ok());
  EXPECT_EQ(c, 'x');
}

TEST(FdTest, NonblockingToggle) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  ASSERT_TRUE(pipe.value().read_end().set_nonblocking(true).is_ok());
  char c;
  auto n = pipe.value().read_end().read_some(&c, 1);
  // Non-blocking empty read fails with EAGAIN -> kUnavailable.
  ASSERT_FALSE(n.is_ok());
  EXPECT_EQ(n.error().code(), ErrorCode::kUnavailable);
  ASSERT_TRUE(pipe.value().read_end().set_nonblocking(false).is_ok());
}

TEST(FdTest, CloexecToggle) {
  auto pipe = Pipe::create(/*cloexec=*/false);
  ASSERT_TRUE(pipe.is_ok());
  EXPECT_TRUE(pipe.value().read_end().set_cloexec(true).is_ok());
  int flags = ::fcntl(pipe.value().read_end().get(), F_GETFD);
  EXPECT_TRUE(flags & FD_CLOEXEC);
}

}  // namespace
}  // namespace dionea::ipc
