#include "ipc/frame.hpp"

#include <thread>

#include <gtest/gtest.h>

#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

struct SocketPair {
  TcpStream client;
  TcpStream server;
};

SocketPair make_pair() {
  auto listener = TcpListener::bind(0);
  EXPECT_TRUE(listener.is_ok());
  auto client = TcpStream::connect_retry(listener.value().port(), 2000);
  EXPECT_TRUE(client.is_ok());
  auto server = listener.value().accept_timeout(2000);
  EXPECT_TRUE(server.is_ok());
  return SocketPair{std::move(client).value(), std::move(server).value()};
}

TEST(FrameTest, SendRecvRoundTrip) {
  SocketPair pair = make_pair();
  wire::Value message;
  message.set("cmd", "continue");
  message.set("tid", 7);
  ASSERT_TRUE(send_frame(pair.client, message).is_ok());
  auto received = recv_frame(pair.server);
  ASSERT_TRUE(received.is_ok());
  EXPECT_EQ(received.value(), message);
}

TEST(FrameTest, ManyFramesStayOrdered) {
  SocketPair pair = make_pair();
  for (int i = 0; i < 100; ++i) {
    wire::Value message;
    message.set("seq", i);
    ASSERT_TRUE(send_frame(pair.client, message).is_ok());
  }
  for (int i = 0; i < 100; ++i) {
    auto received = recv_frame(pair.server);
    ASSERT_TRUE(received.is_ok());
    EXPECT_EQ(received.value().get_int("seq"), i);
  }
}

TEST(FrameTest, LargePayload) {
  SocketPair pair = make_pair();
  wire::Value message;
  message.set("blob", std::string(1 << 20, 'x'));
  std::thread sender([&] {
    EXPECT_TRUE(send_frame(pair.client, message).is_ok());
  });
  auto received = recv_frame(pair.server);
  sender.join();
  ASSERT_TRUE(received.is_ok());
  EXPECT_EQ(received.value().get_string("blob").size(), 1u << 20);
}

TEST(FrameTest, BadMagicDetected) {
  SocketPair pair = make_pair();
  // Raw garbage instead of a frame header — the exact §5.3 "child
  // talking on its parent's socket" corruption signature.
  ASSERT_TRUE(pair.client.write_all("XXXXYYYY", 8).is_ok());
  auto received = recv_frame(pair.server);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kProtocol);
  EXPECT_NE(received.error().message().find("magic"), std::string::npos);
}

TEST(FrameTest, EofMidFrameIsClosed) {
  SocketPair pair = make_pair();
  // Valid magic, length 100, then hang up.
  char header[8] = {'D', 'N', 'E', 'A', 100, 0, 0, 0};
  ASSERT_TRUE(pair.client.write_all(header, 8).is_ok());
  ASSERT_TRUE(pair.client.write_all("partial", 7).is_ok());
  pair.client.close();
  auto received = recv_frame(pair.server);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kClosed);
}

TEST(FrameTest, RecvTimeoutExpires) {
  SocketPair pair = make_pair();
  auto received = recv_frame_timeout(pair.server, 50);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kTimeout);
}

TEST(FrameTest, RecvTimeoutDeliversWhenDataArrives) {
  SocketPair pair = make_pair();
  std::thread sender([&] {
    sleep_for_millis(30);
    wire::Value message;
    message.set("late", true);
    EXPECT_TRUE(send_frame(pair.client, message).is_ok());
  });
  auto received = recv_frame_timeout(pair.server, 2000);
  sender.join();
  ASSERT_TRUE(received.is_ok());
  EXPECT_TRUE(received.value().get_bool("late"));
}

TEST(FrameTest, OversizeLengthRejected) {
  SocketPair pair = make_pair();
  char header[8] = {'D', 'N', 'E', 'A',
                    '\xff', '\xff', '\xff', '\x7f'};  // ~2GiB claim
  ASSERT_TRUE(pair.client.write_all(header, 8).is_ok());
  auto received = recv_frame(pair.server);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kProtocol);
}

}  // namespace
}  // namespace dionea::ipc
