#include "ipc/frame.hpp"

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/fault.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

struct SocketPair {
  TcpStream client;
  TcpStream server;
};

SocketPair make_pair() {
  auto listener = TcpListener::bind(0);
  EXPECT_TRUE(listener.is_ok());
  auto client = TcpStream::connect_retry(listener.value().port(), 2000);
  EXPECT_TRUE(client.is_ok());
  auto server = listener.value().accept_timeout(2000);
  EXPECT_TRUE(server.is_ok());
  return SocketPair{std::move(client).value(), std::move(server).value()};
}

TEST(FrameTest, SendRecvRoundTrip) {
  SocketPair pair = make_pair();
  wire::Value message;
  message.set("cmd", "continue");
  message.set("tid", 7);
  ASSERT_TRUE(send_frame(pair.client, message).is_ok());
  auto received = recv_frame(pair.server);
  ASSERT_TRUE(received.is_ok());
  EXPECT_EQ(received.value(), message);
}

TEST(FrameTest, ManyFramesStayOrdered) {
  SocketPair pair = make_pair();
  for (int i = 0; i < 100; ++i) {
    wire::Value message;
    message.set("seq", i);
    ASSERT_TRUE(send_frame(pair.client, message).is_ok());
  }
  for (int i = 0; i < 100; ++i) {
    auto received = recv_frame(pair.server);
    ASSERT_TRUE(received.is_ok());
    EXPECT_EQ(received.value().get_int("seq"), i);
  }
}

TEST(FrameTest, LargePayload) {
  SocketPair pair = make_pair();
  wire::Value message;
  message.set("blob", std::string(1 << 20, 'x'));
  std::thread sender([&] {
    EXPECT_TRUE(send_frame(pair.client, message).is_ok());
  });
  auto received = recv_frame(pair.server);
  sender.join();
  ASSERT_TRUE(received.is_ok());
  EXPECT_EQ(received.value().get_string("blob").size(), 1u << 20);
}

TEST(FrameTest, BadMagicDetected) {
  SocketPair pair = make_pair();
  // Raw garbage instead of a frame header — the exact §5.3 "child
  // talking on its parent's socket" corruption signature.
  ASSERT_TRUE(pair.client.write_all("XXXXYYYY", 8).is_ok());
  auto received = recv_frame(pair.server);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kProtocol);
  EXPECT_NE(received.error().message().find("magic"), std::string::npos);
}

TEST(FrameTest, EofMidFrameIsClosed) {
  SocketPair pair = make_pair();
  // Valid magic, length 100, then hang up.
  char header[8] = {'D', 'N', 'E', 'A', 100, 0, 0, 0};
  ASSERT_TRUE(pair.client.write_all(header, 8).is_ok());
  ASSERT_TRUE(pair.client.write_all("partial", 7).is_ok());
  pair.client.close();
  auto received = recv_frame(pair.server);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kClosed);
}

TEST(FrameTest, RecvTimeoutExpires) {
  SocketPair pair = make_pair();
  auto received = recv_frame_timeout(pair.server, 50);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kTimeout);
}

TEST(FrameTest, RecvTimeoutDeliversWhenDataArrives) {
  SocketPair pair = make_pair();
  std::thread sender([&] {
    sleep_for_millis(30);
    wire::Value message;
    message.set("late", true);
    EXPECT_TRUE(send_frame(pair.client, message).is_ok());
  });
  auto received = recv_frame_timeout(pair.server, 2000);
  sender.join();
  ASSERT_TRUE(received.is_ok());
  EXPECT_TRUE(received.value().get_bool("late"));
}

// ---- FrameReader reassembly properties ----
// The reader's contract: however the byte stream is chopped — by the
// kernel, a slow peer, or injected short reads — the frames come out
// byte-identical and in order, and a timeout never loses buffered
// bytes. The tests below check that property exhaustively (every
// split point of a multi-frame stream) and stochastically (seeded
// short-read/EINTR injection on the fd.read path).

std::vector<wire::Value> property_frames() {
  std::vector<wire::Value> frames;
  wire::Value small;
  small.set("cmd", "step");
  small.set("tid", 3);
  frames.push_back(small);
  wire::Value binary;
  binary.set("blob", std::string("\x00\xff\x44\x4e\x45\x41\x01", 7));
  frames.push_back(binary);  // payload contains the magic bytes
  wire::Value nested;
  wire::Array entries;
  for (int i = 0; i < 5; ++i) {
    wire::Value entry;
    entry.set("line", i);
    entry.set("file", "test.ml");
    entries.push_back(entry);
  }
  nested.set("threads", wire::Value(entries));
  frames.push_back(nested);
  wire::Value flag;
  flag.set("ok", true);
  frames.push_back(flag);
  return frames;
}

// Capture the exact bytes send_frame puts on the wire for `frames`.
std::string canonical_stream(const std::vector<wire::Value>& frames) {
  SocketPair pair = make_pair();
  std::string stream;
  for (const wire::Value& frame : frames) {
    EXPECT_TRUE(send_frame(pair.client, frame).is_ok());
    char header[8];
    EXPECT_TRUE(pair.server.read_exact(header, 8).is_ok());
    std::uint32_t len = 0;
    std::memcpy(&len, header + 4, 4);
    std::string payload(len, '\0');
    EXPECT_TRUE(pair.server.read_exact(payload.data(), len).is_ok());
    stream.append(header, 8);
    stream.append(payload);
  }
  return stream;
}

// Drain whatever complete frames the reader can produce right now.
void drain(FrameReader& reader, TcpStream& stream,
           std::vector<wire::Value>* out, size_t want) {
  while (out->size() < want) {
    auto frame = reader.recv_timeout(stream, 20);
    if (!frame.is_ok()) {
      ASSERT_EQ(frame.error().code(), ErrorCode::kTimeout)
          << frame.error().to_string();
      return;  // incomplete — more bytes needed
    }
    out->push_back(std::move(frame).value());
  }
}

TEST(FrameTest, ReaderReassemblesAtEverySplitPoint) {
  const std::vector<wire::Value> frames = property_frames();
  const std::string stream = canonical_stream(frames);
  ASSERT_GT(stream.size(), 16u);

  for (size_t split = 1; split < stream.size(); ++split) {
    SocketPair pair = make_pair();
    FrameReader reader;
    std::vector<wire::Value> got;
    // First fragment: everything before the cut. The reader must hand
    // out exactly the frames completed so far and buffer the rest.
    ASSERT_TRUE(pair.client.write_all(stream.data(), split).is_ok());
    drain(reader, pair.server, &got, frames.size());
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "split " << split;
    }
    // Second fragment completes the stream.
    ASSERT_TRUE(pair.client
                    .write_all(stream.data() + split, stream.size() - split)
                    .is_ok());
    drain(reader, pair.server, &got, frames.size());
    ASSERT_EQ(got.size(), frames.size()) << "split " << split;
    for (size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(got[i], frames[i]) << "split " << split << " frame " << i;
    }
  }
}

TEST(FrameTest, ReaderSurvivesSeededShortReads) {
  const std::vector<wire::Value> frames = property_frames();
  // Short reads + EINTR on the read path only: recoverable by
  // contract, so every frame must still arrive intact and in order.
  for (std::uint64_t seed : {11ull, 4242ull, 987654321ull}) {
    fault::Config config;
    config.seed = seed;
    config.probability = 0.6;
    config.kinds = fault::kBitShortIo | fault::kBitEintr;
    config.site_filter = "fd.read";
    fault::Scope injection{config};

    SocketPair pair = make_pair();
    FrameReader reader;
    std::vector<wire::Value> got;
    for (int round = 0; round < 25; ++round) {
      for (const wire::Value& frame : frames) {
        ASSERT_TRUE(send_frame(pair.client, frame).is_ok());
      }
    }
    const size_t want = frames.size() * 25;
    Stopwatch watch;
    while (got.size() < want && watch.elapsed_seconds() < 10.0) {
      drain(reader, pair.server, &got, want);
    }
    ASSERT_EQ(got.size(), want) << "seed " << seed;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], frames[i % frames.size()])
          << "seed " << seed << " frame " << i;
    }
  }
}

TEST(FrameTest, OversizeLengthRejected) {
  SocketPair pair = make_pair();
  char header[8] = {'D', 'N', 'E', 'A',
                    '\xff', '\xff', '\xff', '\x7f'};  // ~2GiB claim
  ASSERT_TRUE(pair.client.write_all(header, 8).is_ok());
  auto received = recv_frame(pair.server);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kProtocol);
  EXPECT_NE(received.error().message().find("receive limit"),
            std::string::npos)
      << received.error().to_string();
}

// The incremental events-channel reader has its own header parse; a
// hostile length prefix must be rejected there too, before any payload
// buffer is sized, and the reader must stay usable for a later frame.
TEST(FrameTest, ReaderRejectsOversizeLengthAndRecovers) {
  SocketPair pair = make_pair();
  FrameReader reader;
  char header[8] = {'D', 'N', 'E', 'A',
                    '\xff', '\xff', '\xff', '\xff'};  // 4GiB-1 claim
  ASSERT_TRUE(pair.client.write_all(header, 8).is_ok());
  auto received = reader.recv_timeout(pair.server, 1000);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kProtocol);
  EXPECT_NE(received.error().message().find("receive limit"),
            std::string::npos);
  // The poisoned prefix was dropped; a well-formed frame goes through.
  wire::Value message;
  message.set("after", "storm");
  ASSERT_TRUE(send_frame(pair.client, message).is_ok());
  auto next = reader.recv_timeout(pair.server, 2000);
  ASSERT_TRUE(next.is_ok()) << next.error().to_string();
  EXPECT_EQ(next.value().get_string("after"), "storm");
}

// Default receive cap: exactly kMaxFrameBytes passes the check (it is
// a <= limit), one past it does not. No env override in this binary.
TEST(FrameTest, DefaultRecvCapIsCompileTimeLimit) {
  EXPECT_EQ(max_recv_frame_bytes(), kMaxFrameBytes);
}

}  // namespace
}  // namespace dionea::ipc
