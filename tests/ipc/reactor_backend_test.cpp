// The pluggable readiness backends and the sharded pool, exercised
// through the same Reactor surface on BOTH backends — poll(2) must be
// a faithful stand-in for epoll(7), including the nastiest contract:
// a callback closing its own fd mid-dispatch while the number gets
// reused by a fresh descriptor.
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipc/pipe.hpp"
#include "ipc/reactor.hpp"
#include "ipc/reactor_backend.hpp"
#include "ipc/reactor_pool.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

using BackendFactory = std::unique_ptr<ReactorBackend> (*)();

std::vector<BackendFactory> available_backends() {
  std::vector<BackendFactory> factories = {&make_poll_backend};
#if defined(__linux__)
  factories.push_back(&make_epoll_backend);
#endif
  return factories;
}

class ReactorBackendTest : public ::testing::TestWithParam<BackendFactory> {};

TEST_P(ReactorBackendTest, NamesItsBackend) {
  Reactor reactor(GetParam()());
  EXPECT_NE(reactor.backend_name(), nullptr);
  EXPECT_NE(std::string(reactor.backend_name()), "");
}

TEST_P(ReactorBackendTest, DispatchesReadable) {
  Reactor reactor(GetParam()());
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  int fired = 0;
  reactor.add_fd(pipe.value().read_end().get(), [&] {
    char c;
    (void)pipe.value().read_end().read_some(&c, 1);
    ++fired;
  });
  ASSERT_TRUE(pipe.value().write_end().write_all("x", 1).is_ok());
  (void)reactor.poll_once(500);
  EXPECT_EQ(fired, 1);
}

// The satellite fix, distilled: from inside its own readable callback
// a handler CLOSES the fd and removes it. A second fd registered in
// the same round — which the kernel may renumber onto the closed
// descriptor next round — must neither be dispatched with the dead
// handler nor miss its own first readiness.
TEST_P(ReactorBackendTest, CallbackMayCloseOwnFdMidDispatch) {
  Reactor reactor(GetParam()());
  auto a = Pipe::create();
  auto b = Pipe::create();
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  int a_fd = a.value().read_end().get();
  int b_fd = b.value().read_end().get();

  int a_fired = 0;
  int b_fired = 0;
  reactor.add_fd(a_fd, [&] {
    ++a_fired;
    // Close first, THEN remove: the reactor sees a remove for an fd
    // number the kernel may already have handed out again.
    (void)::close(a.value().read_end().release());
    reactor.remove_fd(a_fd);
  });
  reactor.add_fd(b_fd, [&] {
    char c;
    (void)b.value().read_end().read_some(&c, 1);
    ++b_fired;
  });

  // Both readable in the SAME dispatch round.
  ASSERT_TRUE(a.value().write_end().write_all("x", 1).is_ok());
  ASSERT_TRUE(b.value().write_end().write_all("y", 1).is_ok());
  (void)reactor.poll_once(500);
  (void)reactor.poll_once(50);
  EXPECT_EQ(a_fired, 1);
  EXPECT_EQ(b_fired, 1);

  // Reuse the dead number: a fresh pipe typically lands on a_fd. Its
  // callback — not the removed one — must fire.
  auto c = Pipe::create();
  ASSERT_TRUE(c.is_ok());
  int c_fired = 0;
  reactor.add_fd(c.value().read_end().get(), [&] {
    char ch;
    (void)c.value().read_end().read_some(&ch, 1);
    ++c_fired;
  });
  ASSERT_TRUE(c.value().write_end().write_all("z", 1).is_ok());
  (void)reactor.poll_once(500);
  EXPECT_EQ(c_fired, 1);
  EXPECT_EQ(a_fired, 1);  // the dead handler stayed dead
}

TEST_P(ReactorBackendTest, PeriodicTimerFiresAndStops) {
  Reactor reactor(GetParam()());
  int ticks = 0;
  int id = reactor.add_periodic(10, [&] { ++ticks; });
  Stopwatch watch;
  while (ticks < 3 && watch.elapsed_seconds() < 2.0) {
    (void)reactor.poll_once(20);
  }
  EXPECT_GE(ticks, 3);
  reactor.remove_periodic(id);
  int after = ticks;
  for (int i = 0; i < 5; ++i) (void)reactor.poll_once(15);
  EXPECT_EQ(ticks, after);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ReactorBackendTest,
                         ::testing::ValuesIn(available_backends()),
                         [](const auto& info) {
                           Reactor probe(info.param());
                           return std::string(probe.backend_name());
                         });

TEST(ReactorBackendEnvTest, EnvVarForcesPollBackend) {
  ::setenv("DIONEA_REACTOR_BACKEND", "poll", 1);
  Reactor reactor;
  EXPECT_EQ(std::string(reactor.backend_name()), "poll");
  ::unsetenv("DIONEA_REACTOR_BACKEND");
}

TEST(ReactorPoolTest, PinningIsStableAndInRange) {
  ReactorPool pool(4);
  ASSERT_TRUE(pool.start().is_ok());
  EXPECT_EQ(pool.shard_count(), 4);
  std::set<int> used;
  for (std::uint64_t id = 1; id <= 64; ++id) {
    int shard = pool.shard_for(id);
    EXPECT_EQ(shard, pool.shard_for(id));  // stable
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    used.insert(shard);
  }
  // Fibonacci hashing spreads sequential ids: all shards see work.
  EXPECT_EQ(used.size(), 4u);
  pool.stop();
}

TEST(ReactorPoolTest, PostedWorkRunsOnEveryShard) {
  ReactorPool pool(3);
  ASSERT_TRUE(pool.start().is_ok());
  std::atomic<int> ran{0};
  for (int s = 0; s < pool.shard_count(); ++s) {
    pool.shard(s).post([&] { ran.fetch_add(1); });
  }
  Stopwatch watch;
  while (ran.load() < 3 && watch.elapsed_seconds() < 2.0) {
    sleep_for_millis(2);
  }
  EXPECT_EQ(ran.load(), 3);
  // Cross-shard handoff: shard 0 posts to shard 2 from a callback.
  std::atomic<bool> relayed{false};
  pool.shard(0).post([&] {
    pool.shard(2).post([&] { relayed.store(true); });
  });
  Stopwatch relay_watch;
  while (!relayed.load() && relay_watch.elapsed_seconds() < 2.0) {
    sleep_for_millis(2);
  }
  EXPECT_TRUE(relayed.load());
  pool.stop();
  pool.stop();  // idempotent
}

TEST(ReactorPoolTest, DefaultShardCountIsBounded) {
  ReactorPool pool;
  EXPECT_GE(pool.shard_count(), 1);
  EXPECT_LE(pool.shard_count(), 8);
}

}  // namespace
}  // namespace dionea::ipc
