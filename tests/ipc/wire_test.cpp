#include "ipc/wire.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dionea::ipc::wire {
namespace {

Value round_trip(const Value& value) {
  std::string bytes;
  value.encode(&bytes);
  auto decoded = Value::decode(bytes);
  EXPECT_TRUE(decoded.is_ok()) << decoded.error().to_string();
  return decoded.is_ok() ? decoded.value() : Value();
}

TEST(WireValueTest, ScalarRoundTrips) {
  EXPECT_EQ(round_trip(Value(nullptr)), Value(nullptr));
  EXPECT_EQ(round_trip(Value(true)), Value(true));
  EXPECT_EQ(round_trip(Value(false)), Value(false));
  EXPECT_EQ(round_trip(Value(std::int64_t{0})), Value(std::int64_t{0}));
  EXPECT_EQ(round_trip(Value(std::int64_t{-1})), Value(std::int64_t{-1}));
  EXPECT_EQ(round_trip(Value(INT64_MAX)), Value(INT64_MAX));
  EXPECT_EQ(round_trip(Value(INT64_MIN)), Value(INT64_MIN));
  EXPECT_EQ(round_trip(Value(3.25)), Value(3.25));
  EXPECT_EQ(round_trip(Value(-0.0)), Value(-0.0));
  EXPECT_EQ(round_trip(Value("")), Value(""));
  EXPECT_EQ(round_trip(Value("hello")), Value("hello"));
  std::string binary("\x00\x01\xff\x7f", 4);
  EXPECT_EQ(round_trip(Value(binary)).as_string(), binary);
}

TEST(WireValueTest, ContainerRoundTrips) {
  Array arr{Value(1), Value("two"), Value(3.0), Value(nullptr)};
  EXPECT_EQ(round_trip(Value(arr)), Value(arr));

  Object obj;
  obj["alpha"] = Value(1);
  obj["beta"] = Value(Array{Value(true), Value(false)});
  Object inner;
  inner["deep"] = Value("value");
  obj["gamma"] = Value(inner);
  EXPECT_EQ(round_trip(Value(obj)), Value(obj));

  EXPECT_EQ(round_trip(Value(Array{})), Value(Array{}));
  EXPECT_EQ(round_trip(Value(Object{})), Value(Object{}));
}

TEST(WireValueTest, ObjectAccessors) {
  Value v;
  v.set("name", "dionea");
  v.set("port", 4257);
  v.set("ready", true);
  EXPECT_TRUE(v.has("name"));
  EXPECT_FALSE(v.has("missing"));
  EXPECT_EQ(v.get_string("name"), "dionea");
  EXPECT_EQ(v.get_int("port"), 4257);
  EXPECT_TRUE(v.get_bool("ready"));
  EXPECT_EQ(v.get_string("missing", "fallback"), "fallback");
  EXPECT_EQ(v.get_int("missing", -1), -1);
  EXPECT_TRUE(v.at("missing").is_null());
}

TEST(WireValueTest, AccessorsOnWrongTypeUseFallback) {
  Value v(42);
  EXPECT_TRUE(v.at("anything").is_null());
  EXPECT_EQ(v.as_string(), "");
  EXPECT_TRUE(v.as_array().empty());
  EXPECT_TRUE(v.as_object().empty());
  EXPECT_EQ(Value("str").as_int(9), 9);
  EXPECT_EQ(Value(2.5).as_int(), 2);  // numeric coercion
  EXPECT_DOUBLE_EQ(Value(3).as_double(), 3.0);
}

TEST(WireValueTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Value::decode("").is_ok());
  EXPECT_FALSE(Value::decode("Z").is_ok());
  EXPECT_FALSE(Value::decode("i123").is_ok());        // truncated int
  EXPECT_FALSE(Value::decode("s\x05\x00\x00\x00\x00\x00\x00\x00ab").is_ok());
  // Trailing bytes after a valid value are an error.
  std::string bytes;
  Value(1).encode(&bytes);
  bytes += "extra";
  EXPECT_FALSE(Value::decode(bytes).is_ok());
}

TEST(WireValueTest, DecodeRejectsHugeContainerClaim) {
  // An array claiming 2^40 entries must fail fast, not allocate.
  std::string bytes = "a";
  std::uint64_t huge = 1ull << 40;
  for (int i = 0; i < 8; ++i) {
    bytes += static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  auto decoded = Value::decode(bytes);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kProtocol);
}

TEST(WireValueTest, DecodeRejectsDeepNesting) {
  // 100 nested single-element arrays exceed the depth limit.
  std::string bytes;
  for (int i = 0; i < 100; ++i) {
    bytes += 'a';
    bytes += std::string("\x01\x00\x00\x00\x00\x00\x00\x00", 8);
  }
  bytes += 'n';
  auto decoded = Value::decode(bytes);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_NE(decoded.error().message().find("deep"), std::string::npos);
}

TEST(WireValueTest, ToJsonRendering) {
  Value v;
  v.set("n", Value(nullptr));
  v.set("s", "a\"b");
  v.set("list", Value(Array{Value(1), Value(true)}));
  EXPECT_EQ(v.to_json(), "{\"list\":[1,true],\"n\":null,\"s\":\"a\\\"b\"}");
}

// Property test: random values survive encode/decode byte-exactly.
class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

Value random_value(Rng& rng, int depth) {
  int kind = static_cast<int>(rng.next_below(depth >= 3 ? 5 : 7));
  switch (kind) {
    case 0: return Value(nullptr);
    case 1: return Value(rng.next_bool());
    case 2: return Value(static_cast<std::int64_t>(rng.next_u64()));
    case 3: return Value(rng.next_double() * 1e6 - 5e5);
    case 4: return Value(rng.next_word(0, 24));
    case 5: {
      Array arr;
      int count = static_cast<int>(rng.next_below(5));
      for (int i = 0; i < count; ++i) {
        arr.push_back(random_value(rng, depth + 1));
      }
      return Value(std::move(arr));
    }
    default: {
      Object obj;
      int count = static_cast<int>(rng.next_below(5));
      for (int i = 0; i < count; ++i) {
        obj[rng.next_word(1, 10)] = random_value(rng, depth + 1);
      }
      return Value(std::move(obj));
    }
  }
}

TEST_P(WireFuzzTest, RandomValueRoundTrips) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Value original = random_value(rng, 0);
    std::string bytes;
    original.encode(&bytes);
    auto decoded = Value::decode(bytes);
    ASSERT_TRUE(decoded.is_ok()) << decoded.error().to_string();
    EXPECT_EQ(decoded.value(), original);
    // Re-encoding is deterministic.
    std::string bytes2;
    decoded.value().encode(&bytes2);
    EXPECT_EQ(bytes, bytes2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Values(1, 2, 3, 17, 99, 1234, 31337));

// Property test: truncating a valid encoding at any byte fails cleanly.
TEST(WireFuzzTest, TruncationsNeverCrash) {
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    Value original = random_value(rng, 0);
    std::string bytes;
    original.encode(&bytes);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      auto decoded = Value::decode(bytes.substr(0, cut));
      EXPECT_FALSE(decoded.is_ok());
    }
  }
}

}  // namespace
}  // namespace dionea::ipc::wire
