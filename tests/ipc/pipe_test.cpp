#include "ipc/pipe.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace dionea::ipc {
namespace {

TEST(PipeTest, CreateGivesTwoValidEnds) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  EXPECT_TRUE(pipe.value().read_end().valid());
  EXPECT_TRUE(pipe.value().write_end().valid());
}

TEST(PipeTest, DataFlowsWriteToRead) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  ASSERT_TRUE(pipe.value().write_end().write_all("hello", 5).is_ok());
  char buffer[5];
  ASSERT_TRUE(pipe.value().read_end().read_exact(buffer, 5).is_ok());
  EXPECT_EQ(std::string(buffer, 5), "hello");
}

TEST(PipeTest, CloseWriteDeliversEof) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  pipe.value().close_write();
  EXPECT_FALSE(pipe.value().write_end().valid());
  char c;
  auto n = pipe.value().read_end().read_some(&c, 1);
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 0u);  // EOF
}

// The §6.4 mechanism in miniature: EOF only arrives once EVERY copy of
// the write end is closed — including copies inherited by a fork.
TEST(PipeTest, LeakedWriteEndCopyBlocksEof) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  auto leaked = pipe.value().write_end().duplicate();
  ASSERT_TRUE(leaked.is_ok());

  pipe.value().close_write();
  // The duplicate still exists: reads must not see EOF.
  ASSERT_TRUE(pipe.value().read_end().set_nonblocking(true).is_ok());
  char c;
  auto n = pipe.value().read_end().read_some(&c, 1);
  ASSERT_FALSE(n.is_ok());  // EAGAIN, not EOF
  EXPECT_EQ(n.error().code(), ErrorCode::kUnavailable);

  leaked.value().reset();  // close the last copy
  auto eof = pipe.value().read_end().read_some(&c, 1);
  ASSERT_TRUE(eof.is_ok());
  EXPECT_EQ(eof.value(), 0u);
}

TEST(PipeTest, SurvivesFork) {
  auto pipe = Pipe::create();
  ASSERT_TRUE(pipe.is_ok());
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    pipe.value().close_read();
    bool ok = pipe.value().write_end().write_all("from child", 10).is_ok();
    ::_exit(ok ? 0 : 1);
  }
  pipe.value().close_write();
  char buffer[10];
  ASSERT_TRUE(pipe.value().read_end().read_exact(buffer, 10).is_ok());
  EXPECT_EQ(std::string(buffer, 10), "from child");
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(PipeTest, CloexecFlagHonored) {
  auto plain = Pipe::create(/*cloexec=*/false);
  ASSERT_TRUE(plain.is_ok());
  int flags = ::fcntl(plain.value().read_end().get(), F_GETFD);
  EXPECT_FALSE(flags & FD_CLOEXEC);

  auto cloexec = Pipe::create(/*cloexec=*/true);
  ASSERT_TRUE(cloexec.is_ok());
  flags = ::fcntl(cloexec.value().read_end().get(), F_GETFD);
  EXPECT_TRUE(flags & FD_CLOEXEC);
}

}  // namespace
}  // namespace dionea::ipc
