// Session transport behaviour (most command coverage lives in the
// debugger suites; this focuses on the client-side plumbing).
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::client {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

TEST(SessionTest, AttachToNothingTimesOut) {
  // Bind-then-close to get a dead port.
  std::uint16_t port;
  {
    auto listener = ipc::TcpListener::bind(0);
    ASSERT_TRUE(listener.is_ok());
    port = listener.value().port();
  }
  auto session = Session::attach(port, 200);
  ASSERT_FALSE(session.is_ok());
}

TEST(SessionTest, PidDiscoveredOnAttach) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  EXPECT_EQ(session->pid(), getpid());
  EXPECT_EQ(session->port(), harness.server().port());
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(SessionTest, PollEventTimeoutReturnsEmpty) {
  DebugHarness harness("sleep(1)",
                       HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();
  // Drain whatever startup produced (main's thread_started), then the
  // quiet program yields nothing further.
  while (true) {
    auto event = session->poll_event(100);
    ASSERT_TRUE(event.is_ok());
    if (!event.value().has_value()) break;
  }
  auto none = session->poll_event(50);
  ASSERT_TRUE(none.is_ok());
  EXPECT_FALSE(none.value().has_value());
  harness.vm().request_exit(0);
  harness.join();
}

TEST(SessionTest, WaitEventQueuesOthersForReplay) {
  DebugHarness harness(
      "t = spawn(fn() return 1 end)\njoin(t)\nx = 2",
      HarnessOptions{.stop_at_entry = true});
  auto* session = harness.launch();
  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());
  ASSERT_TRUE(session->cont(entry.value().tid).is_ok());
  auto started = session->wait_event("thread_started", 5000);
  ASSERT_TRUE(started.is_ok());
  auto ended = session->wait_event("thread_exited", 5000);
  ASSERT_TRUE(ended.is_ok());
  harness.join();
}

TEST(SessionTest, SkippedEventsReplayInOrder) {
  DebugHarness harness(
      "t1 = spawn(fn() return 1 end)\n"
      "join(t1)\n"
      "t2 = spawn(fn() return 2 end)\n"
      "join(t2)",
      HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();
  harness.join();
  // Wait for a LATER event kind first: both exits.
  auto exit1 = session->wait_event("thread_exited", 5000);
  ASSERT_TRUE(exit1.is_ok());
  // The two thread_started events were skipped and must replay.
  EXPECT_GE(session->queued_events(), 1u);
  auto started1 = session->wait_event("thread_started", 5000);
  ASSERT_TRUE(started1.is_ok());
  auto started2 = session->wait_event("thread_started", 5000);
  ASSERT_TRUE(started2.is_ok());
  EXPECT_NE(started1.value().payload.get_int("tid"),
            started2.value().payload.get_int("tid"));
}

TEST(SessionTest, RequestsHaveMonotonicSeqs) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  for (int i = 0; i < 50; ++i) {
    auto pong = session->ping();
    ASSERT_TRUE(pong.is_ok()) << i;
  }
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(SessionTest, ErrorResponseSurfacesMessage) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  Status clear = session->clear_breakpoint(999);
  EXPECT_FALSE(clear.is_ok());
  EXPECT_NE(clear.to_string().find("no such breakpoint"), std::string::npos);
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

}  // namespace
}  // namespace dionea::client
