// Crash-resilient debug sessions: a SIGKILL'd debuggee surfaces as a
// clean process-crashed event (no hang, no zombie), a broken transport
// can be reconnected with breakpoints preserved, and heartbeat silence
// unmasks half-open peers on both sides of the protocol.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "client/client.hpp"
#include "debugger/server.hpp"
#include "ipc/frame.hpp"
#include "ipc/socket.hpp"
#include "mp/process.hpp"
#include "support/fault.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"
#include "testutil.hpp"
#include "vm/interp.hpp"

namespace dionea::client {
namespace {

namespace proto = dbg::proto;

// A debuggee in a real forked process: Interp + DebugServer publishing
// through `port_file`, running `program`. Mirrors how `dioneas` hosts
// a debuggee, but inside the test binary so SIGKILL has a real victim.
mp::Process spawn_debuggee_or_die(const std::string& port_file,
                                  const std::string& program,
                                  int heartbeat_millis) {
  auto proc = mp::Process::spawn([port_file, program, heartbeat_millis] {
    vm::Interp interp;
    dbg::DebugServer::Options options;
    options.port_file = port_file;
    options.stop_at_entry = true;
    options.heartbeat_interval_millis = heartbeat_millis;
    dbg::DebugServer server(interp.vm(), options);
    server.register_source("prog.ml", program);
    if (!server.start().is_ok()) return 9;
    vm::RunResult run = interp.run_string(program, "prog.ml");
    server.stop();
    return run.ok ? 0 : 1;
  });
  EXPECT_TRUE(proc.is_ok());
  return std::move(proc).value();
}

// The acceptance scenario: SIGKILL the debuggee mid-step; the client
// must report process-crashed promptly, and the child must be
// reapable with the kill signal — no hang anywhere, no zombie left.
TEST(CrashResilienceTest, SigkilledDebuggeeYieldsCrashEvent) {
  auto tmp = TempDir::create("crash-test");
  ASSERT_TRUE(tmp.is_ok());
  const std::string ports = tmp.value().file("ports");
  const std::string program =
      "i = 0\n"
      "while i < 100000\n"
      "  sleep(0.01)\n"
      "  i = i + 1\n"
      "end";
  mp::Process debuggee = spawn_debuggee_or_die(ports, program, 100);
  ASSERT_TRUE(debuggee.valid());
  int pid = static_cast<int>(debuggee.pid());

  std::unique_ptr<Client> cc = Client::discover(ports);
  auto handle = cc->attach(pid, 5000);
  ASSERT_TRUE(handle.is_ok()) << handle.error().to_string();
  Session* session_ptr = cc->session(handle.value());
  ASSERT_NE(session_ptr, nullptr);

  // Drive the session: entry stop, one step — the kill lands mid-step.
  auto entry = session_ptr->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok()) << entry.error().to_string();
  ASSERT_TRUE(session_ptr->step(entry.value().tid).is_ok());
  auto stepped = session_ptr->wait_stopped(5000);
  ASSERT_TRUE(stepped.is_ok()) << stepped.error().to_string();
  ASSERT_TRUE(session_ptr->cont(stepped.value().tid).is_ok());

  ASSERT_EQ(::kill(pid, SIGKILL), 0);

  bool crashed = false;
  Stopwatch watch;
  while (!crashed && watch.elapsed_seconds() < 5.0) {
    auto events = cc->poll_events(50);
    ASSERT_TRUE(events.is_ok()) << events.error().to_string();
    for (const Client::SessionEvent& se : events.value()) {
      if (se.session != handle.value()) continue;
      // The death must read as a crash, not a clean exit.
      EXPECT_NE(se.event.kind, proto::Event::kProcessExited);
      if (se.event.kind == proto::Event::kProcessCrashed) {
        EXPECT_EQ(se.event.payload.get_int("pid"), pid);
        crashed = true;
      }
    }
  }
  EXPECT_TRUE(crashed) << "no process-crashed event within 5s";
  // Once reported, the dead session stays muted.
  auto quiet = cc->poll_events(10);
  ASSERT_TRUE(quiet.is_ok());
  EXPECT_TRUE(quiet.value().empty());

  // Reap: the child died of exactly SIGKILL and is not a zombie.
  auto code = debuggee.wait();
  ASSERT_TRUE(code.is_ok()) << code.error().to_string();
  EXPECT_EQ(code.value(), -SIGKILL);
  int status = 0;
  EXPECT_LT(::waitpid(static_cast<pid_t>(pid), &status, WNOHANG), 0);
}

// In-process debuggee (like DebugHarness, but the test keeps direct
// control of the session pointers, which reconnect invalidates).
struct LocalDebuggee {
  explicit LocalDebuggee(std::string program,
                         int heartbeat_millis = 100)
      : program_(std::move(program)) {
    auto tmp = TempDir::create("resilience");
    DIONEA_CHECK(tmp.is_ok(), "tempdir");
    tmp_ = std::make_unique<TempDir>(std::move(tmp).value());
    interp_ = std::make_unique<vm::Interp>();
    dbg::DebugServer::Options options;
    options.port_file = ports();
    options.stop_at_entry = true;
    options.heartbeat_interval_millis = heartbeat_millis;
    server_ = std::make_unique<dbg::DebugServer>(interp_->vm(), options);
    server_->register_source("test.ml", program_);
    DIONEA_CHECK(server_->start().is_ok(), "server start");
    runner_ = std::thread([this] {
      vm::RunResult run = interp_->run_string(program_, "test.ml");
      if (interp_->vm().is_forked_child()) {
        std::fflush(nullptr);
        ::_exit(run.exited ? run.exit_code : (run.ok ? 0 : 1));
      }
    });
  }

  ~LocalDebuggee() {
    server_->stop();  // resumes parked threads
    interp_->vm().request_exit(0);
    if (runner_.joinable()) runner_.join();
    server_->stop();
  }

  std::string ports() const { return tmp_->file("ports"); }
  dbg::DebugServer& server() { return *server_; }

  std::string program_;
  std::unique_ptr<TempDir> tmp_;
  std::unique_ptr<vm::Interp> interp_;
  std::unique_ptr<dbg::DebugServer> server_;
  std::thread runner_;
};

TEST(CrashResilienceTest, ReconnectPreservesBreakpoints) {
  LocalDebuggee debuggee(
      "a = 1\n"
      "b = 2\n"
      "c = a + b\n"  // line 3: breakpoint survives the reconnect
      "puts(c)");
  std::unique_ptr<Client> cc = Client::discover(debuggee.ports());
  int pid = static_cast<int>(::getpid());
  auto handle = cc->attach(pid, 5000);
  ASSERT_TRUE(handle.is_ok()) << handle.error().to_string();
  Session* session = cc->session(handle.value());
  ASSERT_NE(session, nullptr);

  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok()) << entry.error().to_string();
  std::int64_t tid = entry.value().tid;
  ASSERT_TRUE(session->set_breakpoint("test.ml", 3).is_ok());
  ASSERT_EQ(session->breakpoints_set().size(), 1u);

  // The transport dies without a goodbye (client crash from the
  // server's view, server crash from ours).
  session->hard_close();
  EXPECT_FALSE(session->connected());
  auto events = cc->poll_events(10);
  ASSERT_TRUE(events.is_ok());
  ASSERT_EQ(events.value().size(), 1u);
  EXPECT_EQ(events.value()[0].event.kind, proto::Event::kProcessCrashed);

  ReconnectPolicy policy;
  policy.max_attempts = 20;
  policy.initial_delay_millis = 20;
  policy.max_delay_millis = 200;
  auto revived = cc->reconnect(handle.value(), policy);
  ASSERT_TRUE(revived.is_ok()) << revived.error().to_string();
  session = revived.value();  // old Session object is gone
  EXPECT_TRUE(session->connected());
  EXPECT_EQ(session->pid(), pid);
  // The breakpoint came back with the session...
  ASSERT_EQ(session->breakpoints_set().size(), 1u);
  EXPECT_EQ(session->breakpoints_set()[0].file, "test.ml");
  EXPECT_EQ(session->breakpoints_set()[0].line, 3);
  // ...and actually fires: the debuggee (still parked at entry — the
  // paused-thread state itself is not preserved, reconnect only
  // re-arms breakpoints) runs to line 3.
  ASSERT_TRUE(session->cont(tid).is_ok());
  auto hit = session->wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok()) << hit.error().to_string();
  EXPECT_EQ(hit.value().reason, "breakpoint");
  EXPECT_EQ(hit.value().line, 3);
  ASSERT_TRUE(session->cont(hit.value().tid).is_ok());
  // A revived session reports events again (none pending, no crash).
  auto after = cc->poll_events(10);
  ASSERT_TRUE(after.is_ok());
}

// A peer whose TCP connection stays open but that stops beaconing is
// dead: the session must declare kClosed within the heartbeat budget,
// not wedge until some much larger request timeout.
TEST(CrashResilienceTest, HeartbeatSilenceMarksPeerDead) {
  auto listener = ipc::TcpListener::bind();
  ASSERT_TRUE(listener.is_ok());
  std::atomic<bool> silence_detected{false};
  std::thread fake_server([&listener, &silence_detected] {
    auto control = listener.value().accept_timeout(5000);
    ASSERT_TRUE(control.is_ok());
    auto control_hello = ipc::recv_frame_timeout(control.value(), 2000);
    ASSERT_TRUE(control_hello.is_ok());
    auto events = listener.value().accept_timeout(5000);
    ASSERT_TRUE(events.is_ok());
    auto events_hello = ipc::recv_frame_timeout(events.value(), 2000);
    ASSERT_TRUE(events_hello.is_ok());
    auto ping = ipc::recv_frame_timeout(control.value(), 2000);
    ASSERT_TRUE(ping.is_ok());
    ipc::wire::Value pong;
    pong.set("re", ping.value().get_int("seq"));
    pong.set("ok", true);
    pong.set("pid", 4242);
    pong.set("heartbeat_ms", 100);  // promises beacons, never sends one
    ASSERT_TRUE(ipc::send_frame(control.value(), pong).is_ok());
    // Keep both sockets open and stay silent until the client has
    // declared us dead (hard cap only as a backstop — a fixed sleep
    // here either wastes a second or cuts the test short on a slow
    // box).
    test::poll_until([&silence_detected] { return silence_detected.load(); },
                     10'000);
  });

  auto session = Session::attach(listener.value().port(), 2000);
  ASSERT_TRUE(session.is_ok()) << session.error().to_string();
  Session* session_ptr = session.value().get();
  EXPECT_EQ(session_ptr->pid(), 4242);
  EXPECT_EQ(session_ptr->heartbeat_timeout_millis(), 500);

  Stopwatch watch;
  auto event = session_ptr->poll_event(5000);
  double waited = watch.elapsed_seconds();
  ASSERT_FALSE(event.is_ok());
  EXPECT_EQ(event.error().code(), ErrorCode::kClosed);
  EXPECT_FALSE(session_ptr->connected());
  // Detected at the ~500ms silence budget, far before the 5s poll.
  EXPECT_LT(waited, 3.0);
  silence_detected.store(true);
  fake_server.join();
}

// The server side of the same defense: a client that vanishes without
// detaching is noticed by the failing beacon and its session dropped,
// so a later client can attach.
TEST(CrashResilienceTest, ServerDropsSilentlyDeadClient) {
  LocalDebuggee debuggee("x = 1\nputs(x)", /*heartbeat_millis=*/100);
  std::unique_ptr<Client> cc = Client::discover(debuggee.ports());
  int pid = static_cast<int>(::getpid());
  auto handle = cc->attach(pid, 5000);
  ASSERT_TRUE(handle.is_ok()) << handle.error().to_string();
  Session* attached_s = cc->session(handle.value());
  ASSERT_NE(attached_s, nullptr);
  ASSERT_TRUE(debuggee.server().client_connected());

  // Beacons flow while the session is healthy (the client consumes
  // them invisibly; anything real — e.g. the stop-at-entry event —
  // just passes through this drain loop).
  Stopwatch beacon_watch;
  while (debuggee.server().heartbeats_sent() == 0 &&
         beacon_watch.elapsed_seconds() < 2.0) {
    auto drained = attached_s->poll_event(20);
    ASSERT_TRUE(drained.is_ok()) << drained.error().to_string();
  }
  EXPECT_GT(debuggee.server().heartbeats_sent(), 0u);

  attached_s->hard_close();  // no detach: a crashed client

  EXPECT_TRUE(test::poll_until(
      [&debuggee] { return !debuggee.server().client_connected(); }))
      << "server never noticed the dead client";

  // The slot is free again: a fresh attach succeeds.
  auto revived = cc->reconnect(handle.value());
  ASSERT_TRUE(revived.is_ok()) << revived.error().to_string();
  EXPECT_TRUE(revived.value()->connected());
  auto resumed = revived.value()->cont_all();
  EXPECT_TRUE(resumed.is_ok()) << resumed.to_string();
}

// Whole-session sweep under recoverable injected faults: a debug
// session driven over a fault-ridden transport must behave exactly as
// one over a clean transport.
TEST(CrashResilienceTest, SessionSweepUnderRecoverableFaults) {
  for (std::uint64_t seed : {201ull, 202ull, 203ull, 204ull}) {
    fault::Scope scope(fault::Config{
        .seed = seed,
        .probability = 0.15,
        .kinds = fault::kBitEintr | fault::kBitShortIo | fault::kBitDelay,
        .site_filter = "fd."});
    test::DebugHarness harness(
        "a = 1\n"
        "b = a + 1\n"
        "c = b + 1\n"
        "puts(c)");
    auto* session = harness.launch();
    auto entry = session->wait_stopped(5000);
    ASSERT_TRUE(entry.is_ok()) << "seed " << seed << ": "
                               << entry.error().to_string();
    ASSERT_TRUE(session->set_breakpoint("test.ml", 3).is_ok());
    ASSERT_TRUE(session->cont(entry.value().tid).is_ok());
    auto hit = session->wait_stopped(5000);
    ASSERT_TRUE(hit.is_ok()) << "seed " << seed << ": "
                             << hit.error().to_string();
    EXPECT_EQ(hit.value().line, 3);
    ASSERT_TRUE(session->clear_breakpoint(0).is_ok());
    ASSERT_TRUE(session->cont(hit.value().tid).is_ok());
    auto result = harness.join();
    EXPECT_TRUE(result.ok) << "seed " << seed;
    EXPECT_EQ(harness.output(), "3\n") << "seed " << seed;
  }
}

}  // namespace
}  // namespace dionea::client
