// The command shell (Fig. 2) driven headlessly.
#include <gtest/gtest.h>

#include "client/console.hpp"
#include "testutil.hpp"

namespace dionea::client {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

class ConsoleTest : public ::testing::Test {
 protected:
  void start(const std::string& program,
             test::HarnessOptions options = {.stop_at_entry = true}) {
    harness_ = std::make_unique<DebugHarness>(program, options);
    harness_->launch();
    console_ = std::make_unique<Console>(harness_->client());
  }

  std::string run(const std::string& line) { return console_->execute(line); }

  std::unique_ptr<DebugHarness> harness_;
  std::unique_ptr<Console> console_;
};

TEST_F(ConsoleTest, HelpAndUnknown) {
  start("x = 1");
  EXPECT_NE(run("help").find("break <file>:<line>"), std::string::npos);
  EXPECT_NE(run("frobnicate"), "");
  EXPECT_EQ(run(""), "");
  EXPECT_EQ(run("   "), "");
  (void)harness_->session()->wait_stopped(5000);
  run("c");
  harness_->join();
}

TEST_F(ConsoleTest, ProcsListsAttached) {
  start("x = 1");
  std::string out = run("procs");
  EXPECT_NE(out.find(std::to_string(getpid())), std::string::npos);
  (void)harness_->session()->wait_stopped(5000);
  run("c");
  harness_->join();
}

TEST_F(ConsoleTest, FullBreakpointFlow) {
  start(
      "fn add(a, b)\n"    // 1
      "  c = a + b\n"     // 2
      "  return c\n"      // 3
      "end\n"
      "r = add(1, 2)\n"   // 5
      "puts(r)");
  auto* session = harness_->session();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());

  EXPECT_NE(run("break test.ml:3").find("breakpoint 1"), std::string::npos);
  run("use " + std::to_string(getpid()) + " 1");
  run("c");
  auto hit = session->wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok());

  std::string threads = run("threads");
  EXPECT_NE(threads.find("suspended"), std::string::npos);

  std::string locals = run("locals");
  EXPECT_NE(locals.find("a = 1"), std::string::npos);
  EXPECT_NE(locals.find("b = 2"), std::string::npos);
  EXPECT_NE(locals.find("c = 3"), std::string::npos);

  std::string frames = run("frames");
  EXPECT_NE(frames.find("#0 add at test.ml:3"), std::string::npos);
  EXPECT_NE(frames.find("#1 <main>"), std::string::npos);

  std::string source = run("source");
  EXPECT_NE(source.find("fn add(a, b)"), std::string::npos);

  std::string globals = run("globals");
  EXPECT_NE(globals.find("add = <fn add>"), std::string::npos);

  std::string eval_out = run("p a * 100 + b");
  EXPECT_NE(eval_out.find("102"), std::string::npos);
  EXPECT_NE(run("p").find("usage"), std::string::npos);
  EXPECT_NE(run("p no_such + 1").find("undefined"), std::string::npos);

  run("delete 1");
  run("c");
  ASSERT_TRUE(harness_->join().ok);
  EXPECT_EQ(harness_->output(), "3\n");
}

TEST_F(ConsoleTest, EventsDrainPending) {
  start("t = spawn(fn() return 1 end)\njoin(t)",
        test::HarnessOptions{.stop_at_entry = false});
  harness_->join();
  std::string events = run("events");
  EXPECT_NE(events.find("thread_started"), std::string::npos);
}

TEST_F(ConsoleTest, QuitSetsFlag) {
  start("x = 1");
  EXPECT_FALSE(console_->quit_requested());
  run("quit");
  EXPECT_TRUE(console_->quit_requested());
  (void)harness_->session()->wait_stopped(5000);
  run("c");
  harness_->join();
}

TEST_F(ConsoleTest, UsageMessagesForBadArgs) {
  start("x = 1");
  EXPECT_NE(run("use").find("usage"), std::string::npos);
  EXPECT_NE(run("break nowhere").find("usage"), std::string::npos);
  EXPECT_NE(run("delete xyz").find("usage"), std::string::npos);
  EXPECT_NE(run("disturb").find("usage"), std::string::npos);
  (void)harness_->session()->wait_stopped(5000);
  run("c");
  harness_->join();
}

TEST_F(ConsoleTest, SessionVerbsAndPrompt) {
  start("x = 1");
  ASSERT_TRUE(harness_->session()->wait_stopped(5000).is_ok());
  // No view selected yet: bare prompt.
  EXPECT_EQ(console_->prompt(), "dionea> ");
  std::string listing = run("session list");
  EXPECT_NE(listing.find(std::to_string(getpid())), std::string::npos);
  std::string used =
      run("session use " + std::to_string(harness_->handle().id));
  EXPECT_NE(used.find("view: session"), std::string::npos);
  // The prompt now names the active session.
  EXPECT_NE(console_->prompt().find("[s"), std::string::npos);
  EXPECT_NE(run("session").find("usage"), std::string::npos);
  EXPECT_NE(run("session use 999999").find("no session"), std::string::npos);
  run("c");
  harness_->join();
}

TEST_F(ConsoleTest, SingleSessionAutoActivates) {
  start("x = 1");
  ASSERT_TRUE(harness_->session()->wait_stopped(5000).is_ok());
  // No `use` issued: console falls back to the only session.
  std::string threads = run("threads");
  EXPECT_NE(threads.find("main"), std::string::npos);
  run("c");
  harness_->join();
}

}  // namespace
}  // namespace dionea::client
