// MultiClient: port-file adoption, 1-client-N-sessions (§4.1), debug
// view multiplexing (§4.2).
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::client {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

TEST(MultiClientTest, RefreshOnEmptyFileFindsNothing) {
  auto tmp = TempDir::create("mc-test");
  ASSERT_TRUE(tmp.is_ok());
  MultiClient mc(tmp.value().file("ports"));
  auto added = mc.refresh(200);
  ASSERT_TRUE(added.is_ok());
  EXPECT_EQ(added.value(), 0);
  EXPECT_EQ(mc.session_count(), 0u);
  EXPECT_EQ(mc.session(1), nullptr);
}

TEST(MultiClientTest, StaleRecordForDeadProcessSkipped) {
  auto tmp = TempDir::create("mc-test");
  ASSERT_TRUE(tmp.is_ok());
  ipc::PortFile file(tmp.value().file("ports"));
  // A record for a process that is long gone.
  std::uint16_t dead_port;
  {
    auto listener = ipc::TcpListener::bind(0);
    ASSERT_TRUE(listener.is_ok());
    dead_port = listener.value().port();
  }
  ASSERT_TRUE(file.publish(ipc::PortRecord{999'999, 1, dead_port, 0}).is_ok());
  MultiClient mc(tmp.value().file("ports"));
  auto added = mc.refresh(300);
  ASSERT_TRUE(added.is_ok());
  EXPECT_EQ(added.value(), 0);
}

TEST(MultiClientTest, ForkGrowsSessionsToTwo) {
  DebugHarness harness(
      "pid = fork(fn()\n"
      "  sleep(0.3)\n"
      "end)\n"
      "waitpid(pid)",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  (void)harness.launch();
  EXPECT_EQ(harness.client().session_count(), 1u);
  auto child = harness.client().await_new_process(5000);
  ASSERT_TRUE(child.is_ok());
  EXPECT_EQ(harness.client().session_count(), 2u);
  EXPECT_EQ(harness.client().pids().size(), 2u);

  auto stop = child.value()->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  ASSERT_TRUE(child.value()->cont(stop.value().tid).is_ok());
  harness.join();
}

TEST(MultiClientTest, ActivateValidatesProcessAndThread) {
  DebugHarness harness("sleep(1)",
                       HarnessOptions{.stop_at_entry = false});
  (void)harness.launch();
  MultiClient& mc = harness.client();
  int pid = getpid();

  EXPECT_FALSE(mc.activate(123456, 1).is_ok());   // no such process
  EXPECT_FALSE(mc.activate(pid, 77).is_ok());     // no such thread
  EXPECT_FALSE(mc.active_view().valid());

  ASSERT_TRUE(mc.activate(pid, 1).is_ok());
  EXPECT_TRUE(mc.active_view().valid());
  EXPECT_EQ(mc.active_view().pid, pid);
  EXPECT_EQ(mc.active_view().tid, 1);

  harness.vm().request_exit(0);
  harness.join();
}

TEST(MultiClientTest, ActiveSourceAndFramesFollowView) {
  DebugHarness harness(
      "fn f()\n"
      "  sleep(1)\n"
      "end\n"
      "f()",
      HarnessOptions{.stop_at_entry = false});
  (void)harness.launch();
  MultiClient& mc = harness.client();
  sleep_for_millis(100);  // let it get into f()/sleep

  ASSERT_TRUE(mc.activate(getpid(), 1).is_ok());
  auto source = mc.active_source();
  ASSERT_TRUE(source.is_ok());
  EXPECT_NE(source.value().find("fn f()"), std::string::npos);

  auto frames = mc.active_frames();
  ASSERT_TRUE(frames.is_ok());
  ASSERT_EQ(frames.value().size(), 2u);
  EXPECT_EQ(frames.value()[0].function, "f");

  harness.vm().request_exit(0);
  harness.join();
}

TEST(MultiClientTest, PollAllEventsAcrossSessions) {
  DebugHarness harness(
      "pid = fork(fn()\n"
      "  t = spawn(fn() return 1 end)\n"
      "  join(t)\n"
      "end)\n"
      "waitpid(pid)\n"
      "t2 = spawn(fn() return 2 end)\n"
      "join(t2)",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  (void)harness.launch();
  auto child = harness.client().await_new_process(5000);
  ASSERT_TRUE(child.is_ok());
  auto stop = child.value()->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  ASSERT_TRUE(child.value()->cont(stop.value().tid).is_ok());
  harness.join();

  // Both sessions produced thread events; poll_all sees both pids.
  std::set<int> pids_with_events;
  for (int round = 0; round < 20; ++round) {
    auto events = harness.client().poll_all_events(50);
    if (!events.is_ok()) break;  // a session may be gone — fine
    for (const auto& [pid, event] : events.value()) {
      pids_with_events.insert(pid);
    }
    if (pids_with_events.size() >= 2) break;
  }
  EXPECT_GE(pids_with_events.size(), 1u);
  EXPECT_EQ(pids_with_events.count(getpid()), 1u);
}

TEST(MultiClientTest, ClaimPreventsHandout) {
  auto tmp = TempDir::create("mc-test");
  ASSERT_TRUE(tmp.is_ok());
  MultiClient mc(tmp.value().file("ports"));
  // claim of unknown pid is a no-op
  mc.claim(12345);
  auto none = mc.await_new_process(100);
  EXPECT_FALSE(none.is_ok());
  EXPECT_EQ(none.error().code(), ErrorCode::kTimeout);
}

}  // namespace
}  // namespace dionea::client
