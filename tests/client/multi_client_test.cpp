// Client (discover mode, the MultiClient engine underneath): port-file
// adoption, 1-client-N-sessions (§4.1), debug view multiplexing (§4.2).
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::client {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

TEST(MultiClientTest, RefreshOnEmptyFileFindsNothing) {
  auto tmp = TempDir::create("mc-test");
  ASSERT_TRUE(tmp.is_ok());
  std::unique_ptr<Client> cc = Client::discover(tmp.value().file("ports"));
  auto added = cc->refresh(200);
  ASSERT_TRUE(added.is_ok());
  EXPECT_EQ(added.value(), 0);
  EXPECT_EQ(cc->session_count(), 0u);
  EXPECT_EQ(cc->session(SessionHandle{1}), nullptr);
  EXPECT_FALSE(cc->handle_for_pid(1).valid());
  EXPECT_FALSE(cc->hub_mode());
}

TEST(MultiClientTest, StaleRecordForDeadProcessSkipped) {
  auto tmp = TempDir::create("mc-test");
  ASSERT_TRUE(tmp.is_ok());
  ipc::PortFile file(tmp.value().file("ports"));
  // A record for a process that is long gone.
  std::uint16_t dead_port;
  {
    auto listener = ipc::TcpListener::bind(0);
    ASSERT_TRUE(listener.is_ok());
    dead_port = listener.value().port();
  }
  ASSERT_TRUE(file.publish(ipc::PortRecord{999'999, 1, dead_port, 0}).is_ok());
  std::unique_ptr<Client> cc = Client::discover(tmp.value().file("ports"));
  auto added = cc->refresh(300);
  ASSERT_TRUE(added.is_ok());
  EXPECT_EQ(added.value(), 0);
}

TEST(MultiClientTest, ForkGrowsSessionsToTwo) {
  DebugHarness harness(
      "pid = fork(fn()\n"
      "  sleep(0.3)\n"
      "end)\n"
      "waitpid(pid)",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  (void)harness.launch();
  EXPECT_EQ(harness.client().session_count(), 1u);
  auto child_h = harness.client().attach_any(5000);
  ASSERT_TRUE(child_h.is_ok());
  Session* child = harness.client().session(child_h.value());
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(harness.client().session_count(), 2u);
  EXPECT_EQ(harness.client().sessions().size(), 2u);
  // Discover-mode handles are pids.
  EXPECT_EQ(harness.client().pid_of(child_h.value()), child->pid());

  auto stop = child->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  ASSERT_TRUE(child->cont(stop.value().tid).is_ok());
  harness.join();
}

TEST(MultiClientTest, ActivateValidatesProcessAndThread) {
  // Long-lived debuggee: the activations below must not race the
  // program running off the end (request_exit ends it early).
  DebugHarness harness("sleep(30)",
                       HarnessOptions{.stop_at_entry = false});
  (void)harness.launch();
  Client& cc = harness.client();
  SessionHandle me = harness.handle();

  EXPECT_FALSE(cc.activate(SessionHandle{123456}, 1).is_ok());  // no process
  EXPECT_FALSE(cc.activate(me, 77).is_ok());                    // no thread
  EXPECT_FALSE(cc.active_view().valid());

  // With stop_at_entry=false the main thread may not have hit the
  // trace hook yet; it shows up in `threads` once the VM starts.
  ASSERT_TRUE(test::poll_until([&] { return cc.activate(me, 1).is_ok(); }));
  EXPECT_TRUE(cc.active_view().valid());
  EXPECT_EQ(cc.active_view().session, me);
  EXPECT_EQ(cc.active_view().tid, 1);

  harness.vm().request_exit(0);
  harness.join();
}

TEST(MultiClientTest, ActiveSourceAndFramesFollowView) {
  DebugHarness harness(
      "fn f()\n"
      "  sleep(1)\n"
      "end\n"
      "f()",
      HarnessOptions{.stop_at_entry = false});
  (void)harness.launch();
  Client& cc = harness.client();
  sleep_for_millis(100);  // let it get into f()/sleep

  ASSERT_TRUE(cc.activate(harness.handle(), 1).is_ok());
  auto source = cc.active_source();
  ASSERT_TRUE(source.is_ok());
  EXPECT_NE(source.value().find("fn f()"), std::string::npos);

  auto frames = cc.active_frames();
  ASSERT_TRUE(frames.is_ok());
  ASSERT_EQ(frames.value().size(), 2u);
  EXPECT_EQ(frames.value()[0].function, "f");

  harness.vm().request_exit(0);
  harness.join();
}

TEST(MultiClientTest, PollEventsAcrossSessions) {
  DebugHarness harness(
      "pid = fork(fn()\n"
      "  t = spawn(fn() return 1 end)\n"
      "  join(t)\n"
      "end)\n"
      "waitpid(pid)\n"
      "t2 = spawn(fn() return 2 end)\n"
      "join(t2)",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  (void)harness.launch();
  auto child_h = harness.client().attach_any(5000);
  ASSERT_TRUE(child_h.is_ok());
  Session* child = harness.client().session(child_h.value());
  ASSERT_NE(child, nullptr);
  auto stop = child->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  ASSERT_TRUE(child->cont(stop.value().tid).is_ok());
  harness.join();

  // Both sessions produced thread events; poll_events sees both.
  std::set<std::int64_t> sessions_with_events;
  for (int round = 0; round < 20; ++round) {
    auto events = harness.client().poll_events(50);
    if (!events.is_ok()) break;  // a session may be gone — fine
    for (const Client::SessionEvent& se : events.value()) {
      sessions_with_events.insert(se.session.id);
    }
    if (sessions_with_events.size() >= 2) break;
  }
  EXPECT_GE(sessions_with_events.size(), 1u);
  EXPECT_EQ(sessions_with_events.count(harness.handle().id), 1u);
}

TEST(MultiClientTest, ClaimPreventsHandout) {
  auto tmp = TempDir::create("mc-test");
  ASSERT_TRUE(tmp.is_ok());
  std::unique_ptr<Client> cc = Client::discover(tmp.value().file("ports"));
  // claim of unknown handle is a no-op
  cc->claim(SessionHandle{12345});
  auto none = cc->attach_any(100);
  EXPECT_FALSE(none.is_ok());
  EXPECT_EQ(none.error().code(), ErrorCode::kTimeout);
}

}  // namespace
}  // namespace dionea::client
