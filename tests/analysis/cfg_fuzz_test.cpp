// ForkLint under hostile bytecode: the CFG builder and the full
// forklint dataflow are swept over the same seeded 2000-mutant
// corpus the bytecode verifier uses — but with NO verifier in front.
// The builder's contract is totality: arbitrary byte soup must
// produce a well-formed (possibly empty) CFG, never a crash, and the
// analysis verdict must be deterministic (same mutant, same report).
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "analysis/cfg.hpp"
#include "analysis/forklint.hpp"
#include "vm/bytecode.hpp"
#include "vm/compiler.hpp"

namespace dionea {
namespace {

// Fork/lock/queue names in the constant pool on purpose: mutants can
// retarget a kGetGlobal at them, steering the sweep through the
// analysis' interesting paths, not just its decoder.
const char* kSeedProgram =
    "m = mutex()\n"
    "work = queue()\n"
    "fn feed()\n"
    "  push(work, 1)\n"
    "end\n"
    "fn child()\n"
    "  x = pop(work)\n"
    "  exit(0)\n"
    "end\n"
    "t = spawn(feed)\n"
    "lock(m)\n"
    "pid = fork(child)\n"
    "unlock(m)\n"
    "waitpid(pid)\n"
    "join(t)\n";

std::string report_fingerprint(const analysis::Report& report) {
  return report.to_string();
}

std::string cfg_fingerprint(const analysis::cfg::Cfg& graph) {
  std::string out;
  for (const analysis::cfg::Block& block : graph.blocks) {
    out += std::to_string(block.begin) + "-" + std::to_string(block.end);
    out += block.terminates ? "T" : "";
    for (std::size_t succ : block.succs) {
      out += "," + std::to_string(succ);
    }
    out += ";";
  }
  return out;
}

TEST(CfgFuzzTest, MutatedChunksNeverCrashBuilderOrDataflow) {
  auto compiled = vm::compile_source(kSeedProgram, "cfg_fuzz.ml");
  ASSERT_TRUE(compiled.is_ok()) << compiled.error().to_string();
  const vm::FunctionProto& pristine = *compiled.value();

  // The pristine program itself must analyze (it forks under a lock —
  // exactly one such finding) before the sweep corrupts it.
  {
    analysis::Report report = analysis::forklint_program(pristine);
    int fork_under_lock = 0;
    for (const analysis::Finding& f : report.findings) {
      if (f.kind == analysis::FindingKind::kForkUnderLock) ++fork_under_lock;
    }
    EXPECT_EQ(fork_under_lock, 1) << report.to_string();
  }

  std::mt19937 rng(0xd10ea5u);
  const std::size_t code_size = pristine.chunk.size();
  int nonempty_cfgs = 0;
  int findings_seen = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    vm::FunctionProto mutant = pristine;
    const int flips = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < flips; ++f) {
      mutant.chunk.poke_for_test(rng() % code_size,
                                 static_cast<std::uint8_t>(rng() % 256));
    }

    // Builder totality + determinism.
    analysis::cfg::Cfg first = analysis::cfg::build(mutant);
    analysis::cfg::Cfg second = analysis::cfg::build(mutant);
    EXPECT_EQ(cfg_fingerprint(first), cfg_fingerprint(second));
    if (!first.empty()) ++nonempty_cfgs;
    for (const analysis::cfg::Block& block : first.blocks) {
      ASSERT_LE(block.begin, block.end);
      ASSERT_LE(block.end, code_size);
      for (std::size_t succ : block.succs) {
        ASSERT_LT(succ, first.blocks.size());
      }
    }

    // Verdict stability: the whole pipeline, twice, same report.
    analysis::Report once = analysis::forklint_program(mutant);
    analysis::Report twice = analysis::forklint_program(mutant);
    ASSERT_EQ(report_fingerprint(once), report_fingerprint(twice))
        << "nondeterministic verdict at iteration " << iter;
    if (!once.findings.empty()) ++findings_seen;
  }
  // The sweep must actually exercise the analysis, not bail out of
  // every mutant at the first bad byte.
  EXPECT_GT(nonempty_cfgs, 1000);
  EXPECT_GT(findings_seen, 100);
}

}  // namespace
}  // namespace dionea
