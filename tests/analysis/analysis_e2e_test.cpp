// The `analysis-report` protocol command end to end: capability
// advertisement, typed round trip with and without the remote lint,
// the console `races`/`lint` verbs, and the analysis.* metrics.
#include <unistd.h>

#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "client/console.hpp"
#include "client/session.hpp"
#include "debugger/protocol.hpp"
#include "support/metrics.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using test::DebugHarness;
namespace proto = dbg::proto;

constexpr const char* kRacyProgram =
    "box = [0]\n"                    // 1
    "fn bump()\n"                    // 2
    "  i = 0\n"                      // 3
    "  while i < 10\n"               // 4
    "    box[0] = box[0] + 1\n"      // 5
    "    i = i + 1\n"                // 6
    "  end\n"                        // 7
    "  return nil\n"                 // 8
    "end\n"                          // 9
    "t1 = spawn(bump)\n"             // 10
    "t2 = spawn(bump)\n"             // 11
    "join(t1)\n"
    "join(t2)\n"
    "puts(box[0])\n";

class AnalysisE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    analysis::Engine::instance().reset();
    analysis::Engine::instance().enable();
  }
  void TearDown() override {
    analysis::Engine::instance().disable();
    analysis::Engine::instance().reset();
  }
};

TEST_F(AnalysisE2eTest, ServerAdvertisesAnalysisCapability) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  EXPECT_TRUE(session->supports(proto::kCapAnalysis));
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST_F(AnalysisE2eTest, AnalysisReportCarriesDynamicFindings) {
  DebugHarness harness(kRacyProgram);
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();

  auto report = session->analysis_report();
  ASSERT_TRUE(report.is_ok()) << report.error().to_string();
  const proto::AnalysisReportResponse& r = report.value();
  EXPECT_EQ(r.pid, ::getpid());
  EXPECT_TRUE(r.enabled);
  EXPECT_GT(r.accesses, 0u);
  EXPECT_GT(r.sync_events, 0u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, "data-race");
  EXPECT_NE(r.findings[0].message.find("'box'"), std::string::npos);
  EXPECT_EQ(r.findings[0].file, "test.ml");
  EXPECT_GT(r.findings[0].line, 0);
}

TEST_F(AnalysisE2eTest, RunLintReturnsStaticFindingsRemotely) {
  // A lock leak the static pass should see when the server lints the
  // loaded program on request.
  DebugHarness harness(
      "m = mutex()\n"                // 1
      "fn risky(x)\n"                // 2
      "  lock(m)\n"                  // 3
      "  if x > 0\n"                 // 4
      "    return 1\n"               // 5
      "  end\n"                      // 6
      "  unlock(m)\n"                // 7
      "  return 0\n"                 // 8
      "end\n"
      "r = risky(0)\n");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();

  auto report = session->analysis_report(/*run_lint=*/true);
  ASSERT_TRUE(report.is_ok()) << report.error().to_string();
  const proto::AnalysisReportResponse& r = report.value();
  ASSERT_EQ(r.lint_findings.size(), 1u);
  EXPECT_EQ(r.lint_findings[0].kind, "lock-leak");
  EXPECT_EQ(r.lint_findings[0].file, "test.ml");
  EXPECT_EQ(r.lint_findings[0].line, 5);
}

TEST_F(AnalysisE2eTest, ConsoleRacesAndLintVerbs) {
  DebugHarness harness(kRacyProgram);
  harness.launch();
  client::Console console(harness.client());
  ASSERT_TRUE(harness.session()->wait_stopped(5000).is_ok());
  EXPECT_NE(console.execute("help").find("races [id]"), std::string::npos);
  console.execute("c");
  harness.join();

  std::string races = console.execute("races");
  EXPECT_NE(races.find("dynamic analysis on"), std::string::npos) << races;
  EXPECT_NE(races.find("[data-race]"), std::string::npos) << races;
  EXPECT_NE(races.find("'box'"), std::string::npos) << races;

  std::string lint = console.execute("lint");
  EXPECT_NE(lint.find("static lint findings"), std::string::npos) << lint;
  EXPECT_NE(lint.find("(none)"), std::string::npos) << lint;  // clean program
}

TEST_F(AnalysisE2eTest, MetricsCountersTrackTheDetector) {
  metrics::Registry::instance().set_enabled(true);
  metrics::Registry::instance().reset();
  test::RunOutcome outcome = test::run_ml(kRacyProgram, "metrics.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  metrics::Snapshot snap = metrics::Registry::instance().snapshot();
  EXPECT_GT(snap.counters[static_cast<int>(
                metrics::Counter::kAnalysisAccesses)],
            0u);
  EXPECT_GT(snap.counters[static_cast<int>(
                metrics::Counter::kAnalysisSyncEvents)],
            0u);
  EXPECT_GE(
      snap.counters[static_cast<int>(metrics::Counter::kAnalysisRaces)], 1u);
}

}  // namespace
}  // namespace dionea
