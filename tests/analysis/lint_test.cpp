// Static pass (MiniSan lint): lock-order cycles, lock leaks,
// double-acquire, closed-queue misuse — and, just as load-bearing, the
// programs it must stay silent on (balanced locking, try_lock fallback
// paths, the paper's Listing 5).
#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "vm/compiler.hpp"

namespace dionea {
namespace {

analysis::Report lint(const std::string& source,
                      const std::string& file = "lint.ml") {
  auto proto = vm::compile_source(source, file);
  EXPECT_TRUE(proto.is_ok()) << proto.error().to_string();
  if (!proto.is_ok()) return analysis::Report{};
  return analysis::lint_program(*proto.value());
}

std::vector<const analysis::Finding*> of_kind(const analysis::Report& report,
                                              analysis::FindingKind kind) {
  std::vector<const analysis::Finding*> out;
  for (const analysis::Finding& f : report.findings) {
    if (f.kind == kind) out.push_back(&f);
  }
  return out;
}

TEST(LintTest, FlagsLockOrderInversionWithSites) {
  analysis::Report report = lint(
      "a = mutex()\n"                // 1
      "b = mutex()\n"                // 2
      "fn f1()\n"                    // 3
      "  lock(a)\n"                  // 4
      "  lock(b)\n"                  // 5
      "  unlock(b)\n"                // 6
      "  unlock(a)\n"                // 7
      "  return nil\n"               // 8
      "end\n"                        // 9
      "fn f2()\n"                    // 10
      "  lock(b)\n"                  // 11
      "  lock(a)\n"                  // 12
      "  unlock(a)\n"                // 13
      "  unlock(b)\n"                // 14
      "  return nil\n"               // 15
      "end\n"                        // 16
      "t = spawn(f1)\n"
      "f2()\n"
      "join(t)\n");
  auto cycles = of_kind(report, analysis::FindingKind::kLockOrderCycle);
  ASSERT_EQ(cycles.size(), 1u) << report.to_string();
  const analysis::Finding& f = *cycles[0];
  EXPECT_NE(f.message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(f.message.find("'a' -> 'b' at lint.ml:5"), std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("'b' -> 'a' at lint.ml:12"), std::string::npos)
      << f.message;
  EXPECT_EQ(f.file, "lint.ml");
  EXPECT_EQ(f.line, 5);
  EXPECT_EQ(f.file2, "lint.ml");
  EXPECT_EQ(f.line2, 12);
  // Balanced lock/unlock: no leak reported alongside the cycle.
  EXPECT_TRUE(of_kind(report, analysis::FindingKind::kLockLeak).empty())
      << report.to_string();
}

TEST(LintTest, FlagsCrossFunctionCycleThroughCallSummary) {
  analysis::Report report = lint(
      "a = mutex()\n"                // 1
      "b = mutex()\n"                // 2
      "fn inner_b()\n"               // 3
      "  lock(b)\n"                  // 4
      "  unlock(b)\n"                // 5
      "  return nil\n"               // 6
      "end\n"                        // 7
      "fn outer()\n"                 // 8
      "  lock(a)\n"                  // 9
      "  inner_b()\n"                // 10
      "  unlock(a)\n"                // 11
      "  return nil\n"               // 12
      "end\n"                        // 13
      "fn reverse()\n"               // 14
      "  lock(b)\n"                  // 15
      "  lock(a)\n"                  // 16
      "  unlock(a)\n"                // 17
      "  unlock(b)\n"                // 18
      "  return nil\n"               // 19
      "end\n"
      "t = spawn(outer)\n"
      "reverse()\n"
      "join(t)\n");
  auto cycles = of_kind(report, analysis::FindingKind::kLockOrderCycle);
  ASSERT_EQ(cycles.size(), 1u) << report.to_string();
  // The a->b edge comes from outer() calling inner_b() while holding a;
  // the site named is inner_b's acquire.
  EXPECT_NE(cycles[0]->message.find("'a' -> 'b' at lint.ml:4"),
            std::string::npos)
      << cycles[0]->message;
}

TEST(LintTest, FlagsLockLeakOnEarlyReturn) {
  analysis::Report report = lint(
      "m = mutex()\n"                // 1
      "fn risky(x)\n"                // 2
      "  lock(m)\n"                  // 3
      "  if x > 0\n"                 // 4
      "    return 1\n"               // 5
      "  end\n"                      // 6
      "  unlock(m)\n"                // 7
      "  return 0\n"                 // 8
      "end\n"
      "r = risky(1)\n");
  auto leaks = of_kind(report, analysis::FindingKind::kLockLeak);
  ASSERT_EQ(leaks.size(), 1u) << report.to_string();
  const analysis::Finding& f = *leaks[0];
  EXPECT_NE(f.message.find("'m'"), std::string::npos);
  EXPECT_NE(f.message.find("'risky'"), std::string::npos);
  EXPECT_EQ(f.file, "lint.ml");
  EXPECT_EQ(f.line, 5);   // the return that leaks
  EXPECT_EQ(f.line2, 3);  // the acquire
}

TEST(LintTest, FlagsDoubleAcquire) {
  analysis::Report report = lint(
      "m = mutex()\n"                // 1
      "lock(m)\n"                    // 2
      "lock(m)\n"                    // 3
      "unlock(m)\n");
  auto doubles = of_kind(report, analysis::FindingKind::kDoubleAcquire);
  ASSERT_EQ(doubles.size(), 1u) << report.to_string();
  EXPECT_NE(doubles[0]->message.find("not reentrant"), std::string::npos);
  EXPECT_EQ(doubles[0]->line, 3);
  EXPECT_EQ(doubles[0]->line2, 2);
}

TEST(LintTest, FlagsPushOnClosedQueue) {
  analysis::Report report = lint(
      "q = queue()\n"                // 1
      "push(q, 1)\n"                 // 2
      "close(q)\n"                   // 3
      "push(q, 2)\n");               // 4
  auto closed = of_kind(report, analysis::FindingKind::kClosedQueue);
  ASSERT_EQ(closed.size(), 1u) << report.to_string();
  EXPECT_NE(closed[0]->message.find("'q'"), std::string::npos);
  EXPECT_EQ(closed[0]->line, 4);
  EXPECT_EQ(closed[0]->line2, 3);
}

// ---- programs the lint must NOT flag ----

TEST(LintTest, SilentOnBalancedLocking) {
  analysis::Report report = lint(
      "m = mutex()\n"
      "box = [0]\n"
      "fn bump()\n"
      "  for i in 100\n"
      "    lock(m)\n"
      "    box[0] = box[0] + 1\n"
      "    unlock(m)\n"
      "  end\n"
      "  return nil\n"
      "end\n"
      "threads = []\n"
      "for i in 4\n"
      "  push(threads, spawn(bump))\n"
      "end\n"
      "for t in threads\n"
      "  join(t)\n"
      "end\n"
      "puts(box[0])\n");
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(LintTest, SilentOnConsistentNesting) {
  // a -> b in both functions: an order, not a cycle.
  analysis::Report report = lint(
      "a = mutex()\n"
      "b = mutex()\n"
      "fn f1()\n"
      "  lock(a)\n"
      "  lock(b)\n"
      "  unlock(b)\n"
      "  unlock(a)\n"
      "  return nil\n"
      "end\n"
      "fn f2()\n"
      "  lock(a)\n"
      "  lock(b)\n"
      "  unlock(b)\n"
      "  unlock(a)\n"
      "  return nil\n"
      "end\n"
      "t = spawn(f1)\n"
      "f2()\n"
      "join(t)\n");
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(LintTest, TryLockIsNotAnAcquire) {
  // The try_lock fallback is exactly how programs dodge an inversion;
  // counting it as an acquire would invent a cycle here.
  analysis::Report report = lint(
      "a = mutex()\n"
      "b = mutex()\n"
      "fn f1()\n"
      "  lock(a)\n"
      "  lock(b)\n"
      "  unlock(b)\n"
      "  unlock(a)\n"
      "  return nil\n"
      "end\n"
      "fn f2()\n"
      "  lock(b)\n"
      "  got = try_lock(a)\n"
      "  if got\n"
      "    unlock(a)\n"
      "  end\n"
      "  unlock(b)\n"
      "  return nil\n"
      "end\n"
      "t = spawn(f1)\n"
      "f2()\n"
      "join(t)\n");
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(LintTest, SpawnedFunctionDoesNotNestUnderCallerLocks) {
  // spawn(f) starts f concurrently; its locks are not ordered after
  // the spawner's held set.
  analysis::Report report = lint(
      "a = mutex()\n"
      "b = mutex()\n"
      "fn takes_b()\n"
      "  lock(b)\n"
      "  lock(a)\n"
      "  unlock(a)\n"
      "  unlock(b)\n"
      "  return nil\n"
      "end\n"
      "lock(a)\n"
      "t = spawn(takes_b)\n"
      "unlock(a)\n"
      "join(t)\n");
  EXPECT_TRUE(of_kind(report, analysis::FindingKind::kLockOrderCycle).empty())
      << report.to_string();
}

TEST(LintTest, SilentOnListingFiveProgram) {
  // The paper's Listing 5 (queue + spawn + fork): a *runtime*
  // cross-process deadlock, but statically clean — no lock discipline
  // violations for the lint to invent.
  analysis::Report report = lint(
      "q = queue()\n"
      "spawn(fn()\n"
      "  puts(\"Inside thread -- PARENT\")\n"
      "  sleep(0.2)\n"
      "  push(q, true)\n"
      "end)\n"
      "pid = fork(fn()\n"
      "  pop(q)\n"
      "  puts(\"In -- CHILD\")\n"
      "end)\n"
      "st = waitpid(pid)\n");
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(LintTest, SilentOnCloseThenDrainPattern) {
  // close() then pop() is the documented drain idiom (backlog, then
  // nil) — legal at runtime, so the lint must not flag it.
  analysis::Report report = lint(
      "q = queue()\n"
      "push(q, 1)\n"
      "close(q)\n"
      "v = pop(q)\n"
      "puts(v)\n",
      "drain.ml");
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(LintTest, SynchronizeBuiltinStaysBalanced) {
  analysis::Report report = lint(
      "m = mutex()\n"
      "box = [0]\n"
      "fn crit()\n"
      "  box[0] = box[0] + 1\n"
      "  return nil\n"
      "end\n"
      "synchronize(m, crit)\n"
      "puts(box[0])\n");
  EXPECT_TRUE(report.empty()) << report.to_string();
}

}  // namespace
}  // namespace dionea
