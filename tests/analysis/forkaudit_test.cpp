// ForkLint pillar 2: the native atfork coverage audit. The repo's own
// fork-handler stack must audit clean; a fixture primitive registered
// without handlers (the box64 case-004 shape) must be flagged until
// repaired; declared prepare-order cycles must be caught; and the
// strict counter cross-check must notice a handler that stopped
// firing. Finishes with a real MiniLang fork: the audit stays clean
// and the counters stay balanced after the handlers actually ran.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/forkaudit.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using analysis::forkaudit::Registry;
using analysis::forkaudit::Spec;

std::vector<const analysis::Finding*> of_kind(const analysis::Report& report,
                                              analysis::FindingKind kind) {
  std::vector<const analysis::Finding*> out;
  for (const analysis::Finding& f : report.findings) {
    if (f.kind == kind) out.push_back(&f);
  }
  return out;
}

std::vector<const analysis::Finding*> about(const analysis::Report& report,
                                            const std::string& object) {
  std::vector<const analysis::Finding*> out;
  for (const analysis::Finding& f : report.findings) {
    if (f.object == object ||
        f.message.find(object) != std::string::npos) {
      out.push_back(&f);
    }
  }
  return out;
}

// A scoped fixture entry: never leaks into later tests.
class Tracked {
 public:
  explicit Tracked(Spec spec) : name_(spec.name) {
    Registry::instance().track(std::move(spec));
  }
  ~Tracked() { Registry::instance().untrack(name_); }

 private:
  std::string name_;
};

// Touch the VM + debug-server stacks so every real subsystem has
// registered its fork contract, then audit. Zero findings: the repo's
// own handler chain satisfies the contract it ships.
TEST(ForkauditTest, RepoForkHandlerStackAuditsClean) {
  test::RunOutcome outcome = test::run_ml("x = 1\nputs(x)\n");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  analysis::Report report = analysis::forkaudit::audit(false);
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
  // The registry saw the real subsystems, not an empty slab.
  std::vector<Spec> specs = Registry::instance().snapshot();
  bool saw_gil = false;
  bool saw_scheduler = false;
  for (const Spec& spec : specs) {
    if (spec.name == "vm.gil") saw_gil = true;
    if (spec.name == "vm.scheduler") saw_scheduler = true;
  }
  EXPECT_TRUE(saw_gil);
  EXPECT_TRUE(saw_scheduler);
}

// box64 case 004: a primitive pthread_atfork never heard about. The
// unrepaired fixture is flagged; wiring up the declared handlers (the
// repair) silences it.
TEST(ForkauditTest, FlagsUnregisteredPrimitiveUntilRepaired) {
  {
    Spec bad;
    bad.name = "fixture.case004_mutex";
    bad.subsystem = "tests";
    Tracked tracked(bad);  // needs all three handlers, has none
    analysis::Report report = analysis::forkaudit::audit(false);
    auto found = about(report, "fixture.case004_mutex");
    ASSERT_FALSE(found.empty()) << report.to_string();
    EXPECT_EQ(found[0]->kind, analysis::FindingKind::kAtforkUncovered);
  }
  {
    Spec repaired;
    repaired.name = "fixture.case004_mutex";
    repaired.subsystem = "tests";
    repaired.has_prepare = true;
    repaired.has_parent = true;
    repaired.has_child = true;
    Tracked tracked(repaired);
    analysis::Report report = analysis::forkaudit::audit(false);
    EXPECT_TRUE(about(report, "fixture.case004_mutex").empty())
        << report.to_string();
  }
  // And untracked, the fixture leaves no residue.
  analysis::Report report = analysis::forkaudit::audit(false);
  EXPECT_TRUE(about(report, "fixture.case004_mutex").empty())
      << report.to_string();
}

TEST(ForkauditTest, PartialCoverageNamesTheMissingHandler) {
  Spec partial;
  partial.name = "fixture.partial";
  partial.subsystem = "tests";
  partial.has_prepare = true;
  partial.has_parent = true;  // child handler missing
  Tracked tracked(partial);
  analysis::Report report = analysis::forkaudit::audit(false);
  auto found = about(report, "fixture.partial");
  ASSERT_FALSE(found.empty()) << report.to_string();
  EXPECT_NE(found[0]->message.find("child"), std::string::npos)
      << found[0]->message;
}

TEST(ForkauditTest, FlagsPrepareOrderInversion) {
  Spec a;
  a.name = "fixture.order_a";
  a.subsystem = "tests";
  a.has_prepare = a.has_parent = a.has_child = true;
  a.pinned_before = {"fixture.order_b"};
  Spec b;
  b.name = "fixture.order_b";
  b.subsystem = "tests";
  b.has_prepare = b.has_parent = b.has_child = true;
  b.pinned_before = {"fixture.order_a"};
  Tracked ta(a);
  Tracked tb(b);
  analysis::Report report = analysis::forkaudit::audit(false);
  auto found = of_kind(report, analysis::FindingKind::kAtforkOrderInversion);
  ASSERT_EQ(found.size(), 1u) << report.to_string();
  EXPECT_NE(found[0]->message.find("fixture.order_a"), std::string::npos);
  EXPECT_NE(found[0]->message.find("fixture.order_b"), std::string::npos);
}

TEST(ForkauditTest, DanglingPinnedBeforeEdgeIsIgnored) {
  Spec a;
  a.name = "fixture.dangling";
  a.subsystem = "tests";
  a.has_prepare = a.has_parent = a.has_child = true;
  a.pinned_before = {"fixture.never_registered"};
  Tracked tracked(a);
  analysis::Report report = analysis::forkaudit::audit(false);
  EXPECT_TRUE(
      of_kind(report, analysis::FindingKind::kAtforkOrderInversion).empty())
      << report.to_string();
}

// Strict mode: prepare must equal parent + child for a fully-covered
// primitive — a handler that silently stopped firing breaks the
// balance.
TEST(ForkauditTest, StrictAuditCatchesAsymmetricCounters) {
  Spec spec;
  spec.name = "fixture.counters";
  spec.subsystem = "tests";
  spec.has_prepare = spec.has_parent = spec.has_child = true;
  Tracked tracked(spec);
  Registry& registry = Registry::instance();

  registry.note_prepare("fixture.counters");
  registry.note_prepare("fixture.counters");
  registry.note_parent("fixture.counters");
  analysis::Report unbalanced = analysis::forkaudit::audit(true);
  ASSERT_FALSE(about(unbalanced, "fixture.counters").empty())
      << unbalanced.to_string();
  // Non-strict mode ignores counters (a fork may be in flight).
  EXPECT_TRUE(about(analysis::forkaudit::audit(false), "fixture.counters")
                  .empty());

  registry.note_child("fixture.counters");  // the missing half arrives
  analysis::Report balanced = analysis::forkaudit::audit(true);
  EXPECT_TRUE(about(balanced, "fixture.counters").empty())
      << balanced.to_string();

  analysis::forkaudit::Counts counts = registry.counts("fixture.counters");
  EXPECT_EQ(counts.prepare, 2u);
  EXPECT_EQ(counts.parent, 1u);
  EXPECT_EQ(counts.child, 1u);
}

// A real fork through the VM: handlers A and B actually run in the
// parent, the counters balance, and the audit stays clean afterwards.
// The child exits through run_ml's containment, so its exit code is
// the MiniSan-quiet channel: a handler-C crash or a child-side finding
// would surface as a nonzero status.
TEST(ForkauditTest, RealForkKeepsAuditCleanAndCountersBalanced) {
  analysis::forkaudit::Counts before =
      Registry::instance().counts("vm.gil");
  test::RunOutcome outcome = test::run_ml(
      "pid = fork()\n"
      "if pid == 0\n"
      "  exit(0)\n"
      "end\n"
      "st = waitpid(pid)\n"
      "exit(st)\n");
  ASSERT_TRUE(outcome.exited) << outcome.error_message;
  EXPECT_EQ(outcome.exit_code, 0);

  analysis::forkaudit::Counts after = Registry::instance().counts("vm.gil");
  EXPECT_GT(after.prepare, before.prepare);
  // Parent process view: every prepare was matched by a parent-side
  // release (the child's note_child happened in the child process).
  EXPECT_EQ(after.prepare - before.prepare, after.parent - before.parent);

  analysis::Report report = analysis::forkaudit::audit(false);
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

}  // namespace
}  // namespace dionea
