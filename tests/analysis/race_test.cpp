// Dynamic pass (vector clocks + locksets): the detector must flag the
// seeded race in every run — the point of drawing NO happens-before
// edge from GIL hand-offs is that detection depends on the program's
// synchronization structure, not on which interleaving the scheduler
// happened to pick. Also covers the offline mode: record a DRLG log
// un-instrumented, then replay it with analysis on.
#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using test::run_ml;
using test::run_ml_record;
using test::run_ml_replay;

constexpr const char* kRacyProgram =
    "box = [0]\n"
    "fn bump()\n"
    "  i = 0\n"
    "  while i < 20\n"
    "    box[0] = box[0] + 1\n"
    "    i = i + 1\n"
    "  end\n"
    "  return nil\n"
    "end\n"
    "t1 = spawn(bump)\n"
    "t2 = spawn(bump)\n"
    "join(t1)\n"
    "join(t2)\n"
    "puts(box[0])\n";

constexpr const char* kLockedProgram =
    "m = mutex()\n"
    "box = [0]\n"
    "fn bump()\n"
    "  i = 0\n"
    "  while i < 20\n"
    "    lock(m)\n"
    "    box[0] = box[0] + 1\n"
    "    unlock(m)\n"
    "    i = i + 1\n"
    "  end\n"
    "  return nil\n"
    "end\n"
    "t1 = spawn(bump)\n"
    "t2 = spawn(bump)\n"
    "join(t1)\n"
    "join(t2)\n"
    "puts(box[0])\n";

class RaceDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    analysis::Engine::instance().reset();
    analysis::Engine::instance().enable();
  }
  void TearDown() override {
    analysis::Engine::instance().disable();
    analysis::Engine::instance().reset();
  }
};

std::vector<const analysis::Finding*> races(const analysis::Report& report) {
  std::vector<const analysis::Finding*> out;
  for (const analysis::Finding& f : report.findings) {
    if (f.kind == analysis::FindingKind::kDataRace) out.push_back(&f);
  }
  return out;
}

TEST_F(RaceDetectorTest, FlagsSeededRaceRegardlessOfSchedule) {
  test::RunOutcome outcome = run_ml(kRacyProgram, "race.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;

  analysis::Report report = analysis::Engine::instance().report();
  auto found = races(report);
  ASSERT_EQ(found.size(), 1u) << report.to_string();  // deduped per var
  const analysis::Finding& f = *found[0];
  EXPECT_NE(f.message.find("'box'"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("share no lock"), std::string::npos);
  EXPECT_EQ(f.file, "race.ml");
  EXPECT_GT(f.line, 0);
  EXPECT_GT(analysis::Engine::instance().accesses(), 0u);
  EXPECT_GT(analysis::Engine::instance().sync_events(), 0u);
}

TEST_F(RaceDetectorTest, SilentWhenAccessesShareALock) {
  test::RunOutcome outcome = run_ml(kLockedProgram, "locked.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "40\n");
  analysis::Report report = analysis::Engine::instance().report();
  EXPECT_TRUE(races(report).empty()) << report.to_string();
}

TEST_F(RaceDetectorTest, QueueHandoffOrdersProducerBeforeConsumer) {
  // push -> pop is a happens-before edge: the producer's write to
  // `box` is ordered before the main thread's post-pop read/write.
  const char* program =
      "q = queue()\n"
      "box = [0]\n"
      "t = spawn(fn()\n"
      "  box[0] = 41\n"
      "  push(q, 1)\n"
      "end)\n"
      "pop(q)\n"
      "box[0] = box[0] + 1\n"
      "join(t)\n"
      "puts(box[0])\n";
  test::RunOutcome outcome = run_ml(program, "handoff.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "42\n");
  analysis::Report report = analysis::Engine::instance().report();
  EXPECT_TRUE(races(report).empty()) << report.to_string();
}

TEST_F(RaceDetectorTest, JoinOrdersChildBeforeParentContinuation) {
  const char* program =
      "box = [0]\n"
      "t = spawn(fn()\n"
      "  box[0] = 1\n"
      "end)\n"
      "join(t)\n"
      "box[0] = box[0] + 1\n"
      "puts(box[0])\n";
  test::RunOutcome outcome = run_ml(program, "join.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "2\n");
  analysis::Report report = analysis::Engine::instance().report();
  EXPECT_TRUE(races(report).empty()) << report.to_string();
}

TEST(OfflineAnalysisTest, ReplayedLogYieldsSameRaceDeterministically) {
  // Production run: record the schedule with the detector OFF (zero
  // analysis overhead in the recorded process)...
  analysis::Engine::instance().disable();
  analysis::Engine::instance().reset();
  auto tmp = TempDir::create("analysis-offline");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");
  test::ReplayOutcome recorded = run_ml_record(dir, kRacyProgram, "race.ml");
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  EXPECT_TRUE(analysis::Engine::instance().report().empty());

  // ...then replay the same log twice with the detector ON: same
  // forced schedule, same finding, both times.
  for (int round = 0; round < 2; ++round) {
    analysis::Engine::instance().reset();
    analysis::Engine::instance().enable();
    test::ReplayOutcome replayed = run_ml_replay(dir, kRacyProgram, "race.ml");
    analysis::Engine::instance().disable();
    ASSERT_TRUE(replayed.ok) << replayed.error_message;
    EXPECT_EQ(replayed.output, recorded.output);
    analysis::Report report = analysis::Engine::instance().report();
    auto found = races(report);
    ASSERT_EQ(found.size(), 1u)
        << "round " << round << ":\n"
        << report.to_string();
    EXPECT_NE(found[0]->message.find("'box'"), std::string::npos);
  }
  analysis::Engine::instance().reset();
}

}  // namespace
}  // namespace dionea
