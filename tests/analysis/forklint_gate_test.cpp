// The examples gate: every MiniLang program shipped under examples/ml
// must come through ForkLint with zero findings — except the bad_*
// fixtures, which must FAIL analysis (each seeded hazard class
// flagged). The bad half keeps the gate honest: a dataflow regression
// that stops seeing hazards breaks this test instead of silently
// waving everything through.
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "analysis/forklint.hpp"
#include "vm/compiler.hpp"

#ifndef DIONEA_EXAMPLES_ML_DIR
#error "build must define DIONEA_EXAMPLES_ML_DIR"
#endif

namespace dionea {
namespace {

std::vector<std::string> ml_files() {
  std::vector<std::string> out;
  DIR* dir = ::opendir(DIONEA_EXAMPLES_ML_DIR);
  if (dir == nullptr) return out;
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ml") == 0) {
      out.push_back(name);
    }
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

int count_kind(const analysis::Report& report, analysis::FindingKind kind) {
  int n = 0;
  for (const analysis::Finding& f : report.findings) {
    if (f.kind == kind) ++n;
  }
  return n;
}

TEST(ForklintGateTest, EveryShippedExampleIsForkSafe) {
  std::vector<std::string> files = ml_files();
  ASSERT_FALSE(files.empty())
      << "no .ml files under " << DIONEA_EXAMPLES_ML_DIR;
  int clean = 0;
  int bad = 0;
  for (const std::string& name : files) {
    std::string source =
        read_file(std::string(DIONEA_EXAMPLES_ML_DIR) + "/" + name);
    ASSERT_FALSE(source.empty()) << name;
    auto proto = vm::compile_source(source, name);
    ASSERT_TRUE(proto.is_ok()) << name << ": " << proto.error().to_string();
    analysis::Report report = analysis::forklint_program(*proto.value());
    if (name.compare(0, 4, "bad_") == 0) {
      ++bad;
      EXPECT_FALSE(report.findings.empty())
          << name << " is a known-bad fixture but ForkLint passed it";
    } else {
      ++clean;
      EXPECT_TRUE(report.findings.empty())
          << name << " must be fork-safe but ForkLint found:\n"
          << report.to_string();
    }
  }
  // The corpus must exercise both sides of the gate.
  EXPECT_GE(clean, 3);
  EXPECT_GE(bad, 1);
}

// The flagship fixture seeds one hazard of each class; all three must
// come back, at the right spots.
TEST(ForklintGateTest, BadFixtureTripsEveryHazardClass) {
  std::string source = read_file(std::string(DIONEA_EXAMPLES_ML_DIR) +
                                 "/bad_fork_hazards.ml");
  ASSERT_FALSE(source.empty());
  auto proto = vm::compile_source(source, "bad_fork_hazards.ml");
  ASSERT_TRUE(proto.is_ok()) << proto.error().to_string();
  analysis::Report report = analysis::forklint_program(*proto.value());
  EXPECT_EQ(count_kind(report, analysis::FindingKind::kForkUnderLock), 1)
      << report.to_string();
  // Child pops a parent-fed queue AND joins a parent-side thread.
  EXPECT_EQ(count_kind(report, analysis::FindingKind::kForkChildResource), 2)
      << report.to_string();
}

}  // namespace
}  // namespace dionea
