// Sync edge cases the analyzer must model without misreporting:
// condvar timed-wait timeouts, failed try_lock, queue close/drain
// semantics, and a fork-then-lock child. Each scenario runs with the
// dynamic detector ON and asserts both the program behaviour and an
// empty (or exactly-expected) findings list.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using test::expect_ml_error;
using test::run_ml;

class SyncEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    analysis::Engine::instance().reset();
    analysis::Engine::instance().enable();
  }
  void TearDown() override {
    analysis::Engine::instance().disable();
    analysis::Engine::instance().reset();
  }
};

TEST_F(SyncEdgeTest, TimedWaitTimesOutAndReturnsFalse) {
  // Nobody signals: wait(c, m, 0.05) must give the mutex back, park at
  // most ~timeout, re-acquire, and return false.
  const char* program =
      "m = mutex()\n"
      "c = cond()\n"
      "lock(m)\n"
      "r = wait(c, m, 0.05)\n"
      "unlock(m)\n"
      "puts(r)\n";
  test::RunOutcome outcome = run_ml(program, "timedwait.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "false\n");
  EXPECT_TRUE(analysis::Engine::instance().report().empty())
      << analysis::Engine::instance().report().to_string();
}

TEST_F(SyncEdgeTest, TimedWaitWokenBySignalReturnsTrue) {
  const char* program =
      "m = mutex()\n"
      "c = cond()\n"
      "box = [0]\n"
      "t = spawn(fn()\n"
      "  lock(m)\n"
      "  box[0] = 1\n"
      "  signal(c)\n"
      "  unlock(m)\n"
      "end)\n"
      "lock(m)\n"
      "r = true\n"
      "while box[0] == 0\n"
      "  r = wait(c, m, 5)\n"
      "end\n"
      "box[0] = box[0] + 1\n"
      "unlock(m)\n"
      "join(t)\n"
      "puts(r)\n"
      "puts(box[0])\n";
  test::RunOutcome outcome = run_ml(program, "signaled.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "true\n2\n");
  // All box accesses are under m; signal->wake is an HB edge besides.
  EXPECT_TRUE(analysis::Engine::instance().report().empty())
      << analysis::Engine::instance().report().to_string();
}

TEST_F(SyncEdgeTest, FailedTryLockIsNotAnAcquire) {
  // Main holds m; the spawned thread's try_lock must fail, and the
  // detector must not credit the failed attempt as a lock acquisition
  // or an HB edge.
  const char* program =
      "m = mutex()\n"
      "box = [0]\n"
      "lock(m)\n"
      "t = spawn(fn()\n"
      "  got = try_lock(m)\n"
      "  if got\n"
      "    unlock(m)\n"
      "  end\n"
      "  box[0] = 1\n"
      "end)\n"
      "join(t)\n"
      "unlock(m)\n"
      "puts(box[0])\n";
  test::RunOutcome outcome = run_ml(program, "trylock.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "1\n");
  // box: main writes at init, child writes, main reads after join —
  // all ordered by start/join edges. No race, and no phantom lockset
  // entry from the failed try_lock.
  EXPECT_TRUE(analysis::Engine::instance().report().empty())
      << analysis::Engine::instance().report().to_string();
}

TEST_F(SyncEdgeTest, ClosedQueueDrainsBacklogThenReturnsNil) {
  const char* program =
      "q = queue()\n"
      "push(q, 1)\n"
      "push(q, 2)\n"
      "close(q)\n"
      "puts(pop(q))\n"
      "puts(pop(q))\n"
      "puts(pop(q))\n";
  test::RunOutcome outcome = run_ml(program, "drain.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "1\n2\nnil\n");
  EXPECT_TRUE(analysis::Engine::instance().report().empty())
      << analysis::Engine::instance().report().to_string();
}

TEST_F(SyncEdgeTest, PushOnClosedQueueIsRuntimeErrorAndFinding) {
  test::RunOutcome outcome = run_ml(
      "q = queue()\n"
      "close(q)\n"
      "push(q, 1)\n",
      "pushclosed.ml");
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error_message.find("push on closed queue"),
            std::string::npos)
      << outcome.error_message;
  analysis::Report report = analysis::Engine::instance().report();
  ASSERT_EQ(report.findings.size(), 1u) << report.to_string();
  EXPECT_EQ(report.findings[0].kind, analysis::FindingKind::kClosedQueue);
  EXPECT_EQ(report.findings[0].file, "pushclosed.ml");
  EXPECT_EQ(report.findings[0].line, 3);
}

TEST_F(SyncEdgeTest, CloseWakesBlockedPopper) {
  // A popper parked on an empty queue is woken by close() and gets
  // nil, instead of sleeping forever (or tripping the deadlock
  // detector).
  const char* program =
      "q = queue()\n"
      "t = spawn(fn()\n"
      "  v = pop(q)\n"
      "  if v == nil\n"
      "    puts(\"drained\")\n"
      "  end\n"
      "end)\n"
      "sleep(0.05)\n"
      "close(q)\n"
      "join(t)\n";
  test::RunOutcome outcome = run_ml(program, "closewake.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, "drained\n");
  EXPECT_TRUE(analysis::Engine::instance().report().empty())
      << analysis::Engine::instance().report().to_string();
}

TEST_F(SyncEdgeTest, ForkThenLockInChildIsClean) {
  // Fork handler C resets the analyzer: the child re-locks a mutex the
  // parent held around the fork window's past, touches the same
  // container, and must report nothing — its pre-fork history is the
  // parent's, ordered before everything the child does.
  const char* program =
      "m = mutex()\n"
      "box = [0]\n"
      "lock(m)\n"
      "box[0] = 1\n"
      "unlock(m)\n"
      "pid = fork(fn()\n"
      "  lock(m)\n"
      "  box[0] = box[0] + 1\n"
      "  unlock(m)\n"
      "  puts(\"child:\" + to_s(box[0]))\n"
      "end)\n"
      "st = waitpid(pid)\n"
      "lock(m)\n"
      "box[0] = box[0] + 1\n"
      "unlock(m)\n"
      "puts(\"parent:\" + to_s(box[0]))\n"
      "puts(st)\n";
  test::RunOutcome outcome = run_ml(program, "forklock.ml");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  // The child's output lands on the real stdout of the forked process,
  // not in our capture; the parent's view is what we assert.
  EXPECT_NE(outcome.output.find("parent:2"), std::string::npos)
      << outcome.output;
  EXPECT_NE(outcome.output.find("0"), std::string::npos) << outcome.output;
  EXPECT_TRUE(analysis::Engine::instance().report().empty())
      << analysis::Engine::instance().report().to_string();
}

}  // namespace
}  // namespace dionea
