// ForkLint pillar 1: the fork-safety bytecode dataflow. Positives for
// each hazard class (fork-under-lock direct / interprocedural / via
// synchronize(), child-side use of parent-only queues and thread
// handles, fork reachable from a debugger eval) and — just as
// load-bearing — the fork-heavy programs it must stay silent on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/cfg.hpp"
#include "analysis/forklint.hpp"
#include "vm/compiler.hpp"

namespace dionea {
namespace {

analysis::Report forklint(const std::string& source,
                          const std::string& file = "forklint.ml") {
  auto proto = vm::compile_source(source, file);
  EXPECT_TRUE(proto.is_ok()) << proto.error().to_string();
  if (!proto.is_ok()) return analysis::Report{};
  return analysis::forklint_program(*proto.value());
}

std::vector<const analysis::Finding*> of_kind(const analysis::Report& report,
                                              analysis::FindingKind kind) {
  std::vector<const analysis::Finding*> out;
  for (const analysis::Finding& f : report.findings) {
    if (f.kind == kind) out.push_back(&f);
  }
  return out;
}

// ---- fork-under-lock ---------------------------------------------------

TEST(ForklintTest, FlagsDirectForkUnderLock) {
  analysis::Report report = forklint(
      "m = mutex()\n"   // 1
      "lock(m)\n"       // 2
      "pid = fork()\n"  // 3
      "unlock(m)\n"     // 4
      "if pid == 0\n"
      "  exit(0)\n"
      "end\n"
      "waitpid(pid)\n");
  auto found = of_kind(report, analysis::FindingKind::kForkUnderLock);
  ASSERT_EQ(found.size(), 1u) << report.to_string();
  EXPECT_EQ(found[0]->file, "forklint.ml");
  EXPECT_EQ(found[0]->line, 3);
  EXPECT_EQ(found[0]->object, "m");
  EXPECT_NE(found[0]->message.find("'m'"), std::string::npos);
  // The acquisition site rides along as the pair location.
  EXPECT_EQ(found[0]->line2, 2);
}

TEST(ForklintTest, SilentWhenLockReleasedBeforeFork) {
  analysis::Report report = forklint(
      "m = mutex()\n"
      "lock(m)\n"
      "x = 1\n"
      "unlock(m)\n"
      "pid = fork()\n"
      "if pid == 0\n"
      "  exit(0)\n"
      "end\n"
      "waitpid(pid)\n");
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

TEST(ForklintTest, FlagsInterproceduralForkUnderLock) {
  analysis::Report report = forklint(
      "m = mutex()\n"       // 1
      "fn spawn_child()\n"  // 2
      "  pid = fork()\n"    // 3
      "  if pid == 0\n"     // 4
      "    exit(0)\n"       // 5
      "  end\n"             // 6
      "  return pid\n"      // 7
      "end\n"               // 8
      "lock(m)\n"           // 9
      "p = spawn_child()\n" // 10
      "unlock(m)\n"         // 11
      "waitpid(p)\n");
  auto found = of_kind(report, analysis::FindingKind::kForkUnderLock);
  ASSERT_EQ(found.size(), 1u) << report.to_string();
  EXPECT_EQ(found[0]->line, 10);  // the call site, where the lock is held
  EXPECT_NE(found[0]->message.find("spawn_child"), std::string::npos);
  EXPECT_EQ(found[0]->object, "m");
}

TEST(ForklintTest, SilentOnInterproceduralForkWithoutLock) {
  analysis::Report report = forklint(
      "fn spawn_child()\n"
      "  pid = fork()\n"
      "  if pid == 0\n"
      "    exit(0)\n"
      "  end\n"
      "  return pid\n"
      "end\n"
      "p = spawn_child()\n"
      "waitpid(p)\n");
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

TEST(ForklintTest, FlagsSynchronizeRunningForkingBody) {
  analysis::Report report = forklint(
      "m = mutex()\n"       // 1
      "fn forker()\n"       // 2
      "  pid = fork()\n"    // 3
      "  if pid == 0\n"
      "    exit(0)\n"
      "  end\n"
      "  waitpid(pid)\n"
      "  return nil\n"
      "end\n"               // 9
      "synchronize(m, forker)\n");  // 10
  auto found = of_kind(report, analysis::FindingKind::kForkUnderLock);
  ASSERT_EQ(found.size(), 1u) << report.to_string();
  EXPECT_EQ(found[0]->line, 10);
  EXPECT_NE(found[0]->message.find("forker"), std::string::npos);
}

// The may-held set joins across branches: a fork on the path where the
// lock *may* still be held is flagged even though one path released it.
TEST(ForklintTest, MayHeldJoinsAcrossBranches) {
  analysis::Report report = forklint(
      "m = mutex()\n"    // 1
      "x = 1\n"          // 2
      "lock(m)\n"        // 3
      "if x == 1\n"      // 4
      "  unlock(m)\n"    // 5
      "end\n"            // 6
      "pid = fork()\n"   // 7
      "if pid == 0\n"
      "  exit(0)\n"
      "end\n"
      "waitpid(pid)\n"
      "unlock(m)\n");
  auto found = of_kind(report, analysis::FindingKind::kForkUnderLock);
  ASSERT_EQ(found.size(), 1u) << report.to_string();
  EXPECT_EQ(found[0]->line, 7);
}

// ---- child-side resources ---------------------------------------------

TEST(ForklintTest, FlagsChildPopOfParentFedQueue) {
  analysis::Report report = forklint(
      "work = queue()\n"      // 1
      "fn feed()\n"           // 2
      "  push(work, 1)\n"     // 3
      "end\n"                 // 4
      "feeder = spawn(feed)\n"// 5
      "fn child()\n"          // 6
      "  x = pop(work)\n"     // 7
      "  exit(0)\n"           // 8
      "end\n"                 // 9
      "pid = fork(child)\n"   // 10
      "waitpid(pid)\n"
      "join(feeder)\n");
  auto found = of_kind(report, analysis::FindingKind::kForkChildResource);
  ASSERT_EQ(found.size(), 1u) << report.to_string();
  EXPECT_EQ(found[0]->line, 7);  // the pop
  EXPECT_EQ(found[0]->object, "work");
  EXPECT_EQ(found[0]->line2, 10);  // the fork site
}

TEST(ForklintTest, SilentWhenChildRespawnsTheFeeder) {
  analysis::Report report = forklint(
      "work = queue()\n"
      "fn feed()\n"
      "  push(work, 1)\n"
      "end\n"
      "feeder = spawn(feed)\n"
      "fn child()\n"
      "  feed()\n"            // feeder logic reachable in the child
      "  x = pop(work)\n"
      "  exit(0)\n"
      "end\n"
      "pid = fork(child)\n"
      "waitpid(pid)\n"
      "join(feeder)\n");
  EXPECT_TRUE(
      of_kind(report, analysis::FindingKind::kForkChildResource).empty())
      << report.to_string();
}

TEST(ForklintTest, SilentWhenChildFeedsTheQueueItself) {
  analysis::Report report = forklint(
      "work = queue()\n"
      "fn feed()\n"
      "  push(work, 1)\n"
      "end\n"
      "feeder = spawn(feed)\n"
      "fn child()\n"
      "  push(work, 2)\n"
      "  x = pop(work)\n"
      "  exit(0)\n"
      "end\n"
      "pid = fork(child)\n"
      "waitpid(pid)\n"
      "join(feeder)\n");
  EXPECT_TRUE(
      of_kind(report, analysis::FindingKind::kForkChildResource).empty())
      << report.to_string();
}

TEST(ForklintTest, FlagsChildJoinOfParentSideThread) {
  analysis::Report report = forklint(
      "fn worker()\n"          // 1
      "  return nil\n"         // 2
      "end\n"                  // 3
      "t = spawn(worker)\n"    // 4
      "fn child()\n"           // 5
      "  join(t)\n"            // 6
      "  exit(0)\n"            // 7
      "end\n"                  // 8
      "pid = fork(child)\n"    // 9
      "waitpid(pid)\n"
      "join(t)\n");
  auto found = of_kind(report, analysis::FindingKind::kForkChildResource);
  ASSERT_EQ(found.size(), 1u) << report.to_string();
  EXPECT_EQ(found[0]->line, 6);
  EXPECT_EQ(found[0]->object, "t");
}

TEST(ForklintTest, SilentWhenChildJoinsItsOwnSpawn) {
  analysis::Report report = forklint(
      "fn worker()\n"
      "  return nil\n"
      "end\n"
      "fn child()\n"
      "  t = spawn(worker)\n"
      "  join(t)\n"
      "  exit(0)\n"
      "end\n"
      "pid = fork(child)\n"
      "waitpid(pid)\n");
  EXPECT_TRUE(
      of_kind(report, analysis::FindingKind::kForkChildResource).empty())
      << report.to_string();
}

// Plain fork() (no child block) gives the analysis no child body to
// inspect; only the lock check applies.
TEST(ForklintTest, PlainForkWithoutBlockOnlyChecksLocks) {
  analysis::Report report = forklint(
      "work = queue()\n"
      "fn feed()\n"
      "  push(work, 1)\n"
      "end\n"
      "feeder = spawn(feed)\n"
      "pid = fork()\n"
      "if pid == 0\n"
      "  exit(0)\n"
      "end\n"
      "waitpid(pid)\n"
      "join(feeder)\n");
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

// ---- eval / trace-hook gate --------------------------------------------

const vm::FunctionProto* compile_or_die(
    const std::string& source, const std::string& file,
    std::shared_ptr<const vm::FunctionProto>* keep) {
  auto proto = vm::compile_source(source, file);
  EXPECT_TRUE(proto.is_ok()) << proto.error().to_string();
  *keep = proto.is_ok() ? proto.value() : nullptr;
  return keep->get();
}

TEST(ForklintTest, EvalFlaggedWhenExpressionForksDirectly) {
  std::shared_ptr<const vm::FunctionProto> keep;
  const vm::FunctionProto* eval_proto =
      compile_or_die("x = fork()\n", "<eval>", &keep);
  ASSERT_NE(eval_proto, nullptr);
  analysis::Report report = analysis::forklint_eval(*eval_proto, nullptr);
  auto found = of_kind(report, analysis::FindingKind::kForkInTraceHook);
  ASSERT_EQ(found.size(), 1u) << report.to_string();
  EXPECT_EQ(found[0]->object, "eval");
}

TEST(ForklintTest, EvalFlaggedWhenExpressionCallsForkingProgramFunction) {
  std::shared_ptr<const vm::FunctionProto> keep_main;
  const vm::FunctionProto* main = compile_or_die(
      "fn restart()\n"
      "  pid = fork()\n"
      "  if pid == 0\n"
      "    exit(0)\n"
      "  end\n"
      "  return pid\n"
      "end\n"
      "restart()\n",
      "prog.ml", &keep_main);
  ASSERT_NE(main, nullptr);
  std::shared_ptr<const vm::FunctionProto> keep_eval;
  const vm::FunctionProto* eval_proto =
      compile_or_die("x = restart()\n", "<eval>", &keep_eval);
  ASSERT_NE(eval_proto, nullptr);
  analysis::Report report = analysis::forklint_eval(*eval_proto, main);
  EXPECT_EQ(of_kind(report, analysis::FindingKind::kForkInTraceHook).size(),
            1u)
      << report.to_string();
}

TEST(ForklintTest, EvalSilentOnHarmlessExpression) {
  std::shared_ptr<const vm::FunctionProto> keep_main;
  const vm::FunctionProto* main = compile_or_die(
      "fn restart()\n"
      "  pid = fork()\n"
      "  if pid == 0\n"
      "    exit(0)\n"
      "  end\n"
      "  return pid\n"
      "end\n"
      "restart()\n",
      "prog.ml", &keep_main);
  ASSERT_NE(main, nullptr);
  std::shared_ptr<const vm::FunctionProto> keep_eval;
  const vm::FunctionProto* eval_proto =
      compile_or_die("x = 1 + 2\n", "<eval>", &keep_eval);
  ASSERT_NE(eval_proto, nullptr);
  analysis::Report report = analysis::forklint_eval(*eval_proto, main);
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

// ---- report plumbing ---------------------------------------------------

TEST(ForklintTest, ReportDedupeCollapsesByKindFileLineObject) {
  analysis::Report report;
  analysis::Finding finding;
  finding.kind = analysis::FindingKind::kForkUnderLock;
  finding.message = "first";
  finding.file = "a.ml";
  finding.line = 3;
  finding.object = "m";
  report.findings.push_back(finding);
  finding.message = "second copy, different text";
  report.findings.push_back(finding);
  finding.object = "n";  // different object: survives
  report.findings.push_back(finding);
  report.dedupe();
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.findings[0].message, "first");  // first occurrence wins
  EXPECT_EQ(report.findings[1].object, "n");
}

TEST(ForklintTest, EngineForklintReportSlotRoundTrips) {
  analysis::Report report;
  analysis::Finding finding;
  finding.kind = analysis::FindingKind::kAtforkUncovered;
  finding.message = "fixture";
  finding.object = "fixture.entry";
  report.findings.push_back(finding);
  analysis::Engine::instance().set_forklint_report(report);
  analysis::Report back = analysis::Engine::instance().forklint_report();
  ASSERT_EQ(back.findings.size(), 1u);
  EXPECT_EQ(back.findings[0].object, "fixture.entry");
  analysis::Engine::instance().set_forklint_report(analysis::Report{});
}

// ---- CFG structure -----------------------------------------------------

TEST(ForklintCfgTest, BuildsDeterministicBlocksOverBranches) {
  auto proto = vm::compile_source(
      "x = 1\n"
      "if x == 1\n"
      "  y = 2\n"
      "else\n"
      "  y = 3\n"
      "end\n"
      "puts(y)\n",
      "cfg.ml");
  ASSERT_TRUE(proto.is_ok());
  analysis::cfg::Cfg first = analysis::cfg::build(*proto.value());
  analysis::cfg::Cfg second = analysis::cfg::build(*proto.value());
  ASSERT_FALSE(first.empty());
  EXPECT_GE(first.blocks.size(), 3u);  // then / else / join at minimum
  EXPECT_EQ(first.blocks[0].begin, 0u);
  ASSERT_EQ(first.blocks.size(), second.blocks.size());
  for (std::size_t i = 0; i < first.blocks.size(); ++i) {
    EXPECT_EQ(first.blocks[i].begin, second.blocks[i].begin);
    EXPECT_EQ(first.blocks[i].end, second.blocks[i].end);
    EXPECT_EQ(first.blocks[i].succs, second.blocks[i].succs);
  }
  // Every successor index is in range and every non-terminating block
  // has at least one.
  for (const analysis::cfg::Block& block : first.blocks) {
    for (std::size_t succ : block.succs) {
      EXPECT_LT(succ, first.blocks.size());
    }
    if (!block.terminates) {
      EXPECT_FALSE(block.succs.empty());
    }
  }
}

TEST(ForklintCfgTest, ProgramGraphResolvesBindingsAndBuiltins) {
  auto proto = vm::compile_source(
      "fn helper()\n"
      "  pid = fork()\n"
      "  if pid == 0\n"
      "    exit(0)\n"
      "  end\n"
      "  return pid\n"
      "end\n"
      "fn outer()\n"
      "  return helper()\n"
      "end\n"
      "outer()\n",
      "graph.ml");
  ASSERT_TRUE(proto.is_ok());
  analysis::cfg::Program program =
      analysis::cfg::build_program(*proto.value());
  ASSERT_EQ(program.global_funcs.count("helper"), 1u);
  ASSERT_EQ(program.global_funcs.count("outer"), 1u);
  const vm::FunctionProto* outer = program.global_funcs.at("outer");
  // outer -> helper -> fork, over reference edges.
  EXPECT_TRUE(analysis::cfg::references_name(program, outer, "fork"));
  EXPECT_FALSE(analysis::cfg::references_name(program, outer, "join"));
  auto reach = analysis::cfg::reachable(program, outer);
  EXPECT_EQ(reach.count(program.global_funcs.at("helper")), 1u);
}

}  // namespace
}  // namespace dionea
