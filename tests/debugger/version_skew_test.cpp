// Hello-time version negotiation (raw wire level): a peer speaking a
// different MAJOR is refused with a typed error before any channel is
// established, and a pre-1.1 peer that sends no version fields at all
// is served as protocol 1.0.
#include <gtest/gtest.h>

#include "debugger/protocol.hpp"
#include "ipc/frame.hpp"
#include "ipc/socket.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using test::DebugHarness;
using test::HarnessOptions;
namespace proto = dbg::proto;

TEST(VersionSkewTest, MajorMismatchIsRefusedWithTypedError) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());

  // A from-the-future client on a fresh connection. The refusal must
  // come before the channel claim: the real session stays attached.
  auto raw = ipc::TcpStream::connect(harness.server().port());
  ASSERT_TRUE(raw.is_ok());
  proto::Hello hello;
  hello.channel = proto::kChannelControl;
  hello.pid = 0;
  hello.proto_major = 99;
  hello.proto_minor = 0;
  ASSERT_TRUE(ipc::send_frame(raw.value(), hello.to_wire()).is_ok());
  auto refusal = ipc::recv_frame_timeout(raw.value(), 5000);
  ASSERT_TRUE(refusal.is_ok()) << refusal.error().to_string();
  EXPECT_FALSE(refusal.value().get_bool("ok"));
  EXPECT_EQ(refusal.value().get_string("error_kind"),
            proto::kErrVersionMismatch);
  // The message names both dialects so a human can diagnose the skew.
  const std::string message = refusal.value().get_string("error");
  EXPECT_NE(message.find("99.0"), std::string::npos) << message;
  EXPECT_NE(message.find(std::to_string(proto::kProtoMajor)),
            std::string::npos)
      << message;

  // The attached session is unaffected by the refused intruder.
  ASSERT_TRUE(session->ping().is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(VersionSkewTest, LegacyHelloWithoutVersionIsServedAsOneDotZero) {
  // No client attached: the legacy peer gets the control channel.
  DebugHarness harness("x = 1");

  auto raw = ipc::TcpStream::connect(harness.server().port());
  ASSERT_TRUE(raw.is_ok());
  ipc::wire::Value legacy_hello;
  legacy_hello.set("channel", proto::kChannelControl);
  legacy_hello.set("pid", 0);
  ASSERT_TRUE(ipc::send_frame(raw.value(), legacy_hello).is_ok());

  ipc::wire::Value ping;
  ping.set("cmd", proto::PingRequest::kName);
  ping.set("seq", 1);
  ASSERT_TRUE(ipc::send_frame(raw.value(), ping).is_ok());
  auto pong = ipc::recv_frame_timeout(raw.value(), 5000);
  ASSERT_TRUE(pong.is_ok()) << pong.error().to_string();
  EXPECT_TRUE(pong.value().get_bool("ok"));
  EXPECT_EQ(pong.value().get_int("re"), 1);
  // 1.1 responses still decode for a 1.0 reader: additive fields only.
  EXPECT_GT(pong.value().get_int("pid"), 0);
}

TEST(VersionSkewTest, UnknownCommandGetsTypedError) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  auto reply = session->request("frobnicate");
  ASSERT_FALSE(reply.is_ok());
  // unknown_command maps to kNotFound client-side.
  EXPECT_EQ(reply.error().code(), ErrorCode::kNotFound)
      << reply.error().to_string();
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

}  // namespace
}  // namespace dionea
