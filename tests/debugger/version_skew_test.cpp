// Hello-time version negotiation (raw wire level): a peer speaking a
// different MAJOR is refused with a typed error before any channel is
// established, and a pre-1.1 peer that sends no version fields at all
// is served as protocol 1.0.
#include <thread>

#include <gtest/gtest.h>

#include "client/session.hpp"
#include "debugger/protocol.hpp"
#include "ipc/frame.hpp"
#include "ipc/socket.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using test::DebugHarness;
using test::HarnessOptions;
namespace proto = dbg::proto;

TEST(VersionSkewTest, MajorMismatchIsRefusedWithTypedError) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());

  // A from-the-future client on a fresh connection. The refusal must
  // come before the channel claim: the real session stays attached.
  auto raw = ipc::TcpStream::connect(harness.server().port());
  ASSERT_TRUE(raw.is_ok());
  proto::Hello hello;
  hello.channel = proto::kChannelControl;
  hello.pid = 0;
  hello.proto_major = 99;
  hello.proto_minor = 0;
  ASSERT_TRUE(ipc::send_frame(raw.value(), hello.to_wire()).is_ok());
  auto refusal = ipc::recv_frame_timeout(raw.value(), 5000);
  ASSERT_TRUE(refusal.is_ok()) << refusal.error().to_string();
  EXPECT_FALSE(refusal.value().get_bool("ok"));
  EXPECT_EQ(refusal.value().get_string("error_kind"),
            proto::kErrVersionMismatch);
  // The message names both dialects so a human can diagnose the skew.
  const std::string message = refusal.value().get_string("error");
  EXPECT_NE(message.find("99.0"), std::string::npos) << message;
  EXPECT_NE(message.find(std::to_string(proto::kProtoMajor)),
            std::string::npos)
      << message;

  // The attached session is unaffected by the refused intruder.
  ASSERT_TRUE(session->ping().is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(VersionSkewTest, LegacyHelloWithoutVersionIsServedAsOneDotZero) {
  // No client attached: the legacy peer gets the control channel.
  DebugHarness harness("x = 1");

  auto raw = ipc::TcpStream::connect(harness.server().port());
  ASSERT_TRUE(raw.is_ok());
  ipc::wire::Value legacy_hello;
  legacy_hello.set("channel", proto::kChannelControl);
  legacy_hello.set("pid", 0);
  ASSERT_TRUE(ipc::send_frame(raw.value(), legacy_hello).is_ok());

  ipc::wire::Value ping;
  ping.set("cmd", proto::PingRequest::kName);
  ping.set("seq", 1);
  ASSERT_TRUE(ipc::send_frame(raw.value(), ping).is_ok());
  auto pong = ipc::recv_frame_timeout(raw.value(), 5000);
  ASSERT_TRUE(pong.is_ok()) << pong.error().to_string();
  EXPECT_TRUE(pong.value().get_bool("ok"));
  EXPECT_EQ(pong.value().get_int("re"), 1);
  // 1.1 responses still decode for a 1.0 reader: additive fields only.
  EXPECT_GT(pong.value().get_int("pid"), 0);
}

TEST(VersionSkewTest, AnalysisAgainstOldServerDowngradesGracefully) {
  // A 1.2 server: speaks the same major, beacons, serves stats — but
  // has never heard of `analysis`. The new client must refuse
  // analysis_report() locally (kUnavailable naming the capability)
  // without putting a single frame on the wire.
  auto listener = ipc::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::uint16_t port = listener.value().port();

  std::thread old_server([&listener] {
    auto control = listener.value().accept_timeout(5000);
    ASSERT_TRUE(control.is_ok());
    auto control_hello = ipc::recv_frame_timeout(control.value(), 5000);
    ASSERT_TRUE(control_hello.is_ok());
    auto events = listener.value().accept_timeout(5000);
    ASSERT_TRUE(events.is_ok());
    auto events_hello = ipc::recv_frame_timeout(events.value(), 5000);
    ASSERT_TRUE(events_hello.is_ok());

    // The attach-time ping: answer as a 1.2 build would.
    auto ping = ipc::recv_frame_timeout(control.value(), 5000);
    ASSERT_TRUE(ping.is_ok());
    proto::PingResponse pong;
    pong.pid = 4242;
    pong.heartbeat_ms = 0;
    pong.proto_major = proto::kProtoMajor;
    pong.proto_minor = 2;
    pong.capabilities = {proto::kCapStats, proto::kCapHeartbeat,
                         proto::kCapReplay};
    ipc::wire::Value reply = pong.to_wire();
    reply.set("re", ping.value().get_int("seq"));
    reply.set("ok", true);
    ASSERT_TRUE(ipc::send_frame(control.value(), reply).is_ok());

    // If the client (wrongly) ships analysis-report, fail loudly.
    auto extra = ipc::recv_frame_timeout(control.value(), 200);
    EXPECT_FALSE(extra.is_ok())
        << "client sent a frame despite the missing capability: "
        << extra.value().get_string("cmd");
  });

  auto session = client::Session::attach(port, 5000);
  ASSERT_TRUE(session.is_ok()) << session.error().to_string();
  EXPECT_EQ(session.value()->server_proto_minor(), 2);
  EXPECT_FALSE(session.value()->supports(proto::kCapAnalysis));
  EXPECT_TRUE(session.value()->supports(proto::kCapReplay));

  auto report = session.value()->analysis_report();
  ASSERT_FALSE(report.is_ok());
  EXPECT_EQ(report.error().code(), ErrorCode::kUnavailable);
  EXPECT_NE(report.error().message().find(proto::kCapAnalysis),
            std::string::npos)
      << report.error().to_string();

  old_server.join();
}

TEST(VersionSkewTest, PostmortemAgainstOldServerDowngradesGracefully) {
  // A 1.3 server: current enough to lint and replay, but from before
  // post-mortem capture existed. postmortem() must fail locally with
  // kUnavailable naming the capability — zero frames on the wire.
  auto listener = ipc::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::uint16_t port = listener.value().port();

  std::thread old_server([&listener] {
    auto control = listener.value().accept_timeout(5000);
    ASSERT_TRUE(control.is_ok());
    auto control_hello = ipc::recv_frame_timeout(control.value(), 5000);
    ASSERT_TRUE(control_hello.is_ok());
    auto events = listener.value().accept_timeout(5000);
    ASSERT_TRUE(events.is_ok());
    auto events_hello = ipc::recv_frame_timeout(events.value(), 5000);
    ASSERT_TRUE(events_hello.is_ok());

    auto ping = ipc::recv_frame_timeout(control.value(), 5000);
    ASSERT_TRUE(ping.is_ok());
    proto::PingResponse pong;
    pong.pid = 4242;
    pong.heartbeat_ms = 0;
    pong.proto_major = proto::kProtoMajor;
    pong.proto_minor = 3;
    pong.capabilities = {proto::kCapStats, proto::kCapHeartbeat,
                         proto::kCapReplay, proto::kCapAnalysis};
    ipc::wire::Value reply = pong.to_wire();
    reply.set("re", ping.value().get_int("seq"));
    reply.set("ok", true);
    ASSERT_TRUE(ipc::send_frame(control.value(), reply).is_ok());

    auto extra = ipc::recv_frame_timeout(control.value(), 200);
    EXPECT_FALSE(extra.is_ok())
        << "client sent a frame despite the missing capability: "
        << extra.value().get_string("cmd");
  });

  auto session = client::Session::attach(port, 5000);
  ASSERT_TRUE(session.is_ok()) << session.error().to_string();
  EXPECT_EQ(session.value()->server_proto_minor(), 3);
  EXPECT_FALSE(session.value()->supports(proto::kCapPostmortem));

  auto corpse = session.value()->postmortem();
  ASSERT_FALSE(corpse.is_ok());
  EXPECT_EQ(corpse.error().code(), ErrorCode::kUnavailable);
  EXPECT_NE(corpse.error().message().find(proto::kCapPostmortem),
            std::string::npos)
      << corpse.error().to_string();

  old_server.join();
}

TEST(VersionSkewTest, UnknownCommandGetsTypedError) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  auto reply = session->request("frobnicate");
  ASSERT_FALSE(reply.is_ok());
  // unknown_command maps to kNotFound client-side.
  EXPECT_EQ(reply.error().code(), ErrorCode::kNotFound)
      << reply.error().to_string();
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

}  // namespace
}  // namespace dionea
