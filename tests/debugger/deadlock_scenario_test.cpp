// §6.2 reproduction as a test: Listing 5's cross-process deadlock is
// (a) fatal without the debugger (Listing 6) and (b) pinpointed to the
// exact line with it (Fig. 7).
#include <signal.h>

#include <gtest/gtest.h>

#include "replay/replay.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"

namespace dionea::dbg {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

constexpr const char* kListing5 =
    "q = queue()\n"                  // 1
    "spawn(fn()\n"                   // 2
    "  sleep(0.15)\n"                // 3
    "  q.push(true)\n"               // 4
    "end)\n"
    "pid = fork(fn()\n"              // 6
    "  q.pop()\n"                    // 7 <- the deadlocked line
    "  puts(\"In -- CHILD\")\n"      // 8
    "end)\n"
    "st = waitpid(pid)\n"            // 10
    "puts(\"child status \" + to_s(st))";

TEST(DeadlockScenarioTest, WithoutDebuggerChildDiesFatal) {
  // Listing 5's bug only manifests when the fork wins the race against
  // the helper's push (the child then pops a queue nobody else feeds).
  // Record runs until that interleaving is captured, then pin it: the
  // assertions run against replays of the recorded schedule, so the
  // test cannot flake on a scheduler that happens to push first.
  auto tmp = TempDir::create("listing5-replay");
  ASSERT_TRUE(tmp.is_ok());
  const std::string dir = tmp.value().file("logs");
  test::ReplayOutcome recorded;
  bool captured = false;
  for (int attempt = 0; attempt < 10 && !captured; ++attempt) {
    recorded = test::run_ml_record(dir, kListing5);
    captured = recorded.ok && recorded.output == "child status 1\n";
  }
  // The parent survives (its own queue got the push); the child died
  // with the stock fatal error -> exit status 1.
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  ASSERT_TRUE(captured) << "never recorded the racy interleaving; last "
                           "output: "
                        << recorded.output;
  for (int round = 0; round < 3; ++round) {
    test::ReplayOutcome replayed = test::run_ml_replay(dir, kListing5);
    EXPECT_TRUE(replayed.ok) << replayed.error_message;
    EXPECT_EQ(replayed.output, "child status 1\n") << "round " << round;
  }
}

TEST(DeadlockScenarioTest, WithDebuggerExactLineReported) {
  DebugHarness harness(kListing5,
                       HarnessOptions{.stop_at_entry = false,
                                      .stop_forked_children = true});
  (void)harness.launch();

  auto child_h = harness.client().attach_any(5000);
  ASSERT_TRUE(child_h.is_ok());
  client::Session* child = harness.client().session(child_h.value());
  auto birth = child->wait_stopped(5000);
  ASSERT_TRUE(birth.is_ok());
  ASSERT_TRUE(child->cont(birth.value().tid).is_ok());

  // Fig. 7: "Dionea showing the exact place where a deadlock occurs."
  auto deadlock = child->wait_event(proto::Event::kDeadlock, 5000);
  ASSERT_TRUE(deadlock.is_ok());
  const auto& blocked = deadlock.value().payload.at("threads").as_array();
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_EQ(blocked[0].get_string("file"), "test.ml");
  EXPECT_EQ(blocked[0].get_int("line"), 7);
  EXPECT_EQ(blocked[0].get_string("note"), "Queue#pop");

  // The debuggee is still alive and inspectable (unlike Listing 6).
  auto threads = child->threads();
  ASSERT_TRUE(threads.is_ok());
  ASSERT_EQ(threads.value().size(), 1u);
  EXPECT_EQ(threads.value()[0].state, "blocked");
  auto frames = child->frames(threads.value()[0].tid);
  ASSERT_TRUE(frames.is_ok());
  ASSERT_GE(frames.value().size(), 1u);
  EXPECT_EQ(frames.value()[0].line, 7);

  // Tear down: the child is deadlocked by design; kill it so the
  // parent's waitpid returns.
  ::kill(child->pid(), SIGKILL);
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "child status -9\n");
}

TEST(DeadlockScenarioTest, InThreadDeadlockReportedInParent) {
  // An all-threads deadlock in the TRACED parent process itself.
  DebugHarness harness(
      "q = queue()\n"   // 1
      "q.pop()",        // 2
      HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();
  auto deadlock = session->wait_event(proto::Event::kDeadlock, 5000);
  ASSERT_TRUE(deadlock.is_ok());
  const auto& blocked = deadlock.value().payload.at("threads").as_array();
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_EQ(blocked[0].get_int("line"), 2);
  // Resolve by exiting the VM.
  harness.vm().request_exit(0);
  auto result = harness.join();
  EXPECT_TRUE(result.exited);
}

TEST(DeadlockScenarioTest, MultiThreadDeadlockListsEveryThread) {
  DebugHarness harness(
      "q1 = queue()\n"                      // 1
      "q2 = queue()\n"                      // 2
      "spawn(fn()\n"                        // 3
      "  q2.push(q1.pop())\n"               // 4
      "end)\n"
      "q1.push(q2.pop())",                  // 6
      HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();
  auto deadlock = session->wait_event(proto::Event::kDeadlock, 5000);
  ASSERT_TRUE(deadlock.is_ok());
  const auto& blocked = deadlock.value().payload.at("threads").as_array();
  ASSERT_EQ(blocked.size(), 2u);
  std::set<int> lines;
  for (const auto& entry : blocked) {
    lines.insert(static_cast<int>(entry.get_int("line")));
    EXPECT_EQ(entry.get_string("note"), "Queue#pop");
  }
  EXPECT_TRUE(lines.count(4) == 1);
  EXPECT_TRUE(lines.count(6) == 1);
  harness.vm().request_exit(0);
  auto result = harness.join();
  EXPECT_TRUE(result.exited);
}

}  // namespace
}  // namespace dionea::dbg
