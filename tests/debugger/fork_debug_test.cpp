// Fork handlers A/B/C end-to-end: the paper's §5.3/§5.4 guarantees —
// the child keeps running, gets its own session/sockets, inherits the
// user's breakpoints, and the parent is debuggable throughout.
#include <signal.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::dbg {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

TEST(ForkDebugTest, ChildPublishesItsOwnSession) {
  DebugHarness harness(
      "pid = fork()\n"
      "if pid == 0\n"
      "  x = 1\n"
      "  exit(0)\n"
      "end\n"
      "waitpid(pid)",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  auto* parent = harness.launch();

  auto forked = parent->wait_event(proto::Event::kForked, 5000);
  ASSERT_TRUE(forked.is_ok());
  int child_pid = static_cast<int>(forked.value().payload.get_int("child_pid"));
  EXPECT_NE(child_pid, getpid());
  EXPECT_GT(child_pid, 0);

  auto child_h = harness.client().attach(child_pid, 5000);
  ASSERT_TRUE(child_h.is_ok());
  client::Session* child = harness.client().session(child_h.value());
  EXPECT_EQ(child->pid(), child_pid);
  // Distinct ports: the child re-bound (problem 3 of §5.3).
  EXPECT_NE(child->port(), parent->port());

  auto stop = child->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  ASSERT_TRUE(child->cont(stop.value().tid).is_ok());
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
}

TEST(ForkDebugTest, ChildInheritsBreakpoints) {
  DebugHarness harness(
      "pid = fork()\n"     // 1
      "if pid == 0\n"      // 2
      "  y = 5\n"          // 3
      "  z = y + 1\n"      // 4  <- breakpoint (child-only path)
      "  exit(z)\n"        // 5
      "end\n"
      "st = waitpid(pid)\n"
      "puts(st)",
      HarnessOptions{.stop_at_entry = true});
  auto* parent = harness.launch();
  auto entry = parent->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());
  ASSERT_TRUE(parent->set_breakpoint("test.ml", 4).is_ok());
  ASSERT_TRUE(parent->cont(1).is_ok());

  auto forked = parent->wait_event(proto::Event::kForked, 5000);
  ASSERT_TRUE(forked.is_ok());
  int child_pid = static_cast<int>(forked.value().payload.get_int("child_pid"));
  auto child_h = harness.client().attach(child_pid, 5000);
  ASSERT_TRUE(child_h.is_ok());
  client::Session* child = harness.client().session(child_h.value());

  auto hit = child->wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value().reason, "breakpoint");
  EXPECT_EQ(hit.value().line, 4);

  // Inspect the child's globals (pid == 0 proves we're in the child).
  auto globals = child->globals();
  ASSERT_TRUE(globals.is_ok());
  std::map<std::string, std::string> by_name(globals.value().begin(),
                                             globals.value().end());
  EXPECT_EQ(by_name["pid"], "0");
  EXPECT_EQ(by_name["y"], "5");

  Status child_resumed = child->cont(hit.value().tid);
  ASSERT_TRUE(child_resumed.is_ok()) << child_resumed.to_string();
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "6\n");
}

TEST(ForkDebugTest, ParentAndChildControlledIndependently) {
  DebugHarness harness(
      "pid = fork()\n"          // 1
      "if pid == 0\n"           // 2
      "  c = 0\n"               // 3
      "  while c < 3\n"         // 4
      "    c = c + 1\n"         // 5
      "  end\n"
      "  exit(c)\n"             // 7
      "end\n"
      "p = 100\n"               // 9
      "st = waitpid(pid)\n"     // 10
      "puts(p + st)",
      HarnessOptions{.stop_at_entry = true,
                     .stop_forked_children = true});
  auto* parent = harness.launch();
  auto entry = parent->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());
  ASSERT_TRUE(parent->cont(1).is_ok());

  auto forked = parent->wait_event(proto::Event::kForked, 5000);
  ASSERT_TRUE(forked.is_ok());
  int child_pid = static_cast<int>(forked.value().payload.get_int("child_pid"));
  auto child_h = harness.client().attach(child_pid, 5000);
  ASSERT_TRUE(child_h.is_ok());
  client::Session* child = harness.client().session(child_h.value());

  // The child is parked at birth; the parent keeps running (it blocks
  // in waitpid, an IO wait, without any debugger involvement).
  auto birth = child->wait_stopped(5000);
  ASSERT_TRUE(birth.is_ok());

  // Step the child a few lines while the parent stays blocked.
  ASSERT_TRUE(child->step(birth.value().tid).is_ok());
  auto step1 = child->wait_stopped(5000);
  ASSERT_TRUE(step1.is_ok());

  auto parent_threads = parent->threads();
  ASSERT_TRUE(parent_threads.is_ok());
  ASSERT_EQ(parent_threads.value().size(), 1u);
  EXPECT_EQ(parent_threads.value()[0].state, "io");  // in waitpid

  Status step_resumed = child->cont(step1.value().tid);
  ASSERT_TRUE(step_resumed.is_ok())
      << step_resumed.to_string() << " tid=" << step1.value().tid;
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "103\n");
}

TEST(ForkDebugTest, ForkWithBlockChildTerminationEventArrives) {
  DebugHarness harness(
      "pid = fork(fn()\n"
      "  v = 1\n"
      "end)\n"
      "puts(waitpid(pid))",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  auto* parent = harness.launch();
  auto forked = parent->wait_event(proto::Event::kForked, 5000);
  ASSERT_TRUE(forked.is_ok());
  int child_pid = static_cast<int>(forked.value().payload.get_int("child_pid"));
  auto child_h = harness.client().attach(child_pid, 5000);
  ASSERT_TRUE(child_h.is_ok());
  client::Session* child = harness.client().session(child_h.value());
  auto birth = child->wait_stopped(5000);
  ASSERT_TRUE(birth.is_ok());
  ASSERT_TRUE(child->cont(birth.value().tid).is_ok());
  // Listing 3 / handler C: the child's at-exit hook reports termination.
  auto terminated = child->wait_event(proto::Event::kTerminated, 5000);
  ASSERT_TRUE(terminated.is_ok());
  EXPECT_EQ(terminated.value().payload.get_int("pid"), child_pid);
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "0\n");
}

TEST(ForkDebugTest, GrandchildGetsSessionToo) {
  DebugHarness harness(
      "pid = fork()\n"
      "if pid == 0\n"
      "  inner = fork()\n"
      "  if inner == 0\n"
      "    g = 1\n"
      "    exit(0)\n"
      "  end\n"
      "  exit(waitpid(inner))\n"
      "end\n"
      "puts(waitpid(pid))",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  (void)harness.launch();

  // Adopt the child, resume it; it forks a grandchild which also stops
  // at birth and publishes its own record.
  auto child_h = harness.client().attach_any(5000);
  ASSERT_TRUE(child_h.is_ok());
  client::Session* child = harness.client().session(child_h.value());
  auto child_stop = child->wait_stopped(5000);
  ASSERT_TRUE(child_stop.is_ok());
  ASSERT_TRUE(child->cont(child_stop.value().tid).is_ok());

  auto grandchild_h = harness.client().attach_any(5000);
  ASSERT_TRUE(grandchild_h.is_ok());
  client::Session* grandchild = harness.client().session(grandchild_h.value());
  EXPECT_NE(grandchild->pid(), child->pid());
  auto info = grandchild->info();
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().fork_depth, 2);

  auto grand_stop = grandchild->wait_stopped(5000);
  ASSERT_TRUE(grand_stop.is_ok());
  Status resumed = grandchild->cont(grand_stop.value().tid);
  ASSERT_TRUE(resumed.is_ok())
      << resumed.to_string() << " tid=" << grand_stop.value().tid
      << " reason=" << grand_stop.value().reason
      << " line=" << grand_stop.value().line;
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "0\n");
}

TEST(ForkDebugTest, TracingStaysOffWhenItWasOff) {
  // Fork handler B/C restore the trace flag to what A saw. If the
  // debugger had tracing disabled (detached), the child must not
  // re-enable it.
  DebugHarness harness(
      "pid = fork(fn() exit(0) end)\n"
      "puts(waitpid(pid))",
      HarnessOptions{.stop_at_entry = false});
  auto* parent = harness.launch();
  ASSERT_TRUE(parent->detach().is_ok());  // disables tracing
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "0\n");
  EXPECT_FALSE(harness.vm().trace_enabled());
}

TEST(ForkDebugTest, ManySequentialForksAllAdoptable) {
  DebugHarness harness(
      "results = []\n"
      "for i in 4\n"
      "  pid = fork(fn() exit(0) end)\n"
      "  push(results, waitpid(pid))\n"
      "end\n"
      "total = 0\n"
      "for r in results\n"
      "  total = total + r\n"
      "end\n"
      "puts(total)",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  (void)harness.launch();
  for (int i = 0; i < 4; ++i) {
    auto child_h = harness.client().attach_any(10'000);
    ASSERT_TRUE(child_h.is_ok()) << "child " << i;
    client::Session* child = harness.client().session(child_h.value());
    auto stop = child->wait_stopped(5000);
    ASSERT_TRUE(stop.is_ok()) << "child " << i;
    ASSERT_TRUE(child->cont(stop.value().tid).is_ok());
  }
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "0\n");
}

}  // namespace
}  // namespace dionea::dbg
