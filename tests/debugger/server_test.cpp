// DebugServer end-to-end over real sockets: attach, breakpoints,
// stepping, inspection, per-thread suspension (low-intrusiveness).
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::dbg {
namespace {

using test::DebugHarness;
using test::HarnessOptions;
using test::poll_until;

TEST(ServerTest, PingInfoAndEntryStop) {
  DebugHarness harness("x = 1\ny = 2");
  auto* session = harness.launch();

  auto info = session->info();
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().pid, getpid());
  EXPECT_EQ(info.value().main_tid, 1);
  EXPECT_EQ(info.value().fork_depth, 0);
  EXPECT_EQ(info.value().proto_major, proto::kProtoMajor);

  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());
  EXPECT_EQ(entry.value().reason, "pause");
  EXPECT_EQ(entry.value().file, "test.ml");
  EXPECT_EQ(entry.value().line, 1);
  EXPECT_EQ(entry.value().tid, 1);

  ASSERT_TRUE(session->cont(1).is_ok());
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "");
}

TEST(ServerTest, BreakpointHitWithLocalsAndFrames) {
  DebugHarness harness(
      "fn work(a, b)\n"   // 1
      "  c = a + b\n"     // 2
      "  return c * 2\n"  // 3
      "end\n"
      "r = work(4, 5)\n"  // 5
      "puts(r)");
  auto* session = harness.launch();
  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());

  auto bp = session->set_breakpoint("test.ml", 3);
  ASSERT_TRUE(bp.is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());

  auto hit = session->wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value().reason, "breakpoint");
  EXPECT_EQ(hit.value().breakpoint_id, bp.value());
  EXPECT_EQ(hit.value().line, 3);
  EXPECT_EQ(hit.value().function, "work");

  auto locals = session->locals(1, 0);
  ASSERT_TRUE(locals.is_ok());
  ASSERT_EQ(locals.value().size(), 3u);
  EXPECT_EQ(locals.value()[0], (std::pair<std::string, std::string>{"a", "4"}));
  EXPECT_EQ(locals.value()[1], (std::pair<std::string, std::string>{"b", "5"}));
  EXPECT_EQ(locals.value()[2], (std::pair<std::string, std::string>{"c", "9"}));

  auto frames = session->frames(1);
  ASSERT_TRUE(frames.is_ok());
  ASSERT_EQ(frames.value().size(), 2u);
  EXPECT_EQ(frames.value()[0].function, "work");
  EXPECT_EQ(frames.value()[0].line, 3);
  EXPECT_EQ(frames.value()[1].function, "<main>");
  EXPECT_EQ(frames.value()[1].line, 5);

  // Outer frame locals via depth=1: <main> has no locals, only globals.
  auto outer = session->locals(1, 1);
  ASSERT_TRUE(outer.is_ok());
  EXPECT_TRUE(outer.value().empty());

  ASSERT_TRUE(session->cont(1).is_ok());
  ASSERT_TRUE(harness.join().ok);
  EXPECT_EQ(harness.output(), "18\n");
}

TEST(ServerTest, GlobalsSnapshot) {
  DebugHarness harness("alpha = 42\nbeta = \"s\"\ngamma = [1]\ndone = 1");
  auto* session = harness.launch();
  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());

  auto bp = session->set_breakpoint("test.ml", 4);
  ASSERT_TRUE(bp.is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());

  auto globals = session->globals();
  ASSERT_TRUE(globals.is_ok());
  std::map<std::string, std::string> by_name(globals.value().begin(),
                                             globals.value().end());
  EXPECT_EQ(by_name["alpha"], "42");
  EXPECT_EQ(by_name["beta"], "\"s\"");
  EXPECT_EQ(by_name["gamma"], "[1]");
  EXPECT_EQ(by_name.count("puts"), 0u);  // builtins filtered out

  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(ServerTest, StepNextFinishSemantics) {
  DebugHarness harness(
      "fn inner()\n"      // 1
      "  x = 1\n"         // 2
      "  return x\n"      // 3
      "end\n"
      "fn outer()\n"      // 5
      "  a = inner()\n"   // 6
      "  b = a + 1\n"     // 7
      "  return b\n"      // 8
      "end\n"
      "r = outer()\n"     // 10
      "puts(r)");         // 11
  auto* session = harness.launch();
  // Entry stop is line 1: `fn` definitions are statements too.
  auto stop = session->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().line, 1);
  ASSERT_TRUE(session->set_breakpoint("test.ml", 10).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  stop = session->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().line, 10);
  ASSERT_TRUE(session->clear_breakpoint(0).is_ok());

  // step (into): first traced line inside outer.
  ASSERT_TRUE(session->step(1).is_ok());
  stop = session->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().line, 6);
  EXPECT_EQ(stop.value().function, "outer");

  // next (over): inner() runs entirely; stop at line 7, same frame.
  ASSERT_TRUE(session->next(1).is_ok());
  stop = session->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().line, 7);
  EXPECT_EQ(stop.value().function, "outer");

  // step (into) on a plain statement behaves like next.
  ASSERT_TRUE(session->step(1).is_ok());
  stop = session->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().line, 8);

  // finish (out): back in <main>.
  ASSERT_TRUE(session->finish(1).is_ok());
  stop = session->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().function, "<main>");
  EXPECT_EQ(stop.value().line, 11);

  ASSERT_TRUE(session->cont(1).is_ok());
  ASSERT_TRUE(harness.join().ok);
  EXPECT_EQ(harness.output(), "2\n");
}

TEST(ServerTest, StepIntoDescendsIntoCall) {
  DebugHarness harness(
      "fn f()\n"       // 1
      "  return 7\n"   // 2
      "end\n"
      "x = f()\n"      // 4
      "y = x");        // 5
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());  // entry: fn def, line 1
  ASSERT_TRUE(session->step(1).is_ok());             // -> line 4 (x = f())
  auto at4 = session->wait_stopped(5000);
  ASSERT_TRUE(at4.is_ok());
  EXPECT_EQ(at4.value().line, 4);
  ASSERT_TRUE(session->step(1).is_ok());
  auto stop = session->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().line, 2);
  EXPECT_EQ(stop.value().function, "f");
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(ServerTest, PauseInterruptsRunningLoop) {
  DebugHarness harness(
      "i = 0\n"
      "while i < 100000000\n"
      "  i = i + 1\n"
      "end\n"
      "puts(\"done \" + to_s(i))",
      HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();
  // Wait until the loop is demonstrably spinning (i exists and has
  // advanced) instead of hoping 50ms was enough on a loaded box.
  ASSERT_TRUE(poll_until([&harness] {
    auto globals = harness.vm().globals_snapshot();
    for (const auto& [name, value] : globals) {
      if (name == "i") return value != "0";
    }
    return false;
  }));

  ASSERT_TRUE(session->pause(1).is_ok());
  auto stop = session->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().reason, "pause");
  auto threads = session->threads();
  ASSERT_TRUE(threads.is_ok());
  ASSERT_EQ(threads.value().size(), 1u);
  EXPECT_EQ(threads.value()[0].state, "suspended");

  // Shorten the loop from the debugger? Not supported — instead verify
  // i has advanced, then let it run to completion... too slow; kill it
  // by detaching and letting the harness shutdown path handle it.
  auto locals = session->locals(1, 0);
  ASSERT_TRUE(locals.is_ok());
  // i is a global (top-level): check via globals.
  auto globals = session->globals();
  ASSERT_TRUE(globals.is_ok());
  ASSERT_EQ(globals.value().size(), 1u);
  EXPECT_EQ(globals.value()[0].first, "i");
  std::int64_t i_value = std::stoll(globals.value()[0].second);
  EXPECT_GT(i_value, 0);

  // Resume; then stop the VM quickly via server teardown in the
  // harness destructor (the loop is too long to wait out).
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.vm().request_exit(0);
  auto result = harness.join();
  EXPECT_TRUE(result.exited);
}

TEST(ServerTest, LowIntrusiveOneThreadParkedOthersRun) {
  // §1 fn.1: suspending one thread leaves the rest running.
  DebugHarness harness(
      "fn ticker(q)\n"
      "  i = 0\n"
      "  while true\n"
      "    q.push(i)\n"
      "    i = i + 1\n"
      "    sleep(0.01)\n"
      "  end\n"
      "end\n"
      "fn stopper()\n"
      "  sleep(0.4)\n"        // grace for the client to set the bp
      "  target_line = 1\n"   // line 11: breakpoint target
      "  sleep(5)\n"
      "  return nil\n"
      "end\n"
      "q = queue()\n"
      "t1 = spawn(ticker, q)\n"
      "t2 = spawn(stopper)\n"
      "drain = 0\n"
      "while true\n"
      "  v = q.pop()\n"
      "  drain = drain + 1\n"
      "end",
      HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();

  // Break only in stopper's body.
  auto bp = session->set_breakpoint("test.ml", 11);
  ASSERT_TRUE(bp.is_ok());
  auto stop = session->wait_stopped(10'000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().function, "stopper");
  std::int64_t parked_tid = stop.value().tid;

  // While stopper is parked, the ticker and main keep making progress.
  // Poll until the steady state (3 threads, exactly the stopper
  // suspended) is visible rather than sleeping and hoping.
  ASSERT_TRUE(poll_until([&session] {
    auto snapshot = session->threads();
    if (!snapshot.is_ok() || snapshot.value().size() != 3) return false;
    int suspended = 0;
    for (const auto& thread : snapshot.value()) {
      if (thread.state == "suspended") ++suspended;
    }
    return suspended == 1;
  }));
  auto threads = session->threads();
  ASSERT_TRUE(threads.is_ok());
  for (const auto& thread : threads.value()) {
    if (thread.state == "suspended") EXPECT_EQ(thread.tid, parked_tid);
  }

  auto drain_of = [](const std::vector<std::pair<std::string, std::string>>&
                         globals) {
    for (const auto& [name, value] : globals) {
      if (name == "drain") return std::stoll(value);
    }
    return -1ll;
  };
  auto globals_before = session->globals();
  ASSERT_TRUE(globals_before.is_ok());
  const std::int64_t before = drain_of(globals_before.value());
  // Progress check: drain strictly advances while stopper stays parked.
  ASSERT_TRUE(poll_until([&session, &drain_of, before] {
    auto globals_after = session->globals();
    return globals_after.is_ok() &&
           drain_of(globals_after.value()) > before;
  }));

  // Teardown: the harness destructor resumes the parked thread and
  // kills the infinite loops at VM shutdown.
  ASSERT_TRUE(session->cont(parked_tid).is_ok());
  harness.vm().request_exit(0);
  harness.join();
}

TEST(ServerTest, BreakpointInSpawnedThread) {
  DebugHarness harness(
      "fn job(n)\n"       // 1
      "  m = n * 2\n"     // 2
      "  return m\n"      // 3
      "end\n"
      "t = spawn(job, 21)\n"
      "puts(join(t))");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  auto bp = session->set_breakpoint("test.ml", 3);
  ASSERT_TRUE(bp.is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());

  auto hit = session->wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok());
  EXPECT_GT(hit.value().tid, 1);  // not the main thread
  EXPECT_EQ(hit.value().function, "job");

  auto locals = session->locals(hit.value().tid, 0);
  ASSERT_TRUE(locals.is_ok());
  std::map<std::string, std::string> by_name(locals.value().begin(),
                                             locals.value().end());
  EXPECT_EQ(by_name["n"], "21");
  EXPECT_EQ(by_name["m"], "42");

  ASSERT_TRUE(session->cont(hit.value().tid).is_ok());
  ASSERT_TRUE(harness.join().ok);
  EXPECT_EQ(harness.output(), "42\n");
}

TEST(ServerTest, ThreadEventsEmitted) {
  DebugHarness harness(
      "t = spawn(fn() return 1 end)\njoin(t)",
      HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();
  auto started = session->wait_event(proto::Event::kThreadStart, 5000);
  ASSERT_TRUE(started.is_ok());
  auto exited = session->wait_event(proto::Event::kThreadExit, 5000);
  ASSERT_TRUE(exited.is_ok());
  harness.join();
}

TEST(ServerTest, SourceCommandServesRegisteredText) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  auto source = session->source("test.ml");
  ASSERT_TRUE(source.is_ok());
  EXPECT_EQ(source.value(), "x = 1");
  auto missing = session->source("no-such-file.ml");
  EXPECT_FALSE(missing.is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(ServerTest, BreakListReflectsTable) {
  DebugHarness harness("x = 1\ny = 2");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  auto b1 = session->set_breakpoint("test.ml", 1);
  auto b2 = session->set_breakpoint("test.ml", 2);
  ASSERT_TRUE(b1.is_ok());
  ASSERT_TRUE(b2.is_ok());
  auto list = session->breakpoints();
  ASSERT_TRUE(list.is_ok());
  EXPECT_EQ(list.value().size(), 2u);

  ASSERT_TRUE(session->clear_breakpoint(b1.value()).is_ok());
  list = session->breakpoints();
  ASSERT_TRUE(list.is_ok());
  ASSERT_EQ(list.value().size(), 1u);
  EXPECT_EQ(list.value()[0].id, b2.value());

  ASSERT_TRUE(session->clear_breakpoint(0).is_ok());  // clear all
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(ServerTest, ResumeErrorsForBadThread) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  EXPECT_FALSE(session->cont(999).is_ok());
  EXPECT_FALSE(session->step(999).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  // Continuing a thread that isn't suspended is an error too. Wait for
  // the resume to actually land (no thread suspended any more) first.
  ASSERT_TRUE(poll_until([&session] {
    auto snapshot = session->threads();
    if (!snapshot.is_ok()) return false;
    for (const auto& thread : snapshot.value()) {
      if (thread.state == "suspended") return false;
    }
    return true;
  }));
  EXPECT_FALSE(session->cont(1).is_ok());
  harness.join();
}

TEST(ServerTest, UnknownCommandRejected) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  auto response = session->request("frobnicate");
  EXPECT_FALSE(response.is_ok());
  EXPECT_NE(response.error().message().find("unknown command"),
            std::string::npos);
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(ServerTest, SecondControlClientRefused) {
  DebugHarness harness("sleep(2)\n",
                       HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();
  ASSERT_NE(session, nullptr);
  // A second full session attach must fail on the control hello.
  auto second = client::Session::attach(harness.server().port(), 1000);
  EXPECT_FALSE(second.is_ok());
  harness.vm().request_exit(0);
  harness.join();
}

TEST(ServerTest, EventsBeforeAttachAreBuffered) {
  // Start a server, let the program stop at entry with no client, then
  // attach late: the stop event must still arrive.
  vm::Interp interp;
  auto tmp = TempDir::create("late-attach");
  ASSERT_TRUE(tmp.is_ok());
  DebugServer::Options options;
  options.port_file = tmp.value().file("ports");
  options.stop_at_entry = true;
  DebugServer server(interp.vm(), options);
  server.register_source("late.ml", "x = 1");
  ASSERT_TRUE(server.start().is_ok());
  std::thread runner([&] { (void)interp.run_string("x = 1", "late.ml"); });
  // The entry stop must happen BEFORE anyone attaches — that is the
  // scenario under test. Wait for the park itself, not a fixed 150ms.
  ASSERT_TRUE(poll_until([&interp] {
    for (const auto& thread : interp.vm().list_threads()) {
      if (thread.state == vm::ThreadState::kDebugParked) return true;
    }
    return false;
  }));

  auto session = client::Session::attach(server.port(), 2000);
  ASSERT_TRUE(session.is_ok());
  auto stop = session.value()->wait_stopped(3000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().line, 1);
  ASSERT_TRUE(session.value()->cont(1).is_ok());
  runner.join();
  server.stop();
}

TEST(ServerTest, DetachResumesEverything) {
  DebugHarness harness("x = 1\ny = 2\nputs(x + y)");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  ASSERT_TRUE(session->set_breakpoint("test.ml", 2).is_ok());
  // Detach: parked thread resumes, tracing stops, breakpoint never hits.
  ASSERT_TRUE(session->detach().is_ok());
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "3\n");
}

TEST(ServerTest, StopAllowsProgramToFinish) {
  DebugHarness harness("x = 1\nputs(x)");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  harness.server().stop();  // tears down mid-session; debuggee resumes
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "1\n");
}

}  // namespace
}  // namespace dionea::dbg

namespace dionea::dbg {
namespace {

TEST(ServerOutputTest, CaptureOutputMirrorsToClient) {
  // The Output window of Fig. 2: with capture_output on, puts() is
  // forwarded to the client as `output` events.
  vm::Interp interp;
  auto tmp = TempDir::create("capture-out");
  ASSERT_TRUE(tmp.is_ok());
  DebugServer::Options options;
  options.port_file = tmp.value().file("ports");
  options.capture_output = true;
  DebugServer server(interp.vm(), options);
  ASSERT_TRUE(server.start().is_ok());
  auto session = client::Session::attach(server.port(), 3000);
  ASSERT_TRUE(session.is_ok());
  std::thread runner([&] {
    (void)interp.run_string("puts(\"first\")\nputs(\"second\")", "out.ml");
  });
  auto first = session.value()->wait_event(proto::Event::kOutput, 5000);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().payload.get_string("text"), "first\n");
  auto second = session.value()->wait_event(proto::Event::kOutput, 5000);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().payload.get_string("text"), "second\n");
  runner.join();
  server.stop();
}

}  // namespace
}  // namespace dionea::dbg
