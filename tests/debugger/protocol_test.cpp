#include "debugger/protocol.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace dionea::dbg::proto {
namespace {

// Encode/decode through real wire bytes so the round trip covers the
// serializer, not just the in-memory Value tree.
ipc::wire::Value rewire(const ipc::wire::Value& value) {
  std::string bytes;
  value.encode(&bytes);
  auto decoded = ipc::wire::Value::decode(bytes);
  EXPECT_TRUE(decoded.is_ok());
  return decoded.is_ok() ? decoded.value() : ipc::wire::Value();
}

template <typename T>
T round_trip(const T& in) {
  auto out = T::from_wire(rewire(in.to_wire()));
  EXPECT_TRUE(out.is_ok()) << T::kName;
  return out.is_ok() ? std::move(out).value() : T{};
}

// Responses have no kName; same round trip without the label.
template <typename T>
T round_trip_response(const T& in) {
  auto out = T::from_wire(rewire(in.to_wire()));
  EXPECT_TRUE(out.is_ok());
  return out.is_ok() ? std::move(out).value() : T{};
}

TEST(ProtocolTest, HelloRoundTrip) {
  Hello hello;
  hello.channel = kChannelControl;
  hello.pid = 1234;
  hello.capabilities = local_capabilities();
  auto back = round_trip_response(hello);
  EXPECT_EQ(back.channel, "control");
  EXPECT_EQ(back.pid, 1234);
  EXPECT_EQ(back.proto_major, kProtoMajor);
  EXPECT_EQ(back.proto_minor, kProtoMinor);
  EXPECT_EQ(back.capabilities, local_capabilities());
}

TEST(ProtocolTest, HelloWithoutVersionDecodesAsOneDotZero) {
  // A pre-1.1 peer sends only {channel, pid}; lenient decode maps it
  // to protocol 1.0 with no capabilities rather than failing.
  ipc::wire::Value old_hello;
  old_hello.set("channel", "events");
  old_hello.set("pid", 77);
  auto hello = Hello::from_wire(old_hello);
  ASSERT_TRUE(hello.is_ok());
  EXPECT_EQ(hello.value().channel, "events");
  EXPECT_EQ(hello.value().pid, 77);
  EXPECT_EQ(hello.value().proto_major, 1);
  EXPECT_EQ(hello.value().proto_minor, 0);
  EXPECT_TRUE(hello.value().capabilities.empty());
}

TEST(ProtocolTest, HelloRejectsNonObject) {
  ipc::wire::Value not_an_object(42);
  EXPECT_FALSE(Hello::from_wire(not_an_object).is_ok());
}

TEST(ProtocolTest, LocalCapabilitiesIncludeStatsAndHeartbeat) {
  auto caps = local_capabilities();
  std::set<std::string> set(caps.begin(), caps.end());
  EXPECT_TRUE(set.count(kCapStats));
  EXPECT_TRUE(set.count(kCapHeartbeat));
}

TEST(ProtocolTest, OkAndErrorResponses) {
  auto ok = make_ok(7);
  EXPECT_EQ(ok.get_int("re"), 7);
  EXPECT_TRUE(ok.get_bool("ok"));
  EXPECT_FALSE(ok.has("error"));

  auto error = make_error(8, "no such thread");
  EXPECT_EQ(error.get_int("re"), 8);
  EXPECT_FALSE(error.get_bool("ok"));
  EXPECT_EQ(error.get_string("error"), "no such thread");
  EXPECT_FALSE(error.has("error_kind"));
}

TEST(ProtocolTest, ErrorKindsAreMachineReadable) {
  auto error = make_error(9, "speak 1.x", kErrVersionMismatch);
  EXPECT_EQ(error.get_string("error_kind"), kErrVersionMismatch);
  auto unknown = make_error(10, "what is frobnicate", kErrUnknownCommand);
  EXPECT_EQ(unknown.get_string("error_kind"), kErrUnknownCommand);
  auto bad = make_error(11, "tid must be an int", kErrBadRequest);
  EXPECT_EQ(bad.get_string("error_kind"), kErrBadRequest);
}

TEST(ProtocolTest, EventNamesRoundTripThroughEnum) {
  const Event all[] = {Event::kStopped,       Event::kThreadStart,
                       Event::kThreadExit,    Event::kForked,
                       Event::kTerminated,    Event::kDeadlock,
                       Event::kOutput,        Event::kHeartbeat,
                       Event::kProcessExited, Event::kProcessCrashed};
  std::set<std::string> names;
  for (Event e : all) {
    names.insert(event_name(e));
    EXPECT_EQ(event_from_name(event_name(e)), e);
  }
  EXPECT_EQ(names.size(), std::size(all));
  EXPECT_EQ(event_from_name("launder_money"), Event::kUnknown);
}

TEST(ProtocolTest, OnlyHeartbeatIsInternal) {
  // The enum is the single authority on transport-internal events:
  // heartbeats never surface to wait_event() users, everything else
  // must.
  EXPECT_TRUE(event_internal(Event::kHeartbeat));
  EXPECT_FALSE(event_internal(Event::kStopped));
  EXPECT_FALSE(event_internal(Event::kForked));
  EXPECT_FALSE(event_internal(Event::kTerminated));
  EXPECT_FALSE(event_internal(Event::kProcessCrashed));
  EXPECT_FALSE(event_internal(Event::kUnknown));
}

TEST(ProtocolTest, InternalEventsAreFlaggedOnTheWire) {
  auto heartbeat = make_event(Event::kHeartbeat);
  EXPECT_EQ(heartbeat.get_string("event"), "heartbeat");
  EXPECT_TRUE(heartbeat.get_bool("internal"));
  auto stopped = make_event(Event::kStopped);
  EXPECT_EQ(stopped.get_string("event"), "stopped");
  EXPECT_FALSE(stopped.has("internal"));
}

TEST(ProtocolTest, ArglessRequestsRoundTrip) {
  round_trip(PingRequest{});
  round_trip(InfoRequest{});
  round_trip(ThreadsRequest{});
  round_trip(GlobalsRequest{});
  round_trip(BreakListRequest{});
  round_trip(ContinueAllRequest{});
  round_trip(PauseAllRequest{});
  round_trip(DetachRequest{});
  round_trip(StatsRequest{});
}

TEST(ProtocolTest, TidRequestsRoundTrip) {
  FramesRequest frames;
  frames.tid = 42;
  EXPECT_EQ(round_trip(frames).tid, 42);

  ContinueRequest cont;
  cont.tid = 7;
  EXPECT_EQ(round_trip(cont).tid, 7);
  StepRequest step;
  step.tid = 8;
  EXPECT_EQ(round_trip(step).tid, 8);
  NextRequest next;
  next.tid = 9;
  EXPECT_EQ(round_trip(next).tid, 9);
  FinishRequest finish;
  finish.tid = 10;
  EXPECT_EQ(round_trip(finish).tid, 10);
  PauseRequest pause;
  pause.tid = 11;
  EXPECT_EQ(round_trip(pause).tid, 11);
}

TEST(ProtocolTest, PingResponseRoundTrip) {
  PingResponse pong;
  pong.pid = 4321;
  pong.heartbeat_ms = 250;
  pong.proto_major = kProtoMajor;
  pong.proto_minor = kProtoMinor;
  pong.capabilities = {kCapStats, kCapHeartbeat};
  auto back = round_trip_response(pong);
  EXPECT_EQ(back.pid, 4321);
  EXPECT_EQ(back.heartbeat_ms, 250);
  EXPECT_EQ(back.proto_major, kProtoMajor);
  EXPECT_EQ(back.proto_minor, kProtoMinor);
  EXPECT_EQ(back.capabilities.size(), 2u);
}

TEST(ProtocolTest, PingResponseFromOldServerDefaultsToOneDotZero) {
  ipc::wire::Value old_pong;
  old_pong.set("pid", 5);
  old_pong.set("heartbeat_ms", 0);
  auto pong = PingResponse::from_wire(old_pong);
  ASSERT_TRUE(pong.is_ok());
  EXPECT_EQ(pong.value().proto_major, 1);
  EXPECT_EQ(pong.value().proto_minor, 0);
  EXPECT_TRUE(pong.value().capabilities.empty());
}

TEST(ProtocolTest, InfoResponseRoundTrip) {
  InfoResponse info;
  info.pid = 99;
  info.main_tid = 3;
  info.fork_depth = 2;
  info.disturb = true;
  info.heartbeat_ms = 100;
  info.proto_major = kProtoMajor;
  info.proto_minor = kProtoMinor;
  auto back = round_trip_response(info);
  EXPECT_EQ(back.pid, 99);
  EXPECT_EQ(back.main_tid, 3);
  EXPECT_EQ(back.fork_depth, 2);
  EXPECT_TRUE(back.disturb);
  EXPECT_EQ(back.heartbeat_ms, 100);
  EXPECT_EQ(back.proto_major, kProtoMajor);
}

TEST(ProtocolTest, ThreadsResponseRoundTrip) {
  ThreadsResponse threads;
  threads.threads.push_back(
      {1, "main", "running", "prog.vm", 10, "", 2});
  threads.threads.push_back(
      {2, "worker", "blocked", "prog.vm", 40, "queue.pop", 1});
  auto back = round_trip_response(threads);
  ASSERT_EQ(back.threads.size(), 2u);
  EXPECT_EQ(back.threads[0].tid, 1);
  EXPECT_EQ(back.threads[0].name, "main");
  EXPECT_EQ(back.threads[0].state, "running");
  EXPECT_EQ(back.threads[0].line, 10);
  EXPECT_EQ(back.threads[0].depth, 2);
  EXPECT_EQ(back.threads[1].note, "queue.pop");
}

TEST(ProtocolTest, FramesAndLocalsRoundTrip) {
  LocalsRequest locals_req;
  locals_req.tid = 5;
  locals_req.depth = 1;
  auto lr = round_trip(locals_req);
  EXPECT_EQ(lr.tid, 5);
  EXPECT_EQ(lr.depth, 1);

  FramesResponse frames;
  frames.frames.push_back({"mapper", "mr.vm", 17});
  frames.frames.push_back({"<main>", "mr.vm", 80});
  auto fb = round_trip_response(frames);
  ASSERT_EQ(fb.frames.size(), 2u);
  EXPECT_EQ(fb.frames[0].function, "mapper");
  EXPECT_EQ(fb.frames[1].line, 80);

  LocalsResponse locals;
  locals.locals.push_back({"x", "42"});
  locals.locals.push_back({"words", "[\"a\", \"b\"]"});
  auto lb = round_trip_response(locals);
  ASSERT_EQ(lb.locals.size(), 2u);
  EXPECT_EQ(lb.locals[0].name, "x");
  EXPECT_EQ(lb.locals[1].value, "[\"a\", \"b\"]");

  GlobalsResponse globals;
  globals.globals.push_back({"G", "\"shared\""});
  auto gb = round_trip_response(globals);
  ASSERT_EQ(gb.globals.size(), 1u);
  EXPECT_EQ(gb.globals[0].name, "G");
}

TEST(ProtocolTest, SourceAndEvalRoundTrip) {
  SourceRequest src;
  src.file = "prog.vm";
  EXPECT_EQ(round_trip(src).file, "prog.vm");
  SourceResponse text;
  text.text = "let x = 1\nprint(x)\n";
  EXPECT_EQ(round_trip_response(text).text, text.text);

  EvalRequest eval;
  eval.tid = 2;
  eval.depth = 3;
  eval.expr = "x + y";
  auto eb = round_trip(eval);
  EXPECT_EQ(eb.tid, 2);
  EXPECT_EQ(eb.depth, 3);
  EXPECT_EQ(eb.expr, "x + y");
  EvalResponse result;
  result.value = "7";
  EXPECT_EQ(round_trip_response(result).value, "7");
}

TEST(ProtocolTest, BreakpointFamilyRoundTrip) {
  BreakSetRequest set;
  set.file = "prog.vm";
  set.line = 12;
  set.tid = 4;
  set.ignore = 2;
  auto sb = round_trip(set);
  EXPECT_EQ(sb.file, "prog.vm");
  EXPECT_EQ(sb.line, 12);
  EXPECT_EQ(sb.tid, 4);
  EXPECT_EQ(sb.ignore, 2);

  BreakSetResponse id;
  id.id = 3;
  EXPECT_EQ(round_trip_response(id).id, 3);

  BreakClearRequest clear;
  clear.id = 3;
  EXPECT_EQ(round_trip(clear).id, 3);

  BreakListResponse list;
  list.breakpoints.push_back({1, "prog.vm", 12, true, 5});
  list.breakpoints.push_back({2, "prog.vm", 30, false, 0});
  auto lb = round_trip_response(list);
  ASSERT_EQ(lb.breakpoints.size(), 2u);
  EXPECT_EQ(lb.breakpoints[0].id, 1);
  EXPECT_EQ(lb.breakpoints[0].hits, 5);
  EXPECT_TRUE(lb.breakpoints[0].enabled);
  EXPECT_FALSE(lb.breakpoints[1].enabled);
}

TEST(ProtocolTest, DisturbRoundTrip) {
  DisturbRequest on;
  on.on = true;
  EXPECT_TRUE(round_trip(on).on);
  DisturbRequest off;
  off.on = false;
  EXPECT_FALSE(round_trip(off).on);
}

TEST(ProtocolTest, RequestsRejectNonObjectFrames) {
  ipc::wire::Value scalar(1);
  EXPECT_FALSE(FramesRequest::from_wire(scalar).is_ok());
  EXPECT_FALSE(BreakSetRequest::from_wire(scalar).is_ok());
  EXPECT_FALSE(StatsResponse::from_wire(scalar).is_ok());
}

TEST(ProtocolTest, StatsResponseRoundTrip) {
  StatsResponse stats;
  stats.pid = 314;
  stats.counters.emplace_back("frames_sent", 12);
  stats.counters.emplace_back("gil_acquires", 9000);
  stats.gauges.emplace_back("mp_queue_depth", 3);
  StatsHistogram hist;
  hist.name = "command_nanos";
  hist.count = 4;
  hist.sum_nanos = 4000;
  hist.max_nanos = 2000;
  hist.p50_nanos = 1024;
  hist.p99_nanos = 2048;
  hist.buckets.assign(metrics::kHistogramBuckets, 0);
  hist.buckets[10] = 4;
  stats.histograms.push_back(hist);

  auto back = round_trip_response(stats);
  EXPECT_EQ(back.pid, 314);
  EXPECT_EQ(back.counter("frames_sent"), 12);
  EXPECT_EQ(back.counter("gil_acquires"), 9000);
  EXPECT_EQ(back.counter("not_a_counter"), 0);
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_EQ(back.gauges[0].second, 3);
  const StatsHistogram* h = back.histogram("command_nanos");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->sum_nanos, 4000u);
  EXPECT_EQ(h->max_nanos, 2000u);
  EXPECT_EQ(h->p50_nanos, 1024u);
  EXPECT_EQ(h->p99_nanos, 2048u);
  ASSERT_EQ(h->buckets.size(), metrics::kHistogramBuckets);
  EXPECT_EQ(h->buckets[10], 4u);
  EXPECT_DOUBLE_EQ(h->mean_nanos(), 1000.0);
  EXPECT_EQ(back.histogram("absent"), nullptr);
}

TEST(ProtocolTest, StatsResponseFromSnapshot) {
  metrics::Snapshot snapshot;
  snapshot.counters[static_cast<size_t>(
      metrics::Counter::kFramesSent)] = 21;
  snapshot.gauges[static_cast<size_t>(
      metrics::Gauge::kParkedThreads)] = 2;
  auto& hist = snapshot.histograms[static_cast<size_t>(
      metrics::Histogram::kGilWaitNanos)];
  hist.count = 1;
  hist.sum_nanos = 500;
  hist.max_nanos = 500;
  hist.buckets[9] = 1;  // 256..511ns bucket

  auto stats = StatsResponse::from_snapshot(snapshot, 55);
  EXPECT_EQ(stats.pid, 55);
  EXPECT_EQ(stats.counter("frames_sent"), 21);
  const StatsHistogram* h = stats.histogram("gil_wait_nanos");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_GT(h->p50_nanos, 0u);
}

TEST(ProtocolTest, CommandNamesAreDistinct) {
  const char* names[] = {
      PingRequest::kName,     InfoRequest::kName,
      ThreadsRequest::kName,  FramesRequest::kName,
      LocalsRequest::kName,   GlobalsRequest::kName,
      SourceRequest::kName,   EvalRequest::kName,
      BreakSetRequest::kName, BreakClearRequest::kName,
      BreakListRequest::kName, ContinueRequest::kName,
      ContinueAllRequest::kName, StepRequest::kName,
      NextRequest::kName,     FinishRequest::kName,
      PauseRequest::kName,    PauseAllRequest::kName,
      DisturbRequest::kName,  DetachRequest::kName,
      StatsRequest::kName};
  std::set<std::string> unique(std::begin(names), std::end(names));
  EXPECT_EQ(unique.size(), std::size(names));
}

}  // namespace
}  // namespace dionea::dbg::proto
