#include "debugger/protocol.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace dionea::dbg::proto {
namespace {

TEST(ProtocolTest, HelloShape) {
  auto hello = make_hello(kChannelControl, 1234);
  EXPECT_EQ(hello.get_string("channel"), "control");
  EXPECT_EQ(hello.get_int("pid"), 1234);
}

TEST(ProtocolTest, RequestShape) {
  auto request = make_request(kCmdBreakSet, 42);
  EXPECT_EQ(request.get_string("cmd"), "break_set");
  EXPECT_EQ(request.get_int("seq"), 42);
}

TEST(ProtocolTest, OkAndErrorResponses) {
  auto ok = make_ok(7);
  EXPECT_EQ(ok.get_int("re"), 7);
  EXPECT_TRUE(ok.get_bool("ok"));
  EXPECT_FALSE(ok.has("error"));

  auto error = make_error(8, "no such thread");
  EXPECT_EQ(error.get_int("re"), 8);
  EXPECT_FALSE(error.get_bool("ok"));
  EXPECT_EQ(error.get_string("error"), "no such thread");
}

TEST(ProtocolTest, EventShape) {
  auto event = make_event(kEvStopped);
  EXPECT_EQ(event.get_string("event"), "stopped");
}

TEST(ProtocolTest, FramesRoundTripThroughWire) {
  auto request = make_request(kCmdLocals, 3);
  request.set("tid", 5);
  request.set("depth", 0);
  std::string bytes;
  request.encode(&bytes);
  auto decoded = ipc::wire::Value::decode(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), request);
}

TEST(ProtocolTest, CommandNamesAreDistinct) {
  const char* names[] = {
      kCmdPing, kCmdInfo, kCmdThreads, kCmdFrames, kCmdLocals, kCmdGlobals,
      kCmdSource, kCmdBreakSet, kCmdBreakClear, kCmdBreakList, kCmdContinue,
      kCmdContinueAll, kCmdStep, kCmdNext, kCmdFinish, kCmdPause,
      kCmdPauseAll, kCmdDisturb, kCmdDetach};
  std::set<std::string> unique(std::begin(names), std::end(names));
  EXPECT_EQ(unique.size(), std::size(names));
}

}  // namespace
}  // namespace dionea::dbg::proto
