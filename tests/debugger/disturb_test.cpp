// Disturb mode (§6.4): "setting disturb mode in Dionea ... will cause
// to stop the execution of every newly created process or thread" —
// the tool for forcing rare interleavings.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::dbg {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

TEST(DisturbTest, NewThreadsStopAtBirth) {
  DebugHarness harness(
      "t = spawn(fn()\n"
      "  v = 1\n"          // 2: first traced line of the thread
      "  return v\n"
      "end)\n"
      "puts(join(t))",
      HarnessOptions{.stop_at_entry = false, .disturb = true});
  auto* session = harness.launch();

  auto stop = session->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().reason, "disturb");
  EXPECT_GT(stop.value().tid, 1);
  EXPECT_EQ(stop.value().line, 2);

  // Main is meanwhile blocked in join — only the new UE stopped.
  auto threads = session->threads();
  ASSERT_TRUE(threads.is_ok());
  for (const auto& thread : threads.value()) {
    if (thread.tid == 1) {
      EXPECT_NE(thread.state, "suspended");
    }
  }

  ASSERT_TRUE(session->cont(stop.value().tid).is_ok());
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "1\n");
}

TEST(DisturbTest, EveryThreadOfABatchStops) {
  DebugHarness harness(
      "done = queue()\n"
      "for i in 3\n"
      "  spawn(fn(k) done.push(k) end, i)\n"
      "end\n"
      "total = 0\n"
      "for i in 3\n"
      "  total = total + done.pop()\n"
      "end\n"
      "puts(total)",
      HarnessOptions{.stop_at_entry = false, .disturb = true});
  auto* session = harness.launch();
  std::set<std::int64_t> stopped;
  for (int i = 0; i < 3; ++i) {
    auto stop = session->wait_stopped(5000);
    ASSERT_TRUE(stop.is_ok());
    stopped.insert(stop.value().tid);
    ASSERT_TRUE(session->cont(stop.value().tid).is_ok());
  }
  EXPECT_EQ(stopped.size(), 3u);
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "3\n");
}

TEST(DisturbTest, ToggleAtRuntimeViaCommand) {
  DebugHarness harness(
      "t1 = spawn(fn() return 1 end)\n"
      "join(t1)\n"
      "barrier = queue()\n"
      "barrier.push(1)\n"
      "barrier.pop()\n"
      "t2 = spawn(fn() return 2 end)\n"
      "puts(join(t2))",
      HarnessOptions{.stop_at_entry = true, .disturb = false});
  auto* session = harness.launch();
  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());

  // Turn disturb on before resuming: both spawns stop at birth.
  ASSERT_TRUE(session->set_disturb(true).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());

  auto stop1 = session->wait_stopped(5000);
  ASSERT_TRUE(stop1.is_ok());
  EXPECT_EQ(stop1.value().reason, "disturb");
  ASSERT_TRUE(session->cont(stop1.value().tid).is_ok());

  auto stop2 = session->wait_stopped(5000);
  ASSERT_TRUE(stop2.is_ok());
  ASSERT_TRUE(session->cont(stop2.value().tid).is_ok());

  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "2\n");
}

TEST(DisturbTest, ForkedProcessStopsAtBirth) {
  DebugHarness harness(
      "pid = fork(fn()\n"
      "  x = 9\n"
      "  exit(x)\n"
      "end)\n"
      "puts(waitpid(pid))",
      HarnessOptions{.stop_at_entry = false, .disturb = true});
  (void)harness.launch();
  auto child_h = harness.client().attach_any(5000);
  ASSERT_TRUE(child_h.is_ok());
  client::Session* child = harness.client().session(child_h.value());
  auto stop = child->wait_stopped(5000);
  ASSERT_TRUE(stop.is_ok());
  EXPECT_EQ(stop.value().reason, "disturb");
  ASSERT_TRUE(child->cont(stop.value().tid).is_ok());
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "9\n");
}

}  // namespace
}  // namespace dionea::dbg
