// End-to-end coverage of the `stats` command: probes fire in the VM,
// GIL, IPC and server layers while a real debuggee runs, and the typed
// StatsResponse surfaces them over the wire.
#include <unistd.h>

#include <gtest/gtest.h>

#include "client/session.hpp"
#include "debugger/protocol.hpp"
#include "support/metrics.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using test::DebugHarness;
namespace proto = dbg::proto;

TEST(StatsTest, ServerAdvertisesStatsCapability) {
  DebugHarness harness("x = 1");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  EXPECT_EQ(session->server_proto_major(), proto::kProtoMajor);
  EXPECT_EQ(session->server_proto_minor(), proto::kProtoMinor);
  EXPECT_TRUE(session->supports(proto::kCapStats));
  EXPECT_TRUE(session->supports(proto::kCapHeartbeat));
  EXPECT_FALSE(session->supports("time_travel"));
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(StatsTest, CountersAndLatenciesReflectTheRun) {
  metrics::Registry::instance().set_enabled(true);
  DebugHarness harness(
      "total = 0\n"
      "i = 0\n"
      "while i < 200\n"
      "  total = total + i\n"
      "  i = i + 1\n"
      "end\n"
      "puts(total)");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();

  auto stats = session->stats();
  ASSERT_TRUE(stats.is_ok()) << stats.error().to_string();
  const proto::StatsResponse& s = stats.value();
  // The harness debuggee runs in-process, so this pid is ours.
  EXPECT_EQ(s.pid, ::getpid());
  // The traced loop body alone is hundreds of line events.
  EXPECT_GT(s.counter("trace_line_events"), 200);
  EXPECT_GT(s.counter("gil_acquires"), 0);
  // Attach ping + continue + this stats command, at minimum.
  EXPECT_GE(s.counter("commands_served"), 3);
  EXPECT_GT(s.counter("frames_sent"), 0);
  EXPECT_GT(s.counter("frame_bytes_sent"), 0);
  EXPECT_GT(s.counter("frames_received"), 0);
  EXPECT_GE(s.counter("stops"), 1);

  const proto::StatsHistogram* cmd = s.histogram("command_nanos");
  ASSERT_NE(cmd, nullptr);
  EXPECT_GT(cmd->count, 0u);
  EXPECT_GT(cmd->sum_nanos, 0u);
  EXPECT_GT(cmd->max_nanos, 0u);
  EXPECT_GE(cmd->p99_nanos, cmd->p50_nanos);
  EXPECT_GT(cmd->mean_nanos(), 0.0);

  const proto::StatsHistogram* park = s.histogram("stop_park_nanos");
  ASSERT_NE(park, nullptr);
  EXPECT_GE(park->count, 1u);  // the entry stop
}

TEST(StatsTest, DisablingMetricsFreezesCounters) {
  DebugHarness harness(
      "i = 0\n"
      "while i < 100\n"
      "  i = i + 1\n"
      "end");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  metrics::Registry::instance().set_enabled(false);
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
  metrics::Registry::instance().set_enabled(true);

  auto stats = session->stats();
  ASSERT_TRUE(stats.is_ok());
  // The 100-iteration loop ran entirely with collection off; had the
  // probes kept recording, trace_line_events would have grown by >100.
  // (Other suites in this binary ran with metrics on, so compare
  // against a fresh snapshot instead of asserting absolute zero.)
  auto again = session->stats();
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().counter("trace_line_events"),
            stats.value().counter("trace_line_events"));
}

}  // namespace
}  // namespace dionea
