// Fork handler C must reset the child's metrics registry: a child's
// `stats` describes the child, not the parent's inherited totals
// (which survive fork as copy-on-write memory otherwise).
#include <unistd.h>

#include <gtest/gtest.h>

#include "client/session.hpp"
#include "debugger/protocol.hpp"
#include "support/metrics.hpp"
#include "testutil.hpp"

namespace dionea {
namespace {

using test::DebugHarness;
using test::HarnessOptions;
namespace proto = dbg::proto;

TEST(ForkMetricsTest, ChildStatsStartCleanAfterHandlerC) {
  metrics::Registry::instance().set_enabled(true);
  // The parent burns >300 traced lines before forking, so its
  // trace_line_events total is unmistakably large by fork time.
  DebugHarness harness(
      "i = 0\n"
      "while i < 300\n"
      "  i = i + 1\n"
      "end\n"
      "pid = fork(fn()\n"
      "  c = 1\n"
      "end)\n"
      "waitpid(pid)",
      HarnessOptions{.stop_at_entry = false,
                     .stop_forked_children = true});
  auto* parent = harness.launch();

  auto forked = parent->wait_event(proto::Event::kForked, 5000);
  ASSERT_TRUE(forked.is_ok());
  int child_pid = static_cast<int>(forked.value().payload.get_int("child_pid"));
  auto child_h = harness.client().attach(child_pid, 5000);
  ASSERT_TRUE(child_h.is_ok());
  client::Session* child = harness.client().session(child_h.value());
  auto birth = child->wait_stopped(5000);
  ASSERT_TRUE(birth.is_ok());

  // The child is parked at its birth stop: it has run at most a couple
  // of statements of its own since handler C zeroed its shards.
  auto child_stats = child->stats();
  ASSERT_TRUE(child_stats.is_ok()) << child_stats.error().to_string();
  EXPECT_EQ(child_stats.value().pid, child_pid);
  std::int64_t child_lines = child_stats.value().counter("trace_line_events");
  EXPECT_LT(child_lines, 100) << "child inherited the parent's counters";
  // The fork itself is the child's, ancestry-wise, but the counter is
  // bumped in handler B (parent side): the reset child shows none.
  EXPECT_EQ(child_stats.value().counter("forks"), 0);

  auto parent_stats = parent->stats();
  ASSERT_TRUE(parent_stats.is_ok());
  EXPECT_EQ(parent_stats.value().pid, ::getpid());
  EXPECT_GT(parent_stats.value().counter("trace_line_events"), 300);
  EXPECT_GE(parent_stats.value().counter("forks"), 1);

  ASSERT_TRUE(child->cont(birth.value().tid).is_ok());
  auto terminated = child->wait_event(proto::Event::kTerminated, 5000);
  ASSERT_TRUE(terminated.is_ok()) << terminated.error().to_string();
  auto result = harness.join();
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace dionea
