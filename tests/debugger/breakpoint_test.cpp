#include "debugger/breakpoint.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dionea::dbg {
namespace {

TEST(BreakpointTableTest, EmptyMatchesNothing) {
  BreakpointTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.match("file.ml", 10, 1), 0);
}

TEST(BreakpointTableTest, AddAndMatchExactFile) {
  BreakpointTable table;
  int id = table.add("dir/prog.ml", 5);
  EXPECT_GT(id, 0);
  EXPECT_FALSE(table.empty());
  EXPECT_EQ(table.match("dir/prog.ml", 5, 1), id);
  EXPECT_EQ(table.match("dir/prog.ml", 6, 1), 0);
  EXPECT_EQ(table.match("other.ml", 5, 1), 0);
}

TEST(BreakpointTableTest, BasenameMatches) {
  BreakpointTable table;
  int id = table.add("prog.ml", 5);
  // A breakpoint set by bare filename hits any path with that basename.
  EXPECT_EQ(table.match("/abs/path/prog.ml", 5, 1), id);
  EXPECT_EQ(table.match("/abs/path/notprog.ml", 5, 1), 0);
}

TEST(BreakpointTableTest, RemoveById) {
  BreakpointTable table;
  int a = table.add("f.ml", 1);
  int b = table.add("f.ml", 2);
  EXPECT_TRUE(table.remove(a));
  EXPECT_FALSE(table.remove(a));  // already gone
  EXPECT_EQ(table.match("f.ml", 1, 1), 0);
  EXPECT_EQ(table.match("f.ml", 2, 1), b);
}

TEST(BreakpointTableTest, ClearRemovesAll) {
  BreakpointTable table;
  table.add("f.ml", 1);
  table.add("f.ml", 2);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.match("f.ml", 1, 1), 0);
}

TEST(BreakpointTableTest, DisableEnable) {
  BreakpointTable table;
  int id = table.add("f.ml", 3);
  ASSERT_TRUE(table.set_enabled(id, false));
  EXPECT_EQ(table.match("f.ml", 3, 1), 0);
  ASSERT_TRUE(table.set_enabled(id, true));
  EXPECT_EQ(table.match("f.ml", 3, 1), id);
  EXPECT_FALSE(table.set_enabled(404, false));
}

TEST(BreakpointTableTest, ThreadFilter) {
  BreakpointTable table;
  int id = table.add("f.ml", 3, /*thread_filter=*/7);
  EXPECT_EQ(table.match("f.ml", 3, 7), id);
  EXPECT_EQ(table.match("f.ml", 3, 8), 0);
}

TEST(BreakpointTableTest, IgnoreCountSkipsFirstHits) {
  BreakpointTable table;
  int id = table.add("f.ml", 3, 0, /*ignore_count=*/2);
  EXPECT_EQ(table.match("f.ml", 3, 1), 0);   // hit 1: ignored
  EXPECT_EQ(table.match("f.ml", 3, 1), 0);   // hit 2: ignored
  EXPECT_EQ(table.match("f.ml", 3, 1), id);  // hit 3: fires
}

TEST(BreakpointTableTest, HitCountsAccumulate) {
  BreakpointTable table;
  int id = table.add("f.ml", 3);
  table.match("f.ml", 3, 1);
  table.match("f.ml", 3, 1);
  auto snapshot = table.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].id, id);
  EXPECT_EQ(snapshot[0].hit_count, 2u);
}

TEST(BreakpointTableTest, MultipleOnSameLine) {
  BreakpointTable table;
  int any = table.add("f.ml", 3);
  int t9 = table.add("f.ml", 3, /*thread_filter=*/9);
  // First enabled matching breakpoint wins (insertion order).
  EXPECT_EQ(table.match("f.ml", 3, 1), any);
  ASSERT_TRUE(table.set_enabled(any, false));
  EXPECT_EQ(table.match("f.ml", 3, 9), t9);
}

TEST(BreakpointTableTest, SnapshotSortedById) {
  BreakpointTable table;
  table.add("f.ml", 9);
  table.add("f.ml", 1);
  table.add("g.ml", 5);
  auto snapshot = table.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_LT(snapshot[0].id, snapshot[1].id);
  EXPECT_LT(snapshot[1].id, snapshot[2].id);
}

TEST(BreakpointTableTest, ConcurrentMatchAndMutate) {
  // The hot path races with the listener's mutations; must be safe.
  BreakpointTable table;
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load()) {
      int id = table.add("f.ml", 3);
      table.remove(id);
    }
  });
  for (int i = 0; i < 20'000; ++i) {
    (void)table.match("f.ml", 3, 1);
  }
  stop.store(true);
  mutator.join();
}

}  // namespace
}  // namespace dionea::dbg
