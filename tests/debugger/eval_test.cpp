// The eval command: expression evaluation inside a suspended (or
// blocked) frame — the command-shell `p expr` of Fig. 2.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::dbg {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

class EvalTest : public ::testing::Test {
 protected:
  // Program paused at line 4 (inside work()) when ready() returns.
  std::unique_ptr<DebugHarness> harness_;
  client::Session* session_ = nullptr;
  std::int64_t tid_ = 0;

  void start_and_break() {
    harness_ = std::make_unique<DebugHarness>(
        "fn helper(x)\n"          // 1
        "  return x * 10\n"       // 2
        "end\n"
        "fn work(a, b)\n"         // 4
        "  c = a + b\n"           // 5
        "  d = c * 2\n"           // 6  <- breakpoint
        "  return d\n"            // 7
        "end\n"
        "box = [1, 2]\n"          // 9
        "r = work(3, 4)\n"        // 10
        "puts(r)\nputs(repr(box))");
    session_ = harness_->launch();
    auto entry = session_->wait_stopped(5000);
    ASSERT_TRUE(entry.is_ok());
    ASSERT_TRUE(session_->set_breakpoint("test.ml", 6).is_ok());
    ASSERT_TRUE(session_->cont(1).is_ok());
    auto hit = session_->wait_stopped(5000);
    ASSERT_TRUE(hit.is_ok());
    tid_ = hit.value().tid;
  }

  void finish() {
    ASSERT_TRUE(session_->clear_breakpoint(0).is_ok());
    ASSERT_TRUE(session_->cont(tid_).is_ok());
    ASSERT_TRUE(harness_->join().ok);
  }
};

TEST_F(EvalTest, LocalsArithmetic) {
  start_and_break();
  auto value = session_->eval(tid_, "a + b * 2");
  ASSERT_TRUE(value.is_ok()) << value.error().to_string();
  EXPECT_EQ(value.value(), "11");
  auto c_value = session_->eval(tid_, "c");
  ASSERT_TRUE(c_value.is_ok());
  EXPECT_EQ(c_value.value(), "7");
  finish();
}

TEST_F(EvalTest, GlobalsVisible) {
  start_and_break();
  auto value = session_->eval(tid_, "box");
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), "[1, 2]");
  finish();
}

TEST_F(EvalTest, CanCallFunctions) {
  start_and_break();
  auto value = session_->eval(tid_, "helper(c) + len(box)");
  ASSERT_TRUE(value.is_ok()) << value.error().to_string();
  EXPECT_EQ(value.value(), "72");  // 7*10 + 2
  finish();
}

TEST_F(EvalTest, BuiltinsAndLiterals) {
  start_and_break();
  auto value = session_->eval(tid_, "repr(sort([c, a, b]))");
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), "\"[3, 4, 7]\"");
  auto str_value = session_->eval(tid_, "\"c=\" + to_s(c)");
  ASSERT_TRUE(str_value.is_ok());
  EXPECT_EQ(str_value.value(), "\"c=7\"");
  finish();
}

TEST_F(EvalTest, MutationOfHeapObjectsIsVisible) {
  start_and_break();
  // Locals are passed by value, but heap payloads alias: mutating the
  // global list through eval changes what the program later prints.
  auto value = session_->eval(tid_, "push(box, 99)");
  ASSERT_TRUE(value.is_ok());
  finish();
  EXPECT_EQ(harness_->output(), "14\n[1, 2, 99]\n");
}

TEST_F(EvalTest, OuterFrameByDepth) {
  start_and_break();
  // depth 1 = <main>; its scope has no locals (top level is globals),
  // so `a` is undefined there but `box` still resolves globally.
  auto outer = session_->eval(tid_, "box[0]", /*depth=*/1);
  ASSERT_TRUE(outer.is_ok());
  EXPECT_EQ(outer.value(), "1");
  auto undefined = session_->eval(tid_, "a", /*depth=*/1);
  EXPECT_FALSE(undefined.is_ok());
  finish();
}

TEST_F(EvalTest, ErrorsReported) {
  start_and_break();
  auto undefined = session_->eval(tid_, "no_such_name + 1");
  ASSERT_FALSE(undefined.is_ok());
  EXPECT_NE(undefined.error().message().find("undefined name"),
            std::string::npos);

  auto parse_error = session_->eval(tid_, "a +");
  EXPECT_FALSE(parse_error.is_ok());

  auto runtime_error = session_->eval(tid_, "a / 0");
  ASSERT_FALSE(runtime_error.is_ok());
  EXPECT_NE(runtime_error.error().message().find("divided by 0"),
            std::string::npos);

  auto bad_frame = session_->eval(tid_, "1", /*depth=*/9);
  EXPECT_FALSE(bad_frame.is_ok());

  auto bad_tid = session_->eval(4242, "1");
  EXPECT_FALSE(bad_tid.is_ok());
  finish();
}

TEST_F(EvalTest, DebuggeeStateUndisturbedByEval) {
  start_and_break();
  ASSERT_TRUE(session_->eval(tid_, "helper(helper(c))").is_ok());
  // Locals unchanged, stepping still works.
  auto locals = session_->locals(tid_, 0);
  ASSERT_TRUE(locals.is_ok());
  std::map<std::string, std::string> by_name(locals.value().begin(),
                                             locals.value().end());
  EXPECT_EQ(by_name["a"], "3");
  EXPECT_EQ(by_name["b"], "4");
  EXPECT_EQ(by_name["c"], "7");
  finish();
  EXPECT_EQ(harness_->output(), "14\n[1, 2]\n");
}

TEST(EvalBlockedTest, EvalAgainstABlockedThread) {
  // The target doesn't have to be debugger-parked: a thread blocked in
  // Queue#pop is equally stable under the GIL.
  DebugHarness harness(
      "q = queue()\n"
      "fn consumer(tag)\n"
      "  item = q.pop()\n"
      "  return tag + item\n"
      "end\n"
      "t = spawn(consumer, 100)\n"
      "sleep(0.2)\n"           // let it block
      "q.push(5)\n"
      "puts(join(t))",
      HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();
  auto started = session->wait_event("thread_started", 5000);
  ASSERT_TRUE(started.is_ok());
  std::int64_t tid = started.value().payload.get_int("tid");
  if (tid == 1) {
    auto second = session->wait_event("thread_started", 5000);
    ASSERT_TRUE(second.is_ok());
    tid = second.value().payload.get_int("tid");
  }
  sleep_for_millis(100);  // consumer is now blocked in q.pop()
  auto value = session->eval(tid, "tag * 2");
  ASSERT_TRUE(value.is_ok()) << value.error().to_string();
  EXPECT_EQ(value.value(), "200");
  ASSERT_TRUE(harness.join().ok);
  EXPECT_EQ(harness.output(), "105\n");
}

TEST(EvalVmApiTest, DirectVmEval) {
  // Vm::eval_in_frame against a live (blocked) main thread, no server.
  vm::Interp interp;
  interp.vm().set_output([](std::string_view) {});
  std::thread runner([&] {
    (void)interp.run_string("x = 21\nq = queue()\nq.pop()", "direct.ml");
  });
  sleep_for_millis(150);
  auto value = interp.vm().eval_in_frame(1, 0, "x * 2");
  ASSERT_TRUE(value.is_ok()) << value.error().to_string();
  EXPECT_EQ(value.value(), "42");
  interp.vm().request_exit(0);
  runner.join();
}

}  // namespace
}  // namespace dionea::dbg
