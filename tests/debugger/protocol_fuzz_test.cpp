// Protocol decode fuzzing: hostile bytes must never take a peer down.
//
// The wire crosses a process boundary — a crashing or malicious
// debuggee can hand the client ANY byte string, and vice versa. The
// contract under fire here is the one wire.hpp promises: malformed
// input yields a clean kProtocol-style error, never UB, a crash, or a
// hang. Three layers of attack, each ≥ the iteration floor from the
// issue (10k combined per run, ASan/UBSan-clean under DIONEA_SANITIZE):
//   1. pure noise          — random buffers into Value::decode
//   2. bit-flipped frames  — valid encodings with seeded corruption
//   3. shape mutations     — structurally valid Values with fields
//                            dropped/retyped, into every registered
//                            struct's from_wire
// Everything is seeded (report the seed on failure, reproduce at will).
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "debugger/protocol.hpp"
#include "ipc/wire.hpp"
#include "support/rng.hpp"

namespace dionea::dbg::proto {
namespace {

using ipc::wire::Array;
using ipc::wire::Object;
using ipc::wire::Value;

constexpr std::uint64_t kSeed = 0x1f0d2e4a5bc61357ull;

// Decoding may fail, but failures must be clean: an error with a
// message, not a crash. Successful decodes must re-encode without
// tripping anything (exercises the full value tree).
void expect_clean_decode(const std::string& bytes) {
  Result<Value> decoded = Value::decode(bytes);
  if (decoded.is_ok()) {
    std::string out;
    decoded.value().encode(&out);
    (void)decoded.value().to_json();
  } else {
    EXPECT_FALSE(decoded.error().message().empty());
  }
}

// One fuzz target per registered protocol struct: a valid baseline
// Value plus a type-erased from_wire. A from_wire may accept or
// reject; accepted values must survive a to_wire round trip.
struct Target {
  const char* name;
  Value baseline;
  std::function<void(const Value&)> from_wire;
};

template <typename T>
Target make_target(const char* name) {
  return Target{name, T{}.to_wire(), [](const Value& value) {
                  Result<T> parsed = T::from_wire(value);
                  if (parsed.is_ok()) {
                    (void)parsed.value().to_wire();
                  } else {
                    EXPECT_FALSE(parsed.error().message().empty());
                  }
                }};
}

// Baselines richer than the default-constructed struct where nested
// shapes exist — mutations then reach the nested decode paths too.
std::vector<Target> all_targets() {
  std::vector<Target> targets = {
      make_target<Hello>("hello"),
      make_target<PingRequest>("ping"),
      make_target<PingResponse>("ping_response"),
      make_target<InfoRequest>("info"),
      make_target<InfoResponse>("info_response"),
      make_target<ThreadsRequest>("threads"),
      make_target<ThreadsResponse>("threads_response"),
      make_target<FramesRequest>("frames"),
      make_target<FramesResponse>("frames_response"),
      make_target<LocalsRequest>("locals"),
      make_target<LocalsResponse>("locals_response"),
      make_target<GlobalsRequest>("globals"),
      make_target<GlobalsResponse>("globals_response"),
      make_target<SourceRequest>("source"),
      make_target<SourceResponse>("source_response"),
      make_target<EvalRequest>("eval"),
      make_target<EvalResponse>("eval_response"),
      make_target<BreakSetRequest>("break_set"),
      make_target<BreakSetResponse>("break_set_response"),
      make_target<BreakClearRequest>("break_clear"),
      make_target<BreakListRequest>("break_list"),
      make_target<BreakListResponse>("break_list_response"),
      make_target<ContinueRequest>("continue"),
      make_target<StepRequest>("step"),
      make_target<NextRequest>("next"),
      make_target<FinishRequest>("finish"),
      make_target<PauseRequest>("pause"),
      make_target<ContinueAllRequest>("continue_all"),
      make_target<PauseAllRequest>("pause_all"),
      make_target<DisturbRequest>("disturb"),
      make_target<DetachRequest>("detach"),
      make_target<StatsRequest>("stats"),
      make_target<StatsResponse>("stats_response"),
      make_target<ReplayInfoRequest>("replay_info"),
      make_target<ReplayInfoResponse>("replay_info_response"),
      make_target<AnalysisReportRequest>("analysis_report"),
      make_target<AnalysisReportResponse>("analysis_report_response"),
  };
  // Populate the nested-array responses so bit flips can corrupt
  // entries, not just empty lists.
  auto baseline_of = [&targets](const char* name) -> Value& {
    for (Target& target : targets) {
      if (std::string(target.name) == name) return target.baseline;
    }
    ADD_FAILURE() << "no fuzz target named " << name;
    return targets.front().baseline;
  };
  {
    ThreadEntry entry;
    entry.tid = 7;
    entry.name = "worker";
    entry.state = "blocked";
    entry.file = "test.ml";
    entry.line = 3;
    entry.note = "Queue#pop";
    entry.depth = 1;
    ThreadsResponse threads;
    threads.threads.push_back(entry);
    baseline_of("threads_response") = threads.to_wire();
    StatsHistogram hist;
    hist.name = "gil_wait_nanos";
    hist.count = 3;
    StatsResponse stats;
    stats.pid = 42;
    stats.counters = {{"frames_sent", 5}};
    stats.gauges = {{"parked_threads", 1}};
    stats.histograms = {hist};
    baseline_of("stats_response") = stats.to_wire();
    ReplayInfoResponse replay;
    replay.pid = 42;
    replay.mode = "diverged";
    replay.step = 17;
    replay.total_steps = 90;
    replay.log_path = "/tmp/root.rlog";
    replay.divergence_step = 17;
    replay.divergence_reason = "log exhausted";
    baseline_of("replay_info_response") = replay.to_wire();
  }
  return targets;
}

Value random_scalar(Rng& rng) {
  switch (rng.next_below(6)) {
    case 0: return Value();
    case 1: return Value(rng.next_bool());
    case 2: return Value(static_cast<std::int64_t>(rng.next_u64()));
    case 3: return Value(rng.next_double() * 1e12 - 5e11);
    case 4: return Value(rng.next_word(0, 12));
    default: return Value(Array{});
  }
}

// Mutate one field of an object-shaped Value: drop it, retype it, or
// add a key the decoder has never heard of.
Value mutate_shape(const Value& original, Rng& rng) {
  if (!original.is_object()) return random_scalar(rng);
  Object fields = original.as_object();
  switch (rng.next_below(4)) {
    case 0: {  // drop a field
      if (!fields.empty()) {
        auto it = fields.begin();
        std::advance(it, static_cast<long>(rng.next_below(fields.size())));
        fields.erase(it);
      }
      break;
    }
    case 1: {  // retype a field
      if (!fields.empty()) {
        auto it = fields.begin();
        std::advance(it, static_cast<long>(rng.next_below(fields.size())));
        it->second = random_scalar(rng);
      }
      break;
    }
    case 2:  // inject an unknown field (forward compat: must be ignored)
      fields[rng.next_word(1, 8)] = random_scalar(rng);
      break;
    default:  // replace the whole message with a scalar
      return random_scalar(rng);
  }
  return Value(fields);
}

TEST(ProtocolFuzzTest, RandomNoiseNeverCrashesDecode) {
  Rng rng(kSeed);
  for (int i = 0; i < 4000; ++i) {
    std::string bytes;
    size_t len = rng.next_below(257);
    bytes.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      bytes.push_back(static_cast<char>(rng.next_below(256)));
    }
    SCOPED_TRACE("seed " + std::to_string(kSeed) + " iter " +
                 std::to_string(i));
    expect_clean_decode(bytes);
  }
}

TEST(ProtocolFuzzTest, BitFlippedFramesDecodeCleanlyForEveryStruct) {
  Rng rng(kSeed ^ 0xb17f11bull);
  std::vector<Target> targets = all_targets();
  int iterations = 0;
  // ~170 corruptions of every struct's valid encoding; each iteration
  // flips 1-8 bits (single-bit flips skate through length fields,
  // multi-bit flips shred tags and sizes).
  for (int round = 0; round < 170; ++round) {
    for (const Target& target : targets) {
      std::string bytes;
      target.baseline.encode(&bytes);
      if (bytes.empty()) continue;
      int flips = 1 + static_cast<int>(rng.next_below(8));
      for (int f = 0; f < flips; ++f) {
        size_t pos = rng.next_below(bytes.size());
        bytes[pos] = static_cast<char>(
            static_cast<unsigned char>(bytes[pos]) ^
            (1u << rng.next_below(8)));
      }
      SCOPED_TRACE(std::string(target.name) + " round " +
                   std::to_string(round));
      Result<ipc::wire::Value> decoded = ipc::wire::Value::decode(bytes);
      if (decoded.is_ok()) {
        target.from_wire(decoded.value());  // corrupted-but-decodable
      } else {
        EXPECT_FALSE(decoded.error().message().empty());
      }
      ++iterations;
    }
  }
  EXPECT_GE(iterations, 3000);
}

TEST(ProtocolFuzzTest, ShapeMutationsRejectCleanlyForEveryStruct) {
  Rng rng(kSeed ^ 0x5a4b3c2dull);
  std::vector<Target> targets = all_targets();
  int iterations = 0;
  for (int round = 0; round < 100; ++round) {
    for (const Target& target : targets) {
      Value mutated = mutate_shape(target.baseline, rng);
      // Stack 0-2 more mutations so multi-field damage is covered.
      for (std::uint64_t extra = rng.next_below(3); extra > 0; --extra) {
        mutated = mutate_shape(mutated, rng);
      }
      SCOPED_TRACE(std::string(target.name) + " round " +
                   std::to_string(round));
      target.from_wire(mutated);
      ++iterations;
    }
  }
  EXPECT_GE(iterations, 3000);
}

TEST(ProtocolFuzzTest, ValidBaselinesStillDecode) {
  // Sanity anchor: the harness itself must accept unmutated input for
  // every struct, or the fuzz assertions above are vacuous.
  for (const Target& target : all_targets()) {
    std::string bytes;
    target.baseline.encode(&bytes);
    Result<Value> decoded = Value::decode(bytes);
    ASSERT_TRUE(decoded.is_ok()) << target.name;
    EXPECT_EQ(decoded.value(), target.baseline) << target.name;
    target.from_wire(decoded.value());
  }
}

}  // namespace
}  // namespace dionea::dbg::proto
