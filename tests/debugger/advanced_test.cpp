// Advanced protocol behaviours: breakpoint modifiers over the wire,
// whole-program suspension, stepping around thread and fork edges.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::dbg {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

TEST(AdvancedBreakpointTest, IgnoreCountOverProtocol) {
  DebugHarness harness(
      "count = 0\n"          // 1
      "for i in 5\n"         // 2
      "  count = count + 1\n"  // 3
      "end\n"
      "puts(count)");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  // Skip the first 3 hits of line 3.
  ASSERT_TRUE(session->set_breakpoint("test.ml", 3, 0, /*ignore=*/3).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  auto hit = session->wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok());
  // The 4th execution of line 3: count has been incremented 3 times.
  auto count = session->eval(hit.value().tid, "count");
  ASSERT_TRUE(count.is_ok());
  EXPECT_EQ(count.value(), "3");
  ASSERT_TRUE(session->clear_breakpoint(0).is_ok());
  ASSERT_TRUE(session->cont(hit.value().tid).is_ok());
  ASSERT_TRUE(harness.join().ok);
  EXPECT_EQ(harness.output(), "5\n");
}

TEST(AdvancedBreakpointTest, ThreadFilterOverProtocol) {
  DebugHarness harness(
      "fn job(tag)\n"        // 1
      "  marker = tag\n"     // 2
      "  return marker\n"    // 3
      "end\n"
      "t1 = spawn(job, 100)\n"
      "t2 = spawn(job, 200)\n"
      "puts(join(t1) + join(t2))");
  auto* session = harness.launch();
  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());

  // Find t2's tid by letting the threads start first: park them with
  // disturb OFF is racy, so instead filter on a tid we learn from the
  // thread_started events.
  ASSERT_TRUE(session->cont(1).is_ok());
  auto started1 = session->wait_event("thread_started", 5000);
  ASSERT_TRUE(started1.is_ok());
  // Threads run too fast to set a filtered breakpoint reliably here;
  // instead verify the filter arithmetic end-to-end with the main
  // thread: a breakpoint filtered to a non-existent tid never fires.
  ASSERT_TRUE(harness.join().ok);
  EXPECT_EQ(harness.output(), "300\n");
}

TEST(AdvancedBreakpointTest, FilteredToOtherThreadNeverFires) {
  DebugHarness harness(
      "x = 1\n"
      "y = 2\n"
      "puts(x + y)");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  // Filter the breakpoint to a tid that will never execute.
  ASSERT_TRUE(session->set_breakpoint("test.ml", 2, /*tid=*/777).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  ASSERT_TRUE(harness.join().ok);  // ran through without stopping
  EXPECT_EQ(harness.output(), "3\n");
}

TEST(AdvancedPauseTest, PauseAllSuspendsEveryThread) {
  DebugHarness harness(
      "running = [true]\n"
      "fn spin()\n"
      "  i = 0\n"
      "  while running[0]\n"
      "    i = i + 1\n"
      "  end\n"
      "  return i\n"
      "end\n"
      "t1 = spawn(spin)\n"
      "t2 = spawn(spin)\n"
      "sleep(0.2)\n"
      "running[0] = false\n"
      "join(t1)\n"
      "join(t2)\n"
      "puts(\"all done\")",
      HarnessOptions{.stop_at_entry = false});
  auto* session = harness.launch();
  sleep_for_millis(100);  // let the spinners spin

  ASSERT_TRUE(session->pause_all().is_ok());
  // Both spinners stop; main may be in sleep (not at a line event).
  auto stop1 = session->wait_stopped(5000);
  ASSERT_TRUE(stop1.is_ok());
  auto stop2 = session->wait_stopped(5000);
  ASSERT_TRUE(stop2.is_ok());
  EXPECT_NE(stop1.value().tid, stop2.value().tid);

  auto threads = session->threads();
  ASSERT_TRUE(threads.is_ok());
  int suspended = 0;
  for (const auto& thread : threads.value()) {
    if (thread.state == "suspended") ++suspended;
  }
  EXPECT_GE(suspended, 2);

  ASSERT_TRUE(session->cont_all().is_ok());
  ASSERT_TRUE(harness.join().ok);
  EXPECT_EQ(harness.output(), "all done\n");
}

TEST(AdvancedStepTest, NextStepsOverAFork) {
  // `next` across the fork statement: the parent stops on the next
  // line; the child (stop_forked_children) parks at birth separately.
  DebugHarness harness(
      "pid = fork(fn() exit(0) end)\n"  // 1
      "st = waitpid(pid)\n"             // 2
      "puts(st)",                       // 3
      HarnessOptions{.stop_at_entry = true,
                     .stop_forked_children = true});
  auto* session = harness.launch();
  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok());
  EXPECT_EQ(entry.value().line, 1);

  ASSERT_TRUE(session->next(1).is_ok());

  // Adopt + release the child so the parent's waitpid can return.
  auto child_h = harness.client().attach_any(5000);
  ASSERT_TRUE(child_h.is_ok());
  client::Session* child = harness.client().session(child_h.value());
  auto birth = child->wait_stopped(5000);
  ASSERT_TRUE(birth.is_ok());
  ASSERT_TRUE(child->cont(birth.value().tid).is_ok());

  auto stepped = session->wait_stopped(5000);
  ASSERT_TRUE(stepped.is_ok());
  EXPECT_EQ(stepped.value().line, 2);
  EXPECT_EQ(stepped.value().tid, 1);

  ASSERT_TRUE(session->cont(1).is_ok());
  ASSERT_TRUE(harness.join().ok);
  EXPECT_EQ(harness.output(), "0\n");
}

TEST(AdvancedStepTest, StepInsideSpawnedThread) {
  DebugHarness harness(
      "fn job()\n"        // 1
      "  a = 1\n"         // 2
      "  b = a + 1\n"     // 3
      "  return b\n"      // 4
      "end\n"
      "t = spawn(job)\n"
      "puts(join(t))",
      HarnessOptions{.stop_at_entry = false, .disturb = true});
  auto* session = harness.launch();
  // disturb: the spawned thread parks at its first line (2).
  auto birth = session->wait_stopped(5000);
  ASSERT_TRUE(birth.is_ok());
  EXPECT_EQ(birth.value().line, 2);
  std::int64_t tid = birth.value().tid;

  ASSERT_TRUE(session->step(tid).is_ok());
  auto at3 = session->wait_stopped(5000);
  ASSERT_TRUE(at3.is_ok());
  EXPECT_EQ(at3.value().line, 3);
  auto a_value = session->eval(tid, "a");
  ASSERT_TRUE(a_value.is_ok());
  EXPECT_EQ(a_value.value(), "1");

  ASSERT_TRUE(session->cont(tid).is_ok());
  ASSERT_TRUE(harness.join().ok);
  EXPECT_EQ(harness.output(), "2\n");
}

TEST(AdvancedEventTest, StoppedEventCarriesFullPayload) {
  DebugHarness harness(
      "fn f()\n"
      "  x = 5\n"   // 2
      "  return x\n"
      "end\n"
      "puts(f())");
  auto* session = harness.launch();
  ASSERT_TRUE(session->wait_stopped(5000).is_ok());
  auto bp = session->set_breakpoint("test.ml", 2);
  ASSERT_TRUE(bp.is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  auto event = session->wait_event(proto::Event::kStopped, 5000);
  ASSERT_TRUE(event.is_ok());
  EXPECT_EQ(event.value().payload.get_int("pid"), getpid());
  EXPECT_EQ(event.value().payload.get_int("tid"), 1);
  EXPECT_EQ(event.value().payload.get_string("file"), "test.ml");
  EXPECT_EQ(event.value().payload.get_int("line"), 2);
  EXPECT_EQ(event.value().payload.get_string("function"), "f");
  EXPECT_EQ(event.value().payload.get_string("reason"), "breakpoint");
  EXPECT_EQ(event.value().payload.get_int("breakpoint"), bp.value());
  ASSERT_TRUE(session->clear_breakpoint(0).is_ok());
  ASSERT_TRUE(session->cont(1).is_ok());
  harness.join();
}

TEST(AdvancedEventTest, EventsSentCounterAdvances) {
  DebugHarness harness("t = spawn(fn() return 1 end)\njoin(t)",
                       HarnessOptions{.stop_at_entry = false});
  (void)harness.launch();
  harness.join();
  // thread start/end for main + worker at minimum.
  EXPECT_GE(harness.server().events_sent(), 4u);
}

}  // namespace
}  // namespace dionea::dbg
