// Shared helpers for the test suite.
//
// Fork discipline: several tests run MiniLang programs that fork(2).
// A forked child that falls out of run_main must NEVER return into
// gtest (it would re-run the remaining tests); run_ml therefore _exits
// children itself, mirroring Interp::finish.
#pragma once

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "client/multi_client.hpp"
#include "debugger/server.hpp"
#include "mp/vm_bindings.hpp"
#include "replay/replay.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"
#include "vm/interp.hpp"

namespace dionea::test {

// Poll `pred` every couple of milliseconds until it holds or
// `timeout_millis` elapses; true iff it held. The replacement for
// fixed-length sleeps in tests that wait on another thread or process:
// a sleep long enough for a loaded CI box wastes seconds on a fast one
// and still flakes on a slower one.
template <typename Pred>
inline bool poll_until(Pred&& pred, int timeout_millis = 5'000,
                       int slice_millis = 2) {
  Stopwatch watch;
  while (true) {
    if (pred()) return true;
    if (watch.elapsed_seconds() * 1000.0 >= timeout_millis) return false;
    sleep_for_millis(slice_millis);
  }
}

struct RunOutcome {
  bool ok = false;
  bool exited = false;
  int exit_code = 0;
  std::string output;         // everything puts/print produced
  std::string error_message;  // when !ok
};

// Run a MiniLang program to completion in a fresh VM (with mp bindings
// installed), capturing its output. Forked children _exit here.
inline RunOutcome run_ml(const std::string& source,
                         const std::string& file = "test.ml") {
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  RunOutcome outcome;
  interp.vm().set_output(
      [&outcome](std::string_view text) { outcome.output.append(text); });
  vm::RunResult result = interp.run_string(source, file);
  if (interp.vm().is_forked_child()) {
    replay::Engine::instance().flush();  // _exit skips atexit
    std::fflush(nullptr);
    ::_exit(result.exited ? result.exit_code : (result.ok ? 0 : 1));
  }
  outcome.ok = result.ok;
  outcome.exited = result.exited;
  outcome.exit_code = result.exit_code;
  if (!result.ok) outcome.error_message = result.error.to_string();
  return outcome;
}

// ---- record/replay fixtures ----
// Record-once/replay-many: run the program once in record mode (the
// interleaving the OS happened to pick becomes the fixture), then
// replay it as often as the assertions need — every replay is forced
// through the recorded schedule, so a test about a *specific*
// interleaving stops being a race against the scheduler.

struct ReplayOutcome : RunOutcome {
  replay::Info info;  // engine state sampled right after the run
};

inline ReplayOutcome run_ml_record(const std::string& dir,
                                   const std::string& source,
                                   const std::string& file = "test.ml") {
  replay::Engine& engine = replay::Engine::instance();
  Status started = engine.start_record(dir);
  DIONEA_CHECK(started.is_ok(), "start_record");
  ReplayOutcome outcome;
  static_cast<RunOutcome&>(outcome) = run_ml(source, file);
  outcome.info = engine.info();
  engine.stop();
  return outcome;
}

inline ReplayOutcome run_ml_replay(const std::string& dir,
                                   const std::string& source,
                                   const std::string& file = "test.ml") {
  replay::Engine& engine = replay::Engine::instance();
  Status started = engine.start_replay(dir);
  DIONEA_CHECK(started.is_ok(), "start_replay");
  ReplayOutcome outcome;
  static_cast<RunOutcome&>(outcome) = run_ml(source, file);
  outcome.info = engine.info();
  engine.stop();
  return outcome;
}

// Expect a program to run cleanly and produce exactly `expected` output.
inline void expect_ml_output(const std::string& source,
                             const std::string& expected) {
  RunOutcome outcome = run_ml(source);
  EXPECT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, expected);
}

// Expect a program to fail with a message containing `needle`.
inline void expect_ml_error(const std::string& source,
                            const std::string& needle) {
  RunOutcome outcome = run_ml(source);
  EXPECT_FALSE(outcome.ok) << "output was: " << outcome.output;
  EXPECT_NE(outcome.error_message.find(needle), std::string::npos)
      << "error was: " << outcome.error_message;
}

// A full debuggee-under-debugger fixture: VM + debug server + a client
// attached through the port file, with the program running on a
// background thread. Tests drive the client; the destructor tears
// everything down (resuming parked threads first).
struct HarnessOptions {
  bool stop_at_entry = true;
  bool stop_forked_children = false;
  bool disturb = false;
  bool install_mp = true;
};

class DebugHarness {
 public:
  using Options = HarnessOptions;

  explicit DebugHarness(std::string program, Options options = Options())
      : program_(std::move(program)) {
    auto tmp = TempDir::create("dbg-harness");
    DIONEA_CHECK(tmp.is_ok(), "harness tempdir");
    tmp_ = std::make_unique<TempDir>(std::move(tmp).value());
    interp_ = std::make_unique<vm::Interp>();
    if (options.install_mp) mp::install_vm_bindings(interp_->vm());
    interp_->vm().set_output([this](std::string_view text) {
      std::scoped_lock lock(output_mutex_);
      output_.append(text);
    });
    server_ = std::make_unique<dbg::DebugServer>(
        interp_->vm(),
        dbg::DebugServer::Options{.port_file = port_file(),
                                  .disturb_mode = options.disturb,
                                  .stop_forked_children =
                                      options.stop_forked_children,
                                  .stop_at_entry = options.stop_at_entry});
    server_->register_source("test.ml", program_);
    Status started = server_->start();
    DIONEA_CHECK(started.is_ok(), "harness server start");
    client_ = std::make_unique<client::MultiClient>(port_file());
  }

  ~DebugHarness() {
    if (runner_.joinable()) {
      // Make sure nothing stays parked, and kill infinite debuggees:
      // a failed ASSERT must not leave the destructor joining forever.
      if (session_ != nullptr) {
        (void)session_->clear_breakpoint(0);
        (void)session_->cont_all();
      }
      server_->stop();  // resumes any remaining parked threads
      interp_->vm().request_exit(0);
      runner_.join();
    }
    server_->stop();
  }

  // Start the debuggee and attach the client (one session, claimed).
  client::Session* launch() {
    runner_ = std::thread([this] {
      vm::RunResult run = interp_->run_string(program_, "test.ml");
      if (interp_->vm().is_forked_child()) {
        std::fflush(nullptr);
        ::_exit(run.exited ? run.exit_code : (run.ok ? 0 : 1));
      }
      result_ = run;
      finished_.store(true);
    });
    auto refreshed = client_->refresh(5000);
    DIONEA_CHECK(refreshed.is_ok() && refreshed.value() >= 1,
                 "harness attach");
    session_ = client_->session(static_cast<int>(::getpid()));
    DIONEA_CHECK(session_ != nullptr, "harness parent session");
    client_->claim(static_cast<int>(::getpid()));
    return session_;
  }

  // Wait (≤ timeout) for the debuggee to finish and return its result.
  vm::RunResult join(int timeout_millis = 20'000) {
    Stopwatch watch;
    while (!finished_.load()) {
      DIONEA_CHECK(watch.elapsed_seconds() * 1000.0 < timeout_millis,
                   "debuggee did not finish in time");
      sleep_for_millis(5);
    }
    runner_.join();
    return result_;
  }

  client::Session* session() noexcept { return session_; }
  client::MultiClient& client() noexcept { return *client_; }
  dbg::DebugServer& server() noexcept { return *server_; }
  vm::Vm& vm() noexcept { return interp_->vm(); }
  std::string port_file() const { return tmp_->file("ports"); }
  TempDir& tmp() noexcept { return *tmp_; }
  std::string output() {
    std::scoped_lock lock(output_mutex_);
    return output_;
  }

 private:
  std::string program_;
  std::unique_ptr<TempDir> tmp_;
  std::unique_ptr<vm::Interp> interp_;
  std::unique_ptr<dbg::DebugServer> server_;
  std::unique_ptr<client::MultiClient> client_;
  client::Session* session_ = nullptr;
  std::thread runner_;
  std::atomic<bool> finished_{false};
  vm::RunResult result_;
  std::mutex output_mutex_;
  std::string output_;
};

}  // namespace dionea::test
