// Shared helpers for the test suite.
//
// Fork discipline: several tests run MiniLang programs that fork(2).
// A forked child that falls out of run_main must NEVER return into
// gtest (it would re-run the remaining tests); run_ml therefore _exits
// children itself, mirroring Interp::finish.
#pragma once

#include <dirent.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "client/client.hpp"
#include "debugger/server.hpp"
#include "mp/vm_bindings.hpp"
#include "replay/replay.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"
#include "vm/interp.hpp"

namespace dionea::test {

// ---- stray-child containment ----
// Forked debuggees inherit the test binary's stdout/stderr. A child
// leaked by a failing test (e.g. an ASSERT between fork and resume)
// outlives the binary, keeps those pipes open, and wedges ctest — it
// waits for pipe EOF long after the test process itself exited, then
// reports the run as Timeout. Containment: the binary moves into its
// own process group at static-init time (children and grandchildren
// inherit it, even across reparenting to init), and an atexit sweep
// SIGKILLs every other member of the group on the way out.

inline void kill_stray_group_members() {
  const pid_t self = ::getpid();
  const pid_t group = ::getpgid(0);
  if (group <= 0) return;
  // Only processes running OUR image are fair game. When this binary
  // heads a shell pipeline it is already the group leader and the
  // other pipeline stages (`./test | tail`) share its group — killing
  // by group alone would take them down too. Forked debuggees never
  // exec, so their comm matches ours.
  char self_comm[64] = {0};
  if (std::FILE* f = std::fopen("/proc/self/comm", "r")) {
    if (std::fgets(self_comm, sizeof(self_comm), f) == nullptr) {
      self_comm[0] = '\0';
    }
    std::fclose(f);
  }
  if (self_comm[0] == '\0') return;
  // Two passes: a member caught mid-fork in pass one can leave a
  // fresh sibling for pass two.
  int killed = 0;
  for (int pass = 0; pass < 2; ++pass) {
    if (pass > 0) {
      if (killed == 0) break;
      ::usleep(20'000);  // let pass-one SIGKILLs land before rescanning
    }
    DIR* proc = ::opendir("/proc");
    if (proc == nullptr) return;
    while (dirent* entry = ::readdir(proc)) {
      char* end = nullptr;
      long pid = std::strtol(entry->d_name, &end, 10);
      if (end == entry->d_name || *end != '\0') continue;  // not a pid
      if (static_cast<pid_t>(pid) == self) continue;
      if (::getpgid(static_cast<pid_t>(pid)) != group) continue;
      char comm_path[64];
      std::snprintf(comm_path, sizeof(comm_path), "/proc/%ld/comm", pid);
      char comm[64] = {0};
      if (std::FILE* f = std::fopen(comm_path, "r")) {
        if (std::fgets(comm, sizeof(comm), f) == nullptr) comm[0] = '\0';
        std::fclose(f);
      }
      if (std::strcmp(comm, self_comm) != 0) continue;
      // A zombie already exited — killing it is a no-op and logging it
      // would make every clean run with an unreaped child look dirty.
      char stat_path[64];
      std::snprintf(stat_path, sizeof(stat_path), "/proc/%ld/stat", pid);
      bool zombie = false;
      if (std::FILE* stat = std::fopen(stat_path, "r")) {
        char buf[512];
        size_t n = std::fread(buf, 1, sizeof(buf) - 1, stat);
        std::fclose(stat);
        buf[n] = '\0';
        // State is the first field after the parenthesized comm.
        if (const char* close_paren = std::strrchr(buf, ')')) {
          zombie = close_paren[1] == ' ' &&
                   (close_paren[2] == 'Z' || close_paren[2] == 'X');
        }
      }
      if (zombie) continue;
      std::fprintf(stderr,
                   "testutil: killing stray child %ld left in process group\n",
                   pid);
      (void)::kill(static_cast<pid_t>(pid), SIGKILL);
      ++killed;
    }
    ::closedir(proc);
    while (::waitpid(-1, nullptr, WNOHANG) > 0) {
    }
  }
}

inline const bool stray_reaper_installed = [] {
  (void)::setpgid(0, 0);
  std::atexit(kill_stray_group_members);
  return true;
}();

// Poll `pred` every couple of milliseconds until it holds or
// `timeout_millis` elapses; true iff it held. The replacement for
// fixed-length sleeps in tests that wait on another thread or process:
// a sleep long enough for a loaded CI box wastes seconds on a fast one
// and still flakes on a slower one.
template <typename Pred>
inline bool poll_until(Pred&& pred, int timeout_millis = 5'000,
                       int slice_millis = 2) {
  Stopwatch watch;
  while (true) {
    if (pred()) return true;
    if (watch.elapsed_seconds() * 1000.0 >= timeout_millis) return false;
    sleep_for_millis(slice_millis);
  }
}

struct RunOutcome {
  bool ok = false;
  bool exited = false;
  int exit_code = 0;
  std::string output;         // everything puts/print produced
  std::string error_message;  // when !ok
};

// Run a MiniLang program to completion in a fresh VM (with mp bindings
// installed), capturing its output. Forked children _exit here.
inline RunOutcome run_ml(const std::string& source,
                         const std::string& file = "test.ml") {
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  RunOutcome outcome;
  interp.vm().set_output(
      [&outcome](std::string_view text) { outcome.output.append(text); });
  vm::RunResult result = interp.run_string(source, file);
  if (interp.vm().is_forked_child()) {
    replay::Engine::instance().flush();  // _exit skips atexit
    std::fflush(nullptr);
    ::_exit(result.exited ? result.exit_code : (result.ok ? 0 : 1));
  }
  outcome.ok = result.ok;
  outcome.exited = result.exited;
  outcome.exit_code = result.exit_code;
  if (!result.ok) outcome.error_message = result.error.to_string();
  return outcome;
}

// ---- record/replay fixtures ----
// Record-once/replay-many: run the program once in record mode (the
// interleaving the OS happened to pick becomes the fixture), then
// replay it as often as the assertions need — every replay is forced
// through the recorded schedule, so a test about a *specific*
// interleaving stops being a race against the scheduler.

struct ReplayOutcome : RunOutcome {
  replay::Info info;  // engine state sampled right after the run
};

inline ReplayOutcome run_ml_record(const std::string& dir,
                                   const std::string& source,
                                   const std::string& file = "test.ml") {
  replay::Engine& engine = replay::Engine::instance();
  Status started = engine.start_record(dir);
  DIONEA_CHECK(started.is_ok(), "start_record");
  ReplayOutcome outcome;
  static_cast<RunOutcome&>(outcome) = run_ml(source, file);
  outcome.info = engine.info();
  engine.stop();
  return outcome;
}

inline ReplayOutcome run_ml_replay(const std::string& dir,
                                   const std::string& source,
                                   const std::string& file = "test.ml") {
  replay::Engine& engine = replay::Engine::instance();
  Status started = engine.start_replay(dir);
  DIONEA_CHECK(started.is_ok(), "start_replay");
  ReplayOutcome outcome;
  static_cast<RunOutcome&>(outcome) = run_ml(source, file);
  outcome.info = engine.info();
  engine.stop();
  return outcome;
}

// Expect a program to run cleanly and produce exactly `expected` output.
inline void expect_ml_output(const std::string& source,
                             const std::string& expected) {
  RunOutcome outcome = run_ml(source);
  EXPECT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.output, expected);
}

// Expect a program to fail with a message containing `needle`.
inline void expect_ml_error(const std::string& source,
                            const std::string& needle) {
  RunOutcome outcome = run_ml(source);
  EXPECT_FALSE(outcome.ok) << "output was: " << outcome.output;
  EXPECT_NE(outcome.error_message.find(needle), std::string::npos)
      << "error was: " << outcome.error_message;
}

// A full debuggee-under-debugger fixture: VM + debug server + a client
// attached through the port file, with the program running on a
// background thread. Tests drive the client; the destructor tears
// everything down (resuming parked threads first).
struct HarnessOptions {
  bool stop_at_entry = true;
  bool stop_forked_children = false;
  bool disturb = false;
  bool install_mp = true;
};

class DebugHarness {
 public:
  using Options = HarnessOptions;

  explicit DebugHarness(std::string program, Options options = Options())
      : program_(std::move(program)) {
    auto tmp = TempDir::create("dbg-harness");
    DIONEA_CHECK(tmp.is_ok(), "harness tempdir");
    tmp_ = std::make_unique<TempDir>(std::move(tmp).value());
    interp_ = std::make_unique<vm::Interp>();
    if (options.install_mp) mp::install_vm_bindings(interp_->vm());
    interp_->vm().set_output([this](std::string_view text) {
      std::scoped_lock lock(output_mutex_);
      output_.append(text);
    });
    dbg::DebugServer::Options server_options;
    server_options.port_file = port_file();
    server_options.disturb_mode = options.disturb;
    server_options.stop_forked_children = options.stop_forked_children;
    server_options.stop_at_entry = options.stop_at_entry;
    server_ = std::make_unique<dbg::DebugServer>(interp_->vm(),
                                                 server_options);
    server_->register_source("test.ml", program_);
    Status started = server_->start();
    DIONEA_CHECK(started.is_ok(), "harness server start");
    client_ = client::Client::discover(port_file());
  }

  ~DebugHarness() {
    if (runner_.joinable()) {
      // Make sure nothing stays parked, and kill infinite debuggees:
      // a failed ASSERT must not leave the destructor joining forever.
      if (session_ != nullptr) {
        (void)session_->clear_breakpoint(0);
        (void)session_->cont_all();
      }
      server_->stop();  // resumes any remaining parked threads
      interp_->vm().request_exit(0);
      runner_.join();
    }
    server_->stop();
  }

  // Start the debuggee WITHOUT attaching the modern client: for tests
  // that speak raw wire frames (version-skew clients), where the raw
  // connection must be the one claimed control channel.
  void start_debuggee() {
    runner_ = std::thread([this] {
      vm::RunResult run = interp_->run_string(program_, "test.ml");
      if (interp_->vm().is_forked_child()) {
        std::fflush(nullptr);
        ::_exit(run.exited ? run.exit_code : (run.ok ? 0 : 1));
      }
      result_ = run;
      finished_.store(true);
    });
  }

  // Start the debuggee and attach the client (one session, claimed).
  client::Session* launch() {
    start_debuggee();
    auto refreshed = client_->refresh(5000);
    DIONEA_CHECK(refreshed.is_ok() && refreshed.value() >= 1,
                 "harness attach");
    handle_ = client_->handle_for_pid(static_cast<int>(::getpid()));
    session_ = client_->session(handle_);
    DIONEA_CHECK(session_ != nullptr, "harness parent session");
    client_->claim(handle_);
    return session_;
  }

  // Wait (≤ timeout) for the debuggee to finish and return its result.
  vm::RunResult join(int timeout_millis = 20'000) {
    Stopwatch watch;
    while (!finished_.load()) {
      DIONEA_CHECK(watch.elapsed_seconds() * 1000.0 < timeout_millis,
                   "debuggee did not finish in time");
      sleep_for_millis(5);
    }
    runner_.join();
    return result_;
  }

  client::Session* session() noexcept { return session_; }
  client::SessionHandle handle() const noexcept { return handle_; }
  client::Client& client() noexcept { return *client_; }
  dbg::DebugServer& server() noexcept { return *server_; }
  vm::Vm& vm() noexcept { return interp_->vm(); }
  std::string port_file() const { return tmp_->file("ports"); }
  TempDir& tmp() noexcept { return *tmp_; }
  std::string output() {
    std::scoped_lock lock(output_mutex_);
    return output_;
  }

 private:
  std::string program_;
  std::unique_ptr<TempDir> tmp_;
  std::unique_ptr<vm::Interp> interp_;
  std::unique_ptr<dbg::DebugServer> server_;
  std::unique_ptr<client::Client> client_;
  client::SessionHandle handle_{};
  client::Session* session_ = nullptr;
  std::thread runner_;
  std::atomic<bool> finished_{false};
  vm::RunResult result_;
  std::mutex output_mutex_;
  std::string output_;
};

}  // namespace dionea::test
