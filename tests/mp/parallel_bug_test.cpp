// §6.4: the parallel-gem pipe-leak bug and its fix.
#include <cctype>

#include <gtest/gtest.h>

#include "mp/parallel.hpp"
#include "support/timing.hpp"

namespace dionea::mp::parallel {
namespace {

using vm::Value;

Value upcase(const Value& value) {
  std::string out = value.as_str();
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return Value::str(out);
}

std::vector<Value> make_items(int count) {
  std::vector<Value> items;
  for (int i = 0; i < count; ++i) {
    items.push_back(Value::str("item" + std::to_string(i)));
  }
  return items;
}

TEST(ParallelTest, FixedVersionTransformsInOrder) {
  Options options;
  options.version = Version::kV0_5_10;
  options.worker_count = 4;
  options.timeout_millis = 10'000;
  auto results = map_in_processes(make_items(10), upcase, options);
  ASSERT_TRUE(results.is_ok()) << results.error().to_string();
  ASSERT_EQ(results.value().size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results.value()[static_cast<size_t>(i)].as_str(),
              "ITEM" + std::to_string(i));
  }
}

TEST(ParallelTest, FixedVersionSingleWorker) {
  Options options;
  options.version = Version::kV0_5_10;
  options.worker_count = 1;
  options.timeout_millis = 10'000;
  auto results = map_in_processes(make_items(5), upcase, options);
  ASSERT_TRUE(results.is_ok());
  EXPECT_EQ(results.value()[4].as_str(), "ITEM4");
}

TEST(ParallelTest, FixedVersionMoreWorkersThanItems) {
  Options options;
  options.version = Version::kV0_5_10;
  options.worker_count = 8;
  options.timeout_millis = 10'000;
  auto results = map_in_processes(make_items(3), upcase, options);
  ASSERT_TRUE(results.is_ok());
  EXPECT_EQ(results.value().size(), 3u);
}

TEST(ParallelTest, EmptyInputIsEmptyOutput) {
  Options options;
  options.version = Version::kV0_5_10;
  options.timeout_millis = 5000;
  auto results = map_in_processes({}, upcase, options);
  ASSERT_TRUE(results.is_ok());
  EXPECT_TRUE(results.value().empty());
}

TEST(ParallelTest, ZeroWorkersRejected) {
  Options options;
  options.worker_count = 0;
  auto results = map_in_processes(make_items(2), upcase, options);
  ASSERT_FALSE(results.is_ok());
  EXPECT_EQ(results.error().code(), ErrorCode::kInvalidArgument);
}

TEST(ParallelTest, BuggyVersionDeadlocksUnderDisturbance) {
  // The §6.4 reproduction: disturb-style delays force every
  // interaction thread to create its pipes before any fork, so every
  // child inherits (and never closes) every sibling's write ends.
  Options options;
  options.version = Version::kV0_5_9;
  options.worker_count = 4;
  options.timeout_millis = 2500;
  options.disturb_delay_millis = 100;
  Stopwatch watch;
  auto results = map_in_processes(make_items(8), upcase, options);
  ASSERT_FALSE(results.is_ok());
  EXPECT_EQ(results.error().code(), ErrorCode::kTimeout);
  EXPECT_NE(results.error().message().find("leaked"), std::string::npos);
  EXPECT_GE(watch.elapsed_seconds(), 2.0);  // it really hung until the limit
}

TEST(ParallelTest, FixedVersionSurvivesSameDisturbance) {
  Options options;
  options.version = Version::kV0_5_10;
  options.worker_count = 4;
  options.timeout_millis = 10'000;
  options.disturb_delay_millis = 100;  // ignored by the fixed path
  auto results = map_in_processes(make_items(8), upcase, options);
  ASSERT_TRUE(results.is_ok()) << results.error().to_string();
  EXPECT_EQ(results.value().size(), 8u);
}

TEST(ParallelTest, BuggySingleWorkerCannotDeadlock) {
  // With one worker there are no siblings to leak into: even 0.5.9 is
  // safe — evidence the failure is specifically the sibling-fd leak.
  Options options;
  options.version = Version::kV0_5_9;
  options.worker_count = 1;
  options.timeout_millis = 10'000;
  options.disturb_delay_millis = 50;
  auto results = map_in_processes(make_items(4), upcase, options);
  ASSERT_TRUE(results.is_ok()) << results.error().to_string();
  EXPECT_EQ(results.value().size(), 4u);
}

}  // namespace
}  // namespace dionea::mp::parallel
