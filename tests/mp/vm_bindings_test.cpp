// MiniLang bindings for mp: ipc queues and pipes across fork.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace dionea::mp {
namespace {

using test::expect_ml_error;
using test::expect_ml_output;
using test::run_ml;

TEST(IpcQueueBindingTest, SameProcessRoundTrip) {
  expect_ml_output(
      "q = ipc_queue()\n"
      "ipc_push(q, [1, \"two\", {\"k\": 3}])\n"
      "v = ipc_pop(q)\n"
      "puts(repr(v))",
      "[1, \"two\", {\"k\": 3}]\n");
}

TEST(IpcQueueBindingTest, SizeAndTryPop) {
  expect_ml_output(
      "q = ipc_queue()\n"
      "puts(ipc_size(q))\n"
      "puts(repr(ipc_try_pop(q, 30)))\n"
      "ipc_push(q, 5)\n"
      "puts(ipc_size(q))\n"
      "puts(ipc_try_pop(q, 30))",
      "0\nnil\n1\n5\n");
}

TEST(IpcQueueBindingTest, ChildToParent) {
  expect_ml_output(
      "q = ipc_queue()\n"
      "pid = fork(fn()\n"
      "  ipc_push(q, getpid())\n"
      "end)\n"
      "child = ipc_pop(q)\n"
      "assert(child == pid)\n"
      "waitpid(pid)\n"
      "puts(\"ok\")",
      "ok\n");
}

TEST(IpcQueueBindingTest, ParentToChildren) {
  // Tasks fan out to 3 forked workers; the partials come back and sum
  // correctly regardless of which worker took which task.
  expect_ml_output(
      "tasks = ipc_queue()\n"
      "out = ipc_queue()\n"
      "for i in 9\n"
      "  ipc_push(tasks, i + 1)\n"
      "end\n"
      "w = 0\n"
      "while w < 3\n"
      "  ipc_push(tasks, nil)\n"
      "  w = w + 1\n"
      "end\n"
      "pids = []\n"
      "w = 0\n"
      "while w < 3\n"
      "  push(pids, fork(fn()\n"
      "    local = 0\n"
      "    while true\n"
      "      v = ipc_pop(tasks)\n"
      "      if v == nil\n        break\n      end\n"
      "      local = local + v\n"
      "    end\n"
      "    ipc_push(out, local)\n"
      "  end))\n"
      "  w = w + 1\n"
      "end\n"
      "total = 0\n"
      "for i in 3\n"
      "  total = total + ipc_pop(out)\n"
      "end\n"
      "for p in pids\n"
      "  waitpid(p)\n"
      "end\n"
      "puts(total)",  // 1+..+9
      "45\n");
}

TEST(IpcQueueBindingTest, UnpicklableValueRejected) {
  expect_ml_error("q = ipc_queue()\nipc_push(q, mutex())", "cannot pickle");
  expect_ml_error("q = ipc_queue()\nipc_push(q, fn() return 1 end)",
                  "cannot pickle");
}

TEST(IpcQueueBindingTest, TypeErrors) {
  expect_ml_error("ipc_push(5, 1)", "ipc_push");
  expect_ml_error("ipc_pop(queue())", "ipc_pop");  // wrong queue kind
  expect_ml_error("ipc_size([])", "ipc_size");
}

TEST(PipeBindingTest, WriteReadSameProcess) {
  expect_ml_output(
      "p = mp_pipe()\n"
      "pipe_write(p, {\"msg\": \"hi\"})\n"
      "v = pipe_read(p)\n"
      "puts(v[\"msg\"])",
      "hi\n");
}

TEST(PipeBindingTest, EofAfterCloseWriteIsNil) {
  expect_ml_output(
      "p = mp_pipe()\n"
      "pipe_write(p, 1)\n"
      "pipe_close_write(p)\n"
      "puts(pipe_read(p))\n"
      "puts(repr(pipe_read(p)))",
      "1\nnil\n");
}

TEST(PipeBindingTest, AcrossFork) {
  expect_ml_output(
      "p = mp_pipe()\n"
      "pid = fork(fn()\n"
      "  pipe_close_read(p)\n"
      "  pipe_write(p, \"child says hi\")\n"
      "  pipe_close_write(p)\n"
      "end)\n"
      "pipe_close_write(p)\n"
      "puts(pipe_read(p))\n"
      "puts(repr(pipe_read(p)))\n"  // EOF after child exit
      "waitpid(pid)",
      "child says hi\nnil\n");
}

TEST(PipeBindingTest, WriteAfterCloseErrors) {
  expect_ml_error(
      "p = mp_pipe()\npipe_close_write(p)\npipe_write(p, 1)",
      "write end closed");
  expect_ml_error(
      "p = mp_pipe()\npipe_close_read(p)\npipe_read(p)",
      "read end closed");
}

TEST(PipeBindingTest, ReprNamesTypes) {
  expect_ml_output("puts(repr(ipc_queue()))\nputs(repr(mp_pipe()))",
                   "<ipc_queue>\n<pipe>\n");
  expect_ml_output("puts(type(ipc_queue()))", "foreign\n");
}

}  // namespace
}  // namespace dionea::mp
