#include "mp/mpqueue.hpp"

#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "support/timing.hpp"

namespace dionea::mp {
namespace {

using vm::Value;

TEST(MpQueueTest, PushPopBytesSameProcess) {
  auto queue = MpQueue::create();
  ASSERT_TRUE(queue.is_ok());
  ASSERT_TRUE(queue.value().push_bytes("hello").is_ok());
  ASSERT_TRUE(queue.value().push_bytes("").is_ok());  // empty payload ok
  auto first = queue.value().pop_bytes();
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value(), "hello");
  auto second = queue.value().pop_bytes();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value(), "");
}

TEST(MpQueueTest, PopTimeoutOnEmpty) {
  auto queue = MpQueue::create();
  ASSERT_TRUE(queue.is_ok());
  Stopwatch watch;
  auto none = queue.value().pop_bytes_timeout(80);
  ASSERT_TRUE(none.is_ok());
  EXPECT_FALSE(none.value().has_value());
  EXPECT_GE(watch.elapsed_seconds(), 0.07);
}

TEST(MpQueueTest, SizeTracksSemaphore) {
  auto queue = MpQueue::create();
  ASSERT_TRUE(queue.is_ok());
  EXPECT_EQ(queue.value().size(), 0);
  (void)queue.value().push_bytes("a");
  (void)queue.value().push_bytes("b");
  EXPECT_EQ(queue.value().size(), 2);
  (void)queue.value().pop_bytes();
  EXPECT_EQ(queue.value().size(), 1);
}

TEST(MpQueueTest, ValuesPickleAcrossPush) {
  auto queue = MpQueue::create();
  ASSERT_TRUE(queue.is_ok());
  Value map = Value::new_map();
  map.as_map()->items["count"] = Value(7);
  ASSERT_TRUE(queue.value().push_value(map).is_ok());
  auto back = queue.value().pop_value();
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back.value().equals(map));
}

TEST(MpQueueTest, LargePayloadExceedsPipeBuf) {
  auto queue = MpQueue::create();
  ASSERT_TRUE(queue.is_ok());
  std::string big(256 * 1024, 'x');
  std::thread producer([&] {
    EXPECT_TRUE(queue.value().push_bytes(big).is_ok());
  });
  auto back = queue.value().pop_bytes();
  producer.join();
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), big);
}

TEST(MpQueueTest, CrossProcessChildToParent) {
  auto queue = MpQueue::create();
  ASSERT_TRUE(queue.is_ok());
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    bool ok = queue.value().push_bytes("from-child").is_ok();
    ::_exit(ok ? 0 : 1);
  }
  auto back = queue.value().pop_bytes();
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "from-child");
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(MpQueueTest, CrossProcessParentToChild) {
  auto queue = MpQueue::create();
  ASSERT_TRUE(queue.is_ok());
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto got = queue.value().pop_bytes();
    ::_exit(got.is_ok() && got.value() == "task" ? 0 : 1);
  }
  sleep_for_millis(20);  // child blocks first: wakes on the semaphore
  ASSERT_TRUE(queue.value().push_bytes("task").is_ok());
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(MpQueueTest, ManyItemsManyChildren) {
  // Multiple producers in children, one consumer in the parent: no
  // item lost or torn (writer lock covers header+payload).
  auto queue = MpQueue::create();
  ASSERT_TRUE(queue.is_ok());
  constexpr int kChildren = 4;
  constexpr int kPerChild = 50;
  std::vector<pid_t> pids;
  for (int c = 0; c < kChildren; ++c) {
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      for (int i = 0; i < kPerChild; ++i) {
        std::string payload(100 + static_cast<size_t>(i), 'a' + c);
        if (!queue.value().push_bytes(payload).is_ok()) ::_exit(1);
      }
      ::_exit(0);
    }
    pids.push_back(pid);
  }
  int received = 0;
  for (int i = 0; i < kChildren * kPerChild; ++i) {
    auto item = queue.value().pop_bytes();
    ASSERT_TRUE(item.is_ok());
    // Consistency: all bytes identical (no torn interleaving).
    const std::string& payload = item.value();
    ASSERT_FALSE(payload.empty());
    for (char ch : payload) ASSERT_EQ(ch, payload[0]);
    ++received;
  }
  EXPECT_EQ(received, kChildren * kPerChild);
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
}

TEST(MpQueueTest, InterruptCheckAbortsBlockingPop) {
  auto queue = MpQueue::create();
  ASSERT_TRUE(queue.is_ok());
  int calls = 0;
  auto interrupted = queue.value().pop_bytes(
      [](void* arg) {
        int& count = *static_cast<int*>(arg);
        return ++count >= 3;  // give up on the 3rd slice
      },
      &calls);
  ASSERT_FALSE(interrupted.is_ok());
  EXPECT_EQ(interrupted.error().code(), ErrorCode::kUnavailable);
  EXPECT_GE(calls, 3);
}

}  // namespace
}  // namespace dionea::mp
