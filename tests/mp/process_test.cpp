#include "mp/process.hpp"

#include <signal.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "support/timing.hpp"

namespace dionea::mp {
namespace {

TEST(ProcessTest, SpawnWaitExitCode) {
  auto proc = Process::spawn([] { return 7; });
  ASSERT_TRUE(proc.is_ok());
  EXPECT_GT(proc.value().pid(), 0);
  auto code = proc.value().wait();
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), 7);
  EXPECT_FALSE(proc.value().valid());  // reaped
}

TEST(ProcessTest, ChildRunsInItsOwnAddressSpace) {
  int shared = 1;
  auto proc = Process::spawn([&shared] {
    shared = 99;
    return shared == 99 ? 0 : 1;
  });
  ASSERT_TRUE(proc.is_ok());
  EXPECT_EQ(proc.value().wait().value(), 0);
  EXPECT_EQ(shared, 1);  // parent copy untouched
}

TEST(ProcessTest, TryWaitNonBlocking) {
  auto proc = Process::spawn([] {
    sleep_for_millis(100);
    return 0;
  });
  ASSERT_TRUE(proc.is_ok());
  auto immediate = proc.value().try_wait();
  ASSERT_TRUE(immediate.is_ok());
  EXPECT_FALSE(immediate.value().has_value());  // still running
  EXPECT_TRUE(proc.value().running());
  auto code = proc.value().wait();
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), 0);
}

TEST(ProcessTest, WaitTimeoutExpiresThenSucceeds) {
  auto proc = Process::spawn([] {
    sleep_for_millis(150);
    return 3;
  });
  ASSERT_TRUE(proc.is_ok());
  auto early = proc.value().wait_timeout(30);
  ASSERT_FALSE(early.is_ok());
  EXPECT_EQ(early.error().code(), ErrorCode::kTimeout);
  auto late = proc.value().wait_timeout(5000);
  ASSERT_TRUE(late.is_ok());
  EXPECT_EQ(late.value(), 3);
}

TEST(ProcessTest, KillReportsSignal) {
  auto proc = Process::spawn([] {
    sleep_for_millis(10'000);
    return 0;
  });
  ASSERT_TRUE(proc.is_ok());
  ASSERT_TRUE(proc.value().kill(SIGKILL).is_ok());
  auto code = proc.value().wait();
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), -SIGKILL);
}

TEST(ProcessTest, ThrowingChildContained) {
  auto proc = Process::spawn([]() -> int {
    throw std::runtime_error("child boom");
  });
  ASSERT_TRUE(proc.is_ok());
  auto code = proc.value().wait();
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), 70);  // EX_SOFTWARE
}

TEST(ProcessTest, InvalidHandleOperationsFail) {
  auto proc = Process::spawn([] { return 0; });
  ASSERT_TRUE(proc.is_ok());
  ASSERT_TRUE(proc.value().wait().is_ok());
  EXPECT_FALSE(proc.value().wait().is_ok());
  EXPECT_FALSE(proc.value().try_wait().is_ok());
  EXPECT_FALSE(proc.value().kill(SIGTERM).is_ok());
}

TEST(ProcessTest, MoveTransfersOwnership) {
  auto proc = Process::spawn([] { return 4; });
  ASSERT_TRUE(proc.is_ok());
  Process moved = std::move(proc).value();
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(moved.wait().value(), 4);
}

TEST(ProcessTest, ManyConcurrentChildren) {
  std::vector<Process> procs;
  for (int i = 0; i < 8; ++i) {
    auto proc = Process::spawn([i] { return i; });
    ASSERT_TRUE(proc.is_ok());
    procs.push_back(std::move(proc).value());
  }
  for (int i = 0; i < 8; ++i) {
    auto code = procs[static_cast<size_t>(i)].wait();
    ASSERT_TRUE(code.is_ok());
    EXPECT_EQ(code.value(), i);
  }
}

}  // namespace
}  // namespace dionea::mp
