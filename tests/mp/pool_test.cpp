#include "mp/pool.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include "support/timing.hpp"
#include "vm/sync.hpp"

namespace dionea::mp {
namespace {

using vm::Value;

Value square(const Value& v) { return Value(v.as_int() * v.as_int()); }

TEST(PoolTest, MapPreservesOrder) {
  auto pool = Pool::create(3, square);
  ASSERT_TRUE(pool.is_ok());
  std::vector<Value> items;
  for (int i = 0; i < 25; ++i) items.push_back(Value(i));
  auto results = pool.value().map(items, 10'000);
  ASSERT_TRUE(results.is_ok()) << results.error().to_string();
  ASSERT_EQ(results.value().size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(results.value()[static_cast<size_t>(i)].as_int(),
              static_cast<std::int64_t>(i) * i);
  }
  EXPECT_TRUE(pool.value().shutdown().is_ok());
}

TEST(PoolTest, SubmitTakeResult) {
  auto pool = Pool::create(2, [](const Value& v) {
    return Value::str(v.as_str() + "!");
  });
  ASSERT_TRUE(pool.is_ok());
  ASSERT_TRUE(pool.value().submit(Value::str("a")).is_ok());
  ASSERT_TRUE(pool.value().submit(Value::str("b")).is_ok());
  std::multiset<std::string> results;
  for (int i = 0; i < 2; ++i) {
    auto result = pool.value().take_result(5000);
    ASSERT_TRUE(result.is_ok());
    results.insert(result.value().as_str());
  }
  EXPECT_EQ(results.count("a!"), 1u);
  EXPECT_EQ(results.count("b!"), 1u);
  EXPECT_TRUE(pool.value().shutdown().is_ok());
}

TEST(PoolTest, TakeResultTimesOutWhenIdle) {
  auto pool = Pool::create(1, square);
  ASSERT_TRUE(pool.is_ok());
  auto none = pool.value().take_result(60);
  ASSERT_FALSE(none.is_ok());
  EXPECT_EQ(none.error().code(), ErrorCode::kTimeout);
  EXPECT_TRUE(pool.value().shutdown().is_ok());
}

TEST(PoolTest, WorkIsActuallyDistributed) {
  // Record which pid handled each item; with slow tasks and 4 workers,
  // more than one pid must appear.
  auto pool = Pool::create(4, [](const Value& v) {
    sleep_for_millis(20);
    (void)v;
    return Value(static_cast<std::int64_t>(::getpid()));
  });
  ASSERT_TRUE(pool.is_ok());
  std::vector<Value> items(12, Value(0));
  auto results = pool.value().map(items, 20'000);
  ASSERT_TRUE(results.is_ok());
  std::set<std::int64_t> pids;
  for (const Value& result : results.value()) pids.insert(result.as_int());
  EXPECT_GE(pids.size(), 2u);
  EXPECT_TRUE(pool.value().shutdown().is_ok());
}

TEST(PoolTest, PullBasedBalancing) {
  // Fig. 8's property: a slow item doesn't stall the rest — free
  // workers keep pulling. All items complete within ~max(item) time,
  // not sum.
  auto pool = Pool::create(3, [](const Value& v) {
    sleep_for_millis(static_cast<int>(v.as_int()));
    return Value(1);
  });
  ASSERT_TRUE(pool.is_ok());
  // One 300ms item + ten 10ms items on 3 workers.
  std::vector<Value> items{Value(300)};
  for (int i = 0; i < 10; ++i) items.push_back(Value(10));
  Stopwatch watch;
  auto results = pool.value().map(items, 20'000);
  ASSERT_TRUE(results.is_ok());
  // Serial would be ~400ms on one worker; with pull-based balancing the
  // wall time tracks the 300ms straggler.
  EXPECT_LT(watch.elapsed_seconds(), 0.9);
  EXPECT_TRUE(pool.value().shutdown().is_ok());
}

TEST(PoolTest, ShutdownIsIdempotentAndDtorSafe) {
  auto pool = Pool::create(2, square);
  ASSERT_TRUE(pool.is_ok());
  EXPECT_EQ(pool.value().worker_count(), 2);
  EXPECT_TRUE(pool.value().shutdown().is_ok());
  EXPECT_TRUE(pool.value().shutdown().is_ok());
  EXPECT_EQ(pool.value().worker_count(), 0);
  // Destructor after shutdown: nothing to do.
}

TEST(PoolTest, DtorShutsDownLiveWorkers) {
  {
    auto pool = Pool::create(2, square);
    ASSERT_TRUE(pool.is_ok());
    // Falls out of scope without explicit shutdown.
  }
  // If workers leaked, later tests would see them; nothing to assert
  // beyond not hanging here.
  SUCCEED();
}

TEST(PoolTest, RejectsZeroWorkers) {
  auto pool = Pool::create(0, square);
  ASSERT_FALSE(pool.is_ok());
  EXPECT_EQ(pool.error().code(), ErrorCode::kInvalidArgument);
}

TEST(PoolTest, MapOfNothingIsEmpty) {
  auto pool = Pool::create(2, square);
  ASSERT_TRUE(pool.is_ok());
  auto results = pool.value().map({}, 1000);
  ASSERT_TRUE(results.is_ok());
  EXPECT_TRUE(results.value().empty());
  EXPECT_TRUE(pool.value().shutdown().is_ok());
}

TEST(PoolTest, PicklableTasksOnly) {
  auto pool = Pool::create(1, square);
  ASSERT_TRUE(pool.is_ok());
  Status bad = pool.value().submit(
      Value(std::make_shared<vm::VmMutex>()));
  EXPECT_FALSE(bad.is_ok());
  EXPECT_TRUE(pool.value().shutdown().is_ok());
}

}  // namespace
}  // namespace dionea::mp
