#include "mp/serialize.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "vm/sync.hpp"

namespace dionea::mp {
namespace {

using vm::Value;

Value round_trip(const Value& value) {
  auto bytes = serialize(value);
  EXPECT_TRUE(bytes.is_ok()) << bytes.error().to_string();
  auto back = deserialize(bytes.value());
  EXPECT_TRUE(back.is_ok()) << back.error().to_string();
  return back.is_ok() ? back.value() : Value();
}

TEST(SerializeTest, Scalars) {
  EXPECT_TRUE(round_trip(Value()).is_nil());
  EXPECT_EQ(round_trip(Value(true)).as_bool(), true);
  EXPECT_EQ(round_trip(Value(false)).as_bool(), false);
  EXPECT_EQ(round_trip(Value(42)).as_int(), 42);
  EXPECT_EQ(round_trip(Value(INT64_MIN)).as_int(), INT64_MIN);
  EXPECT_DOUBLE_EQ(round_trip(Value(2.5)).as_float(), 2.5);
  EXPECT_EQ(round_trip(Value::str("hello")).as_str(), "hello");
  EXPECT_EQ(round_trip(Value::str("")).as_str(), "");
  std::string binary("\x00\x01\xfe", 3);
  EXPECT_EQ(round_trip(Value::str(binary)).as_str(), binary);
}

TEST(SerializeTest, Containers) {
  Value list = Value::new_list();
  list.as_list()->items = {Value(1), Value::str("x"), Value()};
  Value back = round_trip(list);
  ASSERT_TRUE(back.is_list());
  EXPECT_TRUE(back.equals(list));

  Value map = Value::new_map();
  map.as_map()->items["k"] = Value(9);
  map.as_map()->items["nested"] = list;
  Value map_back = round_trip(map);
  EXPECT_TRUE(map_back.equals(map));
}

TEST(SerializeTest, DeserializedContainersAreFreshCopies) {
  Value list = Value::new_list();
  list.as_list()->items = {Value(1)};
  Value back = round_trip(list);
  back.as_list()->items.push_back(Value(2));
  EXPECT_EQ(list.as_list()->items.size(), 1u);
}

TEST(SerializeTest, ProcessLocalObjectsRefuse) {
  // §6.3: pickle moves data; threads/locks are process-local.
  auto refuse = [](Value value) {
    auto bytes = serialize(value);
    ASSERT_FALSE(bytes.is_ok());
    EXPECT_NE(bytes.error().message().find("cannot pickle"),
              std::string::npos);
  };
  refuse(Value(std::make_shared<vm::VmMutex>()));
  refuse(Value(std::make_shared<vm::VmQueue>()));
  refuse(Value(std::make_shared<vm::VmCond>()));
  refuse(Value(std::make_shared<vm::ThreadHandle>()));
}

TEST(SerializeTest, NestedUnpicklableRefusesToo) {
  Value list = Value::new_list();
  list.as_list()->items.push_back(Value(1));
  list.as_list()->items.push_back(Value(std::make_shared<vm::VmMutex>()));
  EXPECT_FALSE(serialize(list).is_ok());

  Value map = Value::new_map();
  map.as_map()->items["q"] = Value(std::make_shared<vm::VmQueue>());
  EXPECT_FALSE(serialize(map).is_ok());
}

TEST(SerializeTest, FloatsSurviveExactly) {
  for (double d : {0.0, -0.0, 1e300, -1e-300, 3.141592653589793}) {
    EXPECT_EQ(round_trip(Value(d)).as_float(), d);
  }
}

TEST(SerializeTest, DeserializeGarbageFails) {
  EXPECT_FALSE(deserialize("").is_ok());
  EXPECT_FALSE(deserialize("garbage").is_ok());
}

TEST(SerializeTest, RandomValuesFuzz) {
  Rng rng(2024);
  std::function<Value(int)> random_value = [&](int depth) -> Value {
    switch (rng.next_below(depth >= 3 ? 5 : 7)) {
      case 0: return Value();
      case 1: return Value(rng.next_bool());
      case 2: return Value(static_cast<std::int64_t>(rng.next_u64()));
      case 3: return Value(rng.next_double());
      case 4: return Value::str(rng.next_word(0, 12));
      case 5: {
        Value list = Value::new_list();
        for (std::uint64_t i = 0; i < rng.next_below(4); ++i) {
          list.as_list()->items.push_back(random_value(depth + 1));
        }
        return list;
      }
      default: {
        Value map = Value::new_map();
        for (std::uint64_t i = 0; i < rng.next_below(4); ++i) {
          map.as_map()->items[rng.next_word(1, 6)] = random_value(depth + 1);
        }
        return map;
      }
    }
  };
  for (int i = 0; i < 300; ++i) {
    Value original = random_value(0);
    Value back = round_trip(original);
    EXPECT_TRUE(back.equals(original)) << original.repr();
  }
}

}  // namespace
}  // namespace dionea::mp
