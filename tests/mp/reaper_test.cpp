#include "mp/reaper.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <vector>

#include <gtest/gtest.h>

#include "support/timing.hpp"

namespace dionea::mp {
namespace {

TEST(ReaperTest, SigkilledChildReportsCrash) {
  auto proc = Process::spawn([] {
    sleep_for_millis(30'000);
    return 0;
  });
  ASSERT_TRUE(proc.is_ok());
  pid_t pid = proc.value().pid();
  ChildReaper reaper;
  reaper.adopt(std::move(proc).value());
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  auto ex = reaper.wait_any(5000);
  ASSERT_TRUE(ex.is_ok()) << ex.error().to_string();
  EXPECT_EQ(ex.value().pid, pid);
  EXPECT_EQ(ex.value().signal, SIGKILL);
  EXPECT_TRUE(ex.value().crashed());
  EXPECT_TRUE(reaper.watched().empty());
}

TEST(ReaperTest, CleanExitIsNotACrash) {
  auto proc = Process::spawn([] { return 5; });
  ASSERT_TRUE(proc.is_ok());
  ChildReaper reaper;
  reaper.adopt(std::move(proc).value());
  auto ex = reaper.wait_any(5000);
  ASSERT_TRUE(ex.is_ok()) << ex.error().to_string();
  EXPECT_EQ(ex.value().exit_code, 5);
  EXPECT_EQ(ex.value().signal, 0);
  EXPECT_FALSE(ex.value().crashed());
}

TEST(ReaperTest, WaitAnyTimesOutWhileChildrenLive) {
  auto proc = Process::spawn([] {
    sleep_for_millis(30'000);
    return 0;
  });
  ASSERT_TRUE(proc.is_ok());
  ChildReaper reaper;
  reaper.adopt(std::move(proc).value());
  auto ex = reaper.wait_any(50);
  ASSERT_FALSE(ex.is_ok());
  EXPECT_EQ(ex.error().code(), ErrorCode::kTimeout);
  auto exits = reaper.terminate_all(500);
  ASSERT_TRUE(exits.is_ok());
  ASSERT_EQ(exits.value().size(), 1u);
  EXPECT_EQ(exits.value()[0].signal, SIGTERM);
}

// Fork storm: many children, kill the set, prove nothing is left — not
// in the watched set and not as kernel zombies.
TEST(ReaperTest, ForkStormLeavesNoZombies) {
  ChildReaper reaper;
  std::vector<pid_t> pids;
  for (int i = 0; i < 8; ++i) {
    auto proc = Process::spawn([] {
      sleep_for_millis(30'000);
      return 0;
    });
    ASSERT_TRUE(proc.is_ok());
    pids.push_back(proc.value().pid());
    reaper.adopt(std::move(proc).value());
  }
  ASSERT_EQ(reaper.watched().size(), 8u);
  auto exits = reaper.terminate_all(2000);
  ASSERT_TRUE(exits.is_ok()) << exits.error().to_string();
  EXPECT_EQ(exits.value().size(), 8u);
  EXPECT_TRUE(reaper.watched().empty());
  // All reaped: waitpid sees no children at all (other tests in this
  // binary always reap their own, so ECHILD is the steady state).
  int status = 0;
  pid_t got = ::waitpid(-1, &status, WNOHANG);
  EXPECT_TRUE(got == 0 || (got < 0 && errno == ECHILD));
  for (pid_t pid : pids) {
    // The pids are gone (or at least no longer our zombies to reap).
    EXPECT_LT(::waitpid(pid, &status, WNOHANG), 0);
  }
}

// A child that ignores SIGTERM must still die: terminate_all escalates
// to SIGKILL after the grace period.
TEST(ReaperTest, TerminateEscalatesToSigkill) {
  auto proc = Process::spawn([] {
    ::signal(SIGTERM, SIG_IGN);
    sleep_for_millis(30'000);
    return 0;
  });
  ASSERT_TRUE(proc.is_ok());
  ChildReaper reaper;
  reaper.adopt(std::move(proc).value());
  sleep_for_millis(50);  // let the child install its SIG_IGN
  auto exits = reaper.terminate_all(150);
  ASSERT_TRUE(exits.is_ok()) << exits.error().to_string();
  ASSERT_EQ(exits.value().size(), 1u);
  EXPECT_EQ(exits.value()[0].signal, SIGKILL);
}

// Process's own destructor follows the same discipline: a live child
// is terminated and reaped, never leaked.
TEST(ReaperTest, ProcessDestructorReapsStubbornChild) {
  pid_t pid = -1;
  {
    auto proc = Process::spawn([] {
      ::signal(SIGTERM, SIG_IGN);
      sleep_for_millis(30'000);
      return 0;
    });
    ASSERT_TRUE(proc.is_ok());
    pid = proc.value().pid();
    sleep_for_millis(50);
    // proc goes out of scope alive: SIGTERM, grace, SIGKILL, reap.
  }
  int status = 0;
  EXPECT_LT(::waitpid(pid, &status, WNOHANG), 0);  // already reaped
}

TEST(ReaperTest, PollCollectsMultipleExits) {
  ChildReaper reaper;
  for (int i = 0; i < 4; ++i) {
    auto proc = Process::spawn([i] { return i; });
    ASSERT_TRUE(proc.is_ok());
    reaper.adopt(std::move(proc).value());
  }
  auto exits = reaper.drain(5000);
  ASSERT_TRUE(exits.is_ok()) << exits.error().to_string();
  ASSERT_EQ(exits.value().size(), 4u);
  std::vector<int> codes;
  for (const auto& ex : exits.value()) {
    EXPECT_FALSE(ex.crashed());
    codes.push_back(ex.exit_code);
  }
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(codes, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace dionea::mp
