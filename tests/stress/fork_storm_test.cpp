// Fork-storm stress: a 3-level recursive fork fan-out (1 root + 3
// children + 9 grandchildren = 13 processes) under an attached
// debugger. The paper's fork handlers must hold up under pressure:
// every forked process re-binds its own listener and appends exactly
// one record to the shared port file (§5.3's temporary-file protocol),
// every child is adoptable and controllable while alive, and every one
// is reaped — no zombies, no torn or duplicated port-file records.
#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "ipc/port_file.hpp"
#include "support/fault.hpp"
#include "testutil.hpp"

namespace dionea::dbg {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

// storm(2): fork 3 children, each runs storm(1) -> 3 grandchildren
// each running storm(0) (leaf). Every parent reaps its own children
// and propagates a non-zero exit if any descendant failed.
constexpr const char* kStorm =
    "fn storm(depth)\n"
    "  if depth > 0\n"
    "    kids = []\n"
    "    for i in 3\n"
    "      p = fork()\n"
    "      if p == 0\n"
    "        storm(depth - 1)\n"
    "        exit(0)\n"
    "      end\n"
    "      push(kids, p)\n"
    "    end\n"
    "    bad = 0\n"
    "    for k in kids\n"
    "      bad = bad + waitpid(k)\n"
    "    end\n"
    "    if bad > 0\n"
    "      exit(1)\n"
    "    end\n"
    "  end\n"
    "end\n"
    "storm(2)\n"
    "puts(\"storm done\")";

constexpr int kExpectedChildren = 12;  // 3 + 9, root excluded

// Kills and reaps any storm process that outlives its test (an ASSERT
// bail-out mid-walk leaves parked children behind), so one test's
// failure cannot masquerade as a zombie leak in the next. The waitpid
// probe keeps the kill scoped to still-unreaped children of ours —
// a reaped pid may already belong to someone else.
class StormReaper {
 public:
  explicit StormReaper(std::string port_file)
      : port_file_(std::move(port_file)) {}
  ~StormReaper() {
    // Re-read the file each round: a straggler may publish (then park)
    // after the first sweep. Bounded, so a process that never published
    // degrades into a fast test failure, not a ctest timeout.
    test::poll_until(
        [&] {
          ipc::PortFile file(port_file_);
          auto records = file.read_all();
          if (records.is_ok()) {
            for (const ipc::PortRecord& record : records.value()) {
              if (record.pid == ::getpid()) continue;
              if (::waitpid(record.pid, nullptr, WNOHANG) == 0) {
                ::kill(record.pid, SIGKILL);
              }
            }
          }
          while (::waitpid(-1, nullptr, WNOHANG) > 0) {
          }
          return ::waitpid(-1, nullptr, WNOHANG) == -1 && errno == ECHILD;
        },
        10'000);
  }

 private:
  std::string port_file_;
};

TEST(ForkStormTest, ThirteenProcessFanOutUnderDebugger) {
  DebugHarness harness(kStorm,
                       HarnessOptions{.stop_at_entry = false,
                                      .stop_forked_children = true});
  (void)harness.launch();
  StormReaper reaper(harness.port_file());

  // Walk the storm: every forked process parks at birth, gets adopted
  // through its port-file record, proves its listener is live (the
  // session IS a connection to it; ping round-trips on top), and is
  // released. Arrival order across the tree is scheduler-chosen; the
  // generous timeouts absorb a parallel-ctest-loaded machine.
  std::set<int> seen_pids;
  for (int i = 0; i < kExpectedChildren; ++i) {
    auto child_h = harness.client().attach_any(45'000);
    ASSERT_TRUE(child_h.is_ok()) << "child " << i << " never appeared";
    client::Session* child = harness.client().session(child_h.value());
    EXPECT_TRUE(seen_pids.insert(child->pid()).second)
        << "pid " << child->pid() << " adopted twice";
    auto birth = child->wait_stopped(15'000);
    ASSERT_TRUE(birth.is_ok()) << "child " << i;
    ASSERT_TRUE(child->ping().is_ok()) << "child " << i;
    ASSERT_TRUE(child->cont(birth.value().tid).is_ok())
        << "child " << i;
  }

  auto result = harness.join(60'000);
  EXPECT_TRUE(result.ok);
  // "storm done" + every waitpid returning 0 proves the whole tree was
  // reaped with clean exits (a zombie would wedge its parent's waitpid,
  // a lost child would propagate exit 1).
  EXPECT_EQ(harness.output(), "storm done\n");

  // Port-file postcondition: one well-formed record per process —
  // 1 root + 12 descendants, no duplicates, no torn lines (read_all
  // skips unparseable lines, so a tear would show up as a missing pid).
  ipc::PortFile port_file(harness.port_file());
  auto records = port_file.read_all();
  ASSERT_TRUE(records.is_ok());
  std::map<int, int> per_pid;
  for (const ipc::PortRecord& record : records.value()) {
    ++per_pid[record.pid];
    EXPECT_GT(record.port, 0) << "pid " << record.pid;
  }
  EXPECT_EQ(per_pid.size(), 1u + kExpectedChildren);
  for (const auto& [pid, count] : per_pid) {
    EXPECT_EQ(count, 1) << "pid " << pid << " published " << count
                        << " port-file records";
  }
  EXPECT_EQ(per_pid.count(::getpid()), 1u) << "root record missing";
  for (int pid : seen_pids) {
    EXPECT_EQ(per_pid.count(pid), 1u) << "child " << pid
                                      << " record missing";
  }

  // Zombie check: the storm reaped its own descendants, so this test
  // process (the storm root) has no children left at all.
  int status = 0;
  pid_t leftover = ::waitpid(-1, &status, WNOHANG);
  EXPECT_TRUE(leftover == -1 && errno == ECHILD)
      << "unreaped child " << leftover;
}

TEST(ForkStormTest, StormSurvivesPortFileFaults) {
  // Same storm, now with seeded fault injection tearing port-file
  // appends and delaying accepts. Recoverable kinds only: the fork
  // handlers retry/repair, so the tree must still complete cleanly and
  // the file must still parse to one record per process.
  fault::Config config;
  config.seed = 20260806;
  config.probability = 0.15;
  config.kinds = fault::kRecoverableKinds;
  fault::Scope injection{config};

  DebugHarness harness(kStorm, HarnessOptions{.stop_at_entry = false});
  (void)harness.launch();
  StormReaper reaper(harness.port_file());
  auto result = harness.join(60'000);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(harness.output(), "storm done\n");

  ipc::PortFile port_file(harness.port_file());
  auto records = port_file.read_all();
  ASSERT_TRUE(records.is_ok());
  std::set<int> pids;
  for (const ipc::PortRecord& record : records.value()) {
    EXPECT_TRUE(pids.insert(record.pid).second)
        << "pid " << record.pid << " published twice";
  }
  EXPECT_EQ(pids.size(), 1u + kExpectedChildren);

  int status = 0;
  pid_t leftover = ::waitpid(-1, &status, WNOHANG);
  EXPECT_TRUE(leftover == -1 && errno == ECHILD)
      << "unreaped child " << leftover;
}

}  // namespace
}  // namespace dionea::dbg
