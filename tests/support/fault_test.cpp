#include "support/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dionea::fault {
namespace {

// Record the schedule a config produces over `n` hits of `site`.
std::vector<Kind> schedule(const Config& config, const char* site, int n) {
  Scope scope(config);
  std::vector<Kind> out;
  for (int i = 0; i < n; ++i) out.push_back(probe(site).kind);
  return out;
}

TEST(FaultTest, DisabledProbeIsSilent) {
  Injector::instance().disable();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(probe("fd.read"));
  }
}

TEST(FaultTest, SameSeedSameSchedule) {
  Config config{.seed = 42, .probability = 0.5, .kinds = kAllKinds};
  auto first = schedule(config, "fd.read", 200);
  auto second = schedule(config, "fd.read", 200);
  EXPECT_EQ(first, second);
  // A 50% schedule over 200 hits injects something.
  int injected = 0;
  for (Kind kind : first) injected += kind != Kind::kNone;
  EXPECT_GT(injected, 0);
  EXPECT_LT(injected, 200);
}

TEST(FaultTest, DifferentSeedsDiverge) {
  Config a{.seed = 1, .probability = 0.5, .kinds = kAllKinds};
  Config b{.seed = 2, .probability = 0.5, .kinds = kAllKinds};
  EXPECT_NE(schedule(a, "fd.read", 200), schedule(b, "fd.read", 200));
}

TEST(FaultTest, SitesHaveIndependentSchedules) {
  Config config{.seed = 7, .probability = 0.5, .kinds = kAllKinds};
  EXPECT_NE(schedule(config, "fd.read", 200),
            schedule(config, "frame.send", 200));
}

TEST(FaultTest, KindMaskRestrictsWhatFires) {
  Config config{.seed = 9, .probability = 1.0, .kinds = kBitEintr};
  for (Kind kind : schedule(config, "fd.write", 50)) {
    EXPECT_EQ(kind, Kind::kEintr);
  }
}

TEST(FaultTest, SiteFilterScopesInjection) {
  Config config{.seed = 3, .probability = 1.0, .kinds = kAllKinds,
                .site_filter = "fd."};
  Scope scope(config);
  EXPECT_TRUE(probe("fd.read"));
  EXPECT_TRUE(probe("fd.write"));
  EXPECT_FALSE(probe("frame.send"));
  EXPECT_FALSE(probe("socket.accept"));
}

TEST(FaultTest, ScopeRestoresPreviousConfig) {
  Injector::instance().disable();
  {
    Scope scope(Config{.seed = 5, .probability = 1.0});
    EXPECT_TRUE(Injector::instance().enabled());
  }
  EXPECT_FALSE(Injector::instance().enabled());
  EXPECT_FALSE(probe("fd.read"));
}

TEST(FaultTest, CountersTrackProbesAndInjections) {
  Injector& injector = Injector::instance();
  std::uint64_t probes_before = injector.probes();
  std::uint64_t injected_before = injector.injected();
  {
    Scope scope(Config{.seed = 11, .probability = 1.0, .kinds = kBitDelay});
    for (int i = 0; i < 10; ++i) (void)probe("test.site");
  }
  EXPECT_EQ(injector.probes(), probes_before + 10);
  EXPECT_EQ(injector.injected(), injected_before + 10);
}

TEST(FaultTest, ShortIoCapsAreSmallAndPositive) {
  Scope scope(Config{.seed = 13, .probability = 1.0, .kinds = kBitShortIo});
  for (int i = 0; i < 50; ++i) {
    Decision decision = probe("fd.write");
    ASSERT_EQ(decision.kind, Kind::kShortIo);
    EXPECT_GE(decision.cap_bytes, 1u);
    EXPECT_LE(decision.cap_bytes, 4u);
  }
}

TEST(FaultTest, DelaysAreBounded) {
  Scope scope(Config{.seed = 17, .probability = 1.0, .kinds = kBitDelay});
  for (int i = 0; i < 50; ++i) {
    Decision decision = probe("socket.accept");
    ASSERT_EQ(decision.kind, Kind::kDelay);
    EXPECT_GE(decision.delay_millis, 1);
    EXPECT_LE(decision.delay_millis, 10);
  }
}

}  // namespace
}  // namespace dionea::fault
