// Post-mortem capture, outside any signal context: the DIONEA-CRASH v1
// format, section registration, the aux-log tail, and the notify frame
// lifecycle. The signal path itself is exercised end to end by the
// hostile corpus (a real SIGSEGV in a real debuggee); these tests pin
// the pieces the corpus builds on.
#include <fcntl.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "support/crash_report.hpp"
#include "support/temp_file.hpp"

namespace dionea::crash {
namespace {

// Runs before install(): the not-installed path must be inert.
TEST(CrashReportTest, CaptureWithoutInstallIsNull) {
  ASSERT_FALSE(installed());
  EXPECT_EQ(capture_now("too-early"), nullptr);
}

TEST(CrashReportTest, CaptureNowWritesV1Report) {
  auto tmp = TempDir::create("crash-report");
  ASSERT_TRUE(tmp.is_ok());
  ASSERT_TRUE(install(Options{.dir = tmp.value().path()}).is_ok());
  EXPECT_TRUE(installed());

  note_trace("unit.ml", 7, 3);
  const char* path = capture_now("unit-test");
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(std::string(path), report_path_string());
  EXPECT_NE(report_path_string().find(tmp.value().path()), std::string::npos);
  EXPECT_NE(report_path_string().find(std::to_string(::getpid())),
            std::string::npos);

  auto report = read_file(path);
  ASSERT_TRUE(report.is_ok()) << report.error().to_string();
  const std::string& text = report.value();
  EXPECT_EQ(text.rfind("DIONEA-CRASH v1\n", 0), 0u) << text;
  EXPECT_NE(text.find("reason: unit-test"), std::string::npos) << text;
  EXPECT_NE(text.find("last-trace: unit.ml:7 tid=3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("== end =="), std::string::npos) << text;
  // A capture_now report is not a signal death.
  EXPECT_EQ(text.find("signal:"), std::string::npos) << text;

  uninstall();
  EXPECT_FALSE(installed());
}

TEST(CrashReportTest, SectionsAppearUntilRemoved) {
  auto tmp = TempDir::create("crash-sections");
  ASSERT_TRUE(tmp.is_ok());
  ASSERT_TRUE(install(Options{.dir = tmp.value().path()}).is_ok());

  static int marker = 4242;
  int slot = add_section(
      "unit",
      [](Writer& w, void* ctx) {
        w.str("marker: ");
        w.dec(*static_cast<int*>(ctx));
        w.nl();
      },
      &marker);
  ASSERT_GE(slot, 0);

  const char* path = capture_now("with-section");
  ASSERT_NE(path, nullptr);
  auto with = read_file(path);
  ASSERT_TRUE(with.is_ok());
  EXPECT_NE(with.value().find("== section: unit =="), std::string::npos);
  EXPECT_NE(with.value().find("marker: 4242"), std::string::npos);

  remove_section(slot);
  ASSERT_NE(capture_now("without-section"), nullptr);
  auto without = read_file(path);
  ASSERT_TRUE(without.is_ok());
  EXPECT_EQ(without.value().find("== section: unit =="), std::string::npos);

  uninstall();
}

TEST(CrashReportTest, AuxLogTailIsEmbedded) {
  auto tmp = TempDir::create("crash-auxlog");
  ASSERT_TRUE(tmp.is_ok());
  ASSERT_TRUE(install(Options{.dir = tmp.value().path()}).is_ok());

  const std::string log = tmp.value().file("replay.log");
  // Longer than the 2 KiB tail window: only the end may appear.
  std::string contents(4096, 'x');
  contents += "\nFINAL-REPLAY-RECORD\n";
  ASSERT_TRUE(write_file(log, contents).is_ok());
  set_aux_log(log.c_str());

  const char* path = capture_now("aux");
  ASSERT_NE(path, nullptr);
  auto report = read_file(path);
  ASSERT_TRUE(report.is_ok());
  EXPECT_NE(report.value().find("== section: aux-log =="), std::string::npos);
  EXPECT_NE(report.value().find("FINAL-REPLAY-RECORD"), std::string::npos);

  set_aux_log(nullptr);
  ASSERT_NE(capture_now("no-aux"), nullptr);
  auto quiet = read_file(path);
  ASSERT_TRUE(quiet.is_ok());
  EXPECT_EQ(quiet.value().find("aux-log"), std::string::npos);

  uninstall();
}

TEST(CrashReportTest, WriterFormatsThroughTheFixedBuffer) {
  auto tmp = TempDir::create("crash-writer");
  ASSERT_TRUE(tmp.is_ok());
  const std::string path = tmp.value().file("writer.txt");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  ASSERT_GE(fd, 0);
  {
    Writer w(fd);
    w.str("dec=");
    w.dec(-42);
    w.str(" udec=");
    w.udec(18446744073709551615ull);
    w.str(" hex=");
    w.hex(0x2a);
    w.nl();
    // Overflow the 512-byte buffer: everything must still come out.
    for (int i = 0; i < 100; ++i) w.str("0123456789");
    w.nl();
  }
  ::close(fd);
  auto text = read_file(path);
  ASSERT_TRUE(text.is_ok());
  EXPECT_NE(text.value().find("dec=-42 udec=18446744073709551615 hex=0x2a"),
            std::string::npos)
      << text.value();
  // The 1000-char line overflowed the 512-byte buffer; nothing may be
  // dropped or duplicated on the way out.
  size_t line_start = text.value().find('\n') + 1;
  EXPECT_EQ(text.value().size() - line_start, 1001u);
}

TEST(CrashReportTest, NoteTraceIsInertWhenNotInstalled) {
  ASSERT_FALSE(installed());
  // Must not crash or store anything observable.
  note_trace("ignored.ml", 1, 1);
  EXPECT_EQ(capture_now("still-off"), nullptr);
}

}  // namespace
}  // namespace dionea::crash
