// Watchdog state machine: thresholds escalate, recovery clears,
// detached is terminal, and the fork-C abandon path leaves a handle
// that can start() again. Everything here drives tick_for_test so the
// escalation rules are exercised deterministically, without wall-clock.
#include <atomic>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "support/watchdog.hpp"

namespace dionea {
namespace {

struct Recorder {
  std::atomic<std::int64_t> stall_millis{0};
  const char* what = "unit";
  std::vector<std::pair<Watchdog::State, Watchdog::State>> transitions;

  std::unique_ptr<Watchdog> make(Watchdog::Options options = {}) {
    return std::make_unique<Watchdog>(
        options,
        [this] {
          return Watchdog::Stall{stall_millis.load(), what};
        },
        [this](Watchdog::State from, Watchdog::State to,
               const Watchdog::Stall&) {
          transitions.emplace_back(from, to);
        });
  }
};

Watchdog::Options tight() {
  Watchdog::Options options;
  options.tick_millis = 5;
  options.hung_after_millis = 50;
  options.degraded_after_millis = 100;
  options.detached_after_millis = 200;
  return options;
}

TEST(WatchdogTest, EscalatesThroughEveryState) {
  Recorder rec;
  auto dog_ptr = rec.make(tight());
  Watchdog& dog = *dog_ptr;
  EXPECT_EQ(dog.state(), Watchdog::State::kHealthy);

  rec.stall_millis = 60;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kHung);

  rec.stall_millis = 120;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kDegraded);

  rec.stall_millis = 250;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kDetached);

  ASSERT_EQ(rec.transitions.size(), 3u);
  EXPECT_EQ(rec.transitions[0].second, Watchdog::State::kHung);
  EXPECT_EQ(rec.transitions[1].second, Watchdog::State::kDegraded);
  EXPECT_EQ(rec.transitions[2].second, Watchdog::State::kDetached);
}

TEST(WatchdogTest, SkipsStraightToTheMatchingState) {
  // One long stall discovered late must not walk through intermediate
  // states one tick at a time.
  Recorder rec;
  auto dog_ptr = rec.make(tight());
  Watchdog& dog = *dog_ptr;
  rec.stall_millis = 500;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kDetached);
  ASSERT_EQ(rec.transitions.size(), 1u);
  EXPECT_EQ(rec.transitions[0].first, Watchdog::State::kHealthy);
}

TEST(WatchdogTest, RecoversWhenTheStallClears) {
  Recorder rec;
  auto dog_ptr = rec.make(tight());
  Watchdog& dog = *dog_ptr;
  rec.stall_millis = 120;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kDegraded);

  rec.stall_millis = 0;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kHealthy);
  ASSERT_EQ(rec.transitions.size(), 2u);
  EXPECT_EQ(rec.transitions[1].first, Watchdog::State::kDegraded);
  EXPECT_EQ(rec.transitions[1].second, Watchdog::State::kHealthy);
}

TEST(WatchdogTest, SubThresholdStallNeitherEscalatesNorClears) {
  Recorder rec;
  auto dog_ptr = rec.make(tight());
  Watchdog& dog = *dog_ptr;
  rec.stall_millis = 10;  // below hung_after: no state change from healthy
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kHealthy);

  rec.stall_millis = 60;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kHung);
  // A short sample of the same stuck operation must not read as
  // recovery — only a cleared stall (<= 0) does.
  rec.stall_millis = 10;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kHung);
  EXPECT_EQ(rec.transitions.size(), 1u);
}

TEST(WatchdogTest, DetachedIsTerminal) {
  Recorder rec;
  auto dog_ptr = rec.make(tight());
  Watchdog& dog = *dog_ptr;
  rec.stall_millis = 250;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kDetached);
  rec.stall_millis = 0;  // too late: the owner already tore down
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kDetached);
  EXPECT_EQ(rec.transitions.size(), 1u);
}

TEST(WatchdogTest, StartStopStartRuns) {
  Recorder rec;
  auto dog_ptr = rec.make(tight());
  Watchdog& dog = *dog_ptr;
  dog.start();
  EXPECT_TRUE(dog.running());
  dog.stop();
  EXPECT_FALSE(dog.running());
  dog.start();
  EXPECT_TRUE(dog.running());
  dog.stop();
  EXPECT_FALSE(dog.running());
}

TEST(WatchdogTest, AbandonAfterForkResetsToHealthy) {
  Recorder rec;
  auto dog_ptr = rec.make(tight());
  Watchdog& dog = *dog_ptr;
  rec.stall_millis = 120;
  dog.tick_for_test();
  EXPECT_EQ(dog.state(), Watchdog::State::kDegraded);

  // Fork handler C path: the thread is gone in the child; the handle
  // must become restartable without joining.
  dog.abandon_after_fork();
  EXPECT_FALSE(dog.running());
  EXPECT_EQ(dog.state(), Watchdog::State::kHealthy);
  rec.stall_millis = 0;
  dog.start();
  EXPECT_TRUE(dog.running());
  dog.stop();
}

TEST(WatchdogTest, StateNames) {
  EXPECT_STREQ(Watchdog::state_name(Watchdog::State::kHealthy), "healthy");
  EXPECT_STREQ(Watchdog::state_name(Watchdog::State::kHung), "hung");
  EXPECT_STREQ(Watchdog::state_name(Watchdog::State::kDegraded), "degraded");
  EXPECT_STREQ(Watchdog::state_name(Watchdog::State::kDetached), "detached");
}

}  // namespace
}  // namespace dionea
