#include "support/rng.hpp"

#include <set>

#include <gtest/gtest.h>

namespace dionea {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RngTest, NextRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t value = rng.next_range(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
  EXPECT_EQ(rng.next_range(5, 5), 5);
  EXPECT_EQ(rng.next_range(5, 4), 5);  // degenerate: lo wins
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.05);  // rough uniformity
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(4242);
  int heads = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.next_bool(0.25)) ++heads;
  }
  EXPECT_NEAR(heads / 5000.0, 0.25, 0.05);
  Rng always(1);
  EXPECT_FALSE(always.next_bool(0.0));
  Rng never(1);
  EXPECT_TRUE(never.next_bool(1.0));
}

TEST(RngTest, NextWordShapeAndDeterminism) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 50; ++i) {
    std::string word_a = a.next_word(2, 8);
    EXPECT_EQ(word_a, b.next_word(2, 8));
    EXPECT_GE(word_a.size(), 2u);
    EXPECT_LE(word_a.size(), 8u);
    for (char c : word_a) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(11);
  std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(11);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace dionea
