#include "support/logging.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <functional>

#include <gtest/gtest.h>

#include "support/temp_file.hpp"

namespace dionea {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    log::set_fd(2);
    log::set_threshold(log::Level::kWarn);
  }

  // Capture log records into a file and return its contents.
  std::string capture(log::Level threshold,
                      const std::function<void()>& body) {
    auto tmp = TempDir::create("log-test");
    EXPECT_TRUE(tmp.is_ok());
    std::string path = tmp.value().file("log.txt");
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    EXPECT_GE(fd, 0);
    log::set_fd(fd);
    log::set_threshold(threshold);
    body();
    log::set_fd(2);
    ::close(fd);
    return read_file(path).value_or("");
  }
};

TEST_F(LoggingTest, EmitsAtOrAboveThreshold) {
  std::string out = capture(log::Level::kInfo, [] {
    DLOG_DEBUG("test") << "hidden";
    DLOG_INFO("test") << "visible " << 42;
    DLOG_ERROR("test") << "also visible";
  });
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_NE(out.find("also visible"), std::string::npos);
}

TEST_F(LoggingTest, RecordFormatHasPidLevelComponent) {
  std::string out = capture(log::Level::kTrace, [] {
    DLOG_WARN("mycomp") << "message body";
  });
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("mycomp"), std::string::npos);
  EXPECT_NE(out.find(std::to_string(getpid())), std::string::npos);
  EXPECT_NE(out.find("message body\n"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  std::string out = capture(log::Level::kOff, [] {
    DLOG_ERROR("test") << "even errors";
  });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, EnabledMatchesThreshold) {
  log::set_threshold(log::Level::kInfo);
  EXPECT_FALSE(log::enabled(log::Level::kDebug));
  EXPECT_TRUE(log::enabled(log::Level::kInfo));
  EXPECT_TRUE(log::enabled(log::Level::kError));
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(log::level_name(log::Level::kTrace), "TRACE");
  EXPECT_STREQ(log::level_name(log::Level::kError), "ERROR");
}

}  // namespace
}  // namespace dionea
