#include "support/metrics.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dionea::metrics {
namespace {

// The registry is process-global and cumulative, so every assertion
// works on snapshot deltas, never absolute values.
std::uint64_t counter_of(const Snapshot& s, Counter c) {
  return s.counters[static_cast<size_t>(c)];
}

const HistogramSnapshot& hist_of(const Snapshot& s, Histogram h) {
  return s.histograms[static_cast<size_t>(h)];
}

TEST(MetricsTest, CountersAccumulate) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  Snapshot before = reg.snapshot();
  add(Counter::kFramesSent);
  add(Counter::kFramesSent, 4);
  add(Counter::kFrameBytesSent, 128);
  Snapshot after = reg.snapshot();
  EXPECT_EQ(counter_of(after, Counter::kFramesSent) -
                counter_of(before, Counter::kFramesSent),
            5u);
  EXPECT_EQ(counter_of(after, Counter::kFrameBytesSent) -
                counter_of(before, Counter::kFrameBytesSent),
            128u);
}

TEST(MetricsTest, DisabledProbesAreNoOps) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  Snapshot before = reg.snapshot();
  reg.set_enabled(false);
  add(Counter::kStops, 100);
  observe(Histogram::kCommandNanos, 5000);
  gauge_set(Gauge::kMpQueueDepth, 42);
  gauge_add(Gauge::kParkedThreads, 7);
  reg.set_enabled(true);
  Snapshot after = reg.snapshot();
  EXPECT_EQ(counter_of(after, Counter::kStops),
            counter_of(before, Counter::kStops));
  EXPECT_EQ(hist_of(after, Histogram::kCommandNanos).count,
            hist_of(before, Histogram::kCommandNanos).count);
  EXPECT_EQ(after.gauges[static_cast<size_t>(Gauge::kMpQueueDepth)],
            before.gauges[static_cast<size_t>(Gauge::kMpQueueDepth)]);
}

TEST(MetricsTest, HistogramObservationsLandInPowerOfTwoBuckets) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  Snapshot before = reg.snapshot();
  observe(Histogram::kGilWaitNanos, 0);     // bucket 0
  observe(Histogram::kGilWaitNanos, 1);     // bucket 0
  observe(Histogram::kGilWaitNanos, 1000);  // bucket 9: [512, 1024)
  observe(Histogram::kGilWaitNanos, ~0ull); // clamps to the last bucket
  Snapshot after = reg.snapshot();
  const auto& b = hist_of(before, Histogram::kGilWaitNanos);
  const auto& a = hist_of(after, Histogram::kGilWaitNanos);
  EXPECT_EQ(a.count - b.count, 4u);
  EXPECT_EQ(a.max_nanos, ~0ull);
  EXPECT_EQ(a.buckets[0] - b.buckets[0], 2u);
  EXPECT_EQ(a.buckets[9] - b.buckets[9], 1u);
  EXPECT_EQ(a.buckets[kHistogramBuckets - 1] -
                b.buckets[kHistogramBuckets - 1],
            1u);
}

TEST(MetricsTest, PercentilesResolveToBucketUpperEdge) {
  HistogramSnapshot h;
  EXPECT_EQ(h.percentile_nanos(0.5), 0u);  // empty histogram
  h.count = 100;
  h.buckets[9] = 90;   // 90 samples in [512, 1024)
  h.buckets[20] = 10;  // 10 slow outliers
  EXPECT_EQ(h.percentile_nanos(0.5), 1u << 10);
  EXPECT_EQ(h.percentile_nanos(0.99), 1u << 21);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 0.0);  // sum untouched in this toy
}

TEST(MetricsTest, ShardsMergeAcrossThreads) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  Snapshot before = reg.snapshot();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int j = 0; j < kPerThread; ++j) {
        add(Counter::kTraceLineEvents);
      }
      observe(Histogram::kTraceHookNanos, 100);
    });
  }
  for (auto& t : threads) t.join();
  Snapshot after = reg.snapshot();
  EXPECT_EQ(counter_of(after, Counter::kTraceLineEvents) -
                counter_of(before, Counter::kTraceLineEvents),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist_of(after, Histogram::kTraceHookNanos).count -
                hist_of(before, Histogram::kTraceHookNanos).count,
            static_cast<std::uint64_t>(kThreads));
  // Exited threads' shards are pooled, not destroyed: totals survive.
  EXPECT_GE(reg.shard_count(), 1u);
}

TEST(MetricsTest, ShardsAreReusedAfterThreadExit) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  // Warm the pool, then run many short-lived threads: the pool must
  // stay bounded by the peak live-thread count, not grow per thread.
  std::thread([] { add(Counter::kForks, 0); }).join();
  size_t warm = reg.shard_count();
  for (int i = 0; i < 16; ++i) {
    std::thread([] { add(Counter::kForks, 0); }).join();
  }
  EXPECT_LE(reg.shard_count(), warm + 1);
}

TEST(MetricsTest, GaugesSetAndAdd) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  gauge_set(Gauge::kMpQueueDepth, 5);
  gauge_add(Gauge::kMpQueueDepth, -2);
  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.gauges[static_cast<size_t>(Gauge::kMpQueueDepth)], 3);
}

TEST(MetricsTest, ResetZerosEverything) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  add(Counter::kForks, 3);
  observe(Histogram::kStopParkNanos, 777);
  gauge_set(Gauge::kParkedThreads, 9);
  reg.reset();
  Snapshot s = reg.snapshot();
  for (auto v : s.counters) EXPECT_EQ(v, 0u);
  for (auto v : s.gauges) EXPECT_EQ(v, 0);
  for (const auto& h : s.histograms) {
    EXPECT_EQ(h.count, 0u);
    EXPECT_EQ(h.sum_nanos, 0u);
    EXPECT_EQ(h.max_nanos, 0u);
  }
}

TEST(MetricsTest, ScopedTimerRecordsOneSample) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  Snapshot before = reg.snapshot();
  { ScopedTimer timer(Histogram::kReactorDispatchNanos); }
  {
    ScopedTimer cancelled(Histogram::kReactorDispatchNanos);
    cancelled.cancel();
  }
  Snapshot after = reg.snapshot();
  EXPECT_EQ(hist_of(after, Histogram::kReactorDispatchNanos).count -
                hist_of(before, Histogram::kReactorDispatchNanos).count,
            1u);
}

TEST(MetricsTest, NamesAreStableSnakeCase) {
  EXPECT_STREQ(counter_name(Counter::kTraceLineEvents),
               "trace_line_events");
  EXPECT_STREQ(counter_name(Counter::kGilAcquires), "gil_acquires");
  EXPECT_STREQ(gauge_name(Gauge::kMpQueueDepth), "mp_queue_depth");
  EXPECT_STREQ(histogram_name(Histogram::kGilWaitNanos), "gil_wait_nanos");
  EXPECT_STREQ(histogram_name(Histogram::kCommandNanos), "command_nanos");
}

}  // namespace
}  // namespace dionea::metrics
