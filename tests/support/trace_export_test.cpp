#include "support/trace_export.hpp"

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "support/temp_file.hpp"

namespace dionea::trace {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The exporter reads DIONEA_TRACE_OUT on first use, so this file owns
// the singleton's activation: the env var is set before any other test
// in this binary touches trace::. Tests below share the activated
// exporter and must run in declaration order.
class TraceExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto tmp = TempDir::create("trace-export");
    ASSERT_TRUE(tmp.is_ok());
    dir_ = new TempDir(std::move(tmp).value());
    path_ = dir_->file("trace.json");
    ::setenv("DIONEA_TRACE_OUT", path_.c_str(), 1);
  }

  static TempDir* dir_;
  static std::string path_;
};

TempDir* TraceExportTest::dir_ = nullptr;
std::string TraceExportTest::path_;

TEST_F(TraceExportTest, SpansBufferAndFlushAsChromeTraceJson) {
  ASSERT_TRUE(enabled());
  size_t before = buffered_spans();
  emit_span("cmd:threads", "debugger", 1'000'000, 2'500'000);
  { Span span("stop:breakpoint", "debugger"); }
  EXPECT_EQ(buffered_spans(), before + 2);

  flush();
  std::string json = slurp(path_);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cmd:threads\""), std::string::npos);
  EXPECT_NE(json.find("\"stop:breakpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"debugger\""), std::string::npos);
  // Durations are exported in microseconds.
  EXPECT_NE(json.find("\"dur\":2500"), std::string::npos);
}

TEST_F(TraceExportTest, LaterFlushRewritesWholeFile) {
  emit_span("fork:A-prepare", "fork", 5'000'000, 1'000'000);
  flush();
  std::string json = slurp(path_);
  // Both the earlier spans and the new one: flush rewrites, the file
  // is always valid JSON of everything buffered so far.
  EXPECT_NE(json.find("\"cmd:threads\""), std::string::npos);
  EXPECT_NE(json.find("\"fork:A-prepare\""), std::string::npos);
}

TEST_F(TraceExportTest, ChildAtforkDropsSpansAndRepointsFile) {
  ASSERT_GT(buffered_spans(), 0u);
  child_atfork();
  EXPECT_EQ(buffered_spans(), 0u);
  emit_span("fork:C-child", "fork", 9'000'000, 500'000);
  flush();
  // The child writes to "<path>.<pid>"; the parent's file is untouched.
  std::string child_json =
      slurp(path_ + "." + std::to_string(::getpid()));
  EXPECT_NE(child_json.find("\"fork:C-child\""), std::string::npos);
  EXPECT_EQ(child_json.find("\"cmd:threads\""), std::string::npos);
  std::string parent_json = slurp(path_);
  EXPECT_EQ(parent_json.find("\"fork:C-child\""), std::string::npos);
}

}  // namespace
}  // namespace dionea::trace
