#include "support/host_spec.hpp"

#include <gtest/gtest.h>

namespace dionea {
namespace {

TEST(HostSpecTest, DetectPopulatesFields) {
  HostSpec spec = HostSpec::detect();
  EXPECT_GE(spec.logical_cores, 1);
  EXPECT_FALSE(spec.cpu_model.empty());
  EXPECT_GT(spec.memory_mb, 0);
  EXPECT_FALSE(spec.os_release.empty());
  EXPECT_NE(spec.runtime.find("dionea"), std::string::npos);
}

TEST(HostSpecTest, TableHasPaperRows) {
  HostSpec spec = HostSpec::detect();
  std::string table = spec.to_table();
  // Same row labels as the paper's Table 1 (minus the SSD row, which
  // the workload never touches).
  EXPECT_NE(table.find("CPU"), std::string::npos);
  EXPECT_NE(table.find("Memory"), std::string::npos);
  EXPECT_NE(table.find("OS"), std::string::npos);
  EXPECT_NE(table.find("cores"), std::string::npos);
}

}  // namespace
}  // namespace dionea
