#include "support/timing.hpp"

#include <gtest/gtest.h>

namespace dionea {
namespace {

TEST(TimingTest, MonoSecondsMonotonic) {
  double first = mono_seconds();
  double second = mono_seconds();
  EXPECT_GE(second, first);
}

TEST(TimingTest, SleepForMillisActuallySleeps) {
  Stopwatch watch;
  sleep_for_millis(30);
  EXPECT_GE(watch.elapsed_seconds(), 0.025);
  // Degenerate arguments are no-ops.
  sleep_for_millis(0);
  sleep_for_millis(-5);
}

TEST(TimingTest, StopwatchResets) {
  Stopwatch watch;
  sleep_for_millis(15);
  EXPECT_GT(watch.elapsed_seconds(), 0.0);
  watch.reset();
  EXPECT_LT(watch.elapsed_seconds(), 0.01);
}

TEST(FormatDurationTest, PicksUnits) {
  EXPECT_EQ(format_duration(0.0000005), "0.5us");
  EXPECT_EQ(format_duration(0.047), "47.0ms");
  EXPECT_EQ(format_duration(2.31), "2.31s");
  // The paper writes 3'49" for the Rust run; >= 2 minutes uses that form.
  EXPECT_EQ(format_duration(229.0), "3'49\"");
  EXPECT_EQ(format_duration(1601.0), "26'41\"");
}

}  // namespace
}  // namespace dionea
