#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace dionea::strings {
namespace {

TEST(SplitTest, BasicAndEdges) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(split_whitespace("  foo \t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace(" \t\n ").empty());
  EXPECT_EQ(split_whitespace("one"), (std::vector<std::string>{"one"}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(TrimTest, RemovesBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t\na b\r\n"), "a b");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("dionea.ml", "dio"));
  EXPECT_FALSE(starts_with("dio", "dionea"));
  EXPECT_TRUE(ends_with("dionea.ml", ".ml"));
  EXPECT_FALSE(ends_with(".ml", "dionea.ml"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(CaseTest, ToLowerAsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD 123 Case"), "mixed 123 case");
  EXPECT_EQ(to_lower(""), "");
}

TEST(IsAlphaWordTest, PaperFilterSemantics) {
  // §7: "maps words that contain only letters".
  EXPECT_TRUE(is_alpha_word("hello"));
  EXPECT_TRUE(is_alpha_word("A"));
  EXPECT_FALSE(is_alpha_word(""));
  EXPECT_FALSE(is_alpha_word("x1"));
  EXPECT_FALSE(is_alpha_word("foo_bar"));
  EXPECT_FALSE(is_alpha_word("42"));
  EXPECT_FALSE(is_alpha_word("a-b"));
}

TEST(ParseIntTest, AcceptsAndRejects) {
  std::int64_t value = 0;
  EXPECT_TRUE(parse_int("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(parse_int("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_TRUE(parse_int("0", &value));
  EXPECT_EQ(value, 0);
  EXPECT_FALSE(parse_int("", &value));
  EXPECT_FALSE(parse_int("4x", &value));
  EXPECT_FALSE(parse_int("x4", &value));
  EXPECT_FALSE(parse_int("1.5", &value));
  EXPECT_FALSE(parse_int("99999999999999999999999999", &value));
}

TEST(ParseDoubleTest, AcceptsAndRejects) {
  double value = 0;
  EXPECT_TRUE(parse_double("2.5", &value));
  EXPECT_DOUBLE_EQ(value, 2.5);
  EXPECT_TRUE(parse_double("-1e3", &value));
  EXPECT_DOUBLE_EQ(value, -1000.0);
  EXPECT_FALSE(parse_double("", &value));
  EXPECT_FALSE(parse_double("abc", &value));
  EXPECT_FALSE(parse_double("1.5x", &value));
}

TEST(FormatTest, PrintfSemantics) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%05.2f", 3.14159), "03.14");
  EXPECT_EQ(format("empty"), "empty");
  // Long output exceeds any small static buffer.
  std::string long_out = format("%0500d", 1);
  EXPECT_EQ(long_out.size(), 500u);
}

TEST(EscapeTest, ControlsAndQuotes) {
  EXPECT_EQ(escape("a\nb"), "a\\nb");
  EXPECT_EQ(escape("tab\there"), "tab\\there");
  EXPECT_EQ(escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape(std::string("\x01", 1)), "\\x01");
  EXPECT_EQ(escape("plain"), "plain");
}

}  // namespace
}  // namespace dionea::strings
