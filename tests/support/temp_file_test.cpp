#include "support/temp_file.hpp"

#include <gtest/gtest.h>

namespace dionea {
namespace {

TEST(TempDirTest, CreatesAndCleansUp) {
  std::string path;
  {
    auto tmp = TempDir::create("dionea-test");
    ASSERT_TRUE(tmp.is_ok()) << tmp.error().to_string();
    path = tmp.value().path();
    EXPECT_TRUE(file_exists(path));
    EXPECT_NE(path.find("dionea-test"), std::string::npos);
  }
  EXPECT_FALSE(file_exists(path));
}

TEST(TempDirTest, CleansRecursively) {
  std::string path;
  {
    auto tmp = TempDir::create("dionea-test");
    ASSERT_TRUE(tmp.is_ok());
    path = tmp.value().path();
    ASSERT_TRUE(make_dir(tmp.value().file("sub")).is_ok());
    ASSERT_TRUE(
        write_file(tmp.value().file("sub/inner.txt"), "data").is_ok());
  }
  EXPECT_FALSE(file_exists(path));
}

TEST(TempDirTest, ReleaseDisablesCleanup) {
  std::string path;
  {
    auto tmp = TempDir::create("dionea-test");
    ASSERT_TRUE(tmp.is_ok());
    path = tmp.value().path();
    tmp.value().release();
  }
  EXPECT_TRUE(file_exists(path));
  EXPECT_TRUE(remove_tree(path).is_ok());
}

TEST(TempDirTest, MoveTransfersOwnership) {
  auto tmp = TempDir::create("dionea-test");
  ASSERT_TRUE(tmp.is_ok());
  std::string path = tmp.value().path();
  {
    TempDir moved = std::move(tmp).value();
    EXPECT_EQ(moved.path(), path);
    EXPECT_TRUE(file_exists(path));
  }
  EXPECT_FALSE(file_exists(path));
}

TEST(FileIoTest, WriteReadRoundTrip) {
  auto tmp = TempDir::create("dionea-test");
  ASSERT_TRUE(tmp.is_ok());
  std::string path = tmp.value().file("f.txt");
  std::string payload = "hello\nworld\0binary too";
  payload += std::string("\0\x01\x02", 3);
  ASSERT_TRUE(write_file(path, payload).is_ok());
  auto read_back = read_file(path);
  ASSERT_TRUE(read_back.is_ok());
  EXPECT_EQ(read_back.value(), payload);
}

TEST(FileIoTest, ReadMissingFileFails) {
  auto missing = read_file("/nonexistent/definitely/missing");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.error().code(), ErrorCode::kNotFound);
}

TEST(FileIoTest, AtomicWriteReplaces) {
  auto tmp = TempDir::create("dionea-test");
  ASSERT_TRUE(tmp.is_ok());
  std::string path = tmp.value().file("atomic.txt");
  ASSERT_TRUE(write_file_atomic(path, "one").is_ok());
  ASSERT_TRUE(write_file_atomic(path, "two").is_ok());
  EXPECT_EQ(read_file(path).value(), "two");
  // No droppings from the temp-rename protocol.
  EXPECT_FALSE(file_exists(path + ".tmp." + std::to_string(getpid())));
}

TEST(FileIoTest, RemoveFileIdempotent) {
  auto tmp = TempDir::create("dionea-test");
  ASSERT_TRUE(tmp.is_ok());
  std::string path = tmp.value().file("gone.txt");
  ASSERT_TRUE(write_file(path, "x").is_ok());
  EXPECT_TRUE(remove_file(path).is_ok());
  EXPECT_TRUE(remove_file(path).is_ok());  // already gone: still OK
}

TEST(FileIoTest, LargeFileRoundTrip) {
  auto tmp = TempDir::create("dionea-test");
  ASSERT_TRUE(tmp.is_ok());
  std::string path = tmp.value().file("big.bin");
  std::string big(512 * 1024, 'q');
  for (size_t i = 0; i < big.size(); i += 97) big[i] = static_cast<char>(i);
  ASSERT_TRUE(write_file(path, big).is_ok());
  EXPECT_EQ(read_file(path).value(), big);
}

}  // namespace
}  // namespace dionea
