#include "support/result.hpp"

#include <gtest/gtest.h>

namespace dionea {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_TRUE(static_cast<bool>(status));
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status(ErrorCode::kNotFound, "missing thing");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.error().message(), "missing thing");
  EXPECT_EQ(status.to_string(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, ImplicitFromError) {
  Error error(ErrorCode::kTimeout, "too slow");
  Status status = error;
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kTimeout);
}

TEST(ErrorTest, WrapPrependsContext) {
  Error error(ErrorCode::kClosed, "EOF");
  Error wrapped = error.wrap("reading frame");
  EXPECT_EQ(wrapped.code(), ErrorCode::kClosed);
  EXPECT_EQ(wrapped.message(), "reading frame: EOF");
}

TEST(ErrorTest, EveryCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kOsError); ++code) {
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(code)), "?");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
  EXPECT_TRUE(result.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(ErrorCode::kProtocol, "bad frame");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kProtocol);
  EXPECT_EQ(result.value_or(7), 7);
  EXPECT_FALSE(result.status().is_ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.is_ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

Result<int> parse_positive(int input) {
  if (input < 0) return Error(ErrorCode::kInvalidArgument, "negative");
  return input;
}

Result<int> doubled(int input) {
  DIONEA_ASSIGN_OR_RETURN(int value, parse_positive(input));
  return value * 2;
}

Status check(int input) {
  DIONEA_RETURN_IF_ERROR(parse_positive(input).status());
  return Status::ok();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(doubled(21).value(), 42);
  EXPECT_FALSE(doubled(-1).is_ok());
  EXPECT_EQ(doubled(-1).error().code(), ErrorCode::kInvalidArgument);
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(check(1).is_ok());
  EXPECT_FALSE(check(-1).is_ok());
}

TEST(ErrnoErrorTest, MapsCommonErrnos) {
  EXPECT_EQ(errno_error("x", ENOENT).code(), ErrorCode::kNotFound);
  EXPECT_EQ(errno_error("x", EEXIST).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(errno_error("x", EACCES).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(errno_error("x", EPIPE).code(), ErrorCode::kClosed);
  EXPECT_EQ(errno_error("x", ETIMEDOUT).code(), ErrorCode::kTimeout);
  EXPECT_EQ(errno_error("x", E2BIG).code(), ErrorCode::kOsError);
}

}  // namespace
}  // namespace dionea
