// Hostile-fork survival corpus, crash half: debuggees in real forked
// processes that die of SIGSEGV at the worst moments — while a thread
// is parked at a breakpoint, while holding the GIL inside a native —
// plus the watchdog escalation path and the live `postmortem` verb.
// Contract: the client SURVIVES every one of these, the corpse leaves
// a DIONEA-CRASH report the client can locate, and the exit status
// stays honest (the signal is re-raised, not swallowed).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "client/client.hpp"
#include "debugger/server.hpp"
#include "mp/process.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"
#include "testutil.hpp"
#include "vm/interp.hpp"

namespace dionea::client {
namespace {

namespace proto = dbg::proto;

// A debuggee process whose VM has a `hostile_segv()` native: a real
// SIGSEGV from inside interpreter code, with the GIL held (natives run
// under it) — the worst-case corpse the post-mortem layer promises to
// explain. `crash_dir` keys where the report lands.
mp::Process spawn_crashy_debuggee(const std::string& port_file,
                                  const std::string& crash_dir,
                                  const std::string& program,
                                  bool watchdog = false) {
  auto proc = mp::Process::spawn([port_file, crash_dir, program, watchdog] {
    vm::Interp interp;
    interp.vm().define_native(
        "hostile_segv", 0, 0,
        [](vm::Vm&, vm::InterpThread&,
           std::vector<vm::Value>&) -> vm::NativeResult {
          volatile int* bad = nullptr;
          *bad = 1;
          return vm::Value();
        });
    interp.vm().define_native(
        "hostile_wedge", 1, 1,
        [](vm::Vm&, vm::InterpThread&,
           std::vector<vm::Value>& args) -> vm::NativeResult {
          // Busy-wedge inside a native, GIL held, no trace progress:
          // exactly what the watchdog exists to notice.
          Stopwatch watch;
          double seconds = args[0].is_int()
                               ? static_cast<double>(args[0].as_int())
                               : 1.0;
          while (watch.elapsed_seconds() < seconds) {
          }
          return vm::Value();
        });
    dbg::DebugServer::Options options;
    options.port_file = port_file;
    options.stop_at_entry = true;
    options.heartbeat_interval_millis = 100;
    options.crash_dir = crash_dir;
    if (watchdog) {
      options.watchdog = true;
      options.watchdog_options.tick_millis = 20;
      options.watchdog_options.hung_after_millis = 200;
      options.watchdog_options.degraded_after_millis = 100'000;
      options.watchdog_options.detached_after_millis = 200'000;
    }
    dbg::DebugServer server(interp.vm(), options);
    server.register_source("prog.ml", program);
    if (!server.start().is_ok()) return 9;
    vm::RunResult run = interp.run_string(program, "prog.ml");
    server.stop();
    return run.ok ? 0 : 1;
  });
  EXPECT_TRUE(proc.is_ok());
  return std::move(proc).value();
}

// Wait for the process-crashed event and return its report path.
std::string await_crash_report(Client& client, SessionHandle handle) {
  bool crashed = false;
  Stopwatch watch;
  while (!crashed && watch.elapsed_seconds() < 10.0) {
    auto events = client.poll_events(50);
    if (!events.is_ok()) break;
    for (const Client::SessionEvent& se : events.value()) {
      if (se.session == handle &&
          se.event.kind == proto::Event::kProcessCrashed) {
        crashed = true;
      }
    }
  }
  EXPECT_TRUE(crashed) << "no process-crashed event for session "
                       << handle.id;
  return client.crash_report_path(handle);
}

// Scenario 7 (acceptance): crash while another thread is parked at a
// breakpoint. The report must carry per-thread backtraces and the held
// sync objects; the client must keep working after the corpse drops.
TEST(HostileCrashTest, CrashWhileBreakpointed) {
  auto tmp = TempDir::create("hostile-crash");
  ASSERT_TRUE(tmp.is_ok());
  const std::string ports = tmp.value().file("ports");
  const std::string program =
      "m = mutex()\n"              // 1
      "t = spawn(fn()\n"           // 2
      "  lock(m)\n"                // 3
      "  x = 1\n"                  // 4 <- breakpoint parks this thread
      "  unlock(m)\n"              // 5
      "  return x\n"               // 6
      "end)\n"                     // 7
      "sleep(0.3)\n"               // 8 (thread t is parked, lock held)
      "hostile_segv()\n"           // 9
      "join(t)";
  mp::Process debuggee =
      spawn_crashy_debuggee(ports, tmp.value().path(), program);
  ASSERT_TRUE(debuggee.valid());
  int pid = static_cast<int>(debuggee.pid());

  std::unique_ptr<Client> client_ptr = Client::discover(ports);
  Client& client = *client_ptr;
  auto handle = client.attach(pid, 5000);
  ASSERT_TRUE(handle.is_ok()) << handle.error().to_string();
  Session* session_ptr = client.session(handle.value());
  auto entry = session_ptr->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok()) << entry.error().to_string();
  ASSERT_TRUE(session_ptr->set_breakpoint("prog.ml", 4).is_ok());
  ASSERT_TRUE(session_ptr->cont(entry.value().tid).is_ok());
  // The spawned thread reaches line 4 and parks, holding the mutex.
  auto hit = session_ptr->wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok()) << hit.error().to_string();
  EXPECT_EQ(hit.value().line, 4);

  // Main thread runs on (it was never stopped) into hostile_segv.
  std::string report_path = await_crash_report(client, handle.value());
  ASSERT_FALSE(report_path.empty());

  auto report = read_file(report_path);
  ASSERT_TRUE(report.is_ok()) << report_path << ": "
                              << report.error().to_string();
  const std::string& text = report.value();
  EXPECT_EQ(text.rfind("DIONEA-CRASH v1\n", 0), 0u) << text;
  EXPECT_NE(text.find("signal: 11"), std::string::npos) << text;
  // Per-thread backtraces: both the crashed main thread and the
  // breakpoint-parked thread must appear with their source position.
  EXPECT_NE(text.find("thread 1"), std::string::npos) << text;
  EXPECT_NE(text.find("thread 2"), std::string::npos) << text;
  EXPECT_NE(text.find("prog.ml"), std::string::npos) << text;
  // Held sync objects with owner tids (thread 2 held the mutex).
  EXPECT_NE(text.find("mutex"), std::string::npos) << text;
  EXPECT_NE(text.find("owner"), std::string::npos) << text;

  // The client survived: it can still talk to other sessions and the
  // dead one is muted, not wedged.
  auto quiet = client.poll_events(10);
  ASSERT_TRUE(quiet.is_ok());
  EXPECT_TRUE(quiet.value().empty());

  auto code = debuggee.wait();
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), -SIGSEGV);  // honest exit status
}

// Scenario 8: crash while holding the GIL. The report's GIL line must
// name the crashing thread as holder — the datum a deadlocked-corpse
// investigation starts from.
TEST(HostileCrashTest, CrashHoldingTheGil) {
  auto tmp = TempDir::create("hostile-gil");
  ASSERT_TRUE(tmp.is_ok());
  const std::string ports = tmp.value().file("ports");
  mp::Process debuggee = spawn_crashy_debuggee(
      ports, tmp.value().path(),
      "x = 1\n"
      "hostile_segv()\n"
      "puts(x)");
  ASSERT_TRUE(debuggee.valid());
  int pid = static_cast<int>(debuggee.pid());

  std::unique_ptr<Client> client_ptr = Client::discover(ports);
  Client& client = *client_ptr;
  auto handle = client.attach(pid, 5000);
  ASSERT_TRUE(handle.is_ok()) << handle.error().to_string();
  Session* session_ptr = client.session(handle.value());
  auto entry = session_ptr->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok()) << entry.error().to_string();
  // A breakpoint past the crash site keeps the trace hook live, so
  // the report's last-trace line names the dying statement.
  ASSERT_TRUE(session_ptr->set_breakpoint("prog.ml", 3).is_ok());
  ASSERT_TRUE(session_ptr->cont(entry.value().tid).is_ok());

  std::string report_path = await_crash_report(client, handle.value());
  ASSERT_FALSE(report_path.empty());
  auto report = read_file(report_path);
  ASSERT_TRUE(report.is_ok());
  const std::string& text = report.value();
  // Natives execute under the GIL: the report must say who held it
  // (the single main thread, tid 1).
  EXPECT_NE(text.find("gil-owner: 1"), std::string::npos) << text;
  EXPECT_NE(text.find("last-trace: prog.ml:2"), std::string::npos) << text;

  auto code = debuggee.wait();
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), -SIGSEGV);
}

// Scenario 9: a wedged native (GIL held, no trace progress) trips the
// watchdog — the client sees the `watchdog` event escalate to hung
// while the debuggee is stuck, then recover once it un-wedges.
TEST(HostileCrashTest, WatchdogEscalatesOnWedgedNative) {
  auto tmp = TempDir::create("hostile-watchdog");
  ASSERT_TRUE(tmp.is_ok());
  const std::string ports = tmp.value().file("ports");
  mp::Process debuggee = spawn_crashy_debuggee(
      ports, tmp.value().path(),
      "hostile_wedge(2)\n"
      "sleep(2)\n"  // GIL free: the watchdog must notice the recovery
      "puts(1)",
      /*watchdog=*/true);
  ASSERT_TRUE(debuggee.valid());
  int pid = static_cast<int>(debuggee.pid());

  std::unique_ptr<Client> client_ptr = Client::discover(ports);
  Client& client = *client_ptr;
  auto handle = client.attach(pid, 5000);
  ASSERT_TRUE(handle.is_ok()) << handle.error().to_string();
  Session* session_ptr = client.session(handle.value());
  auto entry = session_ptr->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok()) << entry.error().to_string();
  ASSERT_TRUE(session_ptr->cont(entry.value().tid).is_ok());

  auto hung = session_ptr->wait_event(proto::Event::kWatchdog, 10'000);
  ASSERT_TRUE(hung.is_ok()) << hung.error().to_string();
  EXPECT_EQ(hung.value().payload.get_string("state"), "hung");
  EXPECT_GT(hung.value().payload.get_int("stall_millis"), 0);

  // The wedge ends after ~2s; the watchdog must report recovery.
  auto recovered =
      session_ptr->wait_event(proto::Event::kWatchdog, 10'000);
  ASSERT_TRUE(recovered.is_ok()) << recovered.error().to_string();
  EXPECT_EQ(recovered.value().payload.get_string("state"), "healthy");

  auto code = debuggee.wait();
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), 0);
}

// The live `postmortem` verb: capture=true against a healthy debuggee
// snapshots it as if it had crashed, and ships the report text back.
TEST(HostileCrashTest, LivePostmortemCaptureOverTheWire) {
  auto tmp = TempDir::create("hostile-verb");
  ASSERT_TRUE(tmp.is_ok());
  const std::string ports = tmp.value().file("ports");
  mp::Process debuggee = spawn_crashy_debuggee(
      ports, tmp.value().path(),
      "i = 0\n"
      "while i < 2000\n"
      "  sleep(0.01)\n"
      "  i = i + 1\n"
      "end");
  ASSERT_TRUE(debuggee.valid());
  int pid = static_cast<int>(debuggee.pid());

  std::unique_ptr<Client> client_ptr = Client::discover(ports);
  Client& client = *client_ptr;
  auto handle = client.attach(pid, 5000);
  ASSERT_TRUE(handle.is_ok()) << handle.error().to_string();
  Session* session_ptr = client.session(handle.value());
  ASSERT_TRUE(session_ptr->supports(proto::kCapPostmortem));
  auto entry = session_ptr->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok()) << entry.error().to_string();
  ASSERT_TRUE(session_ptr->cont(entry.value().tid).is_ok());

  auto snap = session_ptr->postmortem(/*capture=*/true);
  ASSERT_TRUE(snap.is_ok()) << snap.error().to_string();
  EXPECT_EQ(snap.value().pid, pid);
  EXPECT_TRUE(snap.value().installed);
  EXPECT_TRUE(snap.value().has_report);
  EXPECT_NE(snap.value().report_path.find(tmp.value().path()),
            std::string::npos);
  EXPECT_NE(snap.value().report.find("DIONEA-CRASH v1"), std::string::npos);
  EXPECT_NE(snap.value().report.find("reason: client-request"),
            std::string::npos);
  // A live snapshot still walks the VM sections.
  EXPECT_NE(snap.value().report.find("== section: vm =="), std::string::npos);

  // The debuggee is unharmed: still answering, still running.
  auto pong = session_ptr->ping();
  EXPECT_TRUE(pong.is_ok()) << pong.error().to_string();
  ASSERT_TRUE(debuggee.kill(SIGTERM).is_ok());
  auto code = debuggee.wait();
  ASSERT_TRUE(code.is_ok());
}

}  // namespace
}  // namespace dionea::client
