// Fork-safety of the code-cache layer, ported from the two box64
// dynarec failure modes the corpus documents:
//
//   001 — stale in-use counters after fork: a multi-threaded parent
//   forks and the child inherits per-block counts contributed by
//   threads that no longer exist, so blocks can never be purged.
//   Here: CodeCache::in_use must be recomputed from the surviving
//   thread's real frames by fork handler C.
//
//   004 — atfork thread safety: a sibling is mid-execution (frames
//   pinning caches, ICs half-trained) at the fork instant. The child
//   must not trust inherited fast-path state: every IC is reset, the
//   quicken generation is bumped exactly once, and the gate snapshots
//   of quickened trace sites go stale so they resync.
//
// The MiniLang programs probe the child through test natives (cc_*)
// because the interesting state lives inside the forked process. The
// programs are written race-free (no shared stop flags) so the
// MiniSan assertion in the 004 child is meaningful.
#include <string>

#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "testutil.hpp"
#include "vm/code_cache.hpp"
#include "vm/interp.hpp"
#include "vm/vm.hpp"

namespace dionea::vm {
namespace {

struct CacheOutcome {
  bool ok = false;
  std::string output;
  std::string error;
};

CacheOutcome run_cache_program(const std::string& source) {
  Interp interp;
  Vm& vm = interp.vm();
  vm.define_native(
      "cc_gen", 0, 0,
      [](Vm& v, InterpThread&, std::vector<Value>&) -> NativeResult {
        return Value(static_cast<std::int64_t>(v.quicken_generation()));
      });
  vm.define_native(
      "cc_trained", 0, 0,
      [](Vm& v, InterpThread&, std::vector<Value>&) -> NativeResult {
        return Value(
            static_cast<std::int64_t>(v.code_cache_stats().trained_ics));
      });
  vm.define_native(
      "cc_total_in_use", 0, 0,
      [](Vm& v, InterpThread&, std::vector<Value>&) -> NativeResult {
        return Value(
            static_cast<std::int64_t>(v.code_cache_stats().total_in_use));
      });
  vm.define_native(
      "cc_frames", 0, 0,
      [](Vm&, InterpThread& th, std::vector<Value>&) -> NativeResult {
        return Value(static_cast<std::int64_t>(th.frames.size()));
      });
  vm.define_native(
      "cc_purge", 0, 0,
      [](Vm& v, InterpThread&, std::vector<Value>&) -> NativeResult {
        return Value(static_cast<std::int64_t>(v.purge_code_caches()));
      });
  // in_use of the cache behind a fn value; -1 when no cache exists.
  vm.define_native(
      "cc_in_use_of", 1, 1,
      [](Vm& v, InterpThread& th,
         std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_closure()) {
          return v.runtime_error(th, "cc_in_use_of expects a fn");
        }
        const CodeCache* cache =
            v.find_code_cache(args[0].as_closure()->proto.get());
        if (cache == nullptr) return Value(std::int64_t{-1});
        return Value(static_cast<std::int64_t>(cache->in_use));
      });
  vm.define_native(
      "san_findings", 0, 0,
      [](Vm&, InterpThread&, std::vector<Value>&) -> NativeResult {
        return Value(static_cast<std::int64_t>(
            analysis::Engine::instance().report().findings.size()));
      });

  CacheOutcome outcome;
  vm.set_output(
      [&outcome](std::string_view text) { outcome.output.append(text); });
  RunResult result = interp.run_string(source, "cachefork.ml");
  if (vm.is_forked_child()) {
    // Same discipline as testutil::run_ml: a forked child must never
    // return into gtest.
    replay::Engine::instance().flush();
    std::fflush(nullptr);
    ::_exit(result.exited ? result.exit_code : (result.ok ? 0 : 1));
  }
  outcome.ok = result.ok;
  if (!result.ok) outcome.error = result.error.to_string();
  return outcome;
}

TEST(VmCacheForkTest, Box64Case001StaleInUseCountersRecomputed) {
  CacheOutcome outcome = run_cache_program(
      "fn busy()\n"
      "  i = 0\n"
      "  while i < 200\n"
      "    i = i + 1\n"
      "    sleep(0.002)\n"
      "  end\n"
      "end\n"
      "spawn(busy)\n"
      "sleep(0.05)\n"
      // The sibling's frame pins busy's cache in the parent.
      "assert(cc_in_use_of(busy) == 1)\n"
      "pid = fork()\n"
      "if pid == 0\n"
      // Child: the sibling does not exist here. Inheriting its count
      // verbatim is exactly box64 bug 001 — handler C must have
      // recomputed in_use from the surviving thread's frames.
      "  assert(cc_in_use_of(busy) == 0)\n"
      "  assert(cc_total_in_use() == cc_frames())\n"
      // ...which is what makes the idle cache purgeable at all.
      "  assert(cc_purge() >= 1)\n"
      "  assert(cc_in_use_of(busy) == 0 - 1)\n"
      "  exit(0)\n"
      "end\n"
      "assert(waitpid(pid) == 0)\n"
      // Parent is untouched: the sibling still runs, its pin intact.
      "assert(cc_in_use_of(busy) == 1)\n"
      "puts(\"done\")\n");
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.output, "done\n");
}

TEST(VmCacheForkTest, Box64Case004AtforkIcResetAndGenerationBump) {
  CacheOutcome outcome = run_cache_program(
      "fn hammer(a)\n"
      "  i = 0\n"
      "  while i < 80\n"
      "    if a == 1\n"
      "      g1 = g1 + 1\n"
      "    else\n"
      "      g2 = g2 + 1\n"
      "    end\n"
      "    i = i + 1\n"
      "    sleep(0.002)\n"
      "  end\n"
      "end\n"
      "g1 = 0\n"
      "g2 = 0\n"
      "spawn(hammer, 1)\n"
      "spawn(hammer, 2)\n"
      "sleep(0.03)\n"
      "gen = cc_gen()\n"
      "trained = cc_trained()\n"
      // The storm has trained ICs across two caches by now.
      "assert(trained > 5)\n"
      "pid = fork()\n"
      "if pid == 0\n"
      // Measure first: every statement the child runs re-trains a few
      // <main> sites, so sample before asserting anything else.
      "  ct = cc_trained()\n"
      // Handler C dropped the parent's trained state wholesale...
      "  assert(ct < trained)\n"
      // ...and bumped the quicken generation exactly once, which is
      // what pushes every quickened trace site through a resync.
      "  assert(cc_gen() == gen + 1)\n"
      "  assert(cc_total_in_use() == cc_frames())\n"
      // The globals themselves are plain fork-copied memory: reads
      // through cold ICs must retrain and see consistent values.
      "  assert(g1 + g2 >= 0)\n"
      "  assert(san_findings() == 0)\n"
      "  exit(0)\n"
      "end\n"
      "assert(waitpid(pid) == 0)\n"
      "puts(\"done\")\n");
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.output, "done\n");
}

}  // namespace
}  // namespace dionea::vm
