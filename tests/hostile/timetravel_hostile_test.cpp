// Hostile time travel (ISSUE 9): the checkpoint machinery under the
// conditions most likely to wedge or corrupt it.
//
//   - rcontinue across a recorded fork event: the only checkpoint
//     predates the debuggee's fork, so every resume re-executes the
//     fork and the reap — the wait verdict comes from the log
//     (kWaitResult), not from a child the resumer never owned.
//   - a checkpoint boundary arriving while sibling threads are live
//     and one of them holds a VM mutex: the fork must be DEFERRED,
//     never taken mid-schedule.
//   - a checkpoint SIGKILLed before a resume: resume_to must reroute
//     to an earlier live checkpoint, count the corpse, and leave the
//     live session untouched.
//   - max_live=1 thrash: every admission evicts the previous occupant
//     and doubles the spacing; the lone survivor must still resume.
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "replay/conformance/tt_testutil.hpp"
#include "replay/replay.hpp"
#include "replay/timetravel.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"

namespace dionea::replay::tt {
namespace {

using test::ReplayOutcome;
using test::run_ml_record;

// ---- rcontinue across a recorded fork event ----
// Spacing so wide that only the eager first checkpoint (pre-fork, in
// the prologue) exists: any post-fork target forces the crossing.

std::string crossing_program(const std::string& out_dir) {
  return
      "for i in 100\n"
      "  t = clock()\n"
      "end\n"
      "pid = fork(fn()\n"
      "  write_file(\"" + out_dir + "/child.txt\", \"c:\" + to_s(rand(1000)))\n"
      "end)\n"
      "code = waitpid(pid)\n"
      // Fresh real pid per re-executed fork: scrub it so post-reap
      // fingerprints stay byte-identical across resumes.
      "pid = 0\n"
      "for i in 100\n"
      "  n = code + rand(7)\n"
      "  t = clock()\n"
      "end\n"
      "puts(\"done:\" + to_s(code))\n";
}

TEST(TimetravelHostileTest, RcontinueCrossesRecordedFork) {
  auto tmp = TempDir::create("tth-cross");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");
  std::string out_dir = tmp.value().path();
  std::string program = crossing_program(out_dir);

  ReplayOutcome recorded = run_ml_record(dir, program);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;
  auto child = read_file(out_dir + "/child.txt");
  ASSERT_TRUE(child.is_ok());

  Options opts;
  opts.every = 1u << 19;  // one eager checkpoint, then nothing
  opts.max_live = 4;
  opts.pause_dir = out_dir;
  opts.exit_at_target = true;
  CheckpointedReplay replayed(dir, program, opts);
  ASSERT_TRUE(replayed.outcome().ok) << replayed.outcome().error_message;
  EXPECT_EQ(replayed.outcome().info.mode, Mode::kReplay)
      << replayed.outcome().info.divergence_reason;

  Snapshot snap = CheckpointManager::instance().snapshot();
  ASSERT_EQ(snap.taken, 1u) << "fixture expects exactly the eager checkpoint";
  ASSERT_FALSE(snap.ring.empty());
  // The target sits deep in the post-reap tail; the lone checkpoint is
  // in the prologue, so the resume must replay THROUGH fork + waitpid.
  const std::uint64_t target = recorded.info.step * 9 / 10;
  ASSERT_LT(snap.ring.front().step, recorded.info.step / 2)
      << "checkpoint landed too late to force a fork crossing";
  expect_identical_resumes(out_dir, target, 5);

  // The re-executed child replays its subtree log: same rand, same
  // bytes — the recorded file must survive five rewrites unchanged.
  EXPECT_EQ(read_file(out_dir + "/child.txt").value_or(""), child.value());
}

// ---- checkpoint boundary while a sibling holds a VM mutex ----
// The worker grinds through its loop holding m; main parks on lock(m).
// Every boundary in that window sees two live interpreter threads —
// one of them mid-critical-section — and must defer, because a fork
// there would snapshot a world whose lock owner evaporates on resume.

const char* kMutexHolder =
    "for i in 70\n"
    "  t = clock()\n"
    "end\n"
    "m = mutex()\n"
    "fn worker()\n"
    "  lock(m)\n"
    "  for i in 120\n"
    "    x = rand(5)\n"
    "    t = clock()\n"
    "  end\n"
    "  unlock(m)\n"
    "end\n"
    "w = spawn(worker)\n"
    "lock(m)\n"
    "unlock(m)\n"
    "join(w)\n"
    "for i in 70\n"
    "  t = clock()\n"
    "end\n"
    "puts(\"end\")\n";

TEST(TimetravelHostileTest, CheckpointDefersWhileSiblingHoldsVmMutex) {
  auto tmp = TempDir::create("tth-mutex");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir, kMutexHolder);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;

  Options opts;
  opts.every = 1;  // attempt at every boundary: maximal pressure
  opts.max_live = 8;
  opts.pause_dir = tmp.value().path();
  opts.exit_at_target = true;
  CheckpointedReplay replayed(dir, kMutexHolder, opts);
  ASSERT_TRUE(replayed.outcome().ok) << replayed.outcome().error_message;
  EXPECT_EQ(replayed.outcome().info.mode, Mode::kReplay)
      << replayed.outcome().info.divergence_reason;
  EXPECT_EQ(replayed.outcome().output, recorded.output);

  Snapshot snap = CheckpointManager::instance().snapshot();
  EXPECT_GE(snap.deferred, 1u)
      << "no boundary deferred: the mutex-holding window was never hit";
  ASSERT_GE(snap.taken, 1u);
  // Nothing in the ring may date from the threaded window: a resume
  // from each slot must still converge (a mid-threads snapshot would
  // diverge — its recorded schedule names threads that do not exist).
  expect_identical_resumes(tmp.value().path(), recorded.info.step, 3);
}

// ---- checkpoint corpse on the resume path ----

const char* kLongLoop =
    "n = 0\n"
    "for i in 500\n"
    "  n = n + rand(3)\n"
    "  t = clock()\n"
    "end\n"
    "puts(\"sum:\" + to_s(n))\n";

TEST(TimetravelHostileTest, ResumeReroutesAroundKilledCheckpoint) {
  auto tmp = TempDir::create("tth-kill");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir, kLongLoop);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;

  Options opts;
  opts.every = 16;
  opts.max_live = 8;
  opts.pause_dir = tmp.value().path();
  opts.exit_at_target = true;
  CheckpointedReplay replayed(dir, kLongLoop, opts);
  ASSERT_TRUE(replayed.outcome().ok) << replayed.outcome().error_message;

  Snapshot snap = CheckpointManager::instance().snapshot();
  ASSERT_GE(snap.ring.size(), 2u) << "need a fallback checkpoint to reroute";

  // Murder the checkpoint resume_to would pick for an end-of-log
  // target: the latest one.
  const CheckpointInfo* latest = nullptr;
  for (const CheckpointInfo& ckpt : snap.ring) {
    if (!ckpt.alive) continue;
    if (latest == nullptr || ckpt.step > latest->step) latest = &ckpt;
  }
  ASSERT_NE(latest, nullptr);
  ASSERT_EQ(::kill(latest->pid, SIGKILL), 0);
  // Let the kernel turn it into a reapable zombie; resume_to must cope
  // either way (its reaper poll catches it, or the dead pipe does).
  sleep_for_millis(200);

  auto ticket = CheckpointManager::instance().resume_to(recorded.info.step);
  ASSERT_TRUE(ticket.is_ok()) << ticket.error().to_string();
  EXPECT_LT(ticket.value().checkpoint_step, latest->step)
      << "resume was not rerouted off the corpse";
  Marker marker;
  ASSERT_TRUE(await_marker(tmp.value().path(), ticket.value().pid, &marker));
  EXPECT_EQ(marker.status, "ok");
  EXPECT_GE(marker.step, ticket.value().target_step);

  // The live session is unaffected: the manager is still active, the
  // corpse is counted, and further resumes keep working.
  Snapshot after = CheckpointManager::instance().snapshot();
  EXPECT_TRUE(after.active);
  EXPECT_GE(after.dead, 1u);
  expect_identical_resumes(tmp.value().path(), recorded.info.step / 2, 2);
}

// ---- max_live=1 thrash ----

TEST(TimetravelHostileTest, MaxLiveOneThrashStillResumes) {
  auto tmp = TempDir::create("tth-thrash");
  ASSERT_TRUE(tmp.is_ok());
  std::string dir = tmp.value().file("logs");

  ReplayOutcome recorded = run_ml_record(dir, kLongLoop);
  ASSERT_TRUE(recorded.ok) << recorded.error_message;

  Options opts;
  opts.every = 16;
  opts.max_live = 1;  // DIONEA_CKPT_MAX=1: every admission evicts
  opts.pause_dir = tmp.value().path();
  opts.exit_at_target = true;
  CheckpointedReplay replayed(dir, kLongLoop, opts);
  ASSERT_TRUE(replayed.outcome().ok) << replayed.outcome().error_message;
  EXPECT_EQ(replayed.outcome().info.mode, Mode::kReplay)
      << replayed.outcome().info.divergence_reason;

  Snapshot snap = CheckpointManager::instance().snapshot();
  EXPECT_LE(snap.ring.size(), 1u);
  EXPECT_GE(snap.evicted, 1u) << "thrash never evicted: ring not at capacity";
  EXPECT_GT(snap.every, 16u) << "spacing never adapted under thrash";
  ASSERT_FALSE(snap.ring.empty()) << "the lone survivor is gone";

  // The survivor still time-travels: 3 identical resumes to a target
  // at or past its step.
  expect_identical_resumes(tmp.value().path(),
                           snap.ring.front().step + 8, 3);
}

}  // namespace
}  // namespace dionea::replay::tt
