// DIONEA_MAX_FRAME_BYTES: the operator-tunable receive cap. This
// binary runs with the variable set to 8192 (see tests/CMakeLists.txt)
// — the cap is read once per process, so it gets a binary of its own
// rather than a slot in ipc_test where sibling tests would inherit it.
#include <cstdlib>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "ipc/frame.hpp"
#include "ipc/socket.hpp"
#include "ipc/wire.hpp"

namespace dionea::ipc {
namespace {

struct SocketPair {
  TcpStream client;
  TcpStream server;
};

SocketPair make_pair() {
  auto listener = TcpListener::bind(0);
  EXPECT_TRUE(listener.is_ok());
  auto client = TcpStream::connect_retry(listener.value().port(), 2000);
  EXPECT_TRUE(client.is_ok());
  auto server = listener.value().accept_timeout(2000);
  EXPECT_TRUE(server.is_ok());
  return SocketPair{std::move(client).value(), std::move(server).value()};
}

TEST(FrameCapTest, EnvironmentLowersTheCap) {
  ASSERT_STREQ(std::getenv("DIONEA_MAX_FRAME_BYTES"), "8192")
      << "this binary must run with DIONEA_MAX_FRAME_BYTES=8192 "
         "(ctest sets it; see tests/CMakeLists.txt)";
  EXPECT_EQ(max_recv_frame_bytes(), 8192u);
}

TEST(FrameCapTest, FrameOverTheCapIsRejectedBeforeAllocation) {
  SocketPair pair = make_pair();
  // A 16 KiB claim: legal under the compile-time limit, hostile under
  // the configured one. Only the 8-byte header ever hits the wire —
  // if the receiver tried to allocate first, it would block on the
  // missing payload instead of failing fast.
  char header[8] = {'D', 'N', 'E', 'A', 0, 0x40, 0, 0};  // len = 16384
  ASSERT_TRUE(pair.client.write_all(header, 8).is_ok());
  auto received = recv_frame(pair.server);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kProtocol);
  EXPECT_NE(received.error().message().find("receive limit 8192"),
            std::string::npos)
      << received.error().to_string();
}

TEST(FrameCapTest, FrameUnderTheCapStillFlows) {
  SocketPair pair = make_pair();
  wire::Value message;
  message.set("blob", std::string(1024, 'x'));
  ASSERT_TRUE(send_frame(pair.client, message).is_ok());
  auto received = recv_frame(pair.server);
  ASSERT_TRUE(received.is_ok()) << received.error().to_string();
  EXPECT_EQ(received.value().get_string("blob"), std::string(1024, 'x'));
}

TEST(FrameCapTest, ReaderHonorsTheConfiguredCap) {
  SocketPair pair = make_pair();
  FrameReader reader;
  char header[8] = {'D', 'N', 'E', 'A', 0, 0x40, 0, 0};  // len = 16384
  ASSERT_TRUE(pair.client.write_all(header, 8).is_ok());
  auto received = reader.recv_timeout(pair.server, 1000);
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.error().code(), ErrorCode::kProtocol);
  EXPECT_NE(received.error().message().find("receive limit 8192"),
            std::string::npos);
}

}  // namespace
}  // namespace dionea::ipc
