// Fork handler C's port-file handoff under seeded fault injection:
// torn appends, EINTR/short-IO on temp-file writes, injected rename
// failures. The handoff is the one channel the parent's client has for
// discovering a child; a fault in it must degrade to "child not
// discovered / typed error", never to a corrupted record that wedges
// every later reader.
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "ipc/port_file.hpp"
#include "support/fault.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"

namespace dionea::dbg {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

// Recoverable faults on the append path: every fork handoff must still
// land — the child is discovered and debuggable, 100% of the time.
TEST(PortFileFaultTest, HandoffSurvivesRecoverableFaultSweep) {
  for (std::uint64_t seed : {301ull, 302ull, 303ull, 304ull, 305ull}) {
    fault::Scope scope(fault::Config{
        .seed = seed,
        .probability = 0.4,
        .kinds = fault::kBitEintr | fault::kBitShortIo | fault::kBitDelay,
        .site_filter = "temp_file."});
    DebugHarness harness(
        "pid = fork()\n"
        "if pid == 0\n"
        "  exit(0)\n"
        "end\n"
        "st = waitpid(pid)\n"
        "puts(st)",
        HarnessOptions{.stop_at_entry = false, .stop_forked_children = true});
    harness.launch();
    auto forked = harness.session()->wait_event(proto::Event::kForked, 10'000);
    ASSERT_TRUE(forked.is_ok()) << "seed " << seed << ": "
                                << forked.error().to_string();
    int child_pid =
        static_cast<int>(forked.value().payload.get_int("child_pid"));
    // The child is parked at birth: the handoff record must be enough
    // for a real attach, not just the kForked announcement.
    auto child_h = harness.client().attach(child_pid, 5000);
    ASSERT_TRUE(child_h.is_ok()) << "seed " << seed << ": "
                                 << child_h.error().to_string();
    client::Session* child = harness.client().session(child_h.value());
    auto stop = child->wait_stopped(5000);
    ASSERT_TRUE(stop.is_ok()) << "seed " << seed << ": "
                              << stop.error().to_string();
    ASSERT_TRUE(child->cont(stop.value().tid).is_ok());
    auto result = harness.join();
    EXPECT_TRUE(result.ok) << "seed " << seed;
    EXPECT_EQ(harness.output(), "0\n") << "seed " << seed;
  }
}

// Torn appends to the port file itself: a child dying mid-append must
// not poison discovery for its siblings — later publishers self-heal
// past the fragment and the reader skips it.
TEST(PortFileFaultTest, TornAppendDoesNotPoisonSiblingHandoffs) {
  for (std::uint64_t seed : {311ull, 312ull, 313ull}) {
    fault::Scope scope(fault::Config{.seed = seed,
                                     .probability = 0.5,
                                     .kinds = fault::kBitTorn,
                                     .site_filter = "port_file."});
    DebugHarness harness(
        "n = 0\n"
        "while n < 3\n"
        "  pid = fork()\n"
        "  if pid == 0\n"
        "    exit(0)\n"
        "  end\n"
        "  waitpid(pid)\n"
        "  n = n + 1\n"
        "end\n"
        "puts(n)",
        HarnessOptions{.stop_at_entry = false});
    harness.launch();
    // All three children must be announced and attachable despite the
    // injected torn records sitting between their lines.
    for (int i = 0; i < 3; ++i) {
      auto forked =
          harness.session()->wait_event(proto::Event::kForked, 10'000);
      ASSERT_TRUE(forked.is_ok()) << "seed " << seed << " fork " << i << ": "
                                  << forked.error().to_string();
    }
    auto result = harness.join();
    EXPECT_TRUE(result.ok) << "seed " << seed;
    EXPECT_EQ(harness.output(), "3\n") << "seed " << seed;
  }
}

// The temp-file fault sites themselves keep their typed-error
// contract: an injected write/rename failure surfaces as kOsError with
// the injected marker, and the target file is not half-written.
TEST(PortFileFaultTest, TempFileFaultsStayTyped) {
  auto tmp = TempDir::create("portfile-faults");
  ASSERT_TRUE(tmp.is_ok());
  const std::string direct = tmp.value().file("direct.txt");
  const std::string target = tmp.value().file("handoff.txt");
  {
    fault::Scope scope(fault::Config{.seed = 99,
                                     .probability = 1.0,
                                     .kinds = fault::kBitConnReset,
                                     .site_filter = "temp_file.write"});
    Status st = write_file(direct, "payload");
    ASSERT_FALSE(st.is_ok());
    EXPECT_EQ(st.error().code(), ErrorCode::kOsError);
    EXPECT_NE(st.error().message().find("injected"), std::string::npos);
  }
  {
    fault::Scope scope(fault::Config{.seed = 99,
                                     .probability = 1.0,
                                     .kinds = fault::kBitConnReset,
                                     .site_filter = "temp_file.rename"});
    Status st = write_file_atomic(target, "payload");
    ASSERT_FALSE(st.is_ok());
    EXPECT_EQ(st.error().code(), ErrorCode::kOsError);
    EXPECT_NE(st.error().message().find("injected"), std::string::npos);
    // Atomicity held: no target, no leftover temp file.
    EXPECT_FALSE(file_exists(target));
  }
  // Faults gone: the same calls succeed.
  ASSERT_TRUE(write_file_atomic(target, "payload").is_ok());
  auto back = read_file(target);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "payload");
}

}  // namespace
}  // namespace dionea::dbg
