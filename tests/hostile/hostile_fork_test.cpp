// Hostile-fork survival corpus, in-process half: forks fired at the
// worst possible moments for the §5.4 handlers. Every scenario asserts
// the same contract — the client stays attached to the parent, the
// child either exits cleanly or leaves a post-mortem report, and
// MiniSan stays quiet about the debugger's own machinery.
#include <signal.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "support/crash_report.hpp"
#include "support/temp_file.hpp"
#include "testutil.hpp"

namespace dionea::dbg {
namespace {

using test::DebugHarness;
using test::HarnessOptions;

// The shared post-scenario contract: parent session still attached and
// answering, no crash event pending for the parent, MiniSan quiet.
void expect_parent_survived(DebugHarness& harness) {
  client::Session* parent = harness.session();
  ASSERT_NE(parent, nullptr);
  EXPECT_TRUE(parent->connected());
  auto pong = parent->ping();
  EXPECT_TRUE(pong.is_ok()) << pong.error().to_string();
  auto analysis = parent->analysis_report(/*run_lint=*/true);
  ASSERT_TRUE(analysis.is_ok()) << analysis.error().to_string();
  EXPECT_TRUE(analysis.value().findings.empty())
      << analysis.value().findings.size() << " dynamic findings";
  EXPECT_TRUE(analysis.value().lint_findings.empty())
      << analysis.value().lint_findings.size() << " lint findings";
}

// Scenario 1: fork while a sibling thread holds a VM mutex. The child
// inherits the mutex mid-critical-section with its owner gone; fork
// handler C must reinit it so the child's own lock() does not deadlock
// on a ghost owner.
TEST(HostileForkTest, ForkWhileSiblingHoldsVmMutex) {
  DebugHarness harness(
      "m = mutex()\n"
      "held = queue()\n"
      "t = spawn(fn()\n"
      "  lock(m)\n"
      "  held.push(1)\n"
      "  sleep(0.2)\n"
      "  unlock(m)\n"
      "  return 1\n"
      "end)\n"
      "held.pop()\n"  // sibling provably inside the critical section
      "pid = fork()\n"
      "if pid == 0\n"
      "  lock(m)\n"  // must not block on the dead sibling's ownership
      "  unlock(m)\n"
      "  exit(0)\n"
      "end\n"
      "join(t)\n"
      "st = waitpid(pid)\n"
      "puts(st)",
      HarnessOptions{.stop_at_entry = false, .stop_forked_children = true});
  harness.launch();

  auto forked = harness.session()->wait_event(proto::Event::kForked, 10'000);
  ASSERT_TRUE(forked.is_ok()) << forked.error().to_string();
  int child_pid = static_cast<int>(forked.value().payload.get_int("child_pid"));
  auto child_h = harness.client().attach(child_pid, 5000);
  ASSERT_TRUE(child_h.is_ok()) << child_h.error().to_string();
  client::Session* child = harness.client().session(child_h.value());
  EXPECT_TRUE(child->connected());
  // Handler C's self-check must have found nothing to repair. The
  // regression this guards: the socket half of the check once ran
  // AFTER the child's new listener started accepting, so a client that
  // attached fast (exactly what await_process does) had its fresh
  // session mistaken for leaked parent fds and severed.
  auto child_stats = child->stats();
  ASSERT_TRUE(child_stats.is_ok()) << child_stats.error().to_string();
  EXPECT_EQ(child_stats.value().counter("fork_selfcheck_repairs"), 0);
  EXPECT_EQ(child_stats.value().counter("crash_reports"), 0);
  // Parked at birth, before its lock(m): resume it into the critical
  // section the dead sibling never finished.
  auto birth = child->wait_stopped(5000);
  ASSERT_TRUE(birth.is_ok()) << birth.error().to_string();
  ASSERT_TRUE(child->cont(birth.value().tid).is_ok());

  auto result = harness.join();
  EXPECT_TRUE(result.ok) << result.error.to_string();
  EXPECT_EQ(harness.output(), "0\n");  // child exited cleanly
  expect_parent_survived(harness);
}

// Scenario 2: fork while the trace hook is active (single-step mode).
// Handler A disables tracing across the fork; the child must come up
// with working breakpoints, not a torn trace state.
TEST(HostileForkTest, ForkFromInsideActiveTraceHook) {
  DebugHarness harness(
      "pid = fork()\n"   // 1 <- stepped over: fork fires under tracing
      "if pid == 0\n"    // 2
      "  c = 41\n"       // 3
      "  c = c + 1\n"    // 4 <- breakpoint must fire in the child
      "  exit(c)\n"      // 5
      "end\n"
      "st = waitpid(pid)\n"
      "puts(st)",
      HarnessOptions{.stop_at_entry = true});
  harness.launch();
  auto entry = harness.session()->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok()) << entry.error().to_string();
  ASSERT_TRUE(harness.session()->set_breakpoint("test.ml", 4).is_ok());
  // step (not cont): the fork call executes with the trace hook live.
  ASSERT_TRUE(harness.session()->step(entry.value().tid).is_ok());

  auto forked = harness.session()->wait_event(proto::Event::kForked, 10'000);
  ASSERT_TRUE(forked.is_ok()) << forked.error().to_string();
  int child_pid = static_cast<int>(forked.value().payload.get_int("child_pid"));
  auto child_h = harness.client().attach(child_pid, 5000);
  ASSERT_TRUE(child_h.is_ok()) << child_h.error().to_string();
  client::Session* child = harness.client().session(child_h.value());

  // The child inherits the in-flight step: its first stop is the step
  // completing on its own side of the fork (line 2), proof the trace
  // hook survived the fork torn-free.
  auto inherited = child->wait_stopped(10'000);
  ASSERT_TRUE(inherited.is_ok()) << inherited.error().to_string();
  EXPECT_EQ(inherited.value().reason, "step");
  EXPECT_EQ(inherited.value().line, 2);
  ASSERT_TRUE(child->cont(inherited.value().tid).is_ok());

  // And the inherited breakpoint table still fires.
  auto hit = child->wait_stopped(10'000);
  ASSERT_TRUE(hit.is_ok()) << hit.error().to_string();
  EXPECT_EQ(hit.value().reason, "breakpoint");
  EXPECT_EQ(hit.value().line, 4);
  ASSERT_TRUE(child->cont(hit.value().tid).is_ok());

  // Un-wedge the parent (it is stopped after its step) and finish.
  auto stepped = harness.session()->wait_stopped(5000);
  ASSERT_TRUE(stepped.is_ok()) << stepped.error().to_string();
  ASSERT_TRUE(harness.session()->cont(stepped.value().tid).is_ok());
  auto result = harness.join();
  EXPECT_TRUE(result.ok) << result.error.to_string();
  EXPECT_EQ(harness.output(), "42\n");
  expect_parent_survived(harness);
}

// Scenario 3: fork with an mp queue mid-push on a sibling thread. The
// queue's pipe spans the fork; both sides keep using it afterwards.
TEST(HostileForkTest, ForkWithMpQueueMidPush) {
  DebugHarness harness(
      "q = ipc_queue()\n"
      "t = spawn(fn()\n"
      "  i = 0\n"
      "  while i < 500\n"
      "    ipc_push(q, i)\n"
      "    i = i + 1\n"
      "  end\n"
      "  return i\n"
      "end)\n"
      "pid = fork()\n"  // lands somewhere inside the sibling's pushes
      "if pid == 0\n"
      "  ipc_push(q, 777777)\n"  // child's copy of the queue still works
      "  exit(0)\n"
      "end\n"
      "join(t)\n"
      "st = waitpid(pid)\n"
      "seen = 0\n"
      "found = 0\n"
      "while seen < 501\n"
      "  v = ipc_pop(q)\n"
      "  if v == 777777\n"
      "    found = 1\n"
      "  end\n"
      "  seen = seen + 1\n"
      "end\n"
      "puts(st)\n"
      "puts(found)",
      HarnessOptions{.stop_at_entry = false});
  harness.launch();

  auto forked = harness.session()->wait_event(proto::Event::kForked, 10'000);
  ASSERT_TRUE(forked.is_ok()) << forked.error().to_string();
  auto result = harness.join();
  EXPECT_TRUE(result.ok) << result.error.to_string();
  // Clean child exit, and its push actually traversed the fork.
  EXPECT_EQ(harness.output(), "0\n1\n");
  expect_parent_survived(harness);
}

// Scenario 4: fork storm with immediate child crashes. Five children
// in a tight loop, each SIGSEGVing in a native right after birth; the
// parent must stay attached and debuggable through all five corpses,
// and each corpse must leave a post-mortem report.
TEST(HostileForkTest, ForkStormWithImmediateChildCrash) {
  DebugHarness harness(
      "n = 0\n"
      "crashed = 0\n"
      "while n < 5\n"
      "  pid = fork()\n"
      "  if pid == 0\n"
      "    hostile_segv()\n"
      "    exit(9)\n"  // unreachable
      "  end\n"
      "  st = waitpid(pid)\n"
      "  if st < 0\n"
      "    crashed = crashed + 1\n"
      "  end\n"
      "  n = n + 1\n"
      "end\n"
      "puts(crashed)",
      HarnessOptions{.stop_at_entry = false});
  harness.vm().define_native(
      "hostile_segv", 0, 0,
      [](vm::Vm&, vm::InterpThread&,
         std::vector<vm::Value>&) -> vm::NativeResult {
        volatile int* bad = nullptr;
        *bad = 1;  // SIGSEGV with the GIL held (natives run under it)
        return vm::Value();
      });
  harness.launch();

  std::vector<int> child_pids;
  for (int i = 0; i < 5; ++i) {
    auto forked = harness.session()->wait_event(proto::Event::kForked, 15'000);
    ASSERT_TRUE(forked.is_ok()) << "fork " << i << ": "
                                << forked.error().to_string();
    child_pids.push_back(
        static_cast<int>(forked.value().payload.get_int("child_pid")));
  }
  auto result = harness.join();
  EXPECT_TRUE(result.ok) << result.error.to_string();
  EXPECT_EQ(harness.output(), "5\n");  // all five died of the signal

  // Every corpse left a DIONEA-CRASH report keyed by its own pid.
  for (int pid : child_pids) {
    std::string report_path = crash::crash_dir_string() + "/dionea-crash." +
                              std::to_string(pid) + ".txt";
    auto report = read_file(report_path);
    ASSERT_TRUE(report.is_ok()) << report_path << " missing";
    EXPECT_EQ(report.value().rfind("DIONEA-CRASH v1\n", 0), 0u);
    EXPECT_NE(report.value().find("signal: 11"), std::string::npos);
    (void)::unlink(report_path.c_str());
  }
  expect_parent_survived(harness);
}

// Scenario 5: double fork with a dead intermediate parent. The
// grandchild is orphaned at birth (its parent exits immediately); it
// must still rebind, publish its record, and be attachable while the
// original client keeps the session to the grandparent.
TEST(HostileForkTest, DoubleForkWithDeadIntermediateParent) {
  DebugHarness harness(
      "q = ipc_queue()\n"
      "pid = fork()\n"
      "if pid == 0\n"
      "  g = fork()\n"
      "  if g == 0\n"
      "    ipc_push(q, getpid())\n"
      "    sleep(1.5)\n"  // stay alive long enough to be attached
      "    exit(0)\n"
      "  end\n"
      "  exit(3)\n"  // intermediate dies at once: grandchild orphaned
      "end\n"
      "st = waitpid(pid)\n"
      "gp = ipc_pop(q)\n"
      "puts(st)",
      HarnessOptions{.stop_at_entry = false});
  harness.launch();

  // First kForked: the intermediate. (The grandchild's own kForked is
  // announced on the intermediate's session, which dies immediately —
  // we learn the grandchild pid through the queue instead.)
  auto forked = harness.session()->wait_event(proto::Event::kForked, 10'000);
  ASSERT_TRUE(forked.is_ok()) << forked.error().to_string();
  int intermediate = static_cast<int>(
      forked.value().payload.get_int("child_pid"));

  // The orphan publishes its record; find its pid in the port file.
  int grandchild = 0;
  ASSERT_TRUE(test::poll_until([&] {
    (void)harness.client().refresh(100);
    for (client::SessionHandle h : harness.client().sessions()) {
      int pid = harness.client().pid_of(h);
      if (pid != static_cast<int>(::getpid()) && pid != intermediate) {
        grandchild = pid;
        return true;
      }
    }
    return false;
  }, 10'000)) << "orphaned grandchild never published a session";

  client::Session* orphan =
      harness.client().session(harness.client().handle_for_pid(grandchild));
  ASSERT_NE(orphan, nullptr);
  EXPECT_TRUE(orphan->connected());
  auto pong = orphan->ping();
  EXPECT_TRUE(pong.is_ok()) << pong.error().to_string();

  auto result = harness.join();
  EXPECT_TRUE(result.ok) << result.error.to_string();
  EXPECT_EQ(harness.output(), "3\n");
  expect_parent_survived(harness);
}

// Scenario 6: fork under active replay recording. The DRLG engine is
// live on both sides of the fork; the child keeps its own log and the
// parent's recording survives the storm.
TEST(HostileForkTest, ForkUnderActiveReplayRecording) {
  auto tmp = TempDir::create("hostile-replay");
  ASSERT_TRUE(tmp.is_ok());
  replay::Engine& engine = replay::Engine::instance();
  ASSERT_TRUE(engine.start_record(tmp.value().path()).is_ok());
  {
    DebugHarness harness(
        "pid = fork()\n"
        "if pid == 0\n"
        "  x = 21\n"
        "  exit(x * 2 - 42)\n"
        "end\n"
        "st = waitpid(pid)\n"
        "puts(st)",
        HarnessOptions{.stop_at_entry = false});
    harness.launch();
    auto forked = harness.session()->wait_event(proto::Event::kForked, 10'000);
    ASSERT_TRUE(forked.is_ok()) << forked.error().to_string();
    auto result = harness.join();
    EXPECT_TRUE(result.ok) << result.error.to_string();
    EXPECT_EQ(harness.output(), "0\n");
    expect_parent_survived(harness);
  }
  engine.stop();
}

}  // namespace
}  // namespace dionea::dbg
