// Hub building blocks in isolation: the bounded outbound queue's
// drop-oldest backpressure and the session registry's id lifecycle
// (monotonic ids, churn, default-session selection).
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hub/outbound_queue.hpp"
#include "hub/session_registry.hpp"

namespace dionea::hub {
namespace {

TEST(OutboundQueueTest, FifoWithinBound) {
  OutboundQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.push("a"));
  EXPECT_TRUE(q.push("b"));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(OutboundQueueTest, OverflowDropsOldestUnstarted) {
  OutboundQueue q(2);
  EXPECT_TRUE(q.push("first"));
  EXPECT_TRUE(q.push("second"));
  // Full: the next push evicts the oldest frame not yet on the wire.
  EXPECT_FALSE(q.push("third"));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.queued_total(), 3u);

  // Drain over a socketpair: "first" was the victim.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  bool progress = false;
  ASSERT_TRUE(q.flush(fds[0], &progress).is_ok());
  EXPECT_TRUE(progress);
  EXPECT_TRUE(q.empty());
  char buf[64] = {0};
  ssize_t n = ::read(fds[1], buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, static_cast<size_t>(n)), "secondthird");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(OutboundQueueTest, MidWriteFrameIsNeverEvicted) {
  // A tiny socket buffer forces a partial write of a large frame; the
  // partially-sent frame must survive every subsequent overflow (an
  // evicted half-frame would tear the peer's stream framing).
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int small = 4096;
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);
  OutboundQueue q(1);
  std::string big(1 << 20, 'x');
  ASSERT_TRUE(q.push(big));
  ASSERT_TRUE(q.flush(fds[0]).is_ok());  // partial: offset > 0 now
  ASSERT_FALSE(q.empty());

  // Overflow pressure: the sole frame is mid-write, so pushes drop the
  // INCOMING frame's predecessor — never the one on the wire.
  for (int i = 0; i < 16; ++i) (void)q.push("y");
  EXPECT_GE(q.dropped(), 15u);

  // Drain reader side while flushing; total 'x' bytes must equal the
  // full frame (nothing torn).
  size_t got_x = 0;
  std::thread reader([&] {
    char buf[8192];
    while (got_x < big.size()) {
      ssize_t n = ::read(fds[1], buf, sizeof(buf));
      if (n <= 0) break;
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] == 'x') ++got_x;
      }
    }
  });
  while (!q.empty()) {
    ASSERT_TRUE(q.flush(fds[0]).is_ok());
  }
  ::close(fds[0]);
  reader.join();
  ::close(fds[1]);
  EXPECT_EQ(got_x, big.size());
}

TEST(OutboundQueueTest, FlushReportsPeerGone) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  OutboundQueue q(4);
  ASSERT_TRUE(q.push("data"));
  EXPECT_FALSE(q.flush(fds[0]).is_ok());  // EPIPE, not SIGPIPE
  ::close(fds[0]);
}

TEST(SessionRegistryTest, IdsAreMonotonicAndNeverRecycled) {
  SessionRegistry reg;
  SessionRecord a;
  a.pid = 100;
  std::int64_t id1 = reg.add(a);
  SessionRecord b;
  b.pid = 200;
  std::int64_t id2 = reg.add(b);
  EXPECT_GT(id2, id1);
  ASSERT_TRUE(reg.remove(id1));
  SessionRecord c;
  c.pid = 300;
  std::int64_t id3 = reg.add(c);
  EXPECT_GT(id3, id2);  // removal does not free the id
  EXPECT_FALSE(reg.find(id1, nullptr));
}

TEST(SessionRegistryTest, DefaultSessionIsLowestLive) {
  SessionRegistry reg;
  SessionRecord r;
  r.pid = 1;
  std::int64_t first = reg.add(r);
  r.pid = 2;
  std::int64_t second = reg.add(r);
  EXPECT_EQ(reg.default_session(), first);
  ASSERT_TRUE(reg.mark_dead(first));
  EXPECT_EQ(reg.default_session(), second);
  EXPECT_EQ(reg.live_count(), 1u);
  EXPECT_EQ(reg.size(), 2u);  // the corpse stays findable
  SessionRecord got;
  ASSERT_TRUE(reg.find(first, &got));
  EXPECT_FALSE(got.alive);
}

TEST(SessionRegistryTest, FindByPidPrefersNewestRegistration) {
  SessionRegistry reg;
  SessionRecord r;
  r.pid = 777;
  std::int64_t old_id = reg.add(r);
  ASSERT_TRUE(reg.mark_dead(old_id));
  std::int64_t new_id = reg.add(r);  // double fork: same pid, new session
  EXPECT_EQ(reg.find_by_pid(777), new_id);
}

TEST(SessionRegistryTest, ConcurrentChurnKeepsInvariants) {
  SessionRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SessionRecord r;
        r.pid = t * 10'000 + i;
        std::int64_t id = reg.add(r);
        reg.update_stats(id, /*routed=*/1, /*dropped=*/0);
        if (i % 3 == 0) {
          reg.mark_dead(id);
        } else if (i % 3 == 1) {
          reg.remove(id);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every id was unique; survivors = the i%3==2 third plus the dead.
  int dead_per_thread = 0;
  int live_per_thread = 0;
  for (int i = 0; i < kPerThread; ++i) {
    if (i % 3 == 0) ++dead_per_thread;
    if (i % 3 == 2) ++live_per_thread;
  }
  auto all = reg.snapshot();
  std::set<std::int64_t> ids;
  for (const SessionRecord& r : all) ids.insert(r.id);
  EXPECT_EQ(ids.size(), all.size());
  EXPECT_EQ(reg.size(),
            static_cast<size_t>(kThreads * (dead_per_thread + live_per_thread)));
  EXPECT_EQ(reg.live_count(), static_cast<size_t>(kThreads * live_per_thread));
}

}  // namespace
}  // namespace dionea::hub
