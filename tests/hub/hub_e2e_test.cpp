// Hub end-to-end with real debuggees: a DebugServer announces itself
// (hub-register), the hub dials it back, and clients debug through the
// hub alone — including the proto-1.4 downgrade path (acceptance: a
// token-less 1.4 client completes a full breakpoint session), fork
// trees whose children auto-register from fork handler C, and a
// hostile fork storm landing while shards are mid-batch.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.hpp"
#include "client/session.hpp"
#include "debugger/protocol.hpp"
#include "hub/hub.hpp"
#include "testutil.hpp"

namespace dionea::hub {
namespace {

namespace proto = dbg::proto;

// DebugHarness with a hub in front: the server gets hub_port instead
// of (well, in addition to nothing — no port file at all), so the ONLY
// way to this debuggee is through the hub.
class HubHarness {
 public:
  struct Options {
    bool stop_at_entry = true;
    bool stop_forked_children = false;
  };

  explicit HubHarness(std::string program)
      : HubHarness(std::move(program), Options{}) {}

  HubHarness(std::string program, Options options)
      : program_(std::move(program)) {
    DIONEA_CHECK(hub_.start().is_ok(), "hub start");
    interp_ = std::make_unique<vm::Interp>();
    mp::install_vm_bindings(interp_->vm());
    interp_->vm().set_output([this](std::string_view text) {
      std::scoped_lock lock(output_mutex_);
      output_.append(text);
    });
    dbg::DebugServer::Options server_options;
    server_options.hub_port = hub_.port();
    server_options.stop_at_entry = options.stop_at_entry;
    server_options.stop_forked_children = options.stop_forked_children;
    server_ = std::make_unique<dbg::DebugServer>(interp_->vm(),
                                                 server_options);
    server_->register_source("test.ml", program_);
    DIONEA_CHECK(server_->start().is_ok(), "server start");
    DIONEA_CHECK(server_->hub_session_id() != 0, "hub registration");
  }

  ~HubHarness() {
    if (runner_.joinable()) {
      server_->stop();
      interp_->vm().request_exit(0);
      runner_.join();
    }
    server_->stop();
    hub_.stop();
  }

  void run() {
    runner_ = std::thread([this] {
      vm::RunResult run = interp_->run_string(program_, "test.ml");
      if (interp_->vm().is_forked_child()) {
        std::fflush(nullptr);
        ::_exit(run.exited ? run.exit_code : (run.ok ? 0 : 1));
      }
      result_ = run;
      finished_.store(true);
    });
  }

  vm::RunResult join(int timeout_millis = 20'000) {
    Stopwatch watch;
    while (!finished_.load()) {
      DIONEA_CHECK(watch.elapsed_seconds() * 1000.0 < timeout_millis,
                   "debuggee did not finish in time");
      sleep_for_millis(5);
    }
    runner_.join();
    return result_;
  }

  Hub& hub() noexcept { return hub_; }
  dbg::DebugServer& server() noexcept { return *server_; }
  std::string output() {
    std::scoped_lock lock(output_mutex_);
    return output_;
  }

 private:
  std::string program_;
  Hub hub_;
  std::unique_ptr<vm::Interp> interp_;
  std::unique_ptr<dbg::DebugServer> server_;
  std::thread runner_;
  std::atomic<bool> finished_{false};
  vm::RunResult result_;
  std::mutex output_mutex_;
  std::string output_;
};

TEST(HubE2eTest, SessionAddressedBreakpointFlow) {
  HubHarness harness(
      "fn add(a, b)\n"    // 1
      "  c = a + b\n"     // 2
      "  return c\n"      // 3
      "end\n"
      "r = add(1, 2)\n"   // 5
      "puts(r)");
  harness.run();

  auto connected = client::Client::connect(harness.hub().port(), 5000);
  ASSERT_TRUE(connected.is_ok()) << connected.error().to_string();
  client::Client& cc = *connected.value();
  ASSERT_TRUE(cc.hub_mode());

  auto handle = cc.attach(static_cast<int>(::getpid()), 5000);
  ASSERT_TRUE(handle.is_ok()) << handle.error().to_string();
  EXPECT_EQ(handle.value().id, harness.server().hub_session_id());
  client::Session* session = cc.session(handle.value());
  ASSERT_NE(session, nullptr);

  auto entry = session->wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok()) << entry.error().to_string();

  auto bp = session->set_breakpoint("test.ml", 3);
  ASSERT_TRUE(bp.is_ok()) << bp.error().to_string();
  ASSERT_TRUE(session->cont(entry.value().tid).is_ok());
  auto hit = session->wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok()) << hit.error().to_string();
  EXPECT_EQ(hit.value().line, 3);

  auto locals = session->locals(hit.value().tid);
  ASSERT_TRUE(locals.is_ok());
  bool saw_c = false;
  for (const auto& [name, value] : locals.value()) {
    if (name == "c" && value == "3") saw_c = true;
  }
  EXPECT_TRUE(saw_c);

  ASSERT_TRUE(session->clear_breakpoint(bp.value()).is_ok());
  ASSERT_TRUE(session->cont(hit.value().tid).is_ok());
  auto result = harness.join();
  ASSERT_TRUE(result.ok) << result.error.to_string();
  EXPECT_EQ(harness.output(), "3\n");
}

// Acceptance criterion: a proto-1.4 client (token-less Session, no hub
// anything) debugs through the hub without knowing it is one.
TEST(HubE2eTest, Proto14ClientDowngradesThroughHub) {
  HubHarness harness(
      "fn mul(a, b)\n"    // 1
      "  p = a * b\n"     // 2
      "  return p\n"      // 3
      "end\n"
      "r = mul(6, 7)\n"   // 5
      "puts(r)");
  harness.run();

  // A 1.4 client: raw Session::attach, empty token.
  auto attached = client::Session::attach(harness.hub().port(), 5000);
  ASSERT_TRUE(attached.is_ok()) << attached.error().to_string();
  client::Session& session = *attached.value();
  // The handshake ping answered with the BOUND session's pid — the
  // debuggee's, not the hub's own identity.
  EXPECT_EQ(session.pid(), static_cast<int>(::getpid()));
  EXPECT_TRUE(session.supports(proto::kCapHub));

  auto entry = session.wait_stopped(5000);
  ASSERT_TRUE(entry.is_ok()) << entry.error().to_string();
  auto bp = session.set_breakpoint("test.ml", 3);
  ASSERT_TRUE(bp.is_ok()) << bp.error().to_string();
  ASSERT_TRUE(session.cont(entry.value().tid).is_ok());
  auto hit = session.wait_stopped(5000);
  ASSERT_TRUE(hit.is_ok()) << hit.error().to_string();
  EXPECT_EQ(hit.value().line, 3);
  EXPECT_EQ(hit.value().reason, proto::kStopBreakpoint);

  auto threads = session.threads();
  ASSERT_TRUE(threads.is_ok());
  ASSERT_FALSE(threads.value().empty());

  ASSERT_TRUE(session.clear_breakpoint(0).is_ok());
  ASSERT_TRUE(session.cont(hit.value().tid).is_ok());
  auto result = harness.join();
  ASSERT_TRUE(result.ok) << result.error.to_string();
  EXPECT_EQ(harness.output(), "42\n");
}

TEST(HubE2eTest, ForkTreeChildrenAutoRegister) {
  HubHarness harness(
      "kids = []\n"
      "for i in 2\n"
      "  p = fork(fn()\n"
      "    sleep(0.1)\n"
      "  end)\n"
      "  push(kids, p)\n"
      "end\n"
      "for k in kids\n"
      "  waitpid(k)\n"
      "end\n"
      "puts(\"done\")",
      HubHarness::Options{.stop_at_entry = false});
  harness.run();

  // Fork handler C re-registers each child with the hub: 1 root + 2
  // children, parent_pid linking the tree.
  ASSERT_TRUE(test::poll_until(
      [&] { return harness.hub().registry().size() >= 3; }, 10'000));
  std::int64_t root_id = harness.server().hub_session_id();
  int children_of_root = 0;
  for (const SessionRecord& rec : harness.hub().registry().snapshot()) {
    if (rec.id == root_id) continue;
    EXPECT_EQ(rec.parent_pid, static_cast<int>(::getpid())) << rec.id;
    EXPECT_NE(rec.pid, static_cast<int>(::getpid()));
    ++children_of_root;
  }
  EXPECT_GE(children_of_root, 2);

  // The same tree through the client API: hub_sessions mirrors it.
  auto connected = client::Client::connect(harness.hub().port(), 5000);
  ASSERT_TRUE(connected.is_ok()) << connected.error().to_string();
  auto listing = connected.value()->hub_sessions();
  ASSERT_TRUE(listing.is_ok());
  EXPECT_GE(listing.value().size(), 3u);

  auto result = harness.join();
  ASSERT_TRUE(result.ok) << result.error.to_string();
  while (::waitpid(-1, nullptr, WNOHANG) > 0) {
  }
}

// Hostile: forks keep landing while the shards are busy routing a
// synthetic event storm (mid-batch). The hub must register every
// child, drop no session, and stay responsive.
TEST(HubE2eTest, ForkStormWhileShardsMidBatch) {
  HubHarness harness(
      "for i in 4\n"
      "  p = fork(fn()\n"
      "    t = spawn(fn() return 1 end)\n"
      "    join(t)\n"
      "  end)\n"
      "  waitpid(p)\n"
      "end\n"
      "puts(\"storm ok\")",
      HubHarness::Options{.stop_at_entry = false});

  // Load every shard: synthetic sessions spray events from a side
  // thread for the whole duration of the fork storm.
  std::vector<std::int64_t> noisy;
  for (int i = 0; i < 8; ++i) {
    noisy.push_back(harness.hub().register_synthetic(9000 + i));
  }
  std::atomic<bool> storming{true};
  std::thread storm([&] {
    ipc::wire::Value event = proto::make_event(proto::Event::kOutput);
    event.set("text", std::string(1024, 's'));
    while (storming.load()) {
      for (std::int64_t id : noisy) harness.hub().inject_event(id, event);
      sleep_for_millis(1);
    }
  });

  harness.run();
  auto connected = client::Client::connect(harness.hub().port(), 5000);
  ASSERT_TRUE(connected.is_ok()) << connected.error().to_string();
  client::Client& cc = *connected.value();

  // Every fork re-registers mid-storm; sequential forks mean >= 5
  // registrations total (root + 4 children).
  bool all_registered = test::poll_until(
      [&] { return harness.hub().registry().size() >= 5 + noisy.size(); },
      20'000);
  EXPECT_TRUE(all_registered)
      << "registry size " << harness.hub().registry().size();

  // The hub answers while still routing the storm.
  auto listing = cc.hub_sessions();
  ASSERT_TRUE(listing.is_ok()) << listing.error().to_string();
  EXPECT_GE(harness.hub().events_routed(), 1u);

  auto result = harness.join();
  storming.store(false);
  storm.join();
  ASSERT_TRUE(result.ok) << result.error.to_string();
  EXPECT_EQ(harness.output(), "storm ok\n");
  while (::waitpid(-1, nullptr, WNOHANG) > 0) {
  }
}

}  // namespace
}  // namespace dionea::hub
