// The hub over the wire with synthetic sessions: shard pinning,
// session discovery through a connected Client, event routing with the
// session_id envelope, and drop-oldest backpressure against a stalled
// subscriber.
#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "client/client.hpp"
#include "debugger/protocol.hpp"
#include "hub/hub.hpp"
#include "ipc/frame.hpp"
#include "ipc/socket.hpp"
#include "testutil.hpp"

namespace dionea::hub {
namespace {

namespace proto = dbg::proto;
using ipc::wire::Value;

Value output_event(const std::string& text) {
  Value event = proto::make_event(proto::Event::kOutput);
  event.set("text", text);
  return event;
}

TEST(HubTest, StartStopAndShardPinning) {
  Hub hub;
  ASSERT_TRUE(hub.start().is_ok());
  EXPECT_NE(hub.port(), 0);
  EXPECT_GE(hub.shard_count(), 1);

  std::int64_t a = hub.register_synthetic(111);
  std::int64_t b = hub.register_synthetic(222);
  EXPECT_GT(b, a);
  // Pinning is a pure function of the id and recorded in the registry.
  EXPECT_EQ(hub.shard_for_session(a), hub.shard_for_session(a));
  SessionRecord rec;
  ASSERT_TRUE(hub.registry().find(a, &rec));
  EXPECT_EQ(rec.shard, hub.shard_for_session(a));
  EXPECT_TRUE(rec.synthetic);
  EXPECT_EQ(rec.pid, 111);

  hub.stop();
  hub.stop();  // idempotent
}

TEST(HubTest, ClientDiscoversSyntheticSessions) {
  Hub hub;
  ASSERT_TRUE(hub.start().is_ok());
  std::int64_t id = hub.register_synthetic(4242);

  auto connected = client::Client::connect(hub.port(), 5000);
  ASSERT_TRUE(connected.is_ok()) << connected.error().to_string();
  client::Client& cc = *connected.value();
  EXPECT_TRUE(cc.hub_mode());

  auto listing = cc.hub_sessions();
  ASSERT_TRUE(listing.is_ok());
  bool found = false;
  for (const proto::HubSessionEntry& entry : listing.value()) {
    if (entry.session_id != id) continue;
    found = true;
    EXPECT_EQ(entry.pid, 4242);
    EXPECT_TRUE(entry.synthetic);
    EXPECT_EQ(entry.shard, hub.shard_for_session(id));
  }
  EXPECT_TRUE(found);
  hub.stop();
}

TEST(HubTest, InjectedEventsCarrySessionEnvelope) {
  Hub hub;
  ASSERT_TRUE(hub.start().is_ok());
  std::int64_t first = hub.register_synthetic(1001);
  std::int64_t second = hub.register_synthetic(1002);

  auto connected = client::Client::connect(hub.port(), 5000);
  ASSERT_TRUE(connected.is_ok()) << connected.error().to_string();
  client::Client& cc = *connected.value();
  ASSERT_TRUE(cc.hub_mode());

  hub.inject_event(first, output_event("from-first"));
  hub.inject_event(second, output_event("from-second"));

  // Each event arrives exactly once, stamped with its session handle.
  std::set<std::int64_t> sources;
  std::string texts;
  test::poll_until(
      [&] {
        auto events = cc.poll_events(50);
        if (!events.is_ok()) return true;  // link died — fail below
        for (const client::Client::SessionEvent& se : events.value()) {
          if (se.event.kind != proto::Event::kOutput) continue;
          sources.insert(se.session.id);
          texts += se.event.payload.get_string("text");
        }
        return sources.size() >= 2;
      },
      5000);
  EXPECT_EQ(sources.count(first), 1u);
  EXPECT_EQ(sources.count(second), 1u);
  EXPECT_NE(texts.find("from-first"), std::string::npos);
  EXPECT_NE(texts.find("from-second"), std::string::npos);
  EXPECT_GE(hub.events_routed(), 2u);
  hub.stop();
}

TEST(HubTest, BacklogReplaysToLateSubscriber) {
  // The stop-at-entry race, synthetically: the event fires BEFORE any
  // client is attached; the per-session backlog hands it to the first
  // subscriber anyway.
  Hub hub;
  ASSERT_TRUE(hub.start().is_ok());
  std::int64_t id = hub.register_synthetic(77);
  hub.inject_event(id, output_event("early-bird"));
  // inject_event is posted to the session's shard: wait for it to land
  // in the backlog ring before the subscriber shows up.
  ASSERT_TRUE(test::poll_until([&] { return hub.backlog_size(id) >= 1; }));

  auto connected = client::Client::connect(hub.port(), 5000);
  ASSERT_TRUE(connected.is_ok()) << connected.error().to_string();
  client::Client& cc = *connected.value();

  bool replayed = test::poll_until(
      [&] {
        auto events = cc.poll_events(50);
        if (!events.is_ok()) return true;
        for (const client::Client::SessionEvent& se : events.value()) {
          if (se.session.id == id &&
              se.event.payload.get_string("text") == "early-bird") {
            return true;
          }
        }
        return false;
      },
      5000);
  EXPECT_TRUE(replayed);
  hub.stop();
}

// A subscriber that stops reading its socket: hello on both channels,
// one hub-attach(0), then silence. The kernel buffers fill, the
// bounded queue evicts oldest-first, the counters say so, and — the
// actual point — nothing else in the hub stalls.
TEST(HubTest, StalledSubscriberDropsOldestNeverBlocksHub) {
  Hub::Options options;
  options.client_queue_frames = 8;
  Hub hub(options);
  ASSERT_TRUE(hub.start().is_ok());
  std::int64_t noisy = hub.register_synthetic(2001);

  auto hello = [](const char* channel, const std::string& token) {
    proto::Hello h;
    h.channel = channel;
    h.proto_major = proto::kProtoMajor;
    h.proto_minor = proto::kProtoMinor;
    h.capabilities = proto::local_capabilities();
    h.client_token = token;
    return h.to_wire();
  };
  const std::string token = "stalled-peer";
  auto control = ipc::TcpStream::connect_retry(hub.port(), 3000);
  ASSERT_TRUE(control.is_ok());
  ASSERT_TRUE(
      ipc::send_frame(control.value(), hello(proto::kChannelControl, token))
          .is_ok());
  auto events = ipc::TcpStream::connect_retry(hub.port(), 3000);
  ASSERT_TRUE(events.is_ok());
  ASSERT_TRUE(
      ipc::send_frame(events.value(), hello(proto::kChannelEvents, token))
          .is_ok());

  // Subscribe to everything, prove the control path works, then stall.
  Value attach = proto::HubAttachRequest{}.to_wire();
  attach.set("cmd", proto::HubAttachRequest::kName);
  attach.set("seq", 1);
  ASSERT_TRUE(ipc::send_frame(control.value(), attach).is_ok());
  auto reply = ipc::recv_frame_timeout(control.value(), 3000);
  ASSERT_TRUE(reply.is_ok()) << reply.error().to_string();
  EXPECT_TRUE(reply.value().get_bool("ok"));

  ASSERT_TRUE(test::poll_until([&] { return hub.peer_count() >= 1; }));

  // ~64 KiB per event, hundreds of events: far beyond socket buffers
  // plus an 8-frame queue.
  const std::string payload(64 * 1024, 'e');
  for (int i = 0; i < 512; ++i) {
    hub.inject_event(noisy, output_event(payload));
  }
  EXPECT_TRUE(
      test::poll_until([&] { return hub.events_dropped() > 0; }, 10'000));
  // inject_event is async; every event must eventually be routed (into
  // the stalled queue, evicting an older one) without the hub blocking.
  EXPECT_TRUE(
      test::poll_until([&] { return hub.events_routed() >= 512u; }, 10'000));

  // The hub is not wedged: a healthy client connects and round-trips
  // while the stalled peer's queue is saturated.
  auto healthy = client::Client::connect(hub.port(), 5000);
  ASSERT_TRUE(healthy.is_ok()) << healthy.error().to_string();
  auto listing = healthy.value()->hub_sessions();
  ASSERT_TRUE(listing.is_ok());
  bool counted = false;
  for (const proto::HubSessionEntry& entry : listing.value()) {
    if (entry.session_id == noisy && entry.events_dropped > 0) counted = true;
  }
  EXPECT_TRUE(counted) << "per-session drop counter not published";
  hub.stop();
}

}  // namespace
}  // namespace dionea::hub
